"""Table 3: instructions/packet and cycles/instruction per application.

Paper: forwarding 1033 / 1.19, routing 1512 / 1.23, IPsec 14221 / 0.55.
The derived cycles/packet agree with the rate-implied figures to ~5 %
(an inconsistency the paper itself carries; see EXPERIMENTS.md).
"""

import pytest

from repro.analysis import format_table, run_experiment


def test_table3(benchmark, save_result):
    result = benchmark(run_experiment, "T3")
    rows = result["rows"]
    save_result("table3_ipc", format_table(
        rows, ["application", "instructions_per_packet",
               "cycles_per_instruction", "derived_cycles_per_packet"],
        title="Table 3: IPP and CPI (64B packets)"))
    by_name = {row["application"]: row for row in rows}
    assert by_name["forwarding"]["instructions_per_packet"] == 1033
    assert by_name["routing"]["instructions_per_packet"] == 1512
    assert by_name["ipsec"]["instructions_per_packet"] == 14221
    # CPI sanity: ipsec is compute-dense (CPI < 1), the others are
    # memory-touched (CPI > 1) -- the efficiency argument of Sec. 5.3.
    assert by_name["ipsec"]["cycles_per_instruction"] < 1.0
    assert by_name["forwarding"]["cycles_per_instruction"] > 1.0
