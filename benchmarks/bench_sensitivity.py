"""Robustness of the reproduction's conclusions to calibration error.

Perturbs every per-packet cost axis by +-20 % and re-checks the paper's
qualitative conclusions (CPU bottleneck at 64 B, NIC limit on Abilene,
application ordering, the next-gen memory crossover).
"""

from repro.analysis import format_table
from repro.analysis.sensitivity import all_conclusions_hold, robustness_sweep


def test_conclusions_robust(benchmark, save_result):
    rows = benchmark(robustness_sweep)
    save_result("sensitivity", format_table(
        rows, ["axis", "factor", "cpu_bottleneck_64b",
               "nic_limited_abilene", "app_ordering",
               "routing_memory_bound_next_gen"],
        title="Conclusion robustness under calibration perturbation"))
    assert all_conclusions_hold(rows)
