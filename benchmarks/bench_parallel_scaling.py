"""Parallel DES scaling: sharding the cluster across worker partitions.

RouteBricks' thesis is that a router scales by adding servers; the
reproduction's analogue is that the *simulation* scales by adding
partitions.  This benchmark shards an RB8 cluster across 1/2/4
partitions and reports the critical-path event rate -- total events
divided by the busiest partition's CPU seconds -- which is what bounds
wall-clock time on a machine with enough cores.  CPU time (not wall
time) keeps the figure honest on shared or single-core CI runners,
where the partitions time-slice one core.

The companion correctness claim (delivered/drop/latency scalars are
bit-identical at every worker count) is enforced here on RB4 as well as
in tests/test_parallel.py.
"""

import time

from repro.analysis import format_table
from repro.core import RouteBricksRouter
from repro.parallel import simulate_parallel
from repro.workloads import WorkloadSpec
from repro.workloads.matrices import uniform_matrix

NODES = 8
SEED = 20090917
DURATION = 6e-4
LOAD = 0.5
WORKER_SWEEP = (1, 2, 4)


def _cluster(nodes=NODES):
    router = RouteBricksRouter(num_nodes=nodes, seed=SEED)
    workload = WorkloadSpec.fixed(64).with_matrix(
        uniform_matrix(nodes, router.port_rate_bps * LOAD))
    return router, workload


def _run(workers, nodes=NODES):
    router, workload = _cluster(nodes)
    start = time.process_time()
    report = simulate_parallel(router, workload, until=DURATION,
                               workers=workers, backend="inline")
    cpu = time.process_time() - start
    # Critical path: the busiest partition bounds a parallel run.  The
    # single-heap run (workers=1) has one partition: its whole CPU time.
    busy = max(report.partition_busy_seconds) \
        if report.partition_busy_seconds else cpu
    return report, busy, cpu


def test_rb8_worker_sweep(benchmark, save_result):
    def sweep():
        rows = []
        base_rate = None
        base_delivered = None
        for workers in WORKER_SWEEP:
            report, busy, cpu = _run(workers)
            rate = report.events_run / busy
            if base_rate is None:
                base_rate = rate
                base_delivered = (report.delivered_packets,
                                  report.dropped_packets,
                                  report.delivered_bytes)
            # Sharding must not change what the cluster computes.
            assert (report.delivered_packets, report.dropped_packets,
                    report.delivered_bytes) == base_delivered
            rows.append({
                "workers": workers,
                "events": report.events_run,
                "epochs": report.epochs,
                "events_per_sec": rate,
                "wall_events_per_sec": report.events_run / cpu,
                "speedup": rate / base_rate,
                "goodput_gbps": report.delivered_bps / 1e9,
                "barrier_wait_seconds": sum(report.barrier_wait_seconds),
                "lookahead_efficiency": report.lookahead_efficiency,
                "imbalance": report.load_imbalance,
            })
        # Flat per-worker keys so the BENCH artifact records each
        # sharding's rate by name, not just the sweep average.  The
        # epoch/barrier telemetry (PR 9) rides along as perf scalars:
        # aggregate barrier stall, mean epoch length over the lookahead
        # window W, and busiest/mean partition busy-time imbalance.
        summary = {}
        for row in rows:
            w = row["workers"]
            summary["w%d_events_per_sec" % w] = row["events_per_sec"]
            summary["w%d_speedup" % w] = row["speedup"]
            if w > 1:  # single-heap runs have no epochs or barriers
                summary["w%d_barrier_wait_seconds" % w] = \
                    row["barrier_wait_seconds"]
                summary["w%d_lookahead_efficiency" % w] = \
                    row["lookahead_efficiency"]
                summary["w%d_imbalance" % w] = row["imbalance"]
        return {"rows": rows, "summary": summary}

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = result["rows"]
    save_result("parallel_scaling", format_table(
        rows, ["workers", "events", "epochs", "events_per_sec",
               "speedup", "goodput_gbps", "lookahead_efficiency",
               "imbalance"],
        title="RB8 partitioned DES, critical-path event rate"))
    by_workers = {row["workers"]: row for row in rows}
    # The acceptance bar: 4 partitions buy at least 2x the single-heap
    # critical-path rate (per-partition event counts quarter; epoch
    # overhead eats some of it).
    assert by_workers[4]["speedup"] >= 2.0
    assert by_workers[2]["speedup"] >= 1.2
    for row in rows:
        assert row["goodput_gbps"] == rows[0]["goodput_gbps"]


def test_rb4_cross_worker_equality(benchmark):
    """RB4 report scalars are identical at every worker count."""

    def sweep():
        results = []
        for workers in (1, 2, 4):
            report, _, _ = _run(workers, nodes=4)
            results.append({
                "shards": workers,
                "delivered": report.delivered_packets,
                "dropped": report.dropped_packets,
                "events": report.events_run,
                "latency_p99_usec": report.latency_usec.percentile(99),
            })
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    first = results[0]
    for row in results[1:]:
        for key in ("delivered", "dropped", "events", "latency_p99_usec"):
            assert row[key] == first[key], \
                "workers=%d diverged on %s" % (row["shards"], key)
