"""Graceful degradation under server failures (Sec. 3.2).

Two artifacts:

* the capacity-vs-failed-servers curve, analytic model against the
  packet-level DES -- the shapes must agree within ~10 % for the 1-2
  failed-of-8 regime the paper's claim covers;
* a crash-and-recover timeline through the control plane, showing
  measurable convergence and full reconvergence after recovery.
"""

import pytest

from repro.analysis import format_table
from repro.core import RouteBricksRouter
from repro.core.control import ClusterManager
from repro.core.vlb import required_internal_link_rate
from repro.faults import FaultSchedule, degradation_curve, linear_fraction
from repro.workloads import WorkloadSpec
from repro.workloads.matrices import TrafficMatrix

NODES = 8
PORT_RATE = 10e9
LOAD = 0.3            # offered load per live port, fraction of R
PACKET_BYTES = 1024
DURATION = 1.2e-3


def _survivor_matrix(failed: int) -> TrafficMatrix:
    """Uniform admissible traffic among the live nodes only (a dead
    server's port is dark, so no demand enters or leaves it)."""
    live = list(range(failed, NODES))
    per_pair = LOAD * PORT_RATE / (len(live) - 1)
    demands = [[per_pair if i in live and j in live and i != j else 0.0
                for j in range(NODES)] for i in range(NODES)]
    return TrafficMatrix(demands)


def _des_goodput(failed: int) -> float:
    """Delivered bits/second with ``failed`` servers crashed at t=0."""
    router = RouteBricksRouter(
        num_nodes=NODES, port_rate_bps=PORT_RATE,
        internal_link_bps=required_internal_link_rate(NODES, PORT_RATE),
        seed=17)
    schedule = FaultSchedule()
    for node in range(failed):
        schedule.crash_node(at=1e-9, node=node)
    workload = WorkloadSpec.fixed(PACKET_BYTES, seed=17).with_matrix(
        _survivor_matrix(failed))
    report = router.simulate(workload, until=DURATION,
                             faults=schedule if failed else None,
                             detection_latency_sec=20e-6)
    return report.delivered_bps


def test_degradation_analytic_vs_des(benchmark, save_result):
    def run():
        analytic = degradation_curve(
            num_nodes=NODES, workload=WorkloadSpec.fixed(PACKET_BYTES),
            port_rate_bps=PORT_RATE, max_failed=2)
        des_goodput = {k: _des_goodput(k) for k in (0, 1, 2)}
        rows = []
        for k in (0, 1, 2):
            rows.append({
                "failed": k,
                "analytic_fraction": analytic.point(k).capacity_fraction,
                "des_fraction": des_goodput[k] / des_goodput[0],
                "linear_ideal": linear_fraction(NODES, k),
                "analytic_gbps": analytic.point(k).capacity_gbps,
                "des_goodput_gbps": des_goodput[k] / 1e9,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("faults_degradation", format_table(
        rows, ["failed", "analytic_fraction", "des_fraction",
               "linear_ideal", "analytic_gbps", "des_goodput_gbps"],
        title="Capacity vs failed servers (8 nodes, 2R/N links, "
              "uniform survivors)"))
    # The paper's claim: losing 1-2 of 8 servers sheds only those ports'
    # share.  Analytic and DES curves must agree in shape (~10 %).
    for row in rows:
        assert row["des_fraction"] == pytest.approx(
            row["analytic_fraction"], rel=0.10)
        assert row["analytic_fraction"] == pytest.approx(
            row["linear_ideal"], rel=0.10)


def test_crash_recover_reconvergence(benchmark, save_result):
    def run():
        router = RouteBricksRouter(num_nodes=NODES, seed=5)
        manager = ClusterManager(port_rate_bps=PORT_RATE)
        for port in range(NODES):
            manager.add_node(external_port=port)
            manager.announce("10.%d.0.0/16" % port, port)
        manager.push_fibs()
        schedule = (FaultSchedule()
                    .crash_node(at=0.3 * DURATION, node=3)
                    .recover_node(at=0.65 * DURATION, node=3))
        workload = WorkloadSpec.fixed(PACKET_BYTES, seed=5).with_matrix(
            _survivor_matrix(0))
        report = router.simulate(
            workload, until=DURATION, faults=schedule, manager=manager,
            detection_latency_sec=100e-6, fib_push_latency_sec=50e-6)
        return report, manager

    report, manager = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Crash/recover timeline (node 3 of %d, 100 us detection, "
             "50 us FIB push)" % NODES]
    for record in report.convergence:
        lines.append("  %-9s node %d: failed %.3f ms, converged %.3f ms "
                     "(%.0f us, %d live)"
                     % (record.event, record.node, record.failed_at * 1e3,
                        record.converged_at * 1e3,
                        record.convergence_sec * 1e6, record.live_nodes))
    lines.append("delivery: %d/%d (%.1f%%), %d dropped"
                 % (report.delivered_packets, report.offered_packets,
                    report.delivery_ratio * 100, report.dropped_packets))
    save_result("faults_reconvergence", "\n".join(lines))

    # Killing a node mid-run never crashes the run, and the cluster
    # reconverges after recovery.
    events = [(r.event, r.live_nodes) for r in report.convergence]
    assert events == [("node_down", NODES - 1), ("node_up", NODES)]
    for record in report.convergence:
        assert record.convergence_sec == pytest.approx(150e-6, rel=0.01)
    assert manager.failed_nodes() == []
    assert manager.stale_nodes() == []
    # The fault cost packets, but the cluster kept moving traffic.
    assert report.dropped_packets > 0
    assert report.delivery_ratio > 0.7
