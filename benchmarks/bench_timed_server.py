"""Dynamic validation of Table 1: the timed single-server DES.

Unlike bench_table1_batching (the closed-form model), this drives cores in
simulated time -- polls, empty polls, ring overflows -- and binary-searches
the maximum loss-free rate.  The DES should land on the analytic
saturation points independently.
"""

import pytest

from repro.analysis import format_table
from repro.click.simrun import TimedForwardingRun
from repro.hw import nehalem_server


def _search(kp, kn, low, high):
    # batch=True drives the batch-native fast path.  Every rate and count
    # below is bit-identical to the scalar loop (tests/test_batch.py
    # proves it); only run.events_per_sec in the BENCH document moves.
    run = TimedForwardingRun(nehalem_server(num_ports=4, queues_per_port=2),
                             kp=kp, kn=kn, batch=True)
    return run.find_loss_free_rate(low_bps=low, high_bps=high,
                                   tolerance_bps=0.15e9) / 1e9


def test_timed_table1(benchmark, save_result):
    def run_all():
        return [
            {"kp": 1, "kn": 1, "des_gbps": _search(1, 1, 0.2e9, 4e9),
             "model_gbps": 1.46},
            {"kp": 32, "kn": 1, "des_gbps": _search(32, 1, 1e9, 10e9),
             "model_gbps": 4.97},
            {"kp": 32, "kn": 16, "des_gbps": _search(32, 16, 4e9, 16e9),
             "model_gbps": 9.77},
        ]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_result("timed_table1", format_table(
        rows, ["kp", "kn", "des_gbps", "model_gbps"],
        title="Table 1 via timed simulation (loss-free rate search)"))
    for row in rows:
        assert row["des_gbps"] == pytest.approx(row["model_gbps"], rel=0.12)


def test_timed_saturation_plateau(benchmark):
    """Above saturation the achieved rate plateaus and drops appear."""

    def run():
        sim = TimedForwardingRun(nehalem_server(num_ports=4,
                                                queues_per_port=2),
                                 batch=True)
        return sim.run(offered_bps=14e9, duration_sec=2e-3)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.achieved_gbps == pytest.approx(9.8, rel=0.05)
    assert report.residual_backlog + report.dropped_packets > 0
