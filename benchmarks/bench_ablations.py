"""Ablations of the design choices DESIGN.md calls out.

* NUMA-aware data placement: no effect on throughput (Sec. 4.2's
  surprising finding) -- remote descriptor placement shifts ~23 % of
  memory accesses across the inter-socket link, which has ample headroom.
* Direct vs classic VLB: the 2R-vs-3R per-node processing tax.
* Flowlet delta sweep: reordering vs the inactivity threshold.
* Mesh vs fly vs torus cluster sizes.
* RX/TX queue count: the one-queue-per-core-per-port sufficiency rule.
"""

import pytest

from repro import calibration as cal
from repro.analysis import format_table
from repro.core import ClassicVlb, DirectVlb, RouteBricksRouter, analyze
from repro.core.topology import FullMesh, KAryNFly, Torus
from repro.perfmodel import max_loss_free_rate, per_packet_loads
from repro.workloads import FlowGenerator, permutation_matrix, uniform_matrix


def test_numa_placement_ablation(benchmark, save_result):
    """Remote descriptor placement loads the QPI but moves no bottleneck:
    throughput is unchanged, matching the paper's 6.3 = 6.3 Gbps test."""

    def run():
        loads = per_packet_loads(cal.MINIMAL_FORWARDING, 64)
        base = max_loss_free_rate(cal.MINIMAL_FORWARDING, 64)
        # Remote placement: charge the descriptor share of memory traffic
        # (23 % of accesses, Sec. 4.2) across the inter-socket link too.
        remote_qpi = loads.qpi_bytes + 0.23 * loads.mem_bytes
        qpi_capacity = cal.INTERSOCKET_EMPIRICAL_BPS / 8
        qpi_limit_pps = qpi_capacity / remote_qpi
        return base, qpi_limit_pps

    base, qpi_limit_pps = benchmark(run)
    rows = [{"placement": "local", "rate_gbps": base.rate_gbps},
            {"placement": "remote descriptors",
             "rate_gbps": min(base.rate_pps, qpi_limit_pps) * 512 / 1e9}]
    save_result("ablation_numa", format_table(
        rows, ["placement", "rate_gbps"],
        title="Ablation: NUMA data placement (64B forwarding)"))
    # No difference: the QPI never becomes the binding component.
    assert qpi_limit_pps > base.rate_pps
    assert rows[0]["rate_gbps"] == pytest.approx(rows[1]["rate_gbps"])


def test_direct_vs_classic_vlb(benchmark, save_result):
    """Direct VLB cuts the per-node processing factor from ~3R to ~2R on
    uniform matrices while both stay ~3R in the worst case."""

    def run():
        n, rate = 8, 10e9
        out = []
        for name, matrix in (("uniform", uniform_matrix(n, rate)),
                             ("permutation", permutation_matrix(n, rate))):
            for policy in (DirectVlb(), ClassicVlb()):
                analysis = analyze(matrix, rate, policy)
                out.append({"matrix": name, "policy": policy.name,
                            "c_factor": analysis.c_factor(rate),
                            "direct_fraction": analysis.direct_fraction})
        return out

    rows = benchmark(run)
    save_result("ablation_vlb", format_table(
        rows, ["matrix", "policy", "c_factor", "direct_fraction"],
        title="Ablation: Direct vs classic VLB processing factor"))
    table = {(r["matrix"], r["policy"]): r["c_factor"] for r in rows}
    assert table[("uniform", "direct")] < 2.2
    assert table[("uniform", "classic")] > 2.7
    assert table[("permutation", "direct")] > 2.8


def test_flowlet_delta_sweep(benchmark, save_result):
    """Reordering vs the flowlet inactivity threshold delta: too small a
    delta degrades toward per-packet balancing."""

    def run(delta):
        gen = FlowGenerator(num_flows=50, packets_per_flow=160,
                            packet_bytes=740, burst_size=8,
                            burst_gap_sec=1e-4, intra_burst_gap_sec=4e-7,
                            seed=1)
        router = RouteBricksRouter(seed=5)
        sim_router = router
        # Override the flowlet delta on every node.
        sim, nodes = sim_router.build_simulation()
        from repro.core.reordering import ReorderingMeter
        meter = ReorderingMeter()
        for node in nodes:
            node.flowlets.delta_sec = delta
            node.egress_callback = lambda p, now, m=meter: m.observe(p)
        for t, p in gen.timed_packets():
            sim.schedule_at(t, lambda n=nodes[0], p=p: n.ingress(p, 1))
        sim.run()
        return meter.reordered_fraction()

    deltas = [1e-5, 1e-3, cal.FLOWLET_DELTA_SEC]
    fractions = [run(d) for d in deltas]
    benchmark.pedantic(run, args=(cal.FLOWLET_DELTA_SEC,), rounds=1,
                       iterations=1)
    rows = [{"delta_sec": d, "reordered_pct": f * 100}
            for d, f in zip(deltas, fractions)]
    save_result("ablation_flowlet_delta", format_table(
        rows, ["delta_sec", "reordered_pct"],
        title="Ablation: flowlet delta sweep", float_format="%.4f"))
    # A tiny delta (<< path-latency difference) must not beat the default.
    assert fractions[0] >= fractions[-1]


def test_topology_comparison(benchmark, save_result):
    """Mesh < fly < torus in server count, where each is feasible."""

    def run():
        out = []
        for ports in (256, 512, 1024):
            fly = KAryNFly(num_ports=ports, ports_per_server=1, fanout=32)
            torus = Torus(num_ports=ports, ports_per_server=1)
            out.append({"ports": ports, "fly": fly.total_servers(),
                        "torus": torus.total_servers()})
        return out

    rows = benchmark(run)
    save_result("ablation_topology", format_table(
        rows, ["ports", "fly", "torus"],
        title="Ablation: fly vs torus cluster sizes"))
    for row in rows:
        assert row["torus"] > row["fly"]
    mesh = FullMesh(num_ports=32, ports_per_server=1, fanout=32)
    assert mesh.total_servers() == 32  # no intermediates at all


def test_resequencing_alternative(benchmark, save_result):
    """The option the paper rejected (Sec. 6.1): sequence numbers plus
    output-node resequencing kill reordering entirely, but cost buffer
    space and CPU at the output node -- which is why flowlets won."""

    def run():
        gen_args = dict(num_flows=60, packets_per_flow=200, packet_bytes=740,
                        burst_size=8, burst_gap_sec=1e-4,
                        intra_burst_gap_sec=4e-7, seed=1)
        out = []
        for label, kwargs in (
                ("per-packet", dict(use_flowlets=False)),
                ("flowlets", dict(use_flowlets=True)),
                ("resequencer", dict(use_flowlets=False, resequence=True))):
            gen = FlowGenerator(**gen_args)
            report = RouteBricksRouter(seed=3, **kwargs).replay_pair(
                gen.timed_packets())
            out.append({"mode": label,
                        "reordered_pct": report.reordered_fraction * 100,
                        "held_packets": report.resequencer_held,
                        "p99_latency_usec":
                            report.latency_usec.percentile(99)})
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_resequencer", format_table(
        rows, ["mode", "reordered_pct", "held_packets", "p99_latency_usec"],
        title="Ablation: reordering-avoidance alternatives",
        float_format="%.3f"))
    by_mode = {row["mode"]: row for row in rows}
    assert by_mode["resequencer"]["reordered_pct"] == 0.0
    assert by_mode["resequencer"]["held_packets"] > 0
    assert by_mode["flowlets"]["reordered_pct"] < \
        by_mode["per-packet"]["reordered_pct"]


def test_queue_count_sufficiency(benchmark):
    """With m cores, m queues per port let every core read/write any port
    without sharing (Sec. 4.2); fewer queues force sharing."""
    from repro.hw import nehalem_server

    def run():
        enough = nehalem_server(num_ports=4, queues_per_port=8)
        short = nehalem_server(num_ports=4, queues_per_port=2)
        return enough, short

    enough, short = benchmark(run)
    cores = len(enough.cores)
    for port in enough.ports:
        assert port.num_queues >= cores  # one queue per core available
    assert any(port.num_queues < cores for port in short.ports)
