"""Table 1: forwarding rates for the three polling configurations.

Paper: no batching 1.46 Gbps, poll-driven 4.97 Gbps, poll+NIC-driven
9.77 Gbps (64 B packets, all 8 cores).
"""

import pytest

from repro.analysis import format_table, run_experiment


def test_table1(benchmark, save_result):
    result = benchmark(run_experiment, "T1")
    rows = result["rows"]
    save_result("table1_batching", format_table(
        rows, ["kp", "kn", "rate_gbps", "paper_gbps", "cycles_per_packet"],
        title="Table 1: polling configurations (64B minimal forwarding)"))
    for row in rows:
        assert row["rate_gbps"] == pytest.approx(row["paper_gbps"], rel=0.01)
    rates = [row["rate_gbps"] for row in rows]
    assert rates == sorted(rates)  # each batching level helps
