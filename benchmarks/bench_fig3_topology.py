"""Fig. 3: cluster servers required vs external ports, four configurations.

Paper shape: full mesh while fanout allows (up to 32 ports for current
servers, 128 for 20-slot servers), then k-ary n-fly with intermediate
servers (~2 per port at N=1024 on current servers); the Arista-based
switched cluster costs more at every port count.
"""

import pytest

from repro.analysis import format_table, run_experiment
from repro.core.provision import max_mesh_ports, servers_required


def test_fig3(benchmark, save_result):
    result = benchmark(run_experiment, "F3")
    rows = result["rows"]
    save_result("fig3_topology", format_table(
        rows, ["ports", "current", "more-nics", "faster", "switched_equiv",
               "current_kind"],
        title="Fig 3: servers required for an N-port 10Gbps router"))
    # Mesh-to-fly transition points.
    assert max_mesh_ports("current") == 32
    assert max_mesh_ports("more-nics") == 128
    # Switched cluster always costs more (in server equivalents).
    for row in rows:
        assert row["switched_equiv"] > row["current"]
    # ~2 intermediate servers per port at 1024 ports (current servers).
    row_1024 = next(r for r in rows if r["ports"] == 1024)
    assert row_1024["current"] / 1024 == pytest.approx(3.0, rel=0.01)


def test_fig3_server_count_scaling(benchmark):
    """Provisioning math is cheap; benchmark the full sweep."""
    counts = benchmark(lambda: [servers_required(n, "current")
                                for n in (4, 16, 64, 256, 1024, 2048)])
    assert counts == sorted(counts)
