"""Internal consistency: the analytic solver vs the timed simulation.

Not a paper artifact -- this guards the reproduction itself: two
independent implementations of the forwarding story must agree on the
maximum loss-free rate across the batching grid.
"""

from repro.analysis import format_table
from repro.analysis.validation import max_relative_error, validate_forwarding


def test_analytic_vs_des(benchmark, save_result):
    def run():
        return validate_forwarding(
            grid=[(1, 1, 64), (32, 1, 64), (32, 16, 64), (32, 16, 256)],
            tolerance_bps=0.25e9)

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [{"kp": p.kp, "kn": p.kn, "packet_bytes": p.packet_bytes,
             "analytic_gbps": p.analytic_gbps,
             "simulated_gbps": p.simulated_gbps,
             "rel_error": p.relative_error}
            for p in points]
    save_result("validation_grid", format_table(
        rows, ["kp", "kn", "packet_bytes", "analytic_gbps",
               "simulated_gbps", "rel_error"],
        title="Analytic model vs timed DES (max loss-free rate)",
        float_format="%.3f"))
    assert max_relative_error(points) < 0.12
