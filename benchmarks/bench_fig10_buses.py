"""Fig. 10: per-packet load on the system buses vs the empirical bounds.

Paper shape: memory, socket-I/O, PCIe, and inter-socket loads all sit well
below their bounds at each application's saturation rate -- the buses are
not the bottleneck (conclusion 3 of Sec. 5.3).
"""

from repro.analysis import format_table, run_experiment


def test_fig10(benchmark, save_result):
    result = benchmark(run_experiment, "F10")
    rows = result["rows"]
    save_result("fig10_buses", format_table(
        rows, ["application", "component", "load_bytes_per_packet",
               "empirical_bound_at_saturation", "headroom"],
        title="Fig 10: bus loads at saturation (64B)"))
    # All three applications are CPU-bottlenecked...
    assert set(result["bottlenecks"].values()) == {"cpu"}
    # ...and every bus keeps headroom at saturation.
    for row in rows:
        assert row["headroom"] > 1.0, (row["application"], row["component"])
    # Routing stresses memory hardest (random lookups in a 256K table).
    mem = {row["application"]: row["load_bytes_per_packet"]
           for row in rows if row["component"] == "memory"}
    assert mem["routing"] > mem["forwarding"]
