"""Fig. 7: cumulative impact of architecture + multi-queue + batching.

Paper: the tuned Nehalem (multi-queue, batching) forwards 64 B packets
6.7x faster than the unmodified Nehalem and 11x faster than the shared-bus
Xeon.
"""

from repro.analysis import format_table, run_experiment


def test_fig7(benchmark, save_result):
    result = benchmark(run_experiment, "F7")
    rows = result["rows"]
    save_result("fig7_aggregate", format_table(
        rows, ["label", "rate_mpps", "rate_gbps", "speedup_to_final",
               "bottleneck"],
        title="Fig 7: aggregate impact of the design changes (64B)"))
    rates = [row["rate_mpps"] for row in rows]
    assert rates == sorted(rates)  # each change helps
    final, xeon = rates[-1], rates[0]
    assert 9 < final / xeon < 14          # paper: 11x
    base_nehalem = rates[1]
    assert 5.5 < final / base_nehalem < 8.5   # paper: 6.7x
