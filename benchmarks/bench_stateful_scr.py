"""Stateful NF dispatch: locks vs RSS pinning vs State-Compute Replication.

The RouteBricks scaling story assumes the per-packet work is stateless;
this benchmark measures what happens when it is not.  One Zipf-skewed,
churning flow workload (``repro.workloads.SkewedFlowWorkload``) is fed
to the same NAT state machine under the three dispatch strategies of
``repro.stateful.dispatch``, sweeping core count at fixed skew and skew
at fixed core count:

* shared state with locks pays contended acquires and cache-coherence
  transfers that grow with skew;
* RSS flow-pinning is clean but bounded by the hottest core's share,
  which also grows with skew (reported as the *expected* bottleneck,
  averaged over flow-pinning hash placements);
* SCR broadcasts compact per-packet state deltas and replays them on
  every core, so it tracks the stateless ceiling regardless of skew.

All three must leave *identical* per-flow end state -- asserted here on
every cell of the sweep, alongside the acceptance bars (SCR >= 1.5x
locks at 4 cores under skew 1.1; RSS monotonically degrading in skew).
"""

from repro.analysis import format_table
from repro.calibration import NEHALEM_CLOCK_HZ
from repro.costs import DEFAULT_COST_MODEL
from repro.stateful import make_nf, run_strategy
from repro.workloads import SkewedFlowWorkload

SEED = 20090917
NF = "nat"
FLOWS = 512
PACKETS = 12_000
CHURN = 400
CORE_SWEEP = (1, 2, 4)
SKEW_SWEEP = (0.0, 0.6, 1.1, 1.6)
BASE_SKEW = 1.1
#: Flow-pinning hash placements averaged for the RSS columns: one
#: placement's luck (which elephants collide on a core) swamps the skew
#: signal; the mean approximates the expected bottleneck.
RSS_SEEDS = (0xABCD, 0xABCE, 0xABCF)


def _records(skew):
    workload = SkewedFlowWorkload(num_flows=FLOWS, skew=skew,
                                  churn_packets=CHURN, seed=SEED)
    return list(workload.records(PACKETS))


def _rss_mean_mpps(records, cores):
    reports = [run_strategy(make_nf(NF), records, cores, "rss",
                            rss_seed=seed) for seed in RSS_SEEDS]
    return sum(r.throughput_mpps for r in reports) / len(reports), reports


def _stateless_ceiling_mpps(cores):
    """Perfect scaling of the full NF compute with zero sync cost."""
    cycles = DEFAULT_COST_MODEL.state_access_vector(NF).cpu_cycles
    return cores * NEHALEM_CLOCK_HZ / cycles / 1e6


def test_strategy_core_sweep(benchmark, save_result):
    """Strategies head-to-head as cores grow, at skew 1.1."""

    def sweep():
        records = _records(BASE_SKEW)
        rows = []
        summary = {}
        for cores in CORE_SWEEP:
            locks = run_strategy(make_nf(NF), records, cores, "locks")
            scr = run_strategy(make_nf(NF), records, cores, "scr")
            rss_mpps, rss_reports = _rss_mean_mpps(records, cores)
            # The whole point: every strategy computes the same flows.
            assert scr.replicas_identical
            assert scr.end_state == locks.end_state
            for report in rss_reports:
                assert report.end_state == locks.end_state
            rows.append({
                "cores": cores,
                "locks_mpps": locks.throughput_mpps,
                "rss_mpps": rss_mpps,
                "scr_mpps": scr.throughput_mpps,
                "scr_vs_locks": scr.throughput_mpps / locks.throughput_mpps,
                "ceiling_mpps": _stateless_ceiling_mpps(cores),
                "lock_contended": locks.lock_contended,
                "coherence": locks.coherence_transfers,
                "scr_deltas": scr.scr_deltas,
            })
            summary["locks_c%d_mpps" % cores] = locks.throughput_mpps
            summary["rss_c%d_mpps" % cores] = rss_mpps
            summary["scr_c%d_mpps" % cores] = scr.throughput_mpps
        return {"rows": rows, "summary": summary}

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = result["rows"]
    save_result("stateful_core_sweep", format_table(
        rows, ["cores", "locks_mpps", "rss_mpps", "scr_mpps",
               "scr_vs_locks", "ceiling_mpps", "lock_contended",
               "coherence"],
        title="%s dispatch vs cores, skew %.1f, %d flows (+churn)"
        % (NF, BASE_SKEW, FLOWS)))
    by_cores = {row["cores"]: row for row in rows}
    # Acceptance: SCR buys >= 1.5x over shared-state locking at 4 cores.
    assert by_cores[4]["scr_vs_locks"] >= 1.5
    # SCR tracks the stateless ceiling (replay overhead stays small).
    assert by_cores[4]["scr_mpps"] >= 0.75 * by_cores[4]["ceiling_mpps"]
    # On one core the strategies coincide: no contention, no replicas.
    one = by_cores[1]
    assert abs(one["scr_mpps"] - one["rss_mpps"]) / one["rss_mpps"] < 0.1
    # And SCR scales: 4 cores beat 1 core by > 3x.
    assert by_cores[4]["scr_mpps"] / by_cores[1]["scr_mpps"] > 3.0


def test_rss_skew_degradation(benchmark, save_result):
    """RSS decays as skew concentrates load; SCR does not, at 4 cores."""

    def sweep():
        rows = []
        summary = {}
        for skew in SKEW_SWEEP:
            records = _records(skew)
            scr = run_strategy(make_nf(NF), records, 4, "scr")
            locks = run_strategy(make_nf(NF), records, 4, "locks")
            rss_mpps, rss_reports = _rss_mean_mpps(records, 4)
            assert scr.replicas_identical
            assert scr.end_state == locks.end_state
            for report in rss_reports:
                assert report.end_state == locks.end_state
            top = SkewedFlowWorkload.top_share(records)
            rows.append({
                "skew": skew,
                "top_flow_share": top,
                "rss_mpps": rss_mpps,
                "locks_mpps": locks.throughput_mpps,
                "scr_mpps": scr.throughput_mpps,
            })
            key = ("%.1f" % skew).replace(".", "")
            summary["rss_s%s_mpps" % key] = rss_mpps
            summary["scr_s%s_mpps" % key] = scr.throughput_mpps
            summary["locks_s%s_mpps" % key] = locks.throughput_mpps
        return {"rows": rows, "summary": summary}

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = result["rows"]
    save_result("stateful_skew_sweep", format_table(
        rows, ["skew", "top_flow_share", "rss_mpps", "locks_mpps",
               "scr_mpps"],
        title="%s dispatch vs Zipf skew, 4 cores, %d flows (+churn)"
        % (NF, FLOWS)))
    # RSS degrades monotonically as skew grows (expected bottleneck).
    rss_curve = [row["rss_mpps"] for row in rows]
    for previous, current in zip(rss_curve, rss_curve[1:]):
        assert current <= previous
    # SCR is skew-insensitive: the spray never sees flow identity.
    scr_curve = [row["scr_mpps"] for row in rows]
    assert max(scr_curve) - min(scr_curve) < 0.05 * max(scr_curve)
    # Under real skew SCR overtakes pinning.
    by_skew = {row["skew"]: row for row in rows}
    assert by_skew[1.1]["scr_mpps"] > by_skew[1.1]["rss_mpps"]
    assert by_skew[1.6]["scr_mpps"] > by_skew[1.6]["rss_mpps"]
