"""Fig. 9: CPU load (cycles/packet) vs input rate, against the cycle budget.

Paper shape: the per-packet CPU cost is flat in the input rate for all
three applications, and it intersects the "cycles available" curve exactly
at each application's saturation rate -- the CPU is the bottleneck.
"""

import pytest

from repro import calibration as cal
from repro.analysis import format_table, run_experiment
from repro.perfmodel import max_loss_free_rate


def test_fig9(benchmark, save_result):
    result = benchmark(run_experiment, "F9")
    blocks = []
    for app, rows in result["series"].items():
        blocks.append(format_table(
            rows, ["rate_mpps", "cpu_load", "cpu_nominal_bound"],
            title="Fig 9 series: %s (64B)" % app))
    save_result("fig9_cpu", "\n\n".join(blocks))

    for app_name, rows in result["series"].items():
        loads = {row["cpu_load"] for row in rows}
        assert len(loads) == 1  # constant in input rate
        # The load line crosses the bound at the measured saturation rate.
        app = cal.APPLICATIONS[app_name]
        saturation = max_loss_free_rate(app, 64).rate_mpps
        load = next(iter(loads))
        bound_at_saturation = cal.NEHALEM_TOTAL_CYCLES_PER_SEC / (saturation * 1e6)
        assert load == pytest.approx(bound_at_saturation, rel=1e-6)
