"""Sec. 5.3 projections: next-generation (4-socket) server rates.

Paper: 38.8 / 19.9 / 5.8 Gbps for forwarding / routing / IPsec at 64 B
(with routing turning memory-bound), and ~70 Gbps for Abilene forwarding
absent the two-NIC-slot limit.
"""

import pytest

from repro.analysis import format_table, run_experiment


def test_projections(benchmark, save_result):
    result = benchmark(run_experiment, "P1")
    rows = result["rows"]
    save_result("projections", format_table(
        rows, ["application", "projected_gbps", "paper_gbps", "bottleneck"],
        title="Sec 5.3: next-generation server projections (64B)"))
    by_name = {row["application"]: row for row in rows}
    assert by_name["forwarding"]["projected_gbps"] == pytest.approx(
        38.8, rel=0.05)
    assert by_name["routing"]["projected_gbps"] == pytest.approx(
        19.9, rel=0.05)
    assert by_name["ipsec"]["projected_gbps"] == pytest.approx(5.8, rel=0.05)
    # The scaling insight: routing becomes memory-bound (4x CPU, 2x mem).
    assert by_name["routing"]["bottleneck"] == "memory"
    abilene = by_name["forwarding (abilene, no NIC limit)"]
    assert 60 < abilene["projected_gbps"] < 90
