"""Sec. 8 discussion estimates: form factor, power, cost.

Paper reference points: RB4 = 40 Gbps in 4U at 2.6 kW and $14,500 parts;
a 40 Gbps hardware router = 1.6 kW (~60 % less power) at a $70,000 quoted
price; motherboard-integrated controllers allow 1U servers meshing to a
300-400 Gbps router in 30-40U vs the Cisco 7600's 360 Gbps in 21U.
"""

import pytest

from repro.analysis import format_table
from repro.core import discussion


def test_discussion_estimates(benchmark, save_result):
    def run():
        rb4 = discussion.rb4_estimate()
        rows = [
            {"metric": "RB4 capacity (Gbps)", "value": rb4.capacity_gbps,
             "paper": 40},
            {"metric": "RB4 power (kW)", "value": rb4.power_kw,
             "paper": 2.6},
            {"metric": "power overhead vs hardware router",
             "value": discussion.power_overhead_vs_reference(rb4),
             "paper": 0.6},
            {"metric": "cost ratio (hardware price / RB4 parts)",
             "value": discussion.cost_comparison()["ratio"], "paper": 4.8},
        ]
        form = discussion.form_factor_comparison()
        rows.append({"metric": "integrated-NIC cluster (Gbps)",
                     "value": form["cluster_gbps"], "paper": 350})
        rows.append({"metric": "density vs Cisco 7600 (Gbps/U ratio)",
                     "value": form["density_ratio"], "paper": 0.58})
        return rows

    rows = benchmark(run)
    save_result("discussion_sec8", format_table(
        rows, ["metric", "value", "paper"],
        title="Sec 8: form factor, power, cost"))
    by_metric = {row["metric"]: row["value"] for row in rows}
    assert by_metric["power overhead vs hardware router"] == pytest.approx(
        0.625, abs=0.05)
    assert by_metric["cost ratio (hardware price / RB4 parts)"] > 4
    assert 0.4 < by_metric["density vs Cisco 7600 (Gbps/U ratio)"] < 0.8
    # Next-gen servers shrink form factor ~4x (Sec. 8).
    assert discussion.next_gen_form_factor_gain() == pytest.approx(4.0)
