"""Fig. 6: forwarding rates with and without multiple queues.

Paper (64 B, per forwarding path): parallel 1.7 Gbps; pipeline 1.2 (shared
L3) / 0.6 (cross-cache); multi-queue fixes the split scenario by >3x and
restores overlapping paths from 0.7 to 1.7 Gbps.
"""

import pytest

from repro.analysis import format_table, run_experiment
from repro.perfmodel import scenario_rate_gbps


def test_fig6(benchmark, save_result):
    result = benchmark(run_experiment, "F6")
    rows = result["rows"]
    save_result("fig6_queues", format_table(
        rows, ["scenario", "rate_gbps", "paper_gbps", "cores"],
        title="Fig 6: toy forwarding-path scenarios (64B)"))
    assert scenario_rate_gbps("parallel") == pytest.approx(1.7, abs=0.05)
    assert scenario_rate_gbps("pipeline") == pytest.approx(1.2, abs=0.05)
    assert scenario_rate_gbps("pipeline_cross_cache") == pytest.approx(
        0.6, abs=0.05)
    assert scenario_rate_gbps("overlap") == pytest.approx(0.7, abs=0.05)
    assert (scenario_rate_gbps("split_multi_queue")
            / scenario_rate_gbps("split")) > 3.0
