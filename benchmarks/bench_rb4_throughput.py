"""RB4 routing performance (Sec. 6.2).

Paper: 12 Gbps aggregate for 64 B packets (CPU-bound, inside the expected
12.7-19.4 Gbps window minus reordering-avoidance overhead) and 35 Gbps for
the Abilene workload (NIC-limited: ~8.75 Gbps external + ~3 Gbps internal
per NIC).
"""

import pytest

from repro import calibration as cal
from repro.analysis import format_table, run_experiment
from repro.core import RouteBricksRouter


def test_rb4_throughput(benchmark, save_result):
    result = benchmark(run_experiment, "RB4-T")
    rows = result["rows"]
    save_result("rb4_throughput", format_table(
        rows, ["workload", "aggregate_gbps", "paper_gbps", "binding"],
        title="RB4 routing performance (Sec 6.2)"))
    for row in rows:
        assert row["aggregate_gbps"] == pytest.approx(row["paper_gbps"],
                                                      rel=0.02)
    by_name = {row["workload"]: row for row in rows}
    assert by_name["64B"]["binding"] == "cpu"
    assert by_name["abilene"]["binding"] == "nic"


def test_rb4_nic_accounting(benchmark):
    """The Abilene NIC decomposition: external ~8.75 + internal ~3 Gbps."""

    def decompose():
        router = RouteBricksRouter()
        result = router.max_throughput(cal.ABILENE_MEAN_PACKET_BYTES)
        per_port = result.per_port_bps
        internal = per_port / (router.num_nodes - 1)
        return per_port, internal

    per_port, internal = benchmark(decompose)
    assert per_port / 1e9 == pytest.approx(8.75, rel=0.02)
    assert internal / 1e9 == pytest.approx(2.9, rel=0.05)


def test_rb4_64b_expected_window(benchmark):
    """Without reordering-avoidance overhead RB4 sits in the paper's
    expected 12.7-19.4 Gbps window; the overhead brings it to 12."""

    def window():
        plain = RouteBricksRouter(use_flowlets=False).max_throughput(64)
        with_overhead = RouteBricksRouter().max_throughput(64)
        return plain.aggregate_gbps, with_overhead.aggregate_gbps

    plain, with_overhead = benchmark(window)
    assert 12.7 < plain < 19.4
    assert with_overhead == pytest.approx(12.0, rel=0.02)
