"""Shared benchmark fixtures.

Each benchmark regenerates one paper artifact (table or figure), checks the
paper-vs-measured shape, and writes the rendered rows to
``benchmarks/results/<id>.txt`` so the harness leaves inspectable output.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Write a named artifact and echo it to stdout."""

    def _save(name: str, text: str) -> None:
        path = results_dir / (name + ".txt")
        path.write_text(text + "\n")
        print("\n" + text)

    return _save
