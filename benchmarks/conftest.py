"""Shared benchmark fixtures.

Each benchmark regenerates one paper artifact (table or figure), checks the
paper-vs-measured shape, and writes the rendered rows to
``benchmarks/results/<id>.txt`` so the harness leaves inspectable output.

Every test starts from the same RNG state (`_seed_rngs`), so scenario
outputs -- and the ``BENCH_*.json`` scalars :mod:`repro.obs.benchrun`
derives from them -- are bit-identical run to run; only wall-clock
timings vary.  ``repro.obs.benchrun`` applies the same seed when it
drives these files outside pytest.
"""

import pathlib
import random

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Keep in sync with ``repro.obs.benchrun.DEFAULT_SEED``.
BENCH_SEED = 20090917


@pytest.fixture(autouse=True)
def _seed_rngs():
    """Pin every RNG a scenario might consult, per test."""
    random.seed(BENCH_SEED)
    try:
        import numpy
    except ImportError:
        pass
    else:
        numpy.random.seed(BENCH_SEED)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Write a named artifact and echo it to stdout."""

    def _save(name: str, text: str) -> None:
        path = results_dir / (name + ".txt")
        path.write_text(text + "\n")
        print("\n" + text)

    return _save
