"""Live FIB churn: convergence vs update rate, forwarding under updates.

A DFZ router keeps forwarding while its control plane streams BGP
updates into the FIB.  This benchmark runs the ``repro.control`` harness
on a 4-node cluster: a synthetic RIB (the paper's Sec. 5.1 prefix-length
mix) is announced to the :class:`~repro.core.control.ClusterManager`,
initial FIBs are pushed, and then a Poisson update stream (announce /
re-announce / withdraw) is applied on the simulation clock while traffic
forwards through the live per-node ``Dir24_8`` tables -- incremental
insert/remove, never a rebuild.

Measured:

* **convergence vs update rate** -- mean / final lag from an update's
  arrival to every node's FIB reflecting it, at two churn rates
  (timescales are compressed: the DES horizon is milliseconds, so rates
  are scaled up to land tens-to-hundreds of updates per run);
* **forwarding under churn** -- goodput and tail latency with churn on
  vs off; streaming updates must not dent the dataplane.

Acceptance, asserted inline: every run converges (no update left
undistributed), applies updates incrementally (zero rebuilds), leaves
all four FIBs bit-consistent with an independent trie reference, and
forwarding under churn holds >= 90 % of the quiet goodput.  Two runs at
the same seed must be identical to the last field (the DES replays
update application deterministically).
"""

from repro.analysis import format_table
from repro.control import ChurnSchedule, run_churn

SEED = 20090917
NODES = 4
ROUTES = 4_000
DURATION_SEC = 1e-3
LOAD = 0.2
RATES = (100_000.0, 400_000.0)


def _run(rate=None, seed=SEED, schedule=None):
    return run_churn(num_nodes=NODES, routes=ROUTES,
                     update_rate_per_sec=rate or RATES[0],
                     duration_sec=DURATION_SEC, load=LOAD,
                     seed=seed, schedule=schedule)


def test_convergence_vs_rate(benchmark, save_result):
    """Convergence lag as the update rate quadruples."""

    def sweep():
        rows = []
        summary = {}
        for rate in RATES:
            report = _run(rate)
            # Every run must distribute everything it applied,
            # incrementally, and leave consistent tables.
            assert report.unconverged == 0
            assert report.rebuilds == 0
            assert report.consistent
            rows.append({
                "updates_per_sec": rate,
                "applied": report.updates_applied,
                "fib_ops": report.fib_ops,
                "sync_ticks": report.sync_ticks,
                "mean_conv_usec": report.mean_convergence_usec,
                "max_conv_usec": report.max_convergence_sec * 1e6,
                "final_conv_usec": report.final_convergence_usec,
                "fwd_gbps": report.forwarding.delivered_bps / 1e9,
                "p99_usec": report.forwarding.latency_usec.percentile(99),
            })
            key = "r%dk" % (rate / 1000)
            summary["convergence_mean_usec_%s" % key] = \
                report.mean_convergence_usec
            summary["convergence_final_usec_%s" % key] = \
                report.final_convergence_usec
            summary["churn_fwd_gbps_%s" % key] = \
                report.forwarding.delivered_bps / 1e9
        return {"rows": rows, "summary": summary}

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = result["rows"]
    save_result("fib_churn_convergence", format_table(
        rows, ["updates_per_sec", "applied", "fib_ops", "sync_ticks",
               "mean_conv_usec", "max_conv_usec", "final_conv_usec",
               "fwd_gbps", "p99_usec"],
        title="Convergence vs update rate, %d nodes, %d routes"
        % (NODES, ROUTES)))
    for row in rows:
        # The sync tick fires 100 us after the latest unsynced update:
        # convergence is bounded by that control-channel latency (plus
        # batching under bursts), not by table-update cost.
        assert 0.0 < row["mean_conv_usec"] <= 500.0
        assert row["max_conv_usec"] <= 500.0
        # Updates batch onto ticks: more churn, fewer ticks per update.
        assert row["fib_ops"] == row["applied"] * NODES


def test_forwarding_under_churn(benchmark, save_result):
    """Goodput and tail latency, churn on vs off, plus determinism."""

    def compare():
        quiet = _run(schedule=ChurnSchedule([]))
        churned = _run(RATES[1])
        again = _run(RATES[1])
        # Bit-identical replay: the DES applies updates and forwards
        # packets on one deterministic clock.
        assert churned.to_dict() == again.to_dict()
        assert quiet.updates_applied == 0
        assert churned.consistent and quiet.consistent
        rows = []
        for label, report in (("quiet", quiet), ("churn", churned)):
            fwd = report.forwarding
            rows.append({
                "scenario": label,
                "updates": report.updates_applied,
                "delivered": fwd.delivered_packets,
                "fib_miss": fwd.fib_miss_packets,
                "fwd_gbps": fwd.delivered_bps / 1e9,
                "p50_usec": fwd.latency_usec.percentile(50),
                "p99_usec": fwd.latency_usec.percentile(99),
            })
        quiet_gbps = rows[0]["fwd_gbps"]
        churn_gbps = rows[1]["fwd_gbps"]
        summary = {
            "quiet_gbps": quiet_gbps,
            "under_churn_gbps": churn_gbps,
            "churn_goodput_fraction": churn_gbps / quiet_gbps,
        }
        return {"rows": rows, "summary": summary}

    result = benchmark.pedantic(compare, rounds=1, iterations=1)
    rows = result["rows"]
    save_result("fib_churn_forwarding", format_table(
        rows, ["scenario", "updates", "delivered", "fib_miss",
               "fwd_gbps", "p50_usec", "p99_usec"],
        title="Forwarding with and without live churn, %d nodes, "
              "%d routes" % (NODES, ROUTES)))
    summary = result["summary"]
    # Streaming updates must not dent the dataplane: control work is
    # control-plane cycles, not per-packet cost.
    assert summary["churn_goodput_fraction"] >= 0.9
    # Withdrawn routes turn hits into misses -- some loss of delivered
    # traffic is expected, total loss is not.
    assert rows[1]["delivered"] > 0.8 * rows[0]["delivered"]
