"""Latency under load: the M/D/1 curve against the DES.

Quantifies the "relaxed performance guarantees" trade-off (Sec. 2): how
cluster latency departs from the unloaded 47.6-66.4 us figures as
utilization rises, and where a latency budget caps usable load.
"""

import pytest

from repro.analysis import format_table
from repro.core import RouteBricksRouter
from repro.perfmodel.queueing import (
    latency_vs_load_curve,
    utilization_for_latency_budget,
)
from repro.workloads import FlowGenerator


def test_latency_load_curve(benchmark, save_result):
    rows = benchmark(latency_vs_load_curve)
    save_result("latency_under_load", format_table(
        rows, ["utilization", "latency_usec"],
        title="Cluster latency vs per-stage utilization (M/D/1, direct path)"))
    latencies = [row["latency_usec"] for row in rows]
    assert latencies == sorted(latencies)
    # Unloaded matches the Sec. 6.2 direct-path figure.
    assert rows[0]["latency_usec"] == pytest.approx(47.6, abs=0.1)


def test_latency_budget_inversion(benchmark):
    rho = benchmark(utilization_for_latency_budget, 60.0)
    assert 0.5 < rho < 1.0


def test_des_latency_grows_with_load(benchmark, save_result):
    """Simulated median latency at three offered intensities."""

    def run():
        rows = []
        for label, gap in (("light", 6e-4), ("moderate", 2e-4),
                           ("heavy", 1e-4)):
            gen = FlowGenerator(num_flows=50, packets_per_flow=120,
                                packet_bytes=740, burst_size=8,
                                burst_gap_sec=gap,
                                intra_burst_gap_sec=4e-7, seed=2)
            report = RouteBricksRouter(seed=4).replay_pair(
                gen.timed_packets())
            rows.append({"load": label,
                         "p50_usec": report.latency_usec.percentile(50),
                         "p99_usec": report.latency_usec.percentile(99)})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("latency_des_load", format_table(
        rows, ["load", "p50_usec", "p99_usec"],
        title="Simulated cluster latency vs offered load"))
    p50s = [row["p50_usec"] for row in rows]
    assert p50s == sorted(p50s)
