"""Sec. 9 conclusions, quantified.

Paper: servers comfortably host ~8-9 x 1 Gbps ports; a single 10 Gbps
port is nearly served under realistic traffic but falls short for the
worst case; emerging (next-gen) servers close the remaining gap.
"""

import pytest

from repro.analysis import format_table
from repro.core.sizing import conclusion_claims, ports_per_server
from repro.hw.presets import NEHALEM_NEXT_GEN


def test_conclusions(benchmark, save_result):
    claims = benchmark(conclusion_claims)
    rows = [
        {"claim": "1 Gbps ports per server (realistic, 3R guarantee)",
         "measured": claims["ports_1g"], "paper": "8-9"},
        {"claim": "fraction of a 10G line served (realistic)",
         "measured": claims["fraction_of_10g_realistic"],
         "paper": "close to 1"},
        {"claim": "fraction of a 10G line served (worst case)",
         "measured": claims["fraction_of_10g_worst_case"],
         "paper": "short of 1"},
    ]
    save_result("conclusions_sec9", format_table(
        rows, ["claim", "measured", "paper"],
        title="Sec 9 conclusions"))
    assert claims["ports_1g"] in (8, 9)
    assert claims["fraction_of_10g_realistic"] > 0.95
    assert claims["fraction_of_10g_worst_case"] < 0.5


def test_next_gen_closes_the_gap(benchmark):
    """'Emerging servers promise to close the remaining gap to 10 Gbps,
    possibly offering up to 40 Gbps.'"""

    def future():
        return ports_per_server(10e9, workload="worst-case",
                                worst_case_matrix=False,
                                app_name="forwarding",
                                spec=NEHALEM_NEXT_GEN)

    sizing = benchmark(future)
    # The next-gen server serves at least one full worst-case 10 G port
    # (38.8 Gbps capacity against the 2R = 20 Gbps requirement).
    assert sizing.ports >= 1
    assert sizing.processing_capacity_bps / 1e9 == pytest.approx(38.8,
                                                                 rel=0.05)
