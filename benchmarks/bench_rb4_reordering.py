"""RB4 reordering (Sec. 6.2): packet-level simulation of the trace replay.

Paper: replaying the trace through one input/output pair (overloading any
single path) yields 0.15 % reordered sequences with the flowlet extension
vs 5.5 % with plain Direct VLB per-packet balancing.
"""

import pytest

from repro.analysis import format_table
from repro.analysis.experiments import run_rb4_reordering


def test_rb4_reordering(benchmark, save_result):
    result = benchmark.pedantic(run_rb4_reordering, rounds=1, iterations=1)
    rows = result["rows"]
    save_result("rb4_reordering", format_table(
        rows, ["mode", "reordered_pct", "paper_pct", "indirect_pct",
               "delivered"],
        title="RB4 reordering: flowlet extension vs per-packet balancing",
        float_format="%.3f"))
    by_mode = {row["mode"]: row for row in rows}
    # Shape: flowlets cut reordering by more than an order of magnitude.
    assert by_mode["flowlets"]["reordered_pct"] < 1.0
    assert by_mode["per-packet"]["reordered_pct"] > 1.0
    assert (by_mode["per-packet"]["reordered_pct"]
            > 10 * by_mode["flowlets"]["reordered_pct"])
    # Both modes actually exercised indirect paths (the overload worked).
    for row in rows:
        assert row["indirect_pct"] > 5.0
