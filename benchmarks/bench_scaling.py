"""Cluster scaling: the headline claim that capacity grows linearly with
servers (Sec. 1-2), swept across cluster sizes on the analytic model.
"""

import pytest

from repro import calibration as cal
from repro.analysis import format_table
from repro.core import RouteBricksRouter


def test_linear_capacity_scaling(benchmark, save_result):
    def sweep():
        rows = []
        # N >= 4: at N = 2 the single internal port mirrors the whole
        # external rate and the NIC tax dominates (not a regime the
        # paper's linear-scaling claim covers).
        for n in (4, 8, 16, 32):
            router = RouteBricksRouter(num_nodes=n)
            r64 = router.max_throughput(64)
            rab = router.max_throughput(cal.ABILENE_MEAN_PACKET_BYTES)
            rows.append({"nodes": n,
                         "aggregate_64b_gbps": r64.aggregate_gbps,
                         "aggregate_abilene_gbps": rab.aggregate_gbps,
                         "per_port_abilene_gbps": rab.per_port_bps / 1e9})
        return rows

    rows = benchmark(sweep)
    save_result("scaling_cluster", format_table(
        rows, ["nodes", "aggregate_64b_gbps", "aggregate_abilene_gbps",
               "per_port_abilene_gbps"],
        title="Cluster capacity vs size (full mesh, Direct VLB)"))
    # Linearity: aggregate per node stays within a narrow band.
    per_node = [row["aggregate_abilene_gbps"] / row["nodes"] for row in rows]
    assert max(per_node) / min(per_node) < 1.3
    # And absolute growth: 32 nodes carry ~8x what 4 nodes do.
    by_nodes = {row["nodes"]: row["aggregate_abilene_gbps"] for row in rows}
    assert by_nodes[32] / by_nodes[4] == pytest.approx(8.0, rel=0.2)
