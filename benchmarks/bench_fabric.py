"""Fabric-level checks: the Sec. 3.3 latency estimate and fly structure.

Paper: at N = 1024 external ports on current servers, paths cross ~2
intermediate servers plus the two endpoints, ~96 us at 24 us/server.
"""

import pytest

from repro.analysis import format_table
from repro.core.fabric import (
    FabricNetwork,
    fly_graph,
    mesh_graph,
    sec33_latency_estimate,
)


def test_sec33_latency(benchmark, save_result):
    result = benchmark(sec33_latency_estimate, 1024)
    rows = [{"metric": "intermediates/port",
             "measured": result["intermediates_per_port"], "paper": 2.0},
            {"metric": "servers on path",
             "measured": result["servers_on_path"], "paper": 4},
            {"metric": "latency (usec)",
             "measured": result["latency_usec"], "paper": 96.0}]
    save_result("fabric_sec33", format_table(
        rows, ["metric", "measured", "paper"],
        title="Sec 3.3: 1024-port n-fly latency estimate"))
    assert result["latency_usec"] == pytest.approx(96.0)


def test_fly_path_lengths(benchmark):
    """All fly paths traverse exactly stages + 2 servers."""

    def check():
        fabric = FabricNetwork(fly_graph(4, 2))
        hops = {fabric.hops(s, d)
                for s in range(0, 16, 3) for d in range(1, 16, 3) if s != d}
        return hops

    hops = benchmark(check)
    assert hops == {4}  # 2 stages + 2 terminals


def test_mesh_transit_balance(benchmark):
    """Uniform demand loads every mesh node identically (no hot spots --
    the property that lets VLB drop the centralized scheduler)."""

    def check():
        fabric = FabricNetwork(mesh_graph(8))
        loads = fabric.transit_load(10e9)
        return set(round(v) for v in loads.values())

    assert len(benchmark(check)) == 1
