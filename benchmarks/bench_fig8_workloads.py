"""Fig. 8: forwarding rate vs packet size (top) and vs application (bottom).

Paper: 64 B forwarding saturates at 9.7 Gbps (CPU-bound); >=512 B and the
Abilene trace hit the 24.6 Gbps NIC-slot limit; IP routing 6.35 Gbps and
IPsec 1.4 Gbps at 64 B; Abilene rates 24.6 / 24.6 / 4.45 Gbps.
"""

import pytest

from repro.analysis import format_table, run_experiment


def test_fig8(benchmark, save_result):
    result = benchmark(run_experiment, "F8")
    top = format_table(
        result["size_rows"],
        ["packet_bytes", "rate_gbps", "rate_mpps", "bottleneck"],
        title="Fig 8 (top): minimal forwarding vs packet size")
    bottom = format_table(
        result["app_rows"],
        ["application", "rate_64b_gbps", "paper_64b_gbps",
         "rate_abilene_gbps", "paper_abilene_gbps"],
        title="Fig 8 (bottom): per-application rates")
    save_result("fig8_workloads", top + "\n\n" + bottom)

    for row in result["app_rows"]:
        assert row["rate_64b_gbps"] == pytest.approx(row["paper_64b_gbps"],
                                                     rel=0.02)
        assert row["rate_abilene_gbps"] == pytest.approx(
            row["paper_abilene_gbps"], rel=0.02)
    # Small packets are CPU-bound, large ones NIC-bound.
    by_size = {row["packet_bytes"]: row for row in result["size_rows"]}
    assert by_size[64]["bottleneck"] == "cpu"
    assert by_size[1024]["bottleneck"] == "nic"
