"""Table 2: nominal vs empirical component capacity bounds.

Paper: memory 410/262 Gbps, inter-socket 200/144.34 Gbps, socket-I/O
400/117 Gbps, PCIe 64/50.8 Gbps; empirical bounds come from stress
benchmarks (the memory one is the random-access stream, executed here).
"""

import pytest

from repro.analysis import format_table, run_experiment
from repro.hw.presets import NEHALEM
from repro.perfmodel.bounds import stream_benchmark_bps


def test_table2(benchmark, save_result):
    result = benchmark(run_experiment, "T2")
    rows = result["rows"]
    save_result("table2_bounds", format_table(
        rows, ["component", "nominal", "empirical", "unit"],
        title="Table 2: component capacity upper bounds"))
    by_name = {row["component"]: row for row in rows}
    assert by_name["memory"]["nominal"] == pytest.approx(410)
    assert by_name["memory"]["empirical"] == pytest.approx(262)
    assert by_name["pcie"]["empirical"] == pytest.approx(50.8)
    for row in rows:
        assert row["empirical"] <= row["nominal"]


def test_stream_benchmark(benchmark):
    """The random-access stream stress benchmark itself."""
    measured = benchmark(stream_benchmark_bps, NEHALEM, 16, 50_000)
    assert measured == pytest.approx(262e9)
