"""IMIX workloads: rate-vs-mixture surface for each application.

Complements Fig. 8's fixed-size and Abilene points with the standard
Internet-mix workloads used in router benchmarking.
"""

import pytest

from repro import calibration as cal
from repro.analysis import format_table
from repro.perfmodel import max_loss_free_rate
from repro.workloads.imix import MIXES, imix_rate_gbps, mix_mean_bytes


def test_imix_rates(benchmark, save_result):
    def sweep():
        rows = []
        for mix_name in sorted(MIXES):
            row = {"mix": mix_name,
                   "mean_bytes": mix_mean_bytes(MIXES[mix_name])}
            for app in ("forwarding", "routing", "ipsec"):
                row[app + "_gbps"] = imix_rate_gbps(app, mix_name)
            rows.append(row)
        return rows

    rows = benchmark(sweep)
    save_result("imix_rates", format_table(
        rows, ["mix", "mean_bytes", "forwarding_gbps", "routing_gbps",
               "ipsec_gbps"],
        title="Loss-free rates under IMIX mixtures"))
    by_mix = {row["mix"]: row for row in rows}
    # The minimum mix reproduces the 64 B worst case exactly.
    assert by_mix["minimum"]["forwarding_gbps"] == pytest.approx(9.77,
                                                                 rel=0.01)
    # Richer mixes always help; ordering by mean size holds per app.
    for app in ("forwarding_gbps", "routing_gbps", "ipsec_gbps"):
        ordered = sorted(rows, key=lambda r: r["mean_bytes"])
        values = [row[app] for row in ordered]
        assert values == sorted(values)
