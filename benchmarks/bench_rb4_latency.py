"""RB4 latency (Sec. 6.2): model endpoints and simulated distribution.

Paper: ~24 us per server (4 DMA transfers + batch wait + processing);
47.6-66.4 us through the cluster (2-3 hops).  Reference: 26.3 us measured
on a Cisco 6500 (Papagiannaki et al.).
"""

import pytest

from repro.analysis import format_table, run_experiment
from repro.core import RouteBricksRouter
from repro.core.latency import latency_range_usec
from repro.workloads import FlowGenerator


def test_rb4_latency_model(benchmark, save_result):
    result = benchmark(run_experiment, "RB4-L")
    rows = result["rows"]
    save_result("rb4_latency", format_table(
        rows, ["metric", "measured_usec", "paper_usec"],
        title="RB4 latency (Sec 6.2)"))
    for row in rows:
        assert row["measured_usec"] == pytest.approx(row["paper_usec"],
                                                     rel=0.02)


def test_rb4_latency_distribution(benchmark, save_result):
    """Simulated end-to-end latency under moderate load: the distribution
    straddles the direct/indirect model endpoints plus queueing."""

    def simulate():
        gen = FlowGenerator(num_flows=40, packets_per_flow=150,
                            packet_bytes=740, burst_size=8,
                            burst_gap_sec=1.5e-4, intra_burst_gap_sec=4e-7,
                            seed=2)
        router = RouteBricksRouter(seed=7)
        return router.replay_pair(gen.timed_packets())

    report = benchmark.pedantic(simulate, rounds=1, iterations=1)
    direct, indirect = latency_range_usec()
    hist = report.latency_usec
    rows = [{"percentile": p, "latency_usec": hist.percentile(p)}
            for p in (1, 25, 50, 75, 99)]
    save_result("rb4_latency_distribution", format_table(
        rows, ["percentile", "latency_usec"],
        title="RB4 simulated latency distribution (usec)"))
    assert hist.min() >= direct - 0.5
    assert direct <= hist.percentile(50) <= indirect + 40
