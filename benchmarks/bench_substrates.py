"""Micro-benchmarks of the functional substrates.

Not paper artifacts -- these measure the reproduction's own building
blocks (LPM lookups, AES, checksums, DES event throughput) so regressions
in the substrate code are visible.
"""

import random

import pytest

from repro.crypto import AES128
from repro.net import Packet, internet_checksum
from repro.routing import Dir24_8, generate_rib
from repro.routing.rib_gen import random_destinations
from repro.simnet import Link, Simulator


@pytest.fixture(scope="module")
def rib():
    return generate_rib(num_entries=20_000, seed=1)


@pytest.fixture(scope="module")
def destinations(rib):
    return random_destinations(5_000, rib, seed=2)


def test_dir24_8_lookup_throughput(benchmark, rib, destinations):
    def lookup_all():
        table = rib
        hits = 0
        for dst in destinations:
            if table.lookup(dst) is not None:
                hits += 1
        return hits

    hits = benchmark(lookup_all)
    assert hits == len(destinations)


def test_trie_lookup_throughput(benchmark, destinations):
    from repro.routing import RoutingTable
    slow = generate_rib(num_entries=2_000, seed=1,
                        table=RoutingTable(engine="trie"))
    dests = random_destinations(1_000, slow, seed=3)

    def lookup_all():
        return sum(1 for d in dests if slow.lookup(d) is not None)

    assert benchmark(lookup_all) == len(dests)


def test_dir24_8_update_throughput(benchmark):
    from repro.net.addresses import Prefix

    def churn():
        table = Dir24_8()
        rng = random.Random(0)
        prefixes = []
        for i in range(300):
            prefix = Prefix.from_address(rng.getrandbits(32),
                                         rng.randint(8, 28))
            table.insert(prefix, i + 1)
            prefixes.append(prefix)
        removed = 0
        for prefix in prefixes[:150]:
            try:
                table.remove(prefix)
                removed += 1
            except Exception:
                pass
        return removed

    assert benchmark(churn) > 100


def test_aes_block_throughput(benchmark):
    cipher = AES128(b"\x07" * 16)
    block = b"\x42" * 16

    def encrypt_many():
        out = block
        for _ in range(50):
            out = cipher.encrypt_block(out)
        return out

    out = benchmark(encrypt_many)
    # Invert to prove correctness survived the speed run.
    for _ in range(50):
        out = cipher.decrypt_block(out)
    assert out == block


def test_checksum_throughput(benchmark):
    payload = bytes(range(256)) * 6  # 1536 B

    def checksum_many():
        total = 0
        for _ in range(100):
            total ^= internet_checksum(payload)
        return total

    benchmark(checksum_many)


def test_des_event_throughput(benchmark):
    def run_sim():
        sim = Simulator()
        delivered = []
        link = Link(sim, "l", rate_bps=10e9,
                    deliver=lambda p: delivered.append(p))
        for i in range(2_000):
            sim.schedule(i * 1e-7,
                         lambda: link.send(Packet.udp("1.1.1.1", "2.2.2.2")))
        sim.run()
        return len(delivered)

    assert benchmark(run_sim) == 2_000


def test_fib_aggregation(benchmark):
    """ORTC-lite aggregation over a synthetic RIB: shrink + equivalence."""
    from repro.routing.aggregate import aggregate_table

    table = generate_rib(num_entries=1_500, num_ports=2, seed=8)

    def run():
        compact, stats = aggregate_table(table)
        return compact, stats

    compact, stats = benchmark.pedantic(run, rounds=3, iterations=1)
    assert stats["aggregated_routes"] <= stats["original_routes"]
    probes = random_destinations(300, table, seed=9)
    assert all(compact.lookup(p) == table.lookup(p) for p in probes)


def test_fragmentation_throughput(benchmark):
    from repro.net.fragment import Reassembler, fragment_packet

    packet = Packet.udp("10.0.0.1", "10.0.0.2", length=14 + 20 + 2800,
                        payload=b"\x55" * 2780)

    def round_trip():
        reassembler = Reassembler()
        count = 0
        for _ in range(50):
            whole = None
            for fragment in fragment_packet(packet, mtu=1000):
                result = reassembler.offer(fragment)
                if result is not None:
                    whole = result
            count += whole is not None
        return count

    assert benchmark(round_trip) == 50


def test_fib_churn_throughput(benchmark):
    """BGP-style update stream against the DIR-24-8 FIB."""
    from repro.workloads.churn import ChurnGenerator

    def churn():
        table = generate_rib(num_entries=2_000, seed=4)
        gen = ChurnGenerator(table, seed=5)
        stats = gen.apply(500)
        return stats

    stats = benchmark.pedantic(churn, rounds=3, iterations=1)
    assert stats["withdraw_misses"] == 0
    assert stats["announced"] + stats["reannounced"] + stats["withdrawn"] == 500


def test_pcap_round_trip_throughput(benchmark, tmp_path):
    from repro.workloads import AbileneTrace
    from repro.workloads.pcapio import load_trace, save_trace

    path = str(tmp_path / "bench.pcap")

    def round_trip():
        trace = AbileneTrace(seed=6)
        save_trace(path, trace.timed_packets(1_000, rate_bps=10e9))
        return sum(1 for _ in load_trace(path))

    assert benchmark(round_trip) == 1_000


def test_packet_serialization_throughput(benchmark):
    def round_trip_many():
        count = 0
        for _ in range(200):
            packet = Packet.udp("10.0.0.1", "10.0.0.2", length=512)
            again = Packet.unpack(packet.pack())
            count += again.length
        return count

    assert benchmark(round_trip_many) == 200 * 512
