"""Rate-limited point-to-point links.

A :class:`Link` models a full-duplex cable direction: serialization at the
link rate, fixed propagation delay, and a bounded output queue.  Internal
cluster links (server NIC port to server NIC port) and external lines both
use this.
"""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigurationError
from ..net.packet import Packet
from .engine import Simulator
from .queues import FiniteQueue


class Link:
    """One direction of a cable between two nodes.

    Packets offered while the link is busy wait in a bounded FIFO; overflow
    is dropped (and counted).  Delivery invokes ``deliver`` at the far end
    after serialization + propagation.
    """

    def __init__(self, sim: Simulator, name: str, rate_bps: float,
                 deliver: Callable[[Packet], None],
                 propagation_sec: float = 1e-6,
                 queue_packets: int = 1024):
        if rate_bps <= 0:
            raise ConfigurationError("link rate must be positive")
        if propagation_sec < 0:
            raise ConfigurationError("propagation delay cannot be negative")
        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.deliver = deliver
        self.propagation_sec = propagation_sec
        self.queue = FiniteQueue(queue_packets, name=name + ".q")
        self.busy = False
        self.stalled = False
        self.bytes_sent = 0
        self.packets_sent = 0

    def serialization_time(self, packet: Packet) -> float:
        """Seconds to clock ``packet`` onto the wire."""
        return packet.length * 8 / self.rate_bps

    def send(self, packet: Packet) -> bool:
        """Offer a packet to the link; False if the queue overflowed."""
        if not self.queue.offer(packet):
            return False
        if not self.busy:
            self._start_next()
        return True

    def _start_next(self) -> None:
        if self.stalled:
            # A stalled transmit queue (e.g. a wedged NIC ring): packets
            # keep queueing -- and overflowing -- until resume().
            self.busy = False
            return
        packet = self.queue.poll()
        if packet is None:
            self.busy = False
            return
        self.busy = True
        tx_time = self.serialization_time(packet)
        self.bytes_sent += packet.length
        self.packets_sent += 1
        # Wheel timers: link completions are high-rate, homogeneous, and
        # never cancelled, so they bypass the heap entirely.
        self.sim.schedule_timer(tx_time, self._finish_tx)
        self._schedule_delivery(packet, tx_time)

    def _schedule_delivery(self, packet: Packet, tx_time: float) -> None:
        """Hand the serialized packet to the far end after propagation.

        Subclasses that terminate at a partition boundary (see
        :class:`repro.simnet.partition.CrossLink`) override this to emit a
        transit record instead of scheduling on a peer; queueing,
        serialization, stalls, and flush semantics above stay shared.
        """
        self.sim.schedule_timer(tx_time + self.propagation_sec,
                                lambda p=packet: self.deliver(p))

    def _finish_tx(self) -> None:
        self._start_next()

    def stall(self, duration_sec: float) -> None:
        """Stop draining the transmit queue for ``duration_sec``.

        In-flight serialization finishes; queued packets wait (or
        overflow).  Models a NIC transmit-queue stall.
        """
        if duration_sec <= 0:
            raise ConfigurationError("stall duration must be positive")
        self.stalled = True
        self.sim.schedule(duration_sec, self.resume)

    def resume(self) -> None:
        """Restart transmission after a stall (idempotent)."""
        if not self.stalled:
            return
        self.stalled = False
        if not self.busy:
            self._start_next()

    def flush(self) -> int:
        """Discard everything queued (a cut cable); returns the count."""
        dropped = 0
        while True:
            packet = self.queue.poll()
            if packet is None:
                return dropped
            dropped += 1

    def utilization(self, elapsed_sec: float) -> float:
        """Fraction of link capacity used over ``elapsed_sec``."""
        if elapsed_sec <= 0:
            raise ValueError("elapsed time must be positive")
        return self.bytes_sent * 8 / (self.rate_bps * elapsed_sec)

    def queued_bits(self) -> int:
        """Bits currently waiting (used by the flowlet spreader's local
        load estimate)."""
        return sum(p.length * 8 for p in self.queue._items)
