"""Event queue and simulated clock.

A classic calendar-based DES core: events are (time, sequence, callback)
triples; ties break by insertion order so runs are deterministic for a
given seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering is (time, seq)."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when dequeued."""
        self.cancelled = True


class PeriodicTask:
    """Handle for a :meth:`Simulator.schedule_every` chain."""

    def __init__(self):
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """A discrete-event simulator with a monotonically advancing clock.

    ``metrics`` (or the active :mod:`repro.obs` registry, when enabled)
    receives a ``sim_events`` timeline of executed events -- the event-
    rate trajectory bottleneck reports bin everything else against.
    When the registry carries a :class:`~repro.obs.profile.SpanProfiler`
    the engine also resets its span stack at each event boundary, so
    frames pushed by one callback can never leak into the next.  Both
    hooks are resolved once at construction so an un-instrumented run
    pays a single ``is None`` check per event.
    """

    def __init__(self, metrics=None):
        from ..obs.metrics import active_registry
        self._heap = []
        self._seq = itertools.count()
        self.now = 0.0
        self.events_run = 0
        registry = metrics if metrics is not None else active_registry()
        self._obs_events = (registry.timeline("sim_events")
                            if registry.enabled else None)
        self._profiler = registry.profiler if registry.enabled else None

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError("cannot schedule into the past (delay=%r)"
                                  % delay)
        event = Event(time=self.now + delay, seq=next(self._seq),
                      callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulation ``time``."""
        if time < self.now:
            raise SimulationError(
                "cannot schedule at %r, clock already at %r" % (time, self.now))
        event = Event(time=time, seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_every(self, interval: float, callback: Callable[[], None],
                       until: Optional[float] = None,
                       start_delay: Optional[float] = None) -> "PeriodicTask":
        """Run ``callback`` every ``interval`` seconds (heartbeats, health
        probes).  Rescheduling stops after ``until`` (absolute time) or
        once the returned task's :meth:`~PeriodicTask.cancel` is called.
        """
        if interval <= 0:
            raise SimulationError("interval must be positive")
        task = PeriodicTask()

        def tick():
            if task.cancelled:
                return
            callback()
            if until is None or self.now + interval <= until:
                self.schedule(interval, tick)

        first_delay = interval if start_delay is None else start_delay
        self.schedule(first_delay, tick)
        return task

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Run the next event.  Returns False when no events remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            if self._profiler is not None:
                self._profiler.begin_event()
            event.callback()
            self.events_run += 1
            if self._obs_events is not None:
                self._obs_events.record(self.now)
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the horizon, event budget, or queue exhaustion.

        ``until`` advances the clock to exactly that time even if the queue
        drains earlier, so rate computations over a fixed window are exact.
        """
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                return
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            self.step()
            executed += 1
        if until is not None and self.now < until:
            self.now = until
