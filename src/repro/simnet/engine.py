"""Event queue and simulated clock.

A classic calendar-based DES core: events are ``[time, seq, callback]``
list entries; ties break by insertion order so runs are deterministic
for a given seed.

The hot path is built around three ideas:

* **Slim heap entries.**  Entries are plain three-element lists, so
  ``heapq`` orders them with C-level list comparison -- no dataclass
  ``__lt__`` dispatch, no attribute chasing.  :class:`Event` is only a
  thin handle wrapped around the entry for callers that need to cancel.
* **O(1) cancellation with compaction.**  ``Event.cancel()`` blanks the
  entry's callback slot in place (lazy deletion).  Dead entries are
  skipped when they surface; when they outnumber live ones the heap is
  compacted, so cancellations cannot accumulate unboundedly.
* **A bucketed near-future event wheel.**  High-rate homogeneous timers
  (poll loops, NIC DMA ticks, link serialization) go through
  :meth:`Simulator.schedule_timer`, which files them into per-quantum
  mini-heap buckets instead of the main heap.  Most such timers land a
  fixed small delay ahead of ``now``, so each bucket stays tiny and the
  wheel replaces ``O(log n)`` heap churn with near-``O(1)`` dict pushes.
  The run loop merges the wheel head and the heap head by ``(time,
  seq)``, so global execution order is exactly what a single heap would
  produce.
"""

from __future__ import annotations

import itertools
from heapq import heapify, heappop, heappush
from time import perf_counter
from typing import Callable, Optional

from ..errors import SimulationError

_INF = float("inf")

#: Callback-slot sentinel marking an entry that already executed, so a
#: late ``cancel()`` on its handle is a no-op instead of a miscount.
_RAN = object()

#: Start compacting only past this many dead entries (tiny heaps are
#: cheaper to scan than to rebuild).
_COMPACT_MIN = 64


class Event:
    """Handle for one scheduled callback.  Ordering is (time, seq).

    The handle wraps the engine's mutable ``[time, seq, callback]`` heap
    entry; :meth:`cancel` invalidates the entry in place (O(1)), leaving
    removal to the engine's lazy-deletion sweep.
    """

    __slots__ = ("_sim", "_entry")

    def __init__(self, sim: "Simulator", entry: list):
        self._sim = sim
        self._entry = entry

    @property
    def time(self) -> float:
        return self._entry[0]

    @property
    def seq(self) -> int:
        return self._entry[1]

    @property
    def callback(self) -> Optional[Callable[[], None]]:
        slot = self._entry[2]
        return None if slot is None or slot is _RAN else slot

    @property
    def cancelled(self) -> bool:
        return self._entry[2] is None

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when dequeued."""
        entry = self._entry
        slot = entry[2]
        if slot is None or slot is _RAN:
            return
        entry[2] = None
        sim = self._sim
        sim._dead += 1
        if sim._dead > _COMPACT_MIN and sim._dead * 2 > len(sim._heap):
            sim._compact()


class PeriodicTask:
    """Handle for a :meth:`Simulator.schedule_every` chain."""

    def __init__(self):
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """A discrete-event simulator with a monotonically advancing clock.

    ``metrics`` (or the active :mod:`repro.obs` registry, when enabled)
    receives a ``sim_events`` timeline of executed events -- the event-
    rate trajectory bottleneck reports bin everything else against --
    plus an ``engine_wall_seconds`` counter of real time spent inside
    :meth:`run` (the ``wall_clock_s`` BENCH field).  When the registry
    carries a :class:`~repro.obs.profile.SpanProfiler` the engine also
    resets its span stack at each event boundary, so frames pushed by
    one callback can never leak into the next.  All hooks are resolved
    once at construction and :meth:`run` dispatches to a pre-bound loop,
    so an un-instrumented run pays nothing per event for observability.
    """

    def __init__(self, metrics=None):
        from ..obs.metrics import active_registry
        self._heap = []
        self._dead = 0
        # Event wheel: bucket index -> mini-heap of entries, plus a
        # min-heap of live bucket indices.  The quantum is learned from
        # the first positive schedule_timer delay (deterministic).
        self._buckets = {}
        self._bucket_keys = []
        self._quantum = 0.0
        self._seq = itertools.count()
        self.now = 0.0
        self.events_run = 0
        #: Real seconds spent inside :meth:`run` (accumulates).
        self.wall_clock_s = 0.0
        registry = metrics if metrics is not None else active_registry()
        if registry.enabled:
            self._obs_events = registry.timeline("sim_events")
            self._obs_record = self._obs_events.bind()
            self._obs_wall = registry.counter(
                "engine_wall_seconds",
                help="real time spent inside Simulator.run")
            self._profiler = registry.profiler
        else:
            self._obs_events = None
            self._obs_record = None
            self._obs_wall = None
            self._profiler = None

    # -- scheduling --------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError("cannot schedule into the past (delay=%r)"
                                  % delay)
        entry = [self.now + delay, next(self._seq), callback]
        heappush(self._heap, entry)
        return Event(self, entry)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulation ``time``."""
        if time < self.now:
            raise SimulationError(
                "cannot schedule at %r, clock already at %r" % (time, self.now))
        entry = [time, next(self._seq), callback]
        heappush(self._heap, entry)
        return Event(self, entry)

    def schedule_timer(self, delay: float,
                       callback: Callable[[], None]) -> None:
        """Schedule a fire-and-forget callback ``delay`` seconds from now.

        The fast path for high-rate homogeneous timers: the event lands
        in the bucketed near-future wheel instead of the main heap and
        no handle is returned, so it cannot be cancelled.  Execution
        order relative to heap events is still globally (time, seq).
        """
        if delay < 0:
            raise SimulationError("cannot schedule into the past (delay=%r)"
                                  % delay)
        time = self.now + delay
        quantum = self._quantum
        if quantum == 0.0:
            if delay <= 0.0:
                # No timescale known yet: the heap is always correct.
                heappush(self._heap, [time, next(self._seq), callback])
                return
            self._quantum = quantum = delay
        index = int(time / quantum)
        bucket = self._buckets.get(index)
        if bucket is None:
            self._buckets[index] = [[time, next(self._seq), callback]]
            heappush(self._bucket_keys, index)
        else:
            heappush(bucket, [time, next(self._seq), callback])

    def schedule_timer_at(self, time: float,
                          callback: Callable[[], None]) -> None:
        """Absolute-time variant of :meth:`schedule_timer` (bulk arrival
        injection)."""
        now = self.now
        if time < now:
            raise SimulationError(
                "cannot schedule at %r, clock already at %r" % (time, now))
        quantum = self._quantum
        if quantum == 0.0:
            if time <= now:
                heappush(self._heap, [time, next(self._seq), callback])
                return
            self._quantum = quantum = time - now
        index = int(time / quantum)
        bucket = self._buckets.get(index)
        if bucket is None:
            self._buckets[index] = [[time, next(self._seq), callback]]
            heappush(self._bucket_keys, index)
        else:
            heappush(bucket, [time, next(self._seq), callback])

    def preschedule_timers(self, times, callback: Callable[[], None]) -> None:
        """Bulk-file fire-and-forget callbacks at ascending absolute times.

        The batch arrival path schedules an entire run's worth of
        identical arrival events up front, before :meth:`run` starts, so
        the measured loop never pays ``schedule_timer`` per event.
        ``times`` must be sorted ascending and at/after the current
        clock; each entry gets a fresh sequence number in list order, so
        execution order is exactly what per-event ``schedule_timer``
        calls at those times would have produced.  Appending in
        ascending time order keeps every bucket a valid min-heap without
        a single ``heappush``.
        """
        if not len(times):
            return
        now = self.now
        if times[0] < now:
            raise SimulationError(
                "cannot schedule at %r, clock already at %r"
                % (times[0], now))
        if self._quantum == 0.0:
            if times[0] > now:
                self._quantum = times[0] - now
            elif len(times) > 1 and times[1] > times[0]:
                self._quantum = times[1] - times[0]
            else:
                for time in times:
                    self.schedule_timer_at(time, callback)
                return
        quantum = self._quantum
        seq = self._seq
        buckets = self._buckets
        bucket_keys = self._bucket_keys
        bucket = None
        bucket_index = None
        fresh = False
        new_keys = []
        for time in times:
            index = int(time / quantum)
            if index != bucket_index:
                bucket_index = index
                bucket = buckets.get(index)
                fresh = bucket is None
                if fresh:
                    bucket = buckets[index] = []
                    new_keys.append(index)
            if fresh:
                # Ascending appends into a fresh bucket keep the list
                # sorted, and a sorted list is a valid min-heap.
                bucket.append([time, next(seq), callback])
            else:
                # Pre-existing bucket with arbitrary entries: real push.
                heappush(bucket, [time, next(seq), callback])
        if bucket_keys:
            for index in new_keys:
                heappush(bucket_keys, index)
        else:
            bucket_keys.extend(new_keys)  # ascending: already a heap

    def timer_filer(self) -> Callable[[float, Callable[[], None]], None]:
        """A prebound ``file_at(time, callback)`` closure over the wheel.

        The batch runners schedule one successor timer per poll from the
        innermost loop; this closure is :meth:`schedule_timer_at` minus
        per-call attribute chasing and validation.  The caller must pass
        ``time >= now`` (poll delays are always positive).  Falls back to
        the full method while the quantum is still unknown -- the first
        absolute-time call through that path learns it.
        """
        quantum = self._quantum
        if quantum == 0.0:
            return self.schedule_timer_at
        seq = self._seq
        buckets = self._buckets
        keys = self._bucket_keys
        get = buckets.get

        def file_at(time: float, callback: Callable[[], None]) -> None:
            entry = [time, next(seq), callback]
            index = int(time / quantum)
            bucket = get(index)
            if bucket is None:
                buckets[index] = [entry]
                heappush(keys, index)
            else:
                heappush(bucket, entry)
        return file_at

    def schedule_every(self, interval: float, callback: Callable[[], None],
                       until: Optional[float] = None,
                       start_delay: Optional[float] = None) -> "PeriodicTask":
        """Run ``callback`` every ``interval`` seconds (heartbeats, health
        probes).  Rescheduling stops after ``until`` (absolute time) or
        once the returned task's :meth:`~PeriodicTask.cancel` is called.

        Tick ``k`` fires at exactly ``start + k * interval`` -- computed
        from an integer tick index against the task's start time, never
        by repeatedly adding ``interval`` to the current clock, so
        long-horizon periodic timers stay on the grid instead of
        accumulating float rounding drift.
        """
        if interval <= 0:
            raise SimulationError("interval must be positive")
        task = PeriodicTask()
        first_delay = interval if start_delay is None else start_delay
        start = self.now + first_delay
        ticks = itertools.count(1)

        def tick():
            if task.cancelled:
                return
            callback()
            next_time = start + next(ticks) * interval
            if until is None or next_time <= until:
                self.schedule_at(next_time, tick)

        self.schedule(first_delay, tick)
        return task

    # -- queue maintenance -------------------------------------------------

    def _compact(self) -> None:
        """Drop cancelled entries and rebuild the heap (amortized O(n))."""
        self._heap = [entry for entry in self._heap if entry[2] is not None]
        heapify(self._heap)
        self._dead = 0

    def _prune_dead_head(self) -> None:
        heap = self._heap
        while heap and heap[0][2] is None:
            heappop(heap)
            self._dead -= 1

    def _wheel_pop(self):
        """Pop the wheel's earliest entry (caller checked it is wanted)."""
        keys = self._bucket_keys
        bucket = self._buckets[keys[0]]
        entry = heappop(bucket)
        if not bucket:
            del self._buckets[keys[0]]
            heappop(keys)
        return entry

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None if the queue is empty."""
        self._prune_dead_head()
        heap = self._heap
        if self._bucket_keys:
            wheel_time = self._buckets[self._bucket_keys[0]][0][0]
            if heap and heap[0][0] <= wheel_time:
                return heap[0][0]
            return wheel_time
        return heap[0][0] if heap else None

    # -- execution ---------------------------------------------------------

    def step(self) -> bool:
        """Run the next event.  Returns False when no events remain."""
        self._prune_dead_head()
        heap = self._heap
        if self._bucket_keys:
            wheel_entry = self._buckets[self._bucket_keys[0]][0]
            if heap and heap[0] < wheel_entry:
                entry = heappop(heap)
                callback = entry[2]
                entry[2] = _RAN
            else:
                entry = self._wheel_pop()
                callback = entry[2]
        elif heap:
            entry = heappop(heap)
            callback = entry[2]
            entry[2] = _RAN
        else:
            return False
        self.now = entry[0]
        if self._profiler is not None:
            self._profiler.begin_event()
        callback()
        self.events_run += 1
        if self._obs_record is not None:
            self._obs_record(self.now)
        return True

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the horizon, event budget, or queue exhaustion.

        ``until`` advances the clock to exactly that time even if the
        queue drains -- or the event budget is exhausted -- earlier, so
        rate computations over a fixed window are exact.
        """
        horizon = _INF if until is None else until
        budget = _INF if max_events is None else max_events
        start = perf_counter()
        try:
            if self._obs_record is not None or self._profiler is not None:
                self._run_instrumented(horizon, budget)
            else:
                self._run_plain(horizon, budget)
        finally:
            elapsed = perf_counter() - start
            self.wall_clock_s += elapsed
            if self._obs_wall is not None:
                self._obs_wall.inc(elapsed)
        if until is not None and self.now < until:
            self.now = until

    def _run_plain(self, horizon: float, budget: float) -> None:
        """Merged heap+wheel loop with every hot name bound to a local."""
        heap = self._heap
        buckets = self._buckets
        keys = self._bucket_keys
        pop = heappop
        executed = 0
        try:
            while executed < budget:
                while heap and heap[0][2] is None:
                    pop(heap)
                    self._dead -= 1
                if keys:
                    bucket = buckets[keys[0]]
                    entry = bucket[0]
                    if heap and heap[0] < entry:
                        entry = heap[0]
                        if entry[0] > horizon:
                            return
                        pop(heap)
                        callback = entry[2]
                        entry[2] = _RAN
                    else:
                        if entry[0] > horizon:
                            return
                        pop(bucket)
                        if not bucket:
                            del buckets[keys[0]]
                            pop(keys)
                        callback = entry[2]
                elif heap:
                    entry = heap[0]
                    if entry[0] > horizon:
                        return
                    pop(heap)
                    callback = entry[2]
                    entry[2] = _RAN
                else:
                    return
                self.now = entry[0]
                callback()
                executed += 1
        finally:
            self.events_run += executed

    def _run_instrumented(self, horizon: float, budget: float) -> None:
        """Same loop with the observability hooks inlined (no per-event
        attribute chasing or closure calls; the ``is None`` checks ran
        once, here).  The span-stack reset and the ``sim_events``
        timeline's bin update are open-coded: both touch stable objects
        (the profiler's stack list, the timeline's bin dict), so binding
        them once is exactly equivalent to calling per event."""
        heap = self._heap
        buckets = self._buckets
        keys = self._bucket_keys
        pop = heappop
        profiler = self._profiler
        # Truthiness doubles as the None check: an empty stack and a
        # missing profiler both skip the clear.
        prof_stack = profiler._stack if profiler is not None else None
        record = self._obs_record
        timeline = self._obs_events
        bin_sec = timeline.bin_sec if timeline is not None else 1.0
        # Bin dict of the unlabeled sim_events series; resolved after the
        # first record() so series creation stays as lazy as before.
        ebins = None
        executed = 0
        try:
            while executed < budget:
                while heap and heap[0][2] is None:
                    pop(heap)
                    self._dead -= 1
                if keys:
                    bucket = buckets[keys[0]]
                    entry = bucket[0]
                    if heap and heap[0] < entry:
                        entry = heap[0]
                        if entry[0] > horizon:
                            return
                        pop(heap)
                        callback = entry[2]
                        entry[2] = _RAN
                    else:
                        if entry[0] > horizon:
                            return
                        pop(bucket)
                        if not bucket:
                            del buckets[keys[0]]
                            pop(keys)
                        callback = entry[2]
                elif heap:
                    entry = heap[0]
                    if entry[0] > horizon:
                        return
                    pop(heap)
                    callback = entry[2]
                    entry[2] = _RAN
                else:
                    return
                now = entry[0]
                self.now = now
                if prof_stack:
                    del prof_stack[:]
                callback()
                executed += 1
                if ebins is not None:
                    index = int(now / bin_sec)
                    cell = ebins.get(index)
                    if cell is None:
                        ebins[index] = [1.0, 1, 1.0]
                    else:
                        cell[0] += 1.0
                        cell[1] += 1
                elif record is not None:
                    record(now)
                    ebins = timeline._series[()].bins
        finally:
            self.events_run += executed
