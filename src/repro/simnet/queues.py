"""Bounded FIFO queues with drop accounting."""

from __future__ import annotations

from collections import deque
from typing import Generic, List, Optional, TypeVar

from ..errors import ConfigurationError

T = TypeVar("T")


class FiniteQueue(Generic[T]):
    """A drop-tail FIFO with capacity and high-watermark tracking."""

    def __init__(self, capacity: int, name: str = ""):
        if capacity < 1:
            raise ConfigurationError("queue capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._items = deque()
        self.enqueued = 0
        self.dropped = 0
        self.dequeued = 0
        self.high_watermark = 0

    def __len__(self) -> int:
        return len(self._items)

    def is_empty(self) -> bool:
        return not self._items

    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def offer(self, item: T) -> bool:
        """Enqueue; returns False and counts a drop when full."""
        if self.is_full():
            self.dropped += 1
            return False
        self._items.append(item)
        self.enqueued += 1
        self.high_watermark = max(self.high_watermark, len(self._items))
        return True

    def poll(self) -> Optional[T]:
        """Dequeue the oldest item, or None when empty."""
        if not self._items:
            return None
        self.dequeued += 1
        return self._items.popleft()

    def poll_batch(self, max_items: int) -> List[T]:
        """Dequeue up to ``max_items`` items."""
        if max_items < 1:
            raise ValueError("max_items must be >= 1")
        out = []
        while self._items and len(out) < max_items:
            out.append(self._items.popleft())
        self.dequeued += len(out)
        return out

    def utilization(self) -> float:
        """Current occupancy as a fraction of capacity."""
        return len(self._items) / self.capacity

    def drop_rate(self) -> float:
        """Fraction of offered items dropped so far."""
        offered = self.enqueued + self.dropped
        return self.dropped / offered if offered else 0.0
