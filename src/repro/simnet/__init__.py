"""A small discrete-event simulation engine.

Drives the packet-level cluster simulation (`repro.core`): an event queue
with a simulated clock, rate-limited links with propagation delay, bounded
FIFO queues, seeded random streams, and statistics collectors (counters,
histograms with percentiles, time series).
"""

from .engine import Event, Simulator
from .links import Link
from .partition import CrossLink, Partition, TransitRecord
from .queues import FiniteQueue
from .rng import RngStreams, node_seeds
from .stats import Counter, Histogram, TimeSeries

__all__ = [
    "Event",
    "Simulator",
    "Link",
    "Partition",
    "CrossLink",
    "TransitRecord",
    "FiniteQueue",
    "RngStreams",
    "node_seeds",
    "Counter",
    "Histogram",
    "TimeSeries",
]
