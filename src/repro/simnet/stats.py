"""Statistics collectors: counters, histograms, time series."""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Tuple


class Counter:
    """A named bundle of monotonically increasing counts."""

    def __init__(self):
        self._counts: Dict[str, float] = {}

    def add(self, name: str, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> float:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, float]:
        return dict(self._counts)


class Histogram:
    """A value reservoir with exact quantiles (sorted-on-demand)."""

    def __init__(self):
        self._values: List[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        if self._values and value < self._values[-1]:
            self._sorted = False
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._values)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._values.sort()
            self._sorted = True

    def mean(self) -> float:
        if not self._values:
            raise ValueError("empty histogram")
        # Sum in sorted order so the result depends only on the observed
        # multiset, not insertion order -- a partitioned run merges
        # observations in a different order than the single-heap engine
        # and must still report bit-identical scalars.
        self._ensure_sorted()
        return sum(self._values) / len(self._values)

    def stddev(self) -> float:
        if len(self._values) < 2:
            return 0.0
        self._ensure_sorted()
        mu = self.mean()
        return math.sqrt(sum((v - mu) ** 2 for v in self._values)
                         / (len(self._values) - 1))

    def extend(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one."""
        if not other._values:
            return
        self._values.extend(other._values)
        self._sorted = False

    def percentile(self, p: float) -> float:
        """Exact percentile (nearest-rank), p in [0, 100]."""
        if not self._values:
            raise ValueError("empty histogram")
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        self._ensure_sorted()
        if p == 0:
            return self._values[0]
        rank = max(1, math.ceil(p / 100 * len(self._values)))
        return self._values[rank - 1]

    def min(self) -> float:
        self._ensure_sorted()
        if not self._values:
            raise ValueError("empty histogram")
        return self._values[0]

    def max(self) -> float:
        self._ensure_sorted()
        if not self._values:
            raise ValueError("empty histogram")
        return self._values[-1]

    def cdf_at(self, value: float) -> float:
        """Fraction of observations <= value."""
        if not self._values:
            raise ValueError("empty histogram")
        self._ensure_sorted()
        return bisect.bisect_right(self._values, value) / len(self._values)


class TimeSeries:
    """(time, value) samples with windowed rate computation."""

    def __init__(self):
        self._samples: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        if self._samples and time < self._samples[-1][0]:
            raise ValueError("time series must be recorded in order")
        self._samples.append((time, value))

    def __len__(self) -> int:
        return len(self._samples)

    def samples(self) -> List[Tuple[float, float]]:
        return list(self._samples)

    def total(self) -> float:
        return sum(v for _, v in self._samples)

    def rate_over(self, start: float, end: float) -> float:
        """Sum of values with start < t <= end, divided by the window."""
        if end <= start:
            raise ValueError("window must have positive width")
        acc = sum(v for t, v in self._samples if start < t <= end)
        return acc / (end - start)
