"""Partitioned simulation islands with conservative lookahead.

A :class:`Partition` wraps a :class:`Simulator` (its own heap, timer
wheel, and RNG streams) plus the machinery to exchange packets with other
partitions: a :class:`CrossLink` keeps the shared queueing/serialization
semantics of :class:`Link` but, instead of scheduling a delivery event on
the (remote) peer, appends a timestamped :class:`TransitRecord` to the
partition outbox.  A runner drains outboxes at epoch barriers and injects
the records into the destination partitions.

Conservative lookahead: every cross delivery takes at least
``serialization + propagation > propagation`` seconds after its send is
committed, so with ``W = min(propagation over all cross-links)`` a
partition may safely run to ``min(next pending event time across all
partitions) + W`` -- any send committed in that window delivers strictly
after it.  ``W`` is exposed as :attr:`Partition.lookahead_sec`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional

from ..errors import ConfigurationError
from .engine import Simulator
from .links import Link
from .rng import RngStreams


class TransitRecord(NamedTuple):
    """A packet in flight between partitions.

    Sorting records compares ``(deliver_time, send_time, src_node, seq)``,
    which reproduces the single-heap engine's tie order: the global engine
    breaks equal-time ties by schedule order, and a cross delivery is
    scheduled at its send time.  ``wire`` is an opaque picklable payload
    (``Packet.to_wire()`` for the cluster) and is never reached by the
    comparison -- ``(src_node, seq)`` is already unique.
    """

    deliver_time: float
    send_time: float
    src_node: int
    seq: int
    dst_node: int
    wire: tuple

    def frame_bytes(self) -> int:
        """Frame length of the carried packet, for barrier byte-volume
        accounting.  ``wire[1]`` is ``Packet.to_wire()``'s length field;
        non-packet payloads (not used today) would report 0."""
        try:
            return int(self.wire[1])
        except (TypeError, ValueError, IndexError):
            return 0


class CrossLink(Link):
    """A link whose receive side lives on another partition.

    Send-side behavior (bounded FIFO, serialization at the link rate,
    stalls, flush-on-crash accounting) is inherited unchanged from
    :class:`Link`; only delivery differs -- the serialized packet becomes
    a :class:`TransitRecord` in the owning partition's outbox.
    """

    def __init__(self, partition: "Partition", name: str, rate_bps: float,
                 src_node: int, dst_node: int,
                 propagation_sec: float = 1e-6,
                 queue_packets: int = 1024):
        if propagation_sec <= 0:
            raise ConfigurationError(
                "cross-link propagation must be positive: it is the "
                "conservative lookahead window")
        super().__init__(partition.sim, name, rate_bps,
                         deliver=self._no_local_deliver,
                         propagation_sec=propagation_sec,
                         queue_packets=queue_packets)
        self.partition = partition
        self.src_node = src_node
        self.dst_node = dst_node

    @staticmethod
    def _no_local_deliver(packet) -> None:
        raise RuntimeError("CrossLink delivers via transit records, "
                           "never locally")

    def _schedule_delivery(self, packet, tx_time: float) -> None:
        now = self.sim.now
        # Associate exactly as Link._schedule_delivery's
        # ``schedule_timer(tx_time + propagation)`` does (``now + (tx +
        # prop)``): float addition is not associative, and the delivery
        # timestamp must be bit-identical to the single-sim engine's.
        self.partition._emit(self.src_node, self.dst_node, now,
                             now + (tx_time + self.propagation_sec), packet)


class Partition:
    """One shard of a partitioned simulation.

    Owns a private :class:`Simulator`, an outbox of transit records, and
    the table of local delivery callbacks for records addressed to its
    nodes.  The runner alternates :meth:`inject` / :meth:`advance` /
    :meth:`drain_outbox` under a barrier protocol; ``keep_alive`` is a
    runner-maintained hint that other partitions still have pending work
    (used by self-rearming observation loops that would otherwise stop
    when the local queue drains).
    """

    def __init__(self, partition_id: int, *, seed: int = 0, metrics=None):
        self.partition_id = partition_id
        self.sim = Simulator(metrics=metrics)
        self.streams = RngStreams(seed).spawn("partition/%d" % partition_id)
        self.outbox: List[TransitRecord] = []
        self.keep_alive = False
        self._seq = 0
        self._destinations: Dict[int, Callable[[tuple], None]] = {}
        self._cross_links: List[CrossLink] = []

    # -- topology wiring ---------------------------------------------------

    def cross_link(self, name: str, rate_bps: float, src_node: int,
                   dst_node: int, propagation_sec: float = 1e-6,
                   queue_packets: int = 1024) -> CrossLink:
        """Create (and track) a boundary link from a local node."""
        link = CrossLink(self, name, rate_bps, src_node, dst_node,
                         propagation_sec=propagation_sec,
                         queue_packets=queue_packets)
        self._cross_links.append(link)
        return link

    def register_destination(self, node_id: int,
                             callback: Callable[[tuple], None]) -> None:
        """Route incoming records for ``node_id`` to ``callback(wire)``."""
        self._destinations[node_id] = callback

    @property
    def lookahead_sec(self) -> Optional[float]:
        """Minimum propagation over this partition's cross-links.

        ``None`` when the partition has no boundary (a single-partition
        run may advance straight to the horizon).
        """
        if not self._cross_links:
            return None
        return min(link.propagation_sec for link in self._cross_links)

    # -- record exchange ---------------------------------------------------

    def _emit(self, src_node: int, dst_node: int, send_time: float,
              deliver_time: float, packet) -> None:
        self.outbox.append(TransitRecord(deliver_time, send_time, src_node,
                                         self._seq, dst_node,
                                         packet.to_wire()))
        self._seq += 1

    def inject(self, records) -> None:
        """Schedule incoming transit records as local delivery events.

        Records are sorted by their full tie-break key first, so the
        injection order (and hence local event seq order among equal-time
        deliveries) is independent of how the runner batched them.
        """
        for record in sorted(records):
            callback = self._destinations.get(record.dst_node)
            if callback is None:
                raise ConfigurationError(
                    "partition %d has no destination for node %d"
                    % (self.partition_id, record.dst_node))
            self.sim.schedule_at(record.deliver_time,
                                 lambda cb=callback, w=record.wire: cb(w))

    def drain_outbox(self) -> List[TransitRecord]:
        """Take (and clear) the records produced since the last drain."""
        out = self.outbox
        self.outbox = []
        return out

    # -- time advancement --------------------------------------------------

    def peek_time(self) -> Optional[float]:
        """Earliest pending local event time, or ``None`` when drained."""
        return self.sim.peek_time()

    def advance(self, until: float) -> List[TransitRecord]:
        """Run local events up to ``until`` and return the outbox."""
        self.sim.run(until=until)
        return self.drain_outbox()
