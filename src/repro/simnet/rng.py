"""Seeded, named random streams.

Every stochastic element of a simulation draws from its own named stream so
that changing one workload knob does not perturb the random sequence seen
by unrelated components (common random numbers across experiment arms).
"""

from __future__ import annotations

import hashlib
import random


class RngStreams:
    """A factory of independent :class:`random.Random` streams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name``, created deterministically on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(
                ("%d/%s" % (self.seed, name)).encode()).digest()
            self._streams[name] = random.Random(
                int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def __contains__(self, name: str) -> bool:
        return name in self._streams
