"""Seeded, named random streams.

Every stochastic element of a simulation draws from its own named stream so
that changing one workload knob does not perturb the random sequence seen
by unrelated components (common random numbers across experiment arms).
"""

from __future__ import annotations

import hashlib
import random
from typing import List


def node_seeds(seed: int, count: int) -> List[int]:
    """The per-node RNG seeds the cluster derives from a root seed.

    This is *the* derivation both the single-heap cluster build and every
    partition build share: a root :class:`random.Random` seeded with
    ``seed`` draws one 32-bit seed per node, in node-id order.  A
    partition re-derives the full chain and uses only its local indices,
    so node RNG streams are identical regardless of how the cluster is
    sharded or which worker hosts a node.
    """
    root = random.Random(seed)
    return [root.getrandbits(32) for _ in range(count)]


class RngStreams:
    """A factory of independent :class:`random.Random` streams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name``, created deterministically on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(
                ("%d/%s" % (self.seed, name)).encode()).digest()
            self._streams[name] = random.Random(
                int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def spawn(self, name: str) -> "RngStreams":
        """A child stream factory seeded deterministically from this one.

        The seed-sequence-style spawn used for per-partition randomness:
        ``RngStreams(seed).spawn("partition/3")`` yields the same child on
        every run and on every worker, independent of spawn order or of
        which process performs the spawn, so sharded results cannot depend
        on worker scheduling.
        """
        digest = hashlib.sha256(
            ("%d/spawn/%s" % (self.seed, name)).encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))

    def __contains__(self, name: str) -> bool:
        return name in self._streams
