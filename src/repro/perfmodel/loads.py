"""Per-packet load vectors.

A :class:`LoadVector` is what one packet costs on each system component:
CPU cycles and bytes on the memory buses, socket-I/O links, PCIe buses,
and inter-socket link.  It is the quantity plotted in Figs. 9-10 and the
input to the bottleneck solver.

The implementation now lives in :mod:`repro.costs`: ``LoadVector`` is an
alias of :class:`repro.costs.ResourceVector`, ``ServerConfig`` moved to
the cost layer, and the load computations delegate to the shared
:data:`repro.costs.DEFAULT_COST_MODEL` so the analytic model, the Click
scheduler, and the timed simulation all charge from the same constants.
"""

from __future__ import annotations

from .. import calibration as cal
from ..costs import DEFAULT_CONFIG, DEFAULT_COST_MODEL, ServerConfig
from ..costs import ResourceVector as LoadVector
from ..errors import ConfigurationError
from ..hw.server import ServerSpec

__all__ = ["DEFAULT_CONFIG", "LoadVector", "ServerConfig",
           "cpu_cycles_per_packet", "per_packet_loads", "table3_row"]

# Imported modules keep working after the move; ConfigurationError is part
# of the historical module surface.
_ = ConfigurationError


def cpu_cycles_per_packet(app: cal.AppCost, packet_bytes: float,
                          config: ServerConfig = DEFAULT_CONFIG,
                          spec: ServerSpec = None) -> float:
    """Total CPU cycles per packet: application + book-keeping + penalties.

    Without multi-queue NICs the one-core-per-packet rule breaks: a polling
    core hands each packet to a worker, adding the Fig. 6 pipeline
    synchronization cost.  On shared-bus servers, FSB contention inflates
    every cycle count by the spec's ``cpi_factor``.
    """
    return DEFAULT_COST_MODEL.cpu_cycles_per_packet(app, packet_bytes,
                                                    config, spec)


def per_packet_loads(app: cal.AppCost, packet_bytes: float,
                     config: ServerConfig = DEFAULT_CONFIG,
                     spec: ServerSpec = None) -> LoadVector:
    """The full per-packet load vector for ``app`` at ``packet_bytes``."""
    return DEFAULT_COST_MODEL.per_packet_vector(app, packet_bytes, config,
                                                spec)


def table3_row(app: cal.AppCost) -> dict:
    """Table 3's reported instructions/packet and CPI for ``app``."""
    return {
        "application": app.name,
        "instructions_per_packet": app.instructions_per_packet,
        "cycles_per_instruction": app.cycles_per_instruction,
        "derived_cycles_per_packet":
            app.instructions_per_packet * app.cycles_per_instruction,
    }
