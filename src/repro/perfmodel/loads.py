"""Per-packet load vectors.

A :class:`LoadVector` is what one packet costs on each system component:
CPU cycles and bytes on the memory buses, socket-I/O links, PCIe buses,
and inter-socket link.  It is the quantity plotted in Figs. 9-10 and the
input to the bottleneck solver.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import calibration as cal
from ..errors import ConfigurationError
from ..hw.server import ServerSpec


@dataclass(frozen=True)
class ServerConfig:
    """Software configuration knobs of the evaluation (Sec. 4.2).

    ``multi_queue``
        One RX/TX queue per core per port (both scheduling rules hold).
        When False, ports expose a single queue and packet handoffs between
        a polling core and a worker core are unavoidable.
    ``kp, kn``
        Poll-driven and NIC-driven batch sizes (Table 1).
    """

    multi_queue: bool = True
    kp: int = cal.DEFAULT_KP
    kn: int = cal.DEFAULT_KN

    def __post_init__(self):
        if self.kp < 1:
            raise ConfigurationError("kp must be >= 1, got %r" % self.kp)
        if not 1 <= self.kn <= cal.MAX_NIC_BATCH:
            raise ConfigurationError(
                "kn must be in [1, %d] (PCIe payload limit), got %r"
                % (cal.MAX_NIC_BATCH, self.kn))


#: The evaluation's default configuration: multi-queue, kp=32, kn=16.
DEFAULT_CONFIG = ServerConfig()


@dataclass(frozen=True)
class LoadVector:
    """Per-packet load on each system component."""

    cpu_cycles: float
    mem_bytes: float
    io_bytes: float
    pcie_bytes: float
    qpi_bytes: float

    def scaled(self, factor: float) -> "LoadVector":
        """A copy with every entry multiplied by ``factor``."""
        return LoadVector(cpu_cycles=self.cpu_cycles * factor,
                          mem_bytes=self.mem_bytes * factor,
                          io_bytes=self.io_bytes * factor,
                          pcie_bytes=self.pcie_bytes * factor,
                          qpi_bytes=self.qpi_bytes * factor)


def cpu_cycles_per_packet(app: cal.AppCost, packet_bytes: float,
                          config: ServerConfig = DEFAULT_CONFIG,
                          spec: ServerSpec = None) -> float:
    """Total CPU cycles per packet: application + book-keeping + penalties.

    Without multi-queue NICs the one-core-per-packet rule breaks: a polling
    core hands each packet to a worker, adding the Fig. 6 pipeline
    synchronization cost.  On shared-bus servers, FSB contention inflates
    every cycle count by the spec's ``cpi_factor``.
    """
    cycles = app.cpu_cycles(packet_bytes)
    cycles += cal.bookkeeping_cycles(config.kp, config.kn)
    if not config.multi_queue:
        cycles += cal.PIPELINE_SYNC_CYCLES
    if spec is not None and spec.cpi_factor != 1.0:
        cycles *= spec.cpi_factor
    return cycles


def per_packet_loads(app: cal.AppCost, packet_bytes: float,
                     config: ServerConfig = DEFAULT_CONFIG,
                     spec: ServerSpec = None) -> LoadVector:
    """The full per-packet load vector for ``app`` at ``packet_bytes``."""
    if packet_bytes <= 0:
        raise ConfigurationError("packet size must be positive")
    return LoadVector(
        cpu_cycles=cpu_cycles_per_packet(app, packet_bytes, config, spec),
        mem_bytes=app.mem_bytes(packet_bytes),
        io_bytes=app.io_bytes(packet_bytes),
        pcie_bytes=app.pcie_bytes(packet_bytes),
        qpi_bytes=app.qpi_bytes(packet_bytes),
    )


def table3_row(app: cal.AppCost) -> dict:
    """Table 3's reported instructions/packet and CPI for ``app``."""
    return {
        "application": app.name,
        "instructions_per_packet": app.instructions_per_packet,
        "cycles_per_instruction": app.cycles_per_instruction,
        "derived_cycles_per_packet":
            app.instructions_per_packet * app.cycles_per_instruction,
    }
