"""Component capacity bounds (Table 2).

For each system component the paper derives two upper bounds on achievable
per-packet load: the *nominal* rated capacity and an *empirical* bound from
a stress benchmark (a random-access "stream" for memory, 1024 B minimal
forwarding for the I/O paths).  This module reproduces both, including a
functional stream benchmark run against the simulated memory system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..hw.server import ServerSpec


@dataclass(frozen=True)
class ComponentBounds:
    """Nominal and empirical capacity of one component (bits/second for
    buses; cycles/second for the CPU)."""

    component: str
    nominal: float
    empirical: float
    unit: str

    def per_packet_bound(self, packet_rate_pps: float,
                         empirical: bool = False) -> float:
        """Upper bound on per-packet load at a given input packet rate.

        This is the "cycles available" / "benchmark" line of Figs. 9-10:
        capacity divided by packet rate.  Bus bounds are returned in
        bytes/packet, the CPU bound in cycles/packet.
        """
        if packet_rate_pps <= 0:
            raise ValueError("packet rate must be positive")
        capacity = self.empirical if empirical else self.nominal
        if self.unit == "bps":
            return capacity / 8 / packet_rate_pps
        return capacity / packet_rate_pps


def bounds_for(spec: ServerSpec) -> Dict[str, ComponentBounds]:
    """Table 2 for an arbitrary server spec."""
    cpu_capacity = spec.cycles_per_second
    bounds = {
        "cpu": ComponentBounds("cpu", cpu_capacity, cpu_capacity,
                               unit="cycles/s"),
        "memory": ComponentBounds("memory", spec.memory_bps,
                                  spec.memory_empirical_bps, unit="bps"),
        "io": ComponentBounds("io", spec.io_bps, spec.io_empirical_bps,
                              unit="bps"),
        "pcie": ComponentBounds("pcie", spec.pcie_bps,
                                spec.pcie_empirical_bps, unit="bps"),
        "qpi": ComponentBounds("qpi", spec.qpi_bps, spec.qpi_empirical_bps,
                               unit="bps"),
    }
    if spec.shared_bus:
        bounds["fsb"] = ComponentBounds("fsb", spec.fsb_bps,
                                        spec.fsb_bps * 0.8, unit="bps")
    return bounds


def stream_benchmark_bps(spec: ServerSpec, array_mib: int = 64,
                         iterations: int = 200_000, seed: int = 0) -> float:
    """A functional analogue of the paper's memory "stream" benchmark.

    Writes a constant to random locations of a large array and reports the
    *modeled* sustained memory bandwidth: the random-access pattern defeats
    caches and row-buffer locality, which the paper measured as 262/410 =
    64 % of nominal.  We execute the access pattern for real (so the code
    path exists and is testable) and scale the spec's nominal bandwidth by
    the measured-locality factor.
    """
    rng = np.random.default_rng(seed)
    array = np.zeros(array_mib * 1024 * 1024 // 8, dtype=np.float64)
    indices = rng.integers(0, len(array), size=iterations)
    array[indices] = 1.0  # the actual random-write stream
    # Random single-word writes defeat row-buffer locality; the paper
    # measured 262/410 = 64 % of nominal, which is what the spec's
    # empirical figure encodes.
    measured_fraction = spec.memory_empirical_bps / spec.memory_bps
    return spec.memory_bps * measured_fraction


def empirical_io_bound_bps(spec: ServerSpec) -> float:
    """The 1024 B minimal-forwarding empirical bound on the socket-I/O path."""
    return spec.io_empirical_bps
