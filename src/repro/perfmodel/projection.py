"""Scaling projections (Sec. 5.3, item 4).

Because per-packet loads are constant in the input rate, performance on a
future server is found by intersecting the same load lines with the new
capacity bounds.  The paper projects the 4-socket / 8-core-per-socket
Nehalem follow-up (4x CPU, 2x memory, 2x I/O) at 38.8 / 19.9 / 5.8 Gbps
for forwarding / routing / IPsec with 64 B packets -- with routing turning
memory-bound -- and ~70 Gbps for Abilene forwarding absent the NIC-slot
limit.
"""

from __future__ import annotations

from typing import Dict

from .. import calibration as cal
from ..hw.presets import NEHALEM, NEHALEM_NEXT_GEN
from ..hw.server import ServerSpec
from ..units import rate_pps_to_bps
from ..workloads.spec import WorkloadSpec
from .loads import DEFAULT_CONFIG, ServerConfig, per_packet_loads
from .throughput import RateResult, max_loss_free_rate


def project_rates(spec: ServerSpec = NEHALEM_NEXT_GEN,
                  packet_bytes: int = 64,
                  config: ServerConfig = DEFAULT_CONFIG) -> Dict[str, RateResult]:
    """Projected loss-free rates for all three applications on ``spec``.

    The projection deliberately drops the prototype's two-NIC-slot input
    cap (``nic_limited=False``): the question is what the server internals
    support.
    """
    results = {}
    for name, app in cal.APPLICATIONS.items():
        results[name] = max_loss_free_rate(
            WorkloadSpec.fixed(packet_bytes, app=app),
            spec=spec, config=config, empirical_bounds=True,
            nic_limited=False)
    return results


def projected_abilene_forwarding_bps(spec: ServerSpec = NEHALEM,
                                     io_nominal_fraction: float = 0.8) -> float:
    """Sec. 5.3's Abilene what-if: forwarding rate absent the NIC limit.

    "Ignoring the PCIe bus and assuming the socket-I/O bus can reach 80 %
    of its nominal capacity" -- the binding constraints left are the CPUs
    and one socket-I/O link at 80 % of nominal.  The paper estimates
    ~70 Gbps; this model lands in the mid-70s (the shapes agree: an order
    of magnitude above the 24.6 Gbps NIC-limited measurement).
    """
    if not 0 < io_nominal_fraction <= 1:
        raise ValueError("io_nominal_fraction must be in (0, 1]")
    mean = cal.ABILENE_MEAN_PACKET_BYTES
    loads = per_packet_loads(cal.MINIMAL_FORWARDING, mean, DEFAULT_CONFIG,
                             spec)
    cpu_pps = spec.cycles_per_second / loads.cpu_cycles
    one_link_bps = spec.io_bps / 2  # per-socket I/O link
    io_pps = io_nominal_fraction * one_link_bps / 8 / loads.io_bytes
    return rate_pps_to_bps(min(cpu_pps, io_pps), mean)
