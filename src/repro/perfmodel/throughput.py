"""Maximum loss-free forwarding rate solver.

The paper's primary metric (Sec. 5.1) is the maximum attainable loss-free
forwarding rate.  In the model this is the largest input rate at which no
component's load exceeds its capacity:

    rate_pps = min over components ( capacity_c / per_packet_load_c )

capped by what the NIC slots can physically move (24.6 Gbps on the
prototype).  The solver reports the binding component, reproducing the
paper's "the CPU is the bottleneck" conclusion and the NIC-limited plateau
for large packets (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .. import calibration as cal
from ..errors import ConfigurationError
from ..hw.presets import NEHALEM
from ..hw.server import ServerSpec
from ..results import RunResult
from ..units import rate_pps_to_bps
from .bounds import bounds_for
from .loads import DEFAULT_CONFIG, LoadVector, ServerConfig, per_packet_loads


@dataclass(frozen=True)
class RateResult(RunResult):
    """The solver's answer for one (server, app, packet size) point."""

    _summary_fields = ("rate_gbps", "rate_mpps", "bottleneck",
                       "packet_bytes")

    rate_bps: float
    rate_pps: float
    bottleneck: str
    packet_bytes: float
    loads: LoadVector
    component_rates_pps: Dict[str, float]

    @property
    def rate_gbps(self) -> float:
        return self.rate_bps / 1e9

    @property
    def rate_mpps(self) -> float:
        return self.rate_pps / 1e6

    def utilization_at(self, offered_pps: float) -> Dict[str, float]:
        """Component utilizations at an offered input rate."""
        return {name: offered_pps / limit
                for name, limit in self.component_rates_pps.items()}


def _component_rate_limits(loads: LoadVector, spec: ServerSpec,
                           empirical: bool) -> Dict[str, float]:
    """Packet-rate limit imposed by each component (packets/second)."""
    bounds = bounds_for(spec)
    limits = {}

    def bus_limit(name: str, load_bytes: float) -> Optional[float]:
        if load_bytes <= 0:
            return None
        bound = bounds[name]
        capacity = bound.empirical if empirical else bound.nominal
        return capacity / 8 / load_bytes

    limits["cpu"] = spec.cycles_per_second / loads.cpu_cycles
    if spec.shared_bus:
        # All memory and I/O traffic shares the front-side bus (Fig. 5).
        fsb_bytes = loads.mem_bytes + loads.io_bytes
        limit = bus_limit("fsb", fsb_bytes)
        if limit is not None:
            limits["fsb"] = limit
    else:
        for name, load_bytes in (("memory", loads.mem_bytes),
                                 ("io", loads.io_bytes),
                                 ("qpi", loads.qpi_bytes)):
            limit = bus_limit(name, load_bytes)
            if limit is not None:
                limits[name] = limit
    limit = bus_limit("pcie", loads.pcie_bytes)
    if limit is not None:
        limits["pcie"] = limit
    return limits


def rate_from_loads(loads: LoadVector, packet_bytes: float,
                    spec: ServerSpec = NEHALEM,
                    empirical_bounds: bool = True,
                    nic_limited: bool = True) -> RateResult:
    """Solve for the loss-free rate given an already-compiled load vector.

    This is the solver half of :func:`max_loss_free_rate`, split out so a
    load vector from *any* source -- a preset application, or a Click
    pipeline compiled by :func:`repro.costs.compile_loads` -- answers the
    same question: which component saturates first, and at what rate.
    """
    if packet_bytes <= 0:
        raise ConfigurationError("packet size must be positive")
    if loads.cpu_cycles <= 0:
        raise ConfigurationError(
            "load vector charges no CPU cycles; every packet at least "
            "crosses the forwarding path")
    limits = _component_rate_limits(loads, spec, empirical_bounds)
    if nic_limited:
        limits["nic"] = spec.max_input_bps / (packet_bytes * 8)
    bottleneck = min(limits, key=limits.get)
    rate_pps = limits[bottleneck]
    return RateResult(
        rate_bps=rate_pps_to_bps(rate_pps, packet_bytes),
        rate_pps=rate_pps,
        bottleneck=bottleneck,
        packet_bytes=packet_bytes,
        loads=loads,
        component_rates_pps=limits,
    )


def max_loss_free_rate(workload: "WorkloadSpec",
                       spec: ServerSpec = NEHALEM,
                       config: ServerConfig = DEFAULT_CONFIG,
                       empirical_bounds: bool = True,
                       nic_limited: bool = True) -> RateResult:
    """Solve for the maximum loss-free forwarding rate.

    ``workload`` is a :class:`~repro.workloads.spec.WorkloadSpec` (its
    application and mean packet size drive the solver; per-packet costs
    are affine in size, so the mean is exact for rate computations).

    ``empirical_bounds`` uses the benchmark-derived (Table 2, right column)
    bus capacities instead of nominal ratings.  ``nic_limited`` applies the
    physical NIC-slot input cap (the paper's 24.6 Gbps traffic-generation
    limit); disable it to ask what the server internals alone could do.
    """
    from ..workloads.spec import WorkloadSpec
    if not isinstance(workload, WorkloadSpec):
        raise TypeError(
            "max_loss_free_rate() takes a repro.workloads.WorkloadSpec; "
            "the (app, packet_bytes) form was removed -- use "
            "WorkloadSpec.fixed(packet_bytes, app=app)")
    app = workload.app
    packet_bytes = workload.mean_packet_bytes
    if packet_bytes <= 0:
        raise ConfigurationError("packet size must be positive")
    loads = per_packet_loads(app, packet_bytes, config, spec)
    return rate_from_loads(loads, packet_bytes, spec=spec,
                           empirical_bounds=empirical_bounds,
                           nic_limited=nic_limited)


def saturation_throughput(workload: "WorkloadSpec",
                          spec: ServerSpec = NEHALEM,
                          config: ServerConfig = DEFAULT_CONFIG) -> RateResult:
    """Convenience wrapper for trace workloads: uses the workload's mean
    packet size (per-packet costs are affine in size, so the mean is exact
    for rate computations)."""
    return max_loss_free_rate(workload, spec=spec, config=config)
