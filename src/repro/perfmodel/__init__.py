"""Single-server performance model.

Implements the paper's evaluation methodology (Sec. 5): per-packet load
vectors charged against component capacity bounds, a max-loss-free-rate
solver that identifies the bottleneck component, the batching model of
Table 1, the Fig. 6 core/queue-assignment scenarios, and the Sec. 5.3
scaling projections.
"""

from .loads import LoadVector, ServerConfig, per_packet_loads
from .bounds import ComponentBounds, bounds_for, stream_benchmark_bps
from .batching import batching_rate_bps, batching_sweep
from .throughput import (RateResult, max_loss_free_rate, rate_from_loads,
                         saturation_throughput)
from .scenarios import SCENARIOS, Scenario, scenario_rate_gbps
from .projection import project_rates, projected_abilene_forwarding_bps
from .sweep import app_sweep, batching_grid, bottleneck_crossover_bytes, size_sweep
from .custom_app import define_application, predict
from .queueing import loaded_cluster_latency_usec, md1_wait_sec

__all__ = [
    "LoadVector",
    "ServerConfig",
    "per_packet_loads",
    "ComponentBounds",
    "bounds_for",
    "stream_benchmark_bps",
    "batching_rate_bps",
    "batching_sweep",
    "RateResult",
    "max_loss_free_rate",
    "rate_from_loads",
    "saturation_throughput",
    "SCENARIOS",
    "Scenario",
    "scenario_rate_gbps",
    "project_rates",
    "projected_abilene_forwarding_bps",
    "app_sweep",
    "batching_grid",
    "bottleneck_crossover_bytes",
    "size_sweep",
    "define_application",
    "predict",
    "loaded_cluster_latency_usec",
    "md1_wait_sec",
]
