"""Parameter sweeps over the performance model.

Grids of (application x packet size x server x batching) operating points
in one call, for the figure-style series the benchmarks and examples
print.  Also provides crossover finders ("at what packet size does the
bottleneck move off the CPU?") used by the analysis notebooks-in-tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .. import calibration as cal
from ..errors import ConfigurationError
from ..hw.presets import NEHALEM
from ..hw.server import ServerSpec
from .loads import DEFAULT_CONFIG, ServerConfig
from ..workloads.spec import WorkloadSpec
from .throughput import RateResult, max_loss_free_rate

DEFAULT_SIZES = (64, 128, 256, 512, 1024, 1500)


def size_sweep(app: cal.AppCost, sizes: Iterable[int] = DEFAULT_SIZES,
               spec: ServerSpec = NEHALEM,
               config: ServerConfig = DEFAULT_CONFIG,
               nic_limited: bool = True) -> List[dict]:
    """Loss-free rate vs packet size for one application."""
    rows = []
    for size in sizes:
        result = max_loss_free_rate(WorkloadSpec.fixed(size, app=app),
                                    spec=spec, config=config,
                                    nic_limited=nic_limited)
        rows.append({"packet_bytes": size, "rate_gbps": result.rate_gbps,
                     "rate_mpps": result.rate_mpps,
                     "bottleneck": result.bottleneck})
    return rows


def app_sweep(packet_bytes: int = 64, spec: ServerSpec = NEHALEM,
              config: ServerConfig = DEFAULT_CONFIG) -> Dict[str, RateResult]:
    """All three applications at one packet size."""
    return {name: max_loss_free_rate(
                WorkloadSpec.fixed(packet_bytes, app=app),
                spec=spec, config=config)
            for name, app in cal.APPLICATIONS.items()}


def batching_grid(kps: Iterable[int] = (1, 2, 4, 8, 16, 32),
                  kns: Iterable[int] = (1, 2, 4, 8, 16),
                  packet_bytes: int = 64,
                  spec: ServerSpec = NEHALEM) -> List[dict]:
    """The full (kp, kn) surface Table 1 samples three points of."""
    rows = []
    for kp in kps:
        for kn in kns:
            config = ServerConfig(kp=kp, kn=kn)
            result = max_loss_free_rate(
                WorkloadSpec.fixed(packet_bytes, app="forwarding"),
                spec=spec, config=config)
            rows.append({"kp": kp, "kn": kn,
                         "rate_gbps": result.rate_gbps})
    return rows


def bottleneck_crossover_bytes(app: cal.AppCost,
                               spec: ServerSpec = NEHALEM,
                               config: ServerConfig = DEFAULT_CONFIG,
                               lo: int = 64, hi: int = 1500) -> Optional[int]:
    """Smallest packet size at which the CPU stops being the bottleneck.

    Returns None if the CPU binds across the whole range (IPsec on the
    prototype).  Binary search; loads are monotone in size.
    """
    if lo >= hi:
        raise ConfigurationError("need lo < hi")

    def cpu_bound(size: int) -> bool:
        return max_loss_free_rate(WorkloadSpec.fixed(size, app=app),
                                  spec=spec,
                                  config=config).bottleneck == "cpu"

    if not cpu_bound(lo):
        return lo
    if cpu_bound(hi):
        return None
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if cpu_bound(mid):
            lo = mid
        else:
            hi = mid
    return hi


def headroom_matrix(packet_bytes: int = 64,
                    spec: ServerSpec = NEHALEM) -> List[dict]:
    """Per-application, per-component headroom at saturation (Fig. 10
    condensed into one table)."""
    from ..analysis.bottleneck import deconstruct

    rows = []
    for name, app in cal.APPLICATIONS.items():
        report = deconstruct(app, packet_bytes, spec=spec)
        row = {"application": name, "bottleneck": report.bottleneck}
        for component in ("cpu", "memory", "io", "pcie", "qpi"):
            row[component] = report.headroom(component)
        rows.append(row)
    return rows
