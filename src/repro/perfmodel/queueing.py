"""Queueing-delay models for latency under load.

The Sec. 6.2 latency figures are unloaded-path numbers; under load,
packets also wait in NIC rings and internal link queues.  With
deterministic per-packet service (fixed cycles/packet, fixed-size
packets), each stage is well modeled as M/D/1, whose mean wait is half an
M/M/1's:

    W_q = rho / (2 * mu * (1 - rho))        (mean queueing delay)

This module provides per-stage and end-to-end latency-vs-load curves and a
crossing finder ("at what utilization does added delay exceed X us") --
the quantitative version of the paper's "relaxed performance guarantees"
trade-off discussion (Sec. 2).
"""

from __future__ import annotations

import math
from typing import List

from .. import calibration as cal
from ..core.latency import cluster_latency_usec
from ..errors import ConfigurationError


def md1_wait_sec(service_sec: float, utilization: float) -> float:
    """Mean M/D/1 queueing delay for one stage.

    ``service_sec`` is the deterministic per-packet service time;
    ``utilization`` is rho in [0, 1).
    """
    if service_sec <= 0:
        raise ConfigurationError("service time must be positive")
    if not 0 <= utilization < 1:
        raise ConfigurationError("utilization must be in [0, 1)")
    if utilization == 0:
        return 0.0
    mu = 1.0 / service_sec
    return utilization / (2 * mu * (1 - utilization))


def md1_wait_quantile_sec(service_sec: float, utilization: float,
                          quantile: float = 0.99) -> float:
    """Approximate delay quantile for M/D/1.

    Uses the exponential-tail approximation P(W > t) ~ exp(-t/W_bar *
    (1 - rho) adjusted): adequate for the "how bad is p99 under load"
    question; exact transforms are overkill here.
    """
    if not 0 < quantile < 1:
        raise ConfigurationError("quantile must be in (0, 1)")
    mean = md1_wait_sec(service_sec, utilization)
    if mean == 0:
        return 0.0
    return -mean * math.log(1 - quantile)


def server_service_time_sec(app: cal.AppCost = cal.MINIMAL_FORWARDING,
                            packet_bytes: int = 64,
                            cores: int = 8) -> float:
    """Effective per-packet service time of the server's CPU stage.

    With m cores each handling its own queue, the per-queue service rate
    is one core's; the stage service time is cycles/packet over one
    core's clock.
    """
    if cores < 1:
        raise ConfigurationError("need >= 1 core")
    cycles = app.cpu_cycles(packet_bytes) + cal.DEFAULT_BOOKKEEPING_CYCLES
    return cycles / cal.NEHALEM_CLOCK_HZ


def loaded_cluster_latency_usec(utilization: float, hops: int = 2,
                                app: cal.AppCost = cal.MINIMAL_FORWARDING,
                                packet_bytes: int = 740,
                                internal_link_bps: float = cal.PORT_RATE_BPS) -> float:
    """End-to-end cluster latency at a given per-stage utilization.

    Adds M/D/1 waits at each server's CPU stage and each internal link's
    serialization queue to the unloaded path latency.
    """
    if hops < 2:
        raise ConfigurationError("cluster paths visit >= 2 servers")
    base = cluster_latency_usec(hops)
    cpu_service = server_service_time_sec(app, packet_bytes)
    link_service = packet_bytes * 8 / internal_link_bps
    per_server_wait = md1_wait_sec(cpu_service, utilization)
    per_link_wait = md1_wait_sec(link_service, utilization)
    links = hops - 1
    return base + (hops * per_server_wait + links * per_link_wait) * 1e6


def latency_vs_load_curve(utilizations: List[float] = None,
                          hops: int = 2,
                          packet_bytes: int = 740) -> List[dict]:
    """(utilization, latency) rows for the latency-under-load curve."""
    if utilizations is None:
        utilizations = [0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95]
    rows = []
    for rho in utilizations:
        rows.append({"utilization": rho,
                     "latency_usec": loaded_cluster_latency_usec(
                         rho, hops=hops, packet_bytes=packet_bytes)})
    return rows


def utilization_for_latency_budget(budget_usec: float, hops: int = 2,
                                   packet_bytes: int = 740,
                                   tolerance: float = 1e-4) -> float:
    """Highest per-stage utilization keeping mean latency within budget."""
    base = loaded_cluster_latency_usec(0.0, hops=hops,
                                       packet_bytes=packet_bytes)
    if budget_usec <= base:
        raise ConfigurationError(
            "budget %.1f us below the unloaded path latency %.1f us"
            % (budget_usec, base))
    lo, hi = 0.0, 1.0 - 1e-9
    while hi - lo > tolerance:
        mid = (lo + hi) / 2
        if loaded_cluster_latency_usec(mid, hops=hops,
                                       packet_bytes=packet_bytes) \
                <= budget_usec:
            lo = mid
        else:
            hi = mid
    return lo
