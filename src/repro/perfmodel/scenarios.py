"""The Fig. 6 core/queue-assignment scenarios and the Fig. 7 configurations.

Fig. 6 measures "toy" forwarding paths (64 B packets, blind port-to-port
forwarding) under different assignments of queues and packets to cores:

  (a) pipeline, two cores sharing an L3 cache
  (a') pipeline, two cores on different sockets (extra cache misses)
  (b) parallel: one core does RX + processing + TX           -- the winner
  (c) single RX queue, one polling core splitting to workers
  (d) scenario (c) fixed with one RX queue per worker core
  (e) overlapping paths sharing a TX queue (no multi-queue)
  (f) scenario (e) fixed with one TX queue per core

The two scheduling rules the paper derives -- one core per queue, one core
per packet -- fall directly out of these models.  Cost constants come from
`repro.calibration` and are themselves derived from the figure's published
rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .. import calibration as cal
from ..hw.presets import NEHALEM, XEON_SHARED_BUS
from ..units import rate_pps_to_bps
from ..workloads.spec import WorkloadSpec
from .loads import ServerConfig
from .throughput import max_loss_free_rate


@dataclass(frozen=True)
class Scenario:
    """One Fig. 6 forwarding-path setup."""

    key: str
    description: str
    cores_per_fp: int
    rate_gbps: float  # per forwarding path

    def violates_one_core_per_packet(self) -> bool:
        return self.key in ("pipeline", "pipeline_cross_cache", "split")

    def violates_one_core_per_queue(self) -> bool:
        return self.key in ("split", "overlap")


def _per_core_rate_pps(cycles_per_packet: float) -> float:
    return NEHALEM.clock_hz / cycles_per_packet


def _gbps(pps: float, packet_bytes: int = 64) -> float:
    return rate_pps_to_bps(pps, packet_bytes) / 1e9


def _build_scenarios(packet_bytes: int = 64) -> Dict[str, Scenario]:
    toy = cal.TOY_FWD_CYCLES
    sync = cal.PIPELINE_SYNC_CYCLES
    miss = cal.CROSS_CACHE_MISS_CYCLES
    lock = cal.QUEUE_LOCK_CYCLES
    rx = cal.RX_FRACTION * toy

    scenarios = {}

    # (b) parallel: the whole path on one core.
    parallel_pps = _per_core_rate_pps(toy)
    scenarios["parallel"] = Scenario(
        "parallel", "one core per packet and per queue", 1,
        _gbps(parallel_pps, packet_bytes))

    # (a) pipeline across two cores sharing L3: each stage does half the
    # work plus a synchronization handoff; throughput = slowest stage.
    stage = toy / 2 + sync
    scenarios["pipeline"] = Scenario(
        "pipeline", "two-core pipeline, shared L3 cache", 2,
        _gbps(_per_core_rate_pps(stage), packet_bytes))

    # (a') pipeline across sockets: the handoff additionally misses L3.
    stage = toy / 2 + sync + miss
    scenarios["pipeline_cross_cache"] = Scenario(
        "pipeline_cross_cache", "two-core pipeline, different L3 caches", 2,
        _gbps(_per_core_rate_pps(stage), packet_bytes))

    # (c) one polling core fans out to two workers through a shared
    # software queue: the poller pays RX work plus the contended-queue
    # cost and becomes the bottleneck.
    poller = rx + lock
    poller_pps = _per_core_rate_pps(poller)
    worker_pps = 2 * _per_core_rate_pps((1 - cal.RX_FRACTION) * toy + sync)
    scenarios["split"] = Scenario(
        "split", "single RX queue, poller splits to two workers", 3,
        _gbps(min(poller_pps, worker_pps), packet_bytes))

    # (d) the fix: one RX queue per worker; both run the parallel path.
    scenarios["split_multi_queue"] = Scenario(
        "split_multi_queue", "per-core RX queues on one port", 2,
        _gbps(2 * parallel_pps, packet_bytes))

    # (e) two overlapping paths share a TX queue: each packet pays the
    # lock + cache-line bounce on the shared ring.
    overlap_pps = _per_core_rate_pps(toy + lock)
    scenarios["overlap"] = Scenario(
        "overlap", "overlapping paths, shared TX queue", 1,
        _gbps(overlap_pps, packet_bytes))

    # (f) the fix: per-core TX queues restore the parallel rate.
    scenarios["overlap_multi_queue"] = Scenario(
        "overlap_multi_queue", "overlapping paths, per-core TX queues", 1,
        _gbps(parallel_pps, packet_bytes))

    return scenarios


SCENARIOS: Dict[str, Scenario] = _build_scenarios()


def scenario_rate_gbps(key: str) -> float:
    """Per-forwarding-path rate of a Fig. 6 scenario, in Gbps."""
    if key not in SCENARIOS:
        raise KeyError("unknown scenario %r (have %s)"
                       % (key, sorted(SCENARIOS)))
    return SCENARIOS[key].rate_gbps


def fig7_configurations(packet_bytes: int = 64) -> List[dict]:
    """The four Fig. 7 bars: cumulative effect of the design changes.

    Returns rows with Mpps for: shared-bus Xeon (single queue, no
    batching), Nehalem single queue no batching, Nehalem single queue with
    batching, Nehalem multi-queue with batching.
    """
    cases = [
        ("xeon/single-queue/no-batching", XEON_SHARED_BUS,
         ServerConfig(multi_queue=False, kp=1, kn=1)),
        ("nehalem/single-queue/no-batching", NEHALEM,
         ServerConfig(multi_queue=False, kp=1, kn=1)),
        ("nehalem/single-queue/batching", NEHALEM,
         ServerConfig(multi_queue=False, kp=32, kn=16)),
        ("nehalem/multi-queue/batching", NEHALEM,
         ServerConfig(multi_queue=True, kp=32, kn=16)),
    ]
    rows = []
    for label, spec, config in cases:
        result = max_loss_free_rate(
            WorkloadSpec.fixed(packet_bytes, app="forwarding"),
            spec=spec, config=config)
        rows.append({"label": label, "rate_mpps": result.rate_mpps,
                     "rate_gbps": result.rate_gbps,
                     "bottleneck": result.bottleneck})
    return rows
