"""The batching model of Table 1 and latency/jitter trade-offs (Sec. 4.2).

Poll-driven batching (``kp``: packets per Click poll) amortizes ring and
socket-buffer bookkeeping; NIC-driven batching (``kn``: descriptors per
PCIe transaction) amortizes bus transactions.  Both reduce cycles/packet;
``kn`` also adds up to ``kn - 1`` packet-times of queueing latency.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ..costs import DEFAULT_COST_MODEL
from ..hw.presets import NEHALEM
from ..hw.server import ServerSpec
from ..workloads.spec import WorkloadSpec
from .loads import ServerConfig
from .throughput import max_loss_free_rate


def batching_rate_bps(kp: int, kn: int, packet_bytes: int = 64,
                      spec: ServerSpec = NEHALEM) -> float:
    """Loss-free forwarding rate at a given batching configuration."""
    config = ServerConfig(multi_queue=True, kp=kp, kn=kn)
    result = max_loss_free_rate(
        WorkloadSpec.fixed(packet_bytes, app="forwarding"),
        spec=spec, config=config)
    return result.rate_bps


def batching_sweep(configs: Iterable[Tuple[int, int]] = ((1, 1), (32, 1), (32, 16)),
                   packet_bytes: int = 64,
                   spec: ServerSpec = NEHALEM) -> List[dict]:
    """Reproduce Table 1: one row per (kp, kn) configuration."""
    rows = []
    for kp, kn in configs:
        rate = batching_rate_bps(kp, kn, packet_bytes, spec)
        rows.append({
            "kp": kp,
            "kn": kn,
            "rate_gbps": rate / 1e9,
            "cycles_per_packet":
                DEFAULT_COST_MODEL.app_vector("forwarding",
                                              packet_bytes).cpu_cycles
                + DEFAULT_COST_MODEL.bookkeeping_cycles(kp, kn),
        })
    return rows


def batching_added_latency_sec(kn: int, packet_rate_pps: float) -> float:
    """Worst-case extra queueing delay from NIC-driven batching.

    A packet may wait for ``kn - 1`` successors before its descriptor batch
    is relayed (Sec. 4.2's latency caveat); at high rates the wait is
    nanoseconds, at low rates it motivates the batching timeout.
    """
    if kn < 1:
        raise ValueError("kn must be >= 1")
    if packet_rate_pps <= 0:
        raise ValueError("packet rate must be positive")
    return (kn - 1) / packet_rate_pps


def effective_kn_with_timeout(kn: int, packet_rate_pps: float,
                              timeout_sec: float) -> float:
    """Average batch size when a batching timeout caps the wait.

    Models the driver feature the paper plans ("a timeout to limit the
    amount of time a packet can wait"): if fewer than ``kn`` packets arrive
    within the timeout, the batch is flushed early.
    """
    if timeout_sec <= 0:
        raise ValueError("timeout must be positive")
    expected_arrivals = packet_rate_pps * timeout_sec
    return max(1.0, min(float(kn), expected_arrivals))
