"""Performance prediction for user-defined packet-processing applications.

The paper's closing challenge (Sec. 8): the programmer should be able to
add new functionality *and predict its performance implications*.  This
module is that API: describe a new application's per-packet work --
instructions and CPI (as a profiler would report), or cycles directly,
plus per-byte compute and extra memory touches -- and get back an
:class:`repro.calibration.AppCost` that plugs into the whole model stack
(throughput solver, bottleneck deconstruction, cluster projections).
"""

from __future__ import annotations

from .. import calibration as cal
from ..costs import CACHE_LINE_BYTES, DEFAULT_COST_MODEL

__all__ = ["CACHE_LINE_BYTES", "define_application", "predict"]


def define_application(name: str,
                       instructions_per_packet: float = None,
                       cycles_per_instruction: float = 1.0,
                       cycles_per_packet: float = None,
                       cycles_per_byte: float = 0.0,
                       extra_memory_lines: float = 0.0,
                       touches_payload: bool = True) -> cal.AppCost:
    """Build an :class:`AppCost` for a new packet-processing application.

    Parameters
    ----------
    instructions_per_packet, cycles_per_instruction:
        The profiler view (Table 3 style); alternatively give
        ``cycles_per_packet`` directly.  The cost is *in addition to* the
        minimal-forwarding base (every application moves the packet).
    cycles_per_byte:
        Compute that scales with packet size (e.g. encryption, DPI).
    extra_memory_lines:
        Cache lines of additional random memory per packet (lookup
        structures, flow tables) -- charged on the memory buses.
    touches_payload:
        Whether the application reads the payload (adds per-byte memory
        traffic beyond the forwarding path's).

    Delegates to :meth:`repro.costs.CostModel.derive_application` on the
    shared default model.
    """
    return DEFAULT_COST_MODEL.derive_application(
        name,
        instructions_per_packet=instructions_per_packet,
        cycles_per_instruction=cycles_per_instruction,
        cycles_per_packet=cycles_per_packet,
        cycles_per_byte=cycles_per_byte,
        extra_memory_lines=extra_memory_lines,
        touches_payload=touches_payload,
    )


def predict(app: cal.AppCost, packet_bytes: int = 64,
            cluster_nodes: int = 0) -> dict:
    """One-call performance prediction for a defined application.

    Returns the single-server saturation (rate, bottleneck) and -- when
    ``cluster_nodes`` is given -- the aggregate a RouteBricks cluster of
    that size would reach running this application at its input nodes.
    """
    from ..workloads.spec import WorkloadSpec
    from .throughput import max_loss_free_rate

    result = max_loss_free_rate(WorkloadSpec.fixed(packet_bytes, app=app))
    out = {
        "application": app.name,
        "packet_bytes": packet_bytes,
        "server_gbps": result.rate_gbps,
        "server_mpps": result.rate_mpps,
        "bottleneck": result.bottleneck,
        "cycles_per_packet": result.loads.cpu_cycles,
    }
    if cluster_nodes:
        # Per-ingress-packet work: this app at the input node, minimal
        # forwarding at the output node, flowlet tracking.
        book = cal.DEFAULT_BOOKKEEPING_CYCLES
        cycles = (app.cpu_cycles(packet_bytes) + book
                  + cal.MINIMAL_FORWARDING.cpu_cycles(packet_bytes) + book
                  + cal.REORDER_AVOIDANCE_CYCLES)
        per_node_pps = cal.NEHALEM_TOTAL_CYCLES_PER_SEC / cycles
        per_node_bps = per_node_pps * packet_bytes * 8
        from ..core.router import RB4_NIC_EFFECTIVE_BPS
        nic_bps = RB4_NIC_EFFECTIVE_BPS / (1 + 1 / (cluster_nodes - 1))
        per_port = min(per_node_bps, nic_bps, cal.PORT_RATE_BPS)
        out["cluster_nodes"] = cluster_nodes
        out["cluster_gbps"] = per_port * cluster_nodes / 1e9
    return out
