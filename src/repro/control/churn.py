"""Timestamped BGP-like update streams for the control plane.

A :class:`ChurnSchedule` is a time-ordered sequence of announce /
re-announce / withdraw operations against the master RIB, mirroring what
a BGP feed does to a default-free-zone router.  Two shapes matter for
the convergence experiments:

* **measured rate** -- updates as a Poisson process at a configurable
  mean rate, the steady-state churn a DFZ table sees (tens of updates
  per second on average, circa 2009);
* **bursts** -- clumps of updates at intervals, the path-exploration
  storms that follow a session reset or a prefix flap.

The generator draws prefix lengths from the same distribution as the
synthetic RIB (:data:`~repro.routing.rib_gen.PREFIX_LENGTH_MIX`) and
keeps its own view of the installed set, so withdrawals always name an
announced prefix and fresh announcements never collide.  Deterministic
per seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

from ..errors import ConfigurationError
from ..net.addresses import Prefix
from ..routing.rib_gen import PREFIX_LENGTH_MIX


@dataclass(frozen=True)
class TimedUpdate:
    """One control-plane update at a simulation timestamp.

    ``port is None`` withdraws the prefix; otherwise the prefix is
    announced on (or moved to) that external port.
    """

    time: float
    prefix: Prefix
    port: Optional[int]

    @property
    def is_withdrawal(self) -> bool:
        return self.port is None


class _UpdateMixer:
    """Stateful announce/re-announce/withdraw mix over an installed set."""

    def __init__(self, installed: Iterable[Prefix], num_ports: int,
                 withdraw_fraction: float, reannounce_fraction: float,
                 rng: random.Random):
        if not 0 <= withdraw_fraction <= 1 \
                or not 0 <= reannounce_fraction <= 1:
            raise ConfigurationError("fractions must be in [0, 1]")
        if withdraw_fraction + reannounce_fraction > 1:
            raise ConfigurationError("fractions exceed 1")
        if num_ports < 1:
            raise ConfigurationError("need >= 1 port")
        self.installed: List[Prefix] = list(installed)
        self.seen = set(self.installed)
        if len(self.seen) != len(self.installed):
            raise ConfigurationError("installed prefixes must be unique")
        self.num_ports = num_ports
        self.withdraw_fraction = withdraw_fraction
        self.reannounce_fraction = reannounce_fraction
        self.rng = rng
        self._lengths, self._weights = zip(*PREFIX_LENGTH_MIX)

    def _fresh_prefix(self) -> Prefix:
        while True:
            length = self.rng.choices(self._lengths,
                                      weights=self._weights)[0]
            addr = (self.rng.randint(1, 223) << 24) \
                | self.rng.getrandbits(24)
            prefix = Prefix.from_address(addr, length)
            if prefix not in self.seen:
                return prefix

    def next_op(self):
        """(prefix, port-or-None) for the next update."""
        roll = self.rng.random()
        if roll < self.withdraw_fraction and self.installed:
            index = self.rng.randrange(len(self.installed))
            prefix = self.installed.pop(index)
            self.seen.discard(prefix)
            return prefix, None
        port = self.rng.randrange(self.num_ports)
        if roll < self.withdraw_fraction + self.reannounce_fraction \
                and self.installed:
            prefix = self.installed[self.rng.randrange(len(self.installed))]
            return prefix, port
        prefix = self._fresh_prefix()
        self.installed.append(prefix)
        self.seen.add(prefix)
        return prefix, port


class ChurnSchedule:
    """A time-ordered stream of :class:`TimedUpdate` operations."""

    def __init__(self, updates: Sequence[TimedUpdate]):
        updates = list(updates)
        for earlier, later in zip(updates, updates[1:]):
            if later.time < earlier.time:
                raise ConfigurationError(
                    "updates must be time-ordered (%g after %g)"
                    % (later.time, earlier.time))
        self._updates = updates

    def __len__(self) -> int:
        return len(self._updates)

    def __iter__(self) -> Iterator[TimedUpdate]:
        return iter(self._updates)

    @property
    def duration_sec(self) -> float:
        """Span from the first to the last update."""
        if not self._updates:
            return 0.0
        return self._updates[-1].time - self._updates[0].time

    @property
    def mean_rate_per_sec(self) -> float:
        """Mean update rate over the schedule's span."""
        span = self.duration_sec
        return (len(self._updates) - 1) / span if span > 0 else 0.0

    # -- constructors --------------------------------------------------------

    @classmethod
    def measured_rate(cls, installed: Iterable[Prefix], *,
                      rate_per_sec: float, duration_sec: float,
                      num_ports: int = 4,
                      withdraw_fraction: float = 0.3,
                      reannounce_fraction: float = 0.4,
                      start_sec: float = 0.0,
                      seed: int = 0) -> "ChurnSchedule":
        """Poisson-process churn at a mean ``rate_per_sec`` over
        ``duration_sec`` (the steady-state BGP-feed shape)."""
        if rate_per_sec <= 0 or duration_sec <= 0:
            raise ConfigurationError("rate and duration must be positive")
        rng = random.Random(seed)
        mixer = _UpdateMixer(installed, num_ports,
                             withdraw_fraction, reannounce_fraction, rng)
        updates = []
        now = start_sec
        horizon = start_sec + duration_sec
        while True:
            now += rng.expovariate(rate_per_sec)
            if now >= horizon:
                break
            prefix, port = mixer.next_op()
            updates.append(TimedUpdate(time=now, prefix=prefix, port=port))
        return cls(updates)

    @classmethod
    def bursts(cls, installed: Iterable[Prefix], *,
               burst_updates: int, interval_sec: float, bursts: int,
               num_ports: int = 4,
               withdraw_fraction: float = 0.3,
               reannounce_fraction: float = 0.4,
               start_sec: float = 0.0,
               seed: int = 0) -> "ChurnSchedule":
        """Update storms: ``bursts`` clumps of ``burst_updates`` back-to-
        back operations, one clump every ``interval_sec`` (session-reset
        path exploration)."""
        if burst_updates < 1 or bursts < 1:
            raise ConfigurationError("burst sizes must be >= 1")
        if interval_sec <= 0:
            raise ConfigurationError("interval must be positive")
        rng = random.Random(seed)
        mixer = _UpdateMixer(installed, num_ports,
                             withdraw_fraction, reannounce_fraction, rng)
        updates = []
        for burst in range(bursts):
            at = start_sec + burst * interval_sec
            for _ in range(burst_updates):
                prefix, port = mixer.next_op()
                updates.append(TimedUpdate(time=at, prefix=prefix,
                                           port=port))
        return cls(updates)
