"""Apply a :class:`~repro.control.churn.ChurnSchedule` on the DES clock.

The driver schedules every update at its timestamp against the
:class:`~repro.core.control.ClusterManager`'s master RIB, then batches
per-node FIB synchronization on a control tick ``sync_interval_sec``
after the latest unsynced update (modelling the control channel's
distribution latency).  Synchronization is *incremental* --
``ClusterManager.sync_node`` replays the delta journal into each node's
live table with ``Dir24_8`` insert/remove, never a rebuild -- so
forwarding events interleave with update application on the same
simulation clock.

Convergence bookkeeping: each applied update is pending until the tick
that leaves no node stale; the lag from update arrival to that tick is
one convergence sample (``convergence_usec`` histogram when metrics are
on, running mean/max always).
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError
from ..obs.metrics import active_registry
from .churn import ChurnSchedule

#: Default control-channel distribution latency: how long after an
#: update the per-node FIB sync tick fires (and how often syncs batch
#: under sustained churn).
DEFAULT_SYNC_INTERVAL_SEC = 100e-6


class ChurnDriver:
    """Arms a churn schedule into a simulator; collects convergence."""

    def __init__(self, manager, schedule: ChurnSchedule,
                 sync_interval_sec: float = DEFAULT_SYNC_INTERVAL_SEC,
                 metrics=None):
        if sync_interval_sec <= 0:
            raise ConfigurationError("sync interval must be positive")
        self.manager = manager
        self.schedule = schedule
        self.sync_interval_sec = sync_interval_sec
        self.sim = None
        # Update accounting.
        self.updates_offered = len(schedule)
        self.updates_applied = 0
        self.announced = 0
        self.reannounced = 0
        self.withdrawn = 0
        self.skipped = 0
        # FIB-side accounting (summed over nodes).
        self.fib_ops = 0
        self.rebuilds = 0
        self.sync_ticks = 0
        # Convergence bookkeeping.
        self.convergence_count = 0
        self.convergence_sum = 0.0
        self.convergence_max = 0.0
        self.unconverged = 0
        self.last_update_at: Optional[float] = None
        self.converged_at: Optional[float] = None
        self._pending = []
        self._tick_scheduled = False
        registry = metrics if metrics is not None else active_registry()
        self.obs = registry if registry.enabled else None
        self._observe_convergence = (
            registry.histogram(
                "convergence_usec",
                help="per-update FIB convergence lag").bind()
            if self.obs is not None else None)

    # -- wiring --------------------------------------------------------------

    def arm(self, sim) -> None:
        """Schedule every update (and the sync ticks they trigger)."""
        if self.sim is not None:
            raise ConfigurationError("driver is already armed")
        self.sim = sim
        for update in self.schedule:
            sim.schedule_timer_at(update.time,
                                  lambda u=update: self._apply(u))

    # -- update application --------------------------------------------------

    def _apply(self, update) -> None:
        manager = self.manager
        prefix = update.prefix
        if update.is_withdrawal:
            if prefix not in manager.rib:
                self.skipped += 1
                return
            manager.withdraw(prefix)
            self.withdrawn += 1
        else:
            existed = prefix in manager.rib
            try:
                manager.announce(prefix, update.port)
            except ConfigurationError:
                # The port lost its owner mid-run (node removed): a real
                # feed would see the session drop; we skip the update.
                self.skipped += 1
                return
            if existed:
                self.reannounced += 1
            else:
                self.announced += 1
        self.updates_applied += 1
        now = self.sim.now
        self.last_update_at = now
        self._pending.append(now)
        if not self._tick_scheduled:
            self._tick_scheduled = True
            self.sim.schedule_timer(self.sync_interval_sec, self._sync_tick)

    def _sync_tick(self) -> None:
        self._tick_scheduled = False
        self.sync_ticks += 1
        manager = self.manager
        now = self.sim.now
        for node_id in manager.stale_nodes():
            result = manager.sync_node(node_id)
            self.fib_ops += result.ops_applied
            self.rebuilds += int(result.rebuilt)
        # Everything pending is now distributed: sample convergence lag.
        for arrived in self._pending:
            lag = now - arrived
            self.convergence_count += 1
            self.convergence_sum += lag
            if lag > self.convergence_max:
                self.convergence_max = lag
            if self._observe_convergence is not None:
                self._observe_convergence(lag * 1e6)
        self._pending.clear()
        self.converged_at = now

    # -- results -------------------------------------------------------------

    @property
    def mean_convergence_sec(self) -> float:
        return (self.convergence_sum / self.convergence_count
                if self.convergence_count else 0.0)

    @property
    def final_convergence_sec(self) -> float:
        """Lag from the last applied update until every FIB was current
        (NaN when the run ended with updates still undistributed)."""
        if self.last_update_at is None or self.converged_at is None \
                or self._pending:
            return float("nan")
        return self.converged_at - self.last_update_at

    def finalize(self) -> None:
        """Close the books after the simulation ran (called by
        ``RouteBricksRouter.simulate``)."""
        import math

        self.unconverged = len(self._pending)
        final = self.final_convergence_sec
        if self.obs is not None and not math.isnan(final):
            self.obs.gauge(
                "convergence_seconds",
                help="lag from the last update to full FIB distribution",
            ).set(final)
