"""End-to-end live-churn experiment: forwarding under FIB updates.

This is the control-plane counterpart of the fault-injection harness: it
builds an N-node cluster with a :class:`~repro.core.control.ClusterManager`,
announces a synthetic RIB (the same DFZ prefix-length mix as
:func:`~repro.routing.rib_gen.generate_rib`, up to full-Internet scale),
pushes initial FIBs, and then runs forwarding traffic *while* a
:class:`~repro.control.churn.ChurnSchedule` streams announce/withdraw
updates through the manager into every node's live ``Dir24_8`` table --
incremental insert/remove on the simulation clock, never a rebuild.

The result reports convergence (mean / max / final lag from update
arrival to full FIB distribution), forwarding statistics including the
latency tail during churn, and a post-run consistency verdict: every
node's table is probed against an independently built binary-trie
reference of the master RIB.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.control import ClusterManager
from ..core.router import RouteBricksRouter, SimulationReport
from ..errors import ConfigurationError
from ..net.packet import Packet
from ..results import RunResult
from ..routing.rib_gen import generate_prefixes
from ..routing.trie import BinaryTrie
from .churn import ChurnSchedule
from .driver import DEFAULT_SYNC_INTERVAL_SEC, ChurnDriver

#: A full-Internet-scale synthetic RIB.  The 2009 DFZ held ~300 K
#: prefixes; 1 M is the headroom figure the generator is sized for.
#: Experiments default far smaller -- pass ``routes=INTERNET_RIB_ENTRIES``
#: to run at full scale.
INTERNET_RIB_ENTRIES = 1_000_000


def announce_rib(manager: ClusterManager, num_entries: int,
                 seed: int = 1) -> int:
    """Announce a synthetic RIB into ``manager``, round-robin over its
    ports; returns the resulting master version."""
    ports = manager.ports()
    if not ports:
        raise ConfigurationError("manager has no ports to announce on")
    for i, prefix in enumerate(generate_prefixes(num_entries, seed)):
        manager.announce(prefix, ports[i % len(ports)])
    return manager.rib_version


def build_cluster(num_nodes: int = 4,
                  seed: int = 0) -> Tuple[RouteBricksRouter, ClusterManager]:
    """An N-node router plus a manager with one external port per node."""
    router = RouteBricksRouter(num_nodes=num_nodes, seed=seed)
    manager = ClusterManager(port_rate_bps=router.port_rate_bps)
    for port in range(num_nodes):
        manager.add_node(external_port=port)
    return router, manager


def probe_addresses(manager: ClusterManager, num: int, seed: int = 2,
                    hit_fraction: float = 0.9) -> List[int]:
    """Deterministic probe addresses: mostly host-randomized picks from
    the master RIB, the rest uniform (likely misses)."""
    rng = random.Random(seed)
    prefixes = list(manager.rib)
    probes = []
    for _ in range(num):
        if prefixes and rng.random() < hit_fraction:
            prefix = prefixes[rng.randrange(len(prefixes))]
            host_bits = 32 - prefix.length
            probes.append(prefix.network.value
                          | (rng.getrandbits(host_bits) if host_bits else 0))
        else:
            probes.append(rng.getrandbits(32))
    return probes


def verify_fibs(manager: ClusterManager, probes: Sequence[int]) -> bool:
    """Every live node's (incrementally updated) FIB matches an
    independently built trie reference of the master RIB on ``probes``.

    The reference excludes routes whose owner is dead or removed, the
    same rule :meth:`ClusterManager.build_fib` applies -- but it is a
    plain :class:`BinaryTrie`, so a bug in the DIR-24-8 update path
    cannot hide in both sides of the comparison.
    """
    live = set(manager.live_nodes())
    reference = BinaryTrie()
    for prefix, port in manager.rib.items():
        owner = manager.owner_of(port)
        if owner is None or owner not in live:
            continue
        reference.insert(prefix, owner)
    for node_id in sorted(live):
        fib = manager.fib_of(node_id)
        for probe in probes:
            route = fib.lookup(probe)
            got = None if route is None else route.port
            if got != reference.lookup(probe):
                return False
    return True


@dataclass(frozen=True)
class ChurnReport(RunResult):
    """Outcome of one :func:`run_churn` experiment."""

    _summary_fields = ("routes", "updates_applied", "update_rate_per_sec",
                       "mean_convergence_usec", "final_convergence_usec",
                       "consistent")

    nodes: int
    routes: int
    duration_sec: float
    #: Mean offered update rate over the schedule's span.
    update_rate_per_sec: float
    updates_offered: int
    updates_applied: int
    announced: int
    reannounced: int
    withdrawn: int
    skipped: int
    #: Per-node FIB insert/remove operations replayed from the journal.
    fib_ops: int
    rebuilds: int
    sync_ticks: int
    mean_convergence_sec: float
    max_convergence_sec: float
    #: Lag from the last update to full distribution (NaN if the run
    #: ended before the final sync tick).
    final_convergence_sec: float
    unconverged: int
    #: Post-run: all live FIBs match the trie reference on the probes.
    consistent: bool
    verified_probes: int
    forwarding: SimulationReport

    @property
    def mean_convergence_usec(self) -> float:
        return self.mean_convergence_sec * 1e6

    @property
    def final_convergence_usec(self) -> float:
        return self.final_convergence_sec * 1e6


def run_churn(num_nodes: int = 4, *,
              routes: int = 20_000,
              update_rate_per_sec: float = 200_000.0,
              duration_sec: float = 2e-3,
              burst: Optional[Tuple[int, float, int]] = None,
              load: float = 0.2,
              packet_bytes: int = 256,
              hit_fraction: float = 0.95,
              sync_interval_sec: float = DEFAULT_SYNC_INTERVAL_SEC,
              tail_sec: float = 1e-3,
              faults=None,
              seed: int = 0,
              verify_probes: int = 256,
              metrics=None,
              schedule: Optional[ChurnSchedule] = None) -> ChurnReport:
    """Forward traffic through an ``num_nodes``-node cluster while the
    control plane streams RIB churn into the live per-node FIBs.

    ``burst`` switches the schedule from Poisson measured-rate to storm
    shape: ``(burst_updates, interval_sec, bursts)``.  ``faults``
    optionally scripts node/link failures on the same clock, so a single
    run exercises link-cut -> reroute -> FIB push -> convergence.
    ``schedule`` overrides the generated churn stream entirely.

    Deterministic for a given ``seed``: two runs yield bit-identical
    reports.
    """
    if routes < 1:
        raise ConfigurationError("need at least one route")
    if load <= 0 or duration_sec <= 0:
        raise ConfigurationError("load and duration must be positive")
    router, manager = build_cluster(num_nodes, seed=seed)
    announce_rib(manager, routes, seed=seed + 1)
    manager.push_fibs()

    if schedule is None:
        if burst is not None:
            burst_updates, interval_sec, bursts = burst
            schedule = ChurnSchedule.bursts(
                manager.rib, burst_updates=burst_updates,
                interval_sec=interval_sec, bursts=bursts,
                num_ports=num_nodes, seed=seed + 2)
        else:
            schedule = ChurnSchedule.measured_rate(
                manager.rib, rate_per_sec=update_rate_per_sec,
                duration_sec=duration_sec, num_ports=num_nodes,
                seed=seed + 2)
    driver = ChurnDriver(manager, schedule,
                         sync_interval_sec=sync_interval_sec,
                         metrics=metrics)

    # Traffic: destinations sampled from the initial RIB (host bits
    # randomized), evenly paced to the offered load, ingress round-robin.
    # Egress is None -- with route_via_fib the ingress node resolves it
    # from its live FIB at arrival time.
    per_node_pps = load * router.port_rate_bps / (8.0 * packet_bytes)
    num_packets = max(1, int(per_node_pps * num_nodes * duration_sec))
    spacing = duration_sec / num_packets
    rng = random.Random(seed + 3)
    prefixes = list(manager.rib)
    events = []
    for i in range(num_packets):
        if rng.random() < hit_fraction:
            prefix = prefixes[rng.randrange(len(prefixes))]
            host_bits = 32 - prefix.length
            dst = prefix.network.value | (
                rng.getrandbits(host_bits) if host_bits else 0)
        else:
            dst = rng.getrandbits(32)
        src = (10 << 24) | (i & 0xFFFF)
        packet = Packet.udp(src, dst, length=packet_bytes)
        events.append((i * spacing, i % num_nodes, None, packet))

    horizon = duration_sec + max(tail_sec, 2 * sync_interval_sec)
    forwarding = router.simulate(events, until=horizon,
                                 manager=manager, faults=faults,
                                 route_via_fib=True, churn=driver,
                                 metrics=metrics)

    probes = probe_addresses(manager, verify_probes, seed=seed + 4)
    consistent = verify_fibs(manager, probes)

    return ChurnReport(
        nodes=num_nodes,
        routes=routes,
        duration_sec=duration_sec,
        update_rate_per_sec=schedule.mean_rate_per_sec,
        updates_offered=driver.updates_offered,
        updates_applied=driver.updates_applied,
        announced=driver.announced,
        reannounced=driver.reannounced,
        withdrawn=driver.withdrawn,
        skipped=driver.skipped,
        fib_ops=driver.fib_ops,
        rebuilds=driver.rebuilds,
        sync_ticks=driver.sync_ticks,
        mean_convergence_sec=driver.mean_convergence_sec,
        max_convergence_sec=driver.convergence_max,
        final_convergence_sec=driver.final_convergence_sec,
        unconverged=driver.unconverged,
        consistent=consistent,
        verified_probes=len(probes),
        forwarding=forwarding,
    )
