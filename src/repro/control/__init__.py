"""Live control plane: BGP-like churn streamed into running FIBs.

The :mod:`repro.core.control` module owns cluster membership and the
master RIB; this package drives it *during* a simulation -- timestamped
update streams (:class:`ChurnSchedule`), a DES-clock driver that applies
them and syncs per-node ``Dir24_8`` tables incrementally
(:class:`ChurnDriver`), and an end-to-end experiment runner
(:func:`run_churn`) measuring convergence and the forwarding latency
tail under churn.
"""

from .churn import ChurnSchedule, TimedUpdate
from .driver import DEFAULT_SYNC_INTERVAL_SEC, ChurnDriver
from .runner import (INTERNET_RIB_ENTRIES, ChurnReport, announce_rib,
                     build_cluster, probe_addresses, run_churn, verify_fibs)

__all__ = [
    "ChurnSchedule",
    "TimedUpdate",
    "ChurnDriver",
    "DEFAULT_SYNC_INTERVAL_SEC",
    "INTERNET_RIB_ENTRIES",
    "ChurnReport",
    "announce_rib",
    "build_cluster",
    "probe_addresses",
    "run_churn",
    "verify_fibs",
]
