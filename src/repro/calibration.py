"""Calibrated constants tying the simulation to the paper's measurements.

Every constant in this module is either taken verbatim from the RouteBricks
paper (SOSP 2009) or derived from published numbers; each one carries a
provenance note.  The performance model (`repro.perfmodel`) and the cluster
simulator (`repro.core`) consume these constants, so the reproduction's
operating points (Tables 1-3, Figs 6-10, and the RB4 results in Sec. 6.2)
follow from the calibration below rather than from per-experiment fudging.

Derivations
-----------

*CPU cycle budget.*  The evaluation server is a dual-socket Nehalem with
four 2.8 GHz cores per socket: 8 x 2.8e9 = 22.4e9 cycles/s (Sec. 4.1).

*Batching model (Table 1).*  We model minimal-forwarding cycles/packet as

    cycles(kp, kn) = A + B/kp + C/kn

where ``kp`` is the poll-driven batch size and ``kn`` the NIC-driven batch
size.  Table 1 gives three operating points for 64 B packets on 8 cores:

    (kp, kn) = ( 1,  1) -> 1.46 Gbps = 2.852 Mpps -> 7855.0 cycles/packet
    (kp, kn) = (32,  1) -> 4.97 Gbps = 9.707 Mpps -> 2307.6 cycles/packet
    (kp, kn) = (32, 16) -> 9.77 Gbps = 19.09 Mpps -> 1173.6 cycles/packet

Solving the three equations gives A = 919.0, B = 5726.4, C = 1209.6
(cycles); the model then reproduces Table 1 exactly by construction.

*Application processing costs (Fig. 8, Table 3).*  At the default batching
(kp=32, kn=16) the 64 B saturation rates in Fig. 8 imply total
cycles/packet of

    minimal forwarding:  9.77 Gbps -> 1174   (matches the batching model)
    IP routing:          6.35 Gbps -> 1806
    IPsec:               1.40 Gbps -> 8192

Subtracting the book-keeping terms (B/kp + C/kn = 254.6) gives the pure
processing cost at 64 B.  Table 3's instructions/packet and CPI are kept as
reported (they differ from the rate-derived cycle counts by ~5 %, an
inconsistency present in the paper itself; we note it in EXPERIMENTS.md).

*Packet-size scaling (Sec. 5.3, item 2).*  The paper reports that a 1024 B
packet imposes 1.6x the CPU load, 6x the memory-bus load, and 11x the
socket-I/O load of a 64 B packet.  Modeling each load as affine in packet
size P (load = a + b*P) and anchoring the 64 B points fixes the
coefficients used below.

*RB4 (Sec. 6.2).*  With 64 B packets RB4 forwards 12 Gbps, i.e. 3 Gbps per
server, below the expected 12.7-19.4 Gbps window; the gap is attributed to
the reordering-avoidance bookkeeping.  Solving
   R_pps * (rtr + fwd + phi) = 22.4e9  at R = 3 Gbps (5.86 Mpps)
gives phi = 842 cycles/packet of flowlet-tracking overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from .units import gbps, ghz

# --------------------------------------------------------------------------
# Server hardware (Sec. 4.1, Table 2)
# --------------------------------------------------------------------------

#: Nehalem prototype: sockets x cores x clock.
NEHALEM_SOCKETS = 2
NEHALEM_CORES_PER_SOCKET = 4
NEHALEM_CLOCK_HZ = ghz(2.8)
NEHALEM_L3_BYTES = 8 * 1024 * 1024
NEHALEM_TOTAL_CYCLES_PER_SEC = (
    NEHALEM_SOCKETS * NEHALEM_CORES_PER_SOCKET * NEHALEM_CLOCK_HZ
)  # 22.4e9

#: Shared-bus Xeon reference server (Sec. 4.2): eight 2.4 GHz cores.
XEON_SOCKETS = 2
XEON_CORES_PER_SOCKET = 4
XEON_CLOCK_HZ = ghz(2.4)

#: Table 2 nominal capacities (bits/second unless noted).
MEMORY_NOMINAL_BPS = gbps(410)          # #mem-buses x bus capacity
MEMORY_EMPIRICAL_BPS = gbps(262)        # random-access stream benchmark
INTERSOCKET_NOMINAL_BPS = gbps(200)     # QPI
INTERSOCKET_EMPIRICAL_BPS = gbps(144.34)
IO_NOMINAL_BPS = gbps(2 * 200)          # two socket-I/O links
IO_EMPIRICAL_BPS = gbps(117)            # min. forwarding with 1024 B packets
PCIE_NOMINAL_BPS = gbps(64)             # 2 NICs x 8 lanes x 2 Gbps/direction
PCIE_EMPIRICAL_BPS = gbps(50.8)

#: NIC limits (Sec. 4.1): each dual-port 10 G NIC shares one PCIe1.1 x8 slot
#: and sustains at most 12.3 Gbps of payload; two NICs -> 24.6 Gbps max input.
NIC_PAYLOAD_LIMIT_BPS = gbps(12.3)
NUM_NICS = 2
MAX_INPUT_BPS = NUM_NICS * NIC_PAYLOAD_LIMIT_BPS  # 24.6 Gbps
PORT_RATE_BPS = gbps(10)

#: PCIe1.1 transaction parameters (Table 1 caption): max payload 256 B,
#: packet descriptors are 16 B, so at most 16 descriptors per transaction.
PCIE_MAX_PAYLOAD_BYTES = 256
DESCRIPTOR_BYTES = 16
MAX_NIC_BATCH = PCIE_MAX_PAYLOAD_BYTES // DESCRIPTOR_BYTES  # 16

# --------------------------------------------------------------------------
# Batching model (Table 1)
# --------------------------------------------------------------------------

#: cycles(kp, kn) = BOOK_BASE + BOOK_POLL/kp + BOOK_NIC/kn for 64 B minimal
#: forwarding.  Derived above from Table 1's three operating points.
BOOK_BASE_CYCLES = 919.0
BOOK_POLL_CYCLES = 5726.4
BOOK_NIC_CYCLES = 1209.6

#: Default batching parameters (Sec. 4.2): Click poll batch and NIC batch.
DEFAULT_KP = 32
DEFAULT_KN = 16


def bookkeeping_cycles(kp: int = DEFAULT_KP, kn: int = DEFAULT_KN) -> float:
    """Amortized per-packet book-keeping cost (excluding BOOK_BASE).

    BOOK_BASE is the irreducible per-packet work that remains at infinite
    batch sizes; it is part of the application processing cost below.
    """
    if kp < 1 or kn < 1:
        raise ValueError("batch sizes must be >= 1 (got kp=%r, kn=%r)" % (kp, kn))
    return BOOK_POLL_CYCLES / kp + BOOK_NIC_CYCLES / kn


#: Book-keeping at the default batching configuration: 5726.4/32 + 1209.6/16.
DEFAULT_BOOKKEEPING_CYCLES = bookkeeping_cycles()  # 254.6

#: Cycles burned by a poll that finds no packets (Sec. 5.3's "ce").  Click
#: polls continuously, so raw CPU utilization is always 100 %; both the
#: timed simulation and the empty-poll correction in the utilization
#: accounting (repro.analysis.bottleneck.cpu_load_from_polling) use this
#: constant to separate useful work from idle polling.
EMPTY_POLL_CYCLES = 120.0

# --------------------------------------------------------------------------
# Application processing costs (Fig. 8, Table 3, Sec. 5.3 item 2)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AppCost:
    """Per-packet resource cost of a packet-processing application.

    CPU cycles and each bus load are affine in the packet size P (bytes):
    ``value = base + per_byte * P``.  The CPU cost excludes the batching
    book-keeping terms, which are added by the performance model according
    to the configured (kp, kn).
    """

    name: str
    cpu_base_cycles: float
    cpu_per_byte_cycles: float
    mem_base_bytes: float
    mem_per_byte: float
    io_base_bytes: float
    io_per_byte: float
    pcie_base_bytes: float
    pcie_per_byte: float
    qpi_base_bytes: float
    qpi_per_byte: float
    instructions_per_packet: float  # Table 3 (as reported)
    cycles_per_instruction: float   # Table 3 (as reported)

    def cpu_cycles(self, packet_bytes: float) -> float:
        """Application CPU cycles for one packet of ``packet_bytes``."""
        return self.cpu_base_cycles + self.cpu_per_byte_cycles * packet_bytes

    def mem_bytes(self, packet_bytes: float) -> float:
        """Memory-bus bytes moved per packet."""
        return self.mem_base_bytes + self.mem_per_byte * packet_bytes

    def io_bytes(self, packet_bytes: float) -> float:
        """Socket-I/O link bytes moved per packet."""
        return self.io_base_bytes + self.io_per_byte * packet_bytes

    def pcie_bytes(self, packet_bytes: float) -> float:
        """PCIe bytes moved per packet (packet in+out plus descriptors)."""
        return self.pcie_base_bytes + self.pcie_per_byte * packet_bytes

    def qpi_bytes(self, packet_bytes: float) -> float:
        """Inter-socket link bytes moved per packet."""
        return self.qpi_base_bytes + self.qpi_per_byte * packet_bytes


# CPU scaling: total(1024)/total(64) = 1.6 at default batching (Sec. 5.3).
# For forwarding: total(64) = 1173.6 -> proc(64) = 919.0, total(1024) = 1877.8
# -> proc(1024) = 1623.2; slope = (1623.2 - 919.0)/960 = 0.7336 cycles/byte.
_FWD_CPU_PER_BYTE = 0.7336
_FWD_CPU_BASE = 919.0 - 64 * _FWD_CPU_PER_BYTE  # 872.0

# Memory scaling: mem(1024) = 6 x mem(64) => base = 128 * per_byte.  We take
# per_byte = 2.5 (DMA write + CPU read + CPU write + DMA read, partially
# absorbed by caches), giving mem(64) = 480 B/packet -- consistent with the
# ~1e3 B/packet magnitude of Fig. 10 (top).
_FWD_MEM_PER_BYTE = 2.5
_FWD_MEM_BASE = 128 * _FWD_MEM_PER_BYTE  # 320

# Socket-I/O scaling: io(1024) = 11 x io(64) => base = 32 * per_byte.  Each
# payload byte crosses the socket-I/O link twice (NIC->memory, memory->NIC).
_FWD_IO_PER_BYTE = 2.0
_FWD_IO_BASE = 32 * _FWD_IO_PER_BYTE  # 64

# PCIe: each payload byte crosses the bus twice (NIC->memory on RX,
# memory->NIC on TX) plus one 16 B descriptor each way and a batched
# TLP-header share.  The coefficients are consistent with the observed
# per-slot limit: 50.8 Gbps empirical / (2 B moved per payload byte)
# ~= 25 Gbps of payload ~= the measured 24.6 Gbps input ceiling.
_FWD_PCIE_PER_BYTE = 2.0
_FWD_PCIE_BASE = 2 * DESCRIPTOR_BYTES + 8

# Inter-socket: Sec. 4.2 measures ~23 % of memory accesses remote when
# descriptors live on the other socket; we charge a quarter of memory load.
_QPI_FRACTION = 0.25

MINIMAL_FORWARDING = AppCost(
    name="forwarding",
    cpu_base_cycles=_FWD_CPU_BASE,
    cpu_per_byte_cycles=_FWD_CPU_PER_BYTE,
    mem_base_bytes=_FWD_MEM_BASE,
    mem_per_byte=_FWD_MEM_PER_BYTE,
    io_base_bytes=_FWD_IO_BASE,
    io_per_byte=_FWD_IO_PER_BYTE,
    pcie_base_bytes=_FWD_PCIE_BASE,
    pcie_per_byte=_FWD_PCIE_PER_BYTE,
    qpi_base_bytes=_FWD_MEM_BASE * _QPI_FRACTION,
    qpi_per_byte=_FWD_MEM_PER_BYTE * _QPI_FRACTION,
    instructions_per_packet=1033,
    cycles_per_instruction=1.19,
)

# IP routing: 6.35 Gbps at 64 B -> 12.40 Mpps -> 1806 cycles/packet total;
# processing = 1806 - 254.6 = 1551.4 at 64 B.  The routing increment
# (trie/DIR-24-8 lookup, TTL/checksum update) is size-independent.
_RTR_CPU_BASE = 1551.4 - 64 * _FWD_CPU_PER_BYTE  # 1504.4

# Routing memory load: random-destination lookups in a 256 K-entry table
# miss in cache.  The base is fixed at 1684 B/packet (64 B point) so that a
# 4x-CPU / 2x-memory next-generation server becomes memory-bound at exactly
# the paper's projected 19.9 Gbps (Sec. 5.3, item 4):
#   2 x 262 Gbps / (38.85 Mpps) = 1684 B/packet.
_RTR_MEM_64B = 1684.0
_RTR_MEM_BASE = _RTR_MEM_64B - 64 * _FWD_MEM_PER_BYTE  # 1524

IP_ROUTING = AppCost(
    name="routing",
    cpu_base_cycles=_RTR_CPU_BASE,
    cpu_per_byte_cycles=_FWD_CPU_PER_BYTE,
    mem_base_bytes=_RTR_MEM_BASE,
    mem_per_byte=_FWD_MEM_PER_BYTE,
    io_base_bytes=_FWD_IO_BASE,
    io_per_byte=_FWD_IO_PER_BYTE,
    pcie_base_bytes=_FWD_PCIE_BASE,
    pcie_per_byte=_FWD_PCIE_PER_BYTE,
    qpi_base_bytes=_RTR_MEM_BASE * _QPI_FRACTION,
    qpi_per_byte=_FWD_MEM_PER_BYTE * _QPI_FRACTION,
    instructions_per_packet=1512,
    cycles_per_instruction=1.23,
)

# IPsec: 1.40 Gbps at 64 B -> 2.734 Mpps -> 8192 cycles/packet total;
# processing(64) = 7937.4.  AES-128 encryption scales with packet bytes at
# ~32 cycles/byte (software AES on 2008-era cores), chosen jointly with the
# Abilene mean packet size (740 B) to reproduce the 4.45 Gbps Abilene rate.
_IPSEC_CPU_PER_BYTE = 31.96
_IPSEC_CPU_BASE = 7937.4 - 64 * _IPSEC_CPU_PER_BYTE  # 5892.0

IPSEC = AppCost(
    name="ipsec",
    cpu_base_cycles=_IPSEC_CPU_BASE,
    cpu_per_byte_cycles=_IPSEC_CPU_PER_BYTE,
    mem_base_bytes=_FWD_MEM_BASE + 40,   # ESP header/trailer traffic
    mem_per_byte=_FWD_MEM_PER_BYTE,
    io_base_bytes=_FWD_IO_BASE,
    io_per_byte=_FWD_IO_PER_BYTE,
    pcie_base_bytes=_FWD_PCIE_BASE,
    pcie_per_byte=_FWD_PCIE_PER_BYTE,
    qpi_base_bytes=(_FWD_MEM_BASE + 40) * _QPI_FRACTION,
    qpi_per_byte=_FWD_MEM_PER_BYTE * _QPI_FRACTION,
    instructions_per_packet=14221,
    cycles_per_instruction=0.55,
)

APPLICATIONS = {
    "forwarding": MINIMAL_FORWARDING,
    "routing": IP_ROUTING,
    "ipsec": IPSEC,
}

# --------------------------------------------------------------------------
# Parallelism penalties (Fig. 6, Fig. 7)
# --------------------------------------------------------------------------

#: Toy-scenario per-packet processing cost for the "blind" forwarding path
#: used in Fig. 6 (simpler than the full router path): 1.7 Gbps at 64 B on
#: one core -> 3.32 Mpps -> 2.8e9/3.32e6 = 843 cycles/packet.
TOY_FWD_CYCLES = 843.0

#: Core-to-core handoff (pipeline synchronization) cost.  Fig. 6(a) with a
#: shared L3: 1.2 Gbps -> 2.344 Mpps -> stage cost 1194.5 cycles; with the
#: work split evenly (421.5 cycles/stage), the handoff costs 773 cycles.
PIPELINE_SYNC_CYCLES = 773.0

#: Additional cost when the handoff crosses L3 caches (compulsory misses):
#: Fig. 6(a') 0.6 Gbps -> 1.172 Mpps -> stage cost 2389 cycles -> +1194.5.
CROSS_CACHE_MISS_CYCLES = 1194.5

#: Lock + cache-line bouncing penalty per packet when a NIC queue is shared
#: by multiple cores.  Fig. 6(e): overlapping paths without multi-queue run
#: at 0.7 Gbps/FP -> 1.367 Mpps -> 2048 cycles -> penalty = 1205 cycles.
QUEUE_LOCK_CYCLES = 1205.0

#: Fraction of the toy path attributable to RX polling (used for the
#: split-traffic scenario (c) where one core polls and others process).
RX_FRACTION = 0.4

#: Fig. 7 configuration factors.  "Single queue" forces a pipelined
#: RX-core -> worker handoff; measured effect is a ~50 % throughput loss
#: with batching on, and the 6.7x overall gap fixes the no-batching point.
SINGLE_QUEUE_EFFICIENCY = 0.50
#: Xeon shared-bus CPI inflation: FSB contention stretches memory stalls.
#: Chosen so Xeon = 18.96/11 = 1.72 Mpps: (7854 * f) = 19.2e9/1.72e6.
XEON_CPI_FACTOR = 1.45
#: Xeon front-side bus: all memory AND I/O traffic shares one bus.
XEON_FSB_BPS = gbps(68)  # ~8.5 GB/s, typical 1333 MHz FSB

# --------------------------------------------------------------------------
# Stateful NF costs (State-Compute Replication, arXiv 2309.14647)
# --------------------------------------------------------------------------
# The paper's applications are stateless per packet; the stateful NF suite
# (repro.stateful) adds per-flow state whose *access discipline* is the
# measured quantity.  The constants below calibrate the three core-dispatch
# strategies against the Fig. 6 penalties already derived above:
# QUEUE_LOCK_CYCLES (1205) is a lock acquire + full cache-line bounce on a
# shared NIC ring, and CROSS_CACHE_MISS_CYCLES (1194.5) is a compulsory
# cross-L3 transfer; the per-line and per-acquire figures here are chosen
# to decompose consistently with those aggregates.

#: Hash + bucket walk to find a flow's state entry (one random line).
STATE_LOOKUP_CYCLES = 160.0
#: Writing the updated entry back (the line is already resident).
STATE_UPDATE_CYCLES = 90.0
#: Per-packet verdict/action work of each NF on top of the table access.
NF_COMPUTE_CYCLES = {
    "nat": 180.0,
    "firewall": 110.0,
    "policer": 140.0,
    "lb": 120.0,
}
#: Packet handling around the NF stage (parse headers, apply the verdict).
STATEFUL_BASE_CYCLES = 300.0
#: Bytes of per-flow state an NF touches per packet (one cache line).
STATE_ENTRY_BYTES = 64.0

#: One cache line migrating from a remote core's cache (L3 hit-modified /
#: cross-socket snoop average on Nehalem; half of CROSS_CACHE_MISS_CYCLES'
#: two-line handoff).
CACHE_COHERENCE_CYCLES = 350.0
#: Shared-state strategies bounce the lock word and the entry line.
STATE_SHARED_LINES = 2.0
#: Uncontended lock acquire/release (local CAS pair).
LOCK_BASE_CYCLES = 40.0
#: A contended acquire: spin while the holder finishes its lookup+update
#: critical section, then take the bounced line (QUEUE_LOCK_CYCLES-scale
#: convoy cost per extra waiter).
LOCK_CONTENDED_CYCLES = 1800.0

#: Encoding a compact state delta into the per-core history log (SCR's
#: packet-history share): sequence + flow key + operands.
SCR_DELTA_ENCODE_CYCLES = 60.0
#: Replaying one delta on a replica core: apply a precomputed transition
#: to a local, exclusively-owned line -- the whole point of SCR is that
#: this is an order of magnitude cheaper than the full NF update.
SCR_DELTA_APPLY_CYCLES = 25.0
#: Wire/log size of one delta (seq 8 + key 13 + operands, padded).
SCR_DELTA_BYTES = 32.0

# --------------------------------------------------------------------------
# Latency model (Sec. 6.2)
# --------------------------------------------------------------------------

#: DMA transfer time for a 64 B packet (400 MHz DMA engine, Sec. 6.2).
DMA_TRANSFER_USEC = 2.56
#: NIC-driven batching can hold a packet for up to kn-1 others: 16 x 0.8 us.
BATCH_WAIT_USEC = 12.8
#: CPU processing time for routing a 64 B packet ("2425 cycles or 0.8 us").
ROUTE_PROCESS_USEC = 0.8
#: Minimal forwarding processing time at exit nodes (chosen so the
#: direct 2-hop path totals the paper's 47.6 us).
FORWARD_PROCESS_USEC = 0.72
#: Intermediate nodes skip header processing via the MAC-encoding trick and
#: their descriptor DMAs overlap the payload DMAs; the residual per-packet
#: time is two payload DMA transfers + batch wait + queue-move time, chosen
#: so the 3-hop path totals the paper's 66.4 us.
INTERMEDIATE_PROCESS_USEC = 0.88

#: Per-server latency for the input (routing) node: 4 DMA transfers + batch
#: wait + processing = 4 x 2.56 + 12.8 + 0.8 = 24.0 us (Sec. 6.2).
INPUT_NODE_LATENCY_USEC = 4 * DMA_TRANSFER_USEC + BATCH_WAIT_USEC + ROUTE_PROCESS_USEC

# --------------------------------------------------------------------------
# Cluster / VLB constants (Sec. 3, Sec. 6)
# --------------------------------------------------------------------------

#: Flowlet inactivity gap (Sec. 6.1): bursts separated by more than delta
#: follow a new path; 100 ms is "well above the per-packet latency".
FLOWLET_DELTA_SEC = 0.100

#: Reordering-avoidance CPU overhead per ingress packet (derived above from
#: RB4's 12 Gbps 64 B result): per-flow counters, timestamps, and link
#: utilization tracking.
REORDER_AVOIDANCE_CYCLES = 842.0

#: RB4 prototype shape.
RB4_NODES = 4

#: Cost constants for the Fig. 3 comparison.
SERVER_COST_USD = 2000
ARISTA_PORT_COST_USD = 500
SWITCH_PORTS = 48

# --------------------------------------------------------------------------
# Workloads
# --------------------------------------------------------------------------

#: Mean packet size of the synthetic Abilene-like trace.  Chosen (with the
#: IPsec per-byte cost) to reproduce the paper's Abilene IPsec rate of
#: 4.45 Gbps; 740 B is consistent with reported Abilene packet-size means.
ABILENE_MEAN_PACKET_BYTES = 740.0

#: Routing table size used in the paper's IP-routing experiments.
ROUTING_TABLE_ENTRIES = 256 * 1024
