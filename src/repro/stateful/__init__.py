"""Stateful NF suite with State-Compute Replication (arXiv 2309.14647).

Four stateful network functions (NAT, conntrack firewall, token-bucket
policer, L4 load balancer) over a shared :class:`~repro.stateful.state.
FlowTable` abstraction, plus three core-dispatch strategies -- shared
state with locks, RSS flow-pinning, and State-Compute Replication --
benchmarked head-to-head under flow-skewed workloads
(:class:`~repro.workloads.SkewedFlowWorkload`).
"""

from .state import FlowTable, Snapshot, StateDelta, merge_snapshots
from .nf import (
    DROP,
    FORWARD,
    NF_FACTORIES,
    FirewallNF,
    LoadBalancerNF,
    NatNF,
    PolicerNF,
    StatefulNF,
    apply_history,
    make_nf,
)
from .dispatch import (
    STRATEGIES,
    StrategyReport,
    run_all_strategies,
    run_strategy,
)

__all__ = [
    "FlowTable",
    "Snapshot",
    "StateDelta",
    "merge_snapshots",
    "StatefulNF",
    "NatNF",
    "FirewallNF",
    "PolicerNF",
    "LoadBalancerNF",
    "NF_FACTORIES",
    "make_nf",
    "apply_history",
    "FORWARD",
    "DROP",
    "STRATEGIES",
    "StrategyReport",
    "run_strategy",
    "run_all_strategies",
]
