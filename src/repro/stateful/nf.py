"""The stateful network functions, written SCR-style.

Each NF is split into the two halves State-Compute Replication needs
(arXiv 2309.14647):

* :meth:`StatefulNF.process` -- the **full** computation a core runs for
  a packet it owns: look at the flow entry, do the expensive work
  (header parsing, allocation, classification), and return the new
  entry, the verdict, and the *compact delta args* that summarize the
  state change;
* :meth:`StatefulNF.replay` -- the **cheap** computation an SCR replica
  runs to apply someone else's delta: fold the args into the entry
  without redoing the work.

For every NF here ``replay`` is exact: applying process's delta args
yields the same entry process produced.  That identity -- checked by the
tests -- is what makes SCR's replicas converge to the shared-state
outcome.

All four NFs are *per-flow deterministic*: an entry depends only on the
flow's own packet subsequence (and timestamps), never on cross-flow
interleaving.  That is the property that lets locks, RSS, and SCR reach
identical end states from the same packet history.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..errors import ConfigurationError
from ..net.flows import FiveTuple, rss_hash
from .state import FlowTable

#: Verdicts an NF can return for a packet.
FORWARD = "forward"
DROP = "drop"

#: Salt for NAT's deterministic port allocator (distinct from the RSS
#: dispatch seed so pinning and allocation stay uncorrelated).
NAT_PORT_SALT = 0x5CA1AB1E


class StatefulNF:
    """Interface every stateful NF implements.

    Entries are plain tuples; ``None`` means "no state yet" on both
    sides, so NFs never need a separate insert path.
    """

    #: Short name; must be a key of calibration.NF_COMPUTE_CYCLES.
    name = "base"

    def process(self, entry: Optional[tuple], rec) -> Tuple[tuple, str, tuple]:
        """Full computation: ``(new_entry, verdict, delta_args)``."""
        raise NotImplementedError

    def replay(self, entry: Optional[tuple], args: tuple) -> tuple:
        """Cheap replica update: fold ``delta_args`` into ``entry``."""
        raise NotImplementedError


class NatNF(StatefulNF):
    """Source NAT with deterministic port allocation.

    Ports come from a pure hash of the flow key (deterministic CGN in
    the RFC 7422 style): ``1024 + h(key, salt) % pool``.  Every core
    computes the same mapping independently, so the allocation itself
    never needs coordination -- the *entry* (mapping + counters) is what
    the strategies manage.  Entry: ``(ext_port, packets, bytes)``.
    """

    name = "nat"

    def __init__(self, pool_size: int = 60000):
        if pool_size < 1:
            raise ConfigurationError("NAT port pool must be >= 1")
        self.pool_size = pool_size

    def _allocate(self, key: FiveTuple) -> int:
        return 1024 + rss_hash(key, seed=NAT_PORT_SALT) % self.pool_size

    def process(self, entry, rec):
        if entry is None:
            ext_port = self._allocate(rec.key)
            packets, length = 1, rec.length
        else:
            ext_port, packets, length = entry
            packets, length = packets + 1, length + rec.length
        new_entry = (ext_port, packets, length)
        return new_entry, FORWARD, (ext_port, rec.length)

    def replay(self, entry, args):
        ext_port, length = args
        if entry is None:
            return (ext_port, 1, length)
        return (ext_port, entry[1] + 1, entry[2] + length)


class FirewallNF(StatefulNF):
    """Connection-tracking firewall over a per-flow packet budget.

    A flow is admitted on first sight ("new"), promoted to
    "established" after ``establish_after`` packets, and clamped to
    ``max_packets`` total -- beyond that the conntrack entry flips to
    "closed" and further packets drop, modelling an idle/abuse cutoff
    that depends only on the flow's own history.  Entry:
    ``(state, packets)``.
    """

    name = "firewall"

    NEW, ESTABLISHED, CLOSED = "new", "established", "closed"

    def __init__(self, establish_after: int = 3, max_packets: int = 10000):
        if establish_after < 1 or max_packets <= establish_after:
            raise ConfigurationError(
                "need 1 <= establish_after < max_packets")
        self.establish_after = establish_after
        self.max_packets = max_packets

    def _advance(self, entry: Optional[tuple]) -> tuple:
        packets = 1 if entry is None else entry[1] + 1
        if packets >= self.max_packets:
            state = self.CLOSED
        elif packets >= self.establish_after:
            state = self.ESTABLISHED
        else:
            state = self.NEW
        return (state, packets)

    def process(self, entry, rec):
        new_entry = self._advance(entry)
        verdict = DROP if new_entry[0] == self.CLOSED else FORWARD
        return new_entry, verdict, ()

    def replay(self, entry, args):
        return self._advance(entry)


class PolicerNF(StatefulNF):
    """Per-flow token-bucket policer (rate in bytes/s, burst in bytes).

    Refill depends only on the packet's arrival timestamp and the flow's
    last-seen timestamp -- both carried by the packet history -- so
    replicas refill identically.  Entry:
    ``(tokens, last_time, conformed, exceeded)``.
    """

    name = "policer"

    def __init__(self, rate_bps: float = 8e6, burst_bytes: float = 3000.0):
        if rate_bps <= 0 or burst_bytes <= 0:
            raise ConfigurationError("policer rate and burst must be > 0")
        self.rate_Bps = rate_bps / 8.0
        self.burst_bytes = float(burst_bytes)

    def _advance(self, entry: Optional[tuple], time: float,
                 length: int) -> Tuple[tuple, bool]:
        if entry is None:
            tokens, last, conformed, exceeded = self.burst_bytes, time, 0, 0
        else:
            tokens, last, conformed, exceeded = entry
            tokens = min(self.burst_bytes,
                         tokens + (time - last) * self.rate_Bps)
            last = time
        conform = tokens >= length
        if conform:
            tokens -= length
            conformed += 1
        else:
            exceeded += 1
        return (tokens, last, conformed, exceeded), conform

    def process(self, entry, rec):
        new_entry, conform = self._advance(entry, rec.time, rec.length)
        return new_entry, FORWARD if conform else DROP, (rec.time, rec.length)

    def replay(self, entry, args):
        time, length = args
        new_entry, _ = self._advance(entry, time, length)
        return new_entry


class LoadBalancerNF(StatefulNF):
    """L4 load balancer with consistent (rendezvous) backend hashing.

    A flow's backend is the highest-hash winner over the backend set --
    pure function of the flow key, so the choice is stable under backend
    list growth and identical on every core.  The entry records the
    sticky choice plus counters: ``(backend, packets, bytes)``.
    """

    name = "lb"

    def __init__(self, num_backends: int = 8):
        if num_backends < 1:
            raise ConfigurationError("need >= 1 backend")
        self.num_backends = num_backends

    def _choose(self, key: FiveTuple) -> int:
        best, best_weight = 0, -1
        for backend in range(self.num_backends):
            weight = rss_hash(key, seed=0xB0B0 + backend)
            if weight > best_weight:
                best, best_weight = backend, weight
        return best

    def process(self, entry, rec):
        if entry is None:
            backend, packets, length = self._choose(rec.key), 1, rec.length
        else:
            backend, packets, length = entry
            packets, length = packets + 1, length + rec.length
        new_entry = (backend, packets, length)
        return new_entry, FORWARD, (backend, rec.length)

    def replay(self, entry, args):
        backend, length = args
        if entry is None:
            return (backend, 1, length)
        return (backend, entry[1] + 1, entry[2] + length)


#: Registry of NF constructors by short name (the CLI/bench surface).
NF_FACTORIES = {
    "nat": NatNF,
    "firewall": FirewallNF,
    "policer": PolicerNF,
    "lb": LoadBalancerNF,
}


def make_nf(name: str, **kwargs) -> StatefulNF:
    """Instantiate an NF by short name."""
    factory = NF_FACTORIES.get(name)
    if factory is None:
        raise ConfigurationError("unknown stateful NF %r (have %s)"
                                 % (name, sorted(NF_FACTORIES)))
    return factory(**kwargs)


def apply_history(nf: StatefulNF, records, table: Optional[FlowTable] = None
                  ) -> FlowTable:
    """Reference single-core execution: run ``nf`` over ``records`` in
    order against one table.  This is the ground truth every dispatch
    strategy must match."""
    if table is None:
        table = FlowTable()
    for rec in records:
        entry, _, _ = nf.process(table.get(rec.key), rec)
        table.put(rec.key, entry)
    return table
