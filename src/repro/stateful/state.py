"""Per-flow state: tables, entries, and the compact SCR delta record.

The stateful NF suite keeps all per-flow state behind one abstraction so
the three dispatch strategies can differ *only* in how cores reach it:

* ``locks`` shares one :class:`FlowTable` between every core;
* ``rss`` gives each core a private table holding its pinned flows;
* ``scr`` gives each core a private *replica* of the full table, kept
  identical by replaying :class:`StateDelta` records from the shared
  packet history.

Entries are plain tuples (cheap to copy, structurally comparable), and
:meth:`FlowTable.snapshot` produces a canonical dict keyed by five-tuple
ints -- the object the equivalence tests compare across strategies and
across SCR replicas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from ..net.flows import FiveTuple

#: Canonical snapshot type: five-tuple ints -> entry tuple.
Snapshot = Dict[Tuple[int, int, int, int, int], tuple]


@dataclass(frozen=True)
class StateDelta:
    """One replicated state update: what SCR broadcasts instead of state.

    ``args`` carries the *decision*, not the work -- e.g. the NAT delta
    carries the already-allocated external port, so replicas apply it
    without re-running the allocator.  ``seq`` is the packet's global
    sequence number; replicas apply deltas in ``seq`` order, which is
    what makes every replica's table identical to the shared-state
    outcome.
    """

    seq: int
    nf: str
    key: FiveTuple
    args: tuple


class FlowTable:
    """A flow-keyed state table with a canonical snapshot view."""

    def __init__(self, name: str = "flows"):
        self.name = name
        self._entries: Dict[FiveTuple, tuple] = {}
        #: Peak entry count, for table-occupancy reporting.
        self.peak_entries = 0

    def get(self, key: FiveTuple) -> Optional[tuple]:
        return self._entries.get(key)

    def put(self, key: FiveTuple, entry: tuple) -> None:
        self._entries[key] = entry
        if len(self._entries) > self.peak_entries:
            self.peak_entries = len(self._entries)

    def remove(self, key: FiveTuple) -> None:
        self._entries.pop(key, None)

    def __len__(self) -> int:
        return len(self._entries)

    def items(self) -> Iterator[Tuple[FiveTuple, tuple]]:
        return iter(self._entries.items())

    def snapshot(self) -> Snapshot:
        """Canonical, order-independent view for equality assertions."""
        return {key.as_ints(): entry
                for key, entry in self._entries.items()}


def merge_snapshots(*snapshots: Snapshot) -> Snapshot:
    """Union of disjoint per-core snapshots (the RSS end-state view).

    Raises ``ValueError`` if two shards claim the same flow with
    different entries -- per-flow pinning guarantees disjointness, so a
    collision is a dispatch bug, not a data race to paper over.
    """
    merged: Snapshot = {}
    for snapshot in snapshots:
        for key, entry in snapshot.items():
            if key in merged and merged[key] != entry:
                raise ValueError("flow %r present in two shards with "
                                 "different state" % (key,))
            merged[key] = entry
    return merged
