"""Core-dispatch strategies for stateful NFs, benchmarked head-to-head.

Three ways to spread one stateful NF across ``n`` cores, all consuming
the *same* deterministic packet history so their end states are directly
comparable:

``locks``
    Spray packets round-robin and share one flow table.  Every access
    pays a lock acquire; packets that hit the same flow within a
    dispatch round convoy on that flow's lock (contended acquire), and
    a flow whose state line was last touched by another core pays a
    cache-coherence transfer.  Fully general, collapses under skew.

``rss``
    Pin each flow to ``queue_for_flow(key, n)``.  No sharing, no locks,
    no coherence -- but the busiest core carries the elephants, so the
    aggregate is bounded by ``1 / max-core-share``, which degrades as
    skew grows.

``scr``
    State-Compute Replication (arXiv 2309.14647): spray round-robin
    like ``locks``, but instead of sharing state, the owning core runs
    the full NF and appends a compact delta to a shared history; every
    other core *replays* the delta into its private replica.  Replay is
    far cheaper than the full computation, so aggregate throughput
    scales with cores while every replica converges to the shared-state
    outcome.

Costs are charged from :data:`repro.costs.DEFAULT_COST_MODEL`'s
calibrated ResourceVectors; throughput is the packet count divided by
the *bottleneck* core's cycle total -- the same max-core convention the
rest of the repo uses for parallel pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .. import calibration as cal
from ..costs.model import CostModel, DEFAULT_COST_MODEL
from ..costs.vector import ResourceVector
from ..errors import ConfigurationError
from ..net.flows import FiveTuple, queue_for_flow
from ..obs.metrics import active_registry
from ..workloads.zipf_flows import PacketRecord
from .nf import StatefulNF
from .state import FlowTable, Snapshot, merge_snapshots

STRATEGIES = ("locks", "rss", "scr")

#: Record the flow-table occupancy timeline every this many packets.
TIMELINE_STRIDE = 256


@dataclass
class StrategyReport:
    """Outcome of running one NF over one history with one strategy."""

    strategy: str
    nf: str
    cores: int
    packets: int
    bytes_total: int
    core_hz: float
    #: Cycles charged to each core; the max entry is the bottleneck.
    per_core_cycles: List[float]
    #: Aggregate resource demand (all cores summed).
    resources: ResourceVector
    # state-sync counters
    lock_acquires: int = 0
    lock_contended: int = 0
    coherence_transfers: int = 0
    scr_deltas: int = 0
    scr_delta_bytes: float = 0.0
    #: Packets the NF verdict dropped (policer exceed, firewall closed).
    dropped: int = 0
    #: Canonical end state (see FlowTable.snapshot).
    end_state: Snapshot = field(default_factory=dict)
    #: SCR only: did every replica converge to the same snapshot?
    replicas_identical: bool = True

    @property
    def bottleneck_cycles(self) -> float:
        return max(self.per_core_cycles) if self.per_core_cycles else 0.0

    @property
    def duration_sec(self) -> float:
        return self.bottleneck_cycles / self.core_hz

    @property
    def throughput_mpps(self) -> float:
        if self.duration_sec <= 0:
            return 0.0
        return self.packets / self.duration_sec / 1e6

    @property
    def throughput_gbps(self) -> float:
        if self.duration_sec <= 0:
            return 0.0
        return self.bytes_total * 8 / self.duration_sec / 1e9

    def summary_row(self) -> Dict[str, float]:
        """Flat scalars for tables and bench artifacts."""
        return {
            "strategy": self.strategy,
            "nf": self.nf,
            "cores": self.cores,
            "mpps": self.throughput_mpps,
            "gbps": self.throughput_gbps,
            "lock_contended": self.lock_contended,
            "coherence": self.coherence_transfers,
            "scr_deltas": self.scr_deltas,
            "flows": len(self.end_state),
        }


def _observe(report: StrategyReport, records: Sequence[PacketRecord],
             table_sizes: List[float]) -> None:
    """Publish the run's counters and occupancy timeline to obs."""
    registry = active_registry()
    labels = {"strategy": report.strategy, "nf": report.nf}
    registry.counter(
        "stateful_packets",
        help="packets dispatched through the stateful NF suite",
    ).inc(report.packets, **labels)
    if report.dropped:
        registry.counter(
            "stateful_drops", help="packets dropped by NF verdict",
        ).inc(report.dropped, **labels)
    if report.lock_contended:
        registry.counter(
            "lock_contended_acquires",
            help="lock acquires that convoyed on a same-flow packet",
        ).inc(report.lock_contended, **labels)
    if report.coherence_transfers:
        registry.counter(
            "state_coherence_transfers",
            help="flow-state cache lines migrated between cores",
        ).inc(report.coherence_transfers, **labels)
    if report.scr_deltas:
        registry.counter(
            "scr_delta_messages",
            help="state deltas broadcast on the SCR history log",
        ).inc(report.scr_deltas, **labels)
        registry.counter(
            "scr_delta_bytes", help="bytes of SCR delta traffic",
        ).inc(report.scr_delta_bytes, **labels)
    timeline = registry.timeline(
        "flow_table_entries",
        help="live flow-table entries over trace time, per strategy")
    for index, size in enumerate(table_sizes):
        time = records[min(index * TIMELINE_STRIDE, len(records) - 1)].time
        timeline.record(time, size, **labels)


def _run_locks(nf: StatefulNF, records: Sequence[PacketRecord], cores: int,
               model: CostModel, report: StrategyReport,
               sizes: List[float], rss_seed: Optional[int]) -> None:
    table = FlowTable()
    access = model.state_access_vector(nf.name)
    lock_free = model.lock_vector(contended=False)
    lock_wait = model.lock_vector(contended=True)
    coherence = model.coherence_vector()
    last_core: Dict[FiveTuple, int] = {}
    for start in range(0, len(records), cores):
        round_records = records[start:start + cores]
        seen_in_round: Dict[FiveTuple, int] = {}
        for offset, rec in enumerate(round_records):
            core = offset
            contended = rec.key in seen_in_round
            seen_in_round[rec.key] = core
            cost = access + (lock_wait if contended else lock_free)
            report.lock_acquires += 1
            if contended:
                report.lock_contended += 1
            previous = last_core.get(rec.key)
            if previous is not None and previous != core:
                cost = cost + coherence
                report.coherence_transfers += 1
            last_core[rec.key] = core
            entry, verdict, _ = nf.process(table.get(rec.key), rec)
            table.put(rec.key, entry)
            if verdict != "forward":
                report.dropped += 1
            report.per_core_cycles[core] += cost.cpu_cycles
            report.resources = report.resources + cost
            if rec.seq % TIMELINE_STRIDE == 0:
                sizes.append(float(len(table)))
    report.end_state = table.snapshot()


def _run_rss(nf: StatefulNF, records: Sequence[PacketRecord], cores: int,
             model: CostModel, report: StrategyReport,
             sizes: List[float], rss_seed: Optional[int]) -> None:
    shards = [FlowTable(name="core%d" % c) for c in range(cores)]
    access = model.state_access_vector(nf.name)
    for rec in records:
        if rss_seed is None:
            core = queue_for_flow(rec.key, cores)
        else:
            core = queue_for_flow(rec.key, cores, seed=rss_seed)
        shard = shards[core]
        entry, verdict, _ = nf.process(shard.get(rec.key), rec)
        shard.put(rec.key, entry)
        if verdict != "forward":
            report.dropped += 1
        report.per_core_cycles[core] += access.cpu_cycles
        report.resources = report.resources + access
        if rec.seq % TIMELINE_STRIDE == 0:
            sizes.append(float(sum(len(s) for s in shards)))
    report.end_state = merge_snapshots(*(s.snapshot() for s in shards))


def _run_scr(nf: StatefulNF, records: Sequence[PacketRecord], cores: int,
             model: CostModel, report: StrategyReport,
             sizes: List[float], rss_seed: Optional[int]) -> None:
    replicas = [FlowTable(name="replica%d" % c) for c in range(cores)]
    access = model.state_access_vector(nf.name)
    encode = model.scr_encode_vector()
    replay = model.scr_replay_vector()
    owner_cost = access + encode
    for rec in records:
        owner = rec.seq % cores
        # Owner runs the full NF against its replica and publishes the
        # compact delta; process() is per-flow deterministic, so the
        # delta it emits is the one every replica needs.
        entry, verdict, args = nf.process(replicas[owner].get(rec.key), rec)
        replicas[owner].put(rec.key, entry)
        if verdict != "forward":
            report.dropped += 1
        report.per_core_cycles[owner] += owner_cost.cpu_cycles
        report.resources = report.resources + owner_cost
        report.scr_deltas += 1
        report.scr_delta_bytes += cal.SCR_DELTA_BYTES
        for core in range(cores):
            if core == owner:
                continue
            replica = replicas[core]
            replica.put(rec.key, nf.replay(replica.get(rec.key), args))
            report.per_core_cycles[core] += replay.cpu_cycles
            report.resources = report.resources + replay
        if rec.seq % TIMELINE_STRIDE == 0:
            sizes.append(float(len(replicas[0])))
    snapshots = [replica.snapshot() for replica in replicas]
    report.replicas_identical = all(s == snapshots[0] for s in snapshots[1:])
    report.end_state = snapshots[0]


_RUNNERS = {"locks": _run_locks, "rss": _run_rss, "scr": _run_scr}


def run_strategy(nf: StatefulNF, records: Sequence[PacketRecord],
                 cores: int, strategy: str,
                 model: Optional[CostModel] = None,
                 core_hz: float = cal.NEHALEM_CLOCK_HZ,
                 rss_seed: Optional[int] = None) -> StrategyReport:
    """Run ``nf`` over ``records`` on ``cores`` cores with ``strategy``.

    ``records`` must be a materialized sequence (the same list can then
    be fed to every strategy for a fair comparison).  ``rss_seed``
    selects the flow-pinning hash for the ``rss`` strategy; sweeping it
    and averaging approximates the *expected* bottleneck over hash
    placements, which is what the skew curves should show rather than
    one placement's luck.
    """
    if strategy not in _RUNNERS:
        raise ConfigurationError("unknown strategy %r (have %s)"
                                 % (strategy, "/".join(STRATEGIES)))
    if cores < 1:
        raise ConfigurationError("need >= 1 core")
    if core_hz <= 0:
        raise ConfigurationError("core_hz must be positive")
    model = model or DEFAULT_COST_MODEL
    records = list(records)
    report = StrategyReport(
        strategy=strategy, nf=nf.name, cores=cores, packets=len(records),
        bytes_total=sum(rec.length for rec in records), core_hz=core_hz,
        per_core_cycles=[0.0] * cores, resources=ResourceVector())
    if not records:
        return report
    sizes: List[float] = []
    _RUNNERS[strategy](nf, records, cores, model, report, sizes, rss_seed)
    _observe(report, records, sizes)
    return report


def run_all_strategies(nf_factory, records: Sequence[PacketRecord],
                       cores: int, model: Optional[CostModel] = None
                       ) -> Dict[str, StrategyReport]:
    """Run every strategy over the same history with a *fresh* NF each,
    returning reports keyed by strategy name."""
    records = list(records)
    return {strategy: run_strategy(nf_factory(), records, cores, strategy,
                                   model=model)
            for strategy in STRATEGIES}
