"""A bitwise binary trie for IPv4 longest-prefix matching.

This is the reference LPM structure: simple enough to be obviously correct,
used both directly (small tables) and as the oracle against which the
DIR-24-8 fast path is property-tested.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from ..errors import RoutingError
from ..net.addresses import IPv4Address, Prefix


class _TrieNode:
    __slots__ = ("children", "value", "has_value")

    def __init__(self):
        self.children = [None, None]
        self.value = None
        self.has_value = False


class BinaryTrie:
    """Longest-prefix-match over IPv4 prefixes, one bit per level."""

    def __init__(self):
        self._root = _TrieNode()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, prefix: Prefix, value) -> None:
        """Insert or replace the entry for ``prefix``."""
        node = self._root
        network = prefix.network.value
        for depth in range(prefix.length):
            bit = (network >> (31 - depth)) & 1
            if node.children[bit] is None:
                node.children[bit] = _TrieNode()
            node = node.children[bit]
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def remove(self, prefix: Prefix) -> None:
        """Remove the entry for ``prefix``; raises if absent."""
        path = []
        node = self._root
        network = prefix.network.value
        for depth in range(prefix.length):
            bit = (network >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                raise RoutingError("prefix %s not in trie" % prefix)
            path.append((node, bit))
            node = child
        if not node.has_value:
            raise RoutingError("prefix %s not in trie" % prefix)
        node.value = None
        node.has_value = False
        self._size -= 1
        # Prune now-empty branches so memory does not leak across churn.
        for parent, bit in reversed(path):
            child = parent.children[bit]
            if child.has_value or child.children[0] is not None \
                    or child.children[1] is not None:
                break
            parent.children[bit] = None

    def lookup(self, address) -> Optional[object]:
        """Return the value of the longest matching prefix, or ``None``."""
        value = self._root.value if self._root.has_value else None
        node = self._root
        addr = int(IPv4Address(address))
        for depth in range(32):
            bit = (addr >> (31 - depth)) & 1
            node = node.children[bit]
            if node is None:
                break
            if node.has_value:
                value = node.value
        return value

    def get(self, prefix: Prefix):
        """Exact-match: the value stored for ``prefix``, or ``None``."""
        node = self._root
        network = prefix.network.value
        for depth in range(prefix.length):
            bit = (network >> (31 - depth)) & 1
            node = node.children[bit]
            if node is None:
                return None
        return node.value if node.has_value else None

    def contains(self, prefix: Prefix) -> bool:
        """True if ``prefix`` itself (exact match) is in the trie."""
        node = self._root
        network = prefix.network.value
        for depth in range(prefix.length):
            bit = (network >> (31 - depth)) & 1
            node = node.children[bit]
            if node is None:
                return False
        return node.has_value

    def lookup_covering(self, address, max_length: int) -> Tuple[Optional[Prefix], Optional[object]]:
        """Longest match for ``address`` among prefixes of length <= ``max_length``.

        ``max_length`` may be negative (removing a default route asks for
        the cover of ``/0``, i.e. length <= -1): nothing can cover it, so
        the answer is explicitly ``(None, None)``.
        """
        if max_length < 0:
            return (None, None)
        addr = int(IPv4Address(address))
        best = (None, None)
        node = self._root
        if node.has_value:
            best = (Prefix(0, 0), node.value)
        for depth in range(min(32, max_length)):
            bit = (addr >> (31 - depth)) & 1
            node = node.children[bit]
            if node is None:
                break
            if node.has_value:
                best = (Prefix.from_address(addr, depth + 1), node.value)
        return best

    def lookup_with_prefix(self, address) -> Tuple[Optional[Prefix], Optional[object]]:
        """Like :meth:`lookup` but also returns the matching prefix."""
        addr = int(IPv4Address(address))
        best = (None, None)
        node = self._root
        if node.has_value:
            best = (Prefix(0, 0), node.value)
        for depth in range(32):
            bit = (addr >> (31 - depth)) & 1
            node = node.children[bit]
            if node is None:
                break
            if node.has_value:
                matched = Prefix.from_address(addr, depth + 1)
                best = (matched, node.value)
        return best

    def items(self) -> Iterator[Tuple[Prefix, object]]:
        """Yield (prefix, value) pairs in depth-first order."""
        stack = [(self._root, 0, 0)]
        while stack:
            node, bits, depth = stack.pop()
            if node.has_value:
                yield Prefix(bits << (32 - depth) if depth else 0, depth), node.value
            for bit in (1, 0):
                child = node.children[bit]
                if child is not None:
                    stack.append((child, (bits << 1) | bit, depth + 1))
