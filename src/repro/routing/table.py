"""The routing-table facade used by the dataplane.

:class:`RoutingTable` pairs next-hop bookkeeping with a pluggable LPM
engine (DIR-24-8 by default, matching the paper; a plain binary trie for
small tables or as a correctness oracle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np

from ..errors import RoutingError
from ..net.addresses import IPv4Address, MACAddress, Prefix
from .dir24_8 import Dir24_8
from .trie import BinaryTrie


@dataclass(frozen=True)
class Route:
    """A routing-table entry's action: output port and next-hop addresses."""

    port: int
    next_hop: IPv4Address
    next_hop_mac: MACAddress = MACAddress(0)

    def __post_init__(self):
        if self.port < 0:
            raise RoutingError("route port must be >= 0, got %r" % self.port)


class RoutingTable:
    """IPv4 FIB with longest-prefix-match semantics.

    Parameters
    ----------
    engine:
        ``"dir24_8"`` (default; the paper's D-lookup) or ``"trie"``.
    """

    def __init__(self, engine: str = "dir24_8"):
        if engine == "dir24_8":
            self._lpm = Dir24_8()
        elif engine == "trie":
            self._lpm = BinaryTrie()
        else:
            raise RoutingError("unknown LPM engine %r" % engine)
        self.engine_name = engine
        self._routes = {}
        self._slot_cache = None  # slot-aligned (ports, next_hops, macs)

    def __len__(self) -> int:
        return len(self._routes)

    def add_route(self, prefix, route: Route) -> None:
        """Insert or replace the route for ``prefix`` (str or Prefix)."""
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        self._lpm.insert(prefix, route)
        self._routes[prefix] = route
        self._slot_cache = None

    def remove_route(self, prefix) -> None:
        """Remove the route for ``prefix``; raises if absent."""
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        if prefix not in self._routes:
            raise RoutingError("no route for %s" % prefix)
        self._lpm.remove(prefix)
        del self._routes[prefix]
        self._slot_cache = None

    def has_route(self, prefix) -> bool:
        """Exact-match membership test."""
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        return prefix in self._routes

    def lookup(self, address) -> Optional[Route]:
        """Longest-prefix-match ``address`` to a :class:`Route` (or None)."""
        return self._lpm.lookup(address)

    def _slot_columns(self):
        """Slot-aligned (ports, next_hops, macs) arrays for DIR-24-8.

        Aligned with :meth:`Dir24_8.value_slots` so a slot array from
        ``lookup_batch_slots`` indexes straight into them; rebuilt lazily
        after any route change.
        """
        if self._slot_cache is None:
            values = self._lpm.value_slots()
            n = len(values)
            ports = np.full(n, -1, dtype=np.int64)
            next_hops = np.full(n, None, dtype=object)
            macs = np.full(n, None, dtype=object)
            for i, route in enumerate(values):
                if route is not None:
                    ports[i] = route.port
                    next_hops[i] = route.next_hop
                    macs[i] = route.next_hop_mac
            self._slot_cache = (ports, next_hops, macs)
        return self._slot_cache

    def lookup_batch(self, addresses):
        """Vectorized LPM over an integer address array.

        Returns ``(ports, next_hops, next_hop_macs)`` arrays; a port of
        ``-1`` marks a miss (the corresponding next-hop entries are
        None).  With the DIR-24-8 engine the whole batch resolves in a
        handful of numpy operations; other engines fall back to a scalar
        loop with identical results.
        """
        addresses = np.asarray(addresses, dtype=np.uint32)
        n = len(addresses)
        if hasattr(self._lpm, "lookup_batch_slots"):
            ports, next_hops, macs = self._slot_columns()
            if len(ports):
                slots = self._lpm.lookup_batch_slots(addresses)
                miss = slots < 0
                safe = np.where(miss, 0, slots)
                out_ports = ports[safe]
                out_hops = next_hops[safe]
                out_macs = macs[safe]
                if miss.any():
                    out_ports = out_ports.copy()
                    out_ports[miss] = -1
                    out_hops[miss] = None
                    out_macs[miss] = None
                return out_ports, out_hops, out_macs
        out_ports = np.full(n, -1, dtype=np.int64)
        out_hops = np.full(n, None, dtype=object)
        out_macs = np.full(n, None, dtype=object)
        for i, address in enumerate(addresses.tolist()):
            route = self._lpm.lookup(address)
            if route is not None:
                out_ports[i] = route.port
                out_hops[i] = route.next_hop
                out_macs[i] = route.next_hop_mac
        return out_ports, out_hops, out_macs

    def lookup_or_raise(self, address) -> Route:
        """Like :meth:`lookup` but raises :class:`RoutingError` on a miss."""
        route = self._lpm.lookup(address)
        if route is None:
            raise RoutingError("no route to %s" % IPv4Address(address))
        return route

    def routes(self) -> Iterable[Tuple[Prefix, Route]]:
        """All installed (prefix, route) pairs."""
        return self._routes.items()

    def add_default(self, route: Route) -> None:
        """Install a 0.0.0.0/0 default route."""
        self.add_route(Prefix(0, 0), route)

    def memory_bytes(self) -> int:
        """Approximate size of the lookup structure (DIR-24-8 only)."""
        if hasattr(self._lpm, "memory_bytes"):
            return self._lpm.memory_bytes()
        return 0
