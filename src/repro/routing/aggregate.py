"""FIB aggregation: merge sibling prefixes with identical next hops.

A classic FIB optimization: two /n siblings (differing only in bit n-1)
pointing at the same next hop collapse into one /(n-1); applied to a
fixpoint this shrinks real tables substantially.  Correctness contract:
the aggregated table gives the same lookup answer as the original for
*covered* addresses (aggregation never changes reachability because a
merged parent only forms when both halves agree, and containment within
an existing shorter route of the same value is also safe to elide).

The simple ORTC-lite scheme here performs two passes:

1. **Sibling merge** (bottom-up): merge equal-valued sibling leaves.
2. **Redundancy elimination**: drop any prefix whose covering (shorter)
   route has the same value.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..errors import RoutingError
from ..net.addresses import Prefix
from .table import RoutingTable
from .trie import BinaryTrie


def _sibling(prefix: Prefix) -> Prefix:
    if prefix.length == 0:
        raise RoutingError("the default route has no sibling")
    flip = 1 << (32 - prefix.length)
    return Prefix(prefix.network.value ^ flip, prefix.length)


def _parent(prefix: Prefix) -> Prefix:
    if prefix.length == 0:
        raise RoutingError("the default route has no parent")
    return Prefix.from_address(prefix.network.value, prefix.length - 1)


def aggregate_routes(routes: Dict[Prefix, object]) -> Dict[Prefix, object]:
    """Aggregate a prefix -> value map; returns a new, smaller map."""
    table: Dict[Prefix, object] = dict(routes)

    # Pass 1: iterated sibling merge, longest prefixes first.
    changed = True
    while changed:
        changed = False
        for prefix in sorted(table, key=lambda p: -p.length):
            if prefix not in table or prefix.length == 0:
                continue
            sibling = _sibling(prefix)
            if sibling in table and table[sibling] == table[prefix]:
                parent = _parent(prefix)
                # Only merge when the parent slot is free or already
                # agrees; otherwise the parent's own route must win for
                # addresses outside the two siblings... (there are none:
                # the siblings tile the parent exactly), so equal-valued
                # children always override the parent.
                value = table[prefix]
                del table[prefix]
                del table[sibling]
                table[parent] = value
                changed = True

    # Pass 2: drop routes whose nearest covering route has the same value.
    shadow = BinaryTrie()
    for prefix, value in table.items():
        shadow.insert(prefix, value)
    redundant = []
    for prefix, value in table.items():
        if prefix.length == 0:
            continue
        cover_prefix, cover_value = shadow.lookup_covering(
            prefix.network, prefix.length - 1)
        if cover_prefix is not None and cover_value == value:
            redundant.append(prefix)
    for prefix in redundant:
        del table[prefix]
    return table


def aggregate_table(table: RoutingTable,
                    engine: str = "dir24_8") -> Tuple[RoutingTable, dict]:
    """Aggregate a :class:`RoutingTable`; returns (new table, stats)."""
    original = dict(table.routes())
    compact = aggregate_routes(original)
    out = RoutingTable(engine=engine)
    for prefix, route in compact.items():
        out.add_route(prefix, route)
    stats = {
        "original_routes": len(original),
        "aggregated_routes": len(compact),
        "reduction": 1 - len(compact) / len(original) if original else 0.0,
    }
    return out, stats
