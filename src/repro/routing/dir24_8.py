"""DIR-24-8-BASIC longest-prefix matching (Gupta, Lin & McKeown, 1998).

This is the "D-lookup algorithm" the paper's IP-routing application uses
(Sec. 5.1, [34]).  A 2^24-entry first-level table (TBL24) resolves all
prefixes of length <= 24 in one probe; prefixes longer than 24 bits divert
the covering TBL24 slot to a 256-entry second-level table, for a worst case
of two probes.  The structure is what gives hardware-speed lookups at the
cost of memory -- the exact trade the paper leans on.

The implementation supports incremental insert/remove.  Each table entry
records the length of the prefix that wrote it, so a shorter (less
specific) prefix never clobbers a longer one; removals consult a shadow
:class:`BinaryTrie` to restore the covering route.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import RoutingError
from ..net.addresses import IPv4Address, Prefix
from .trie import BinaryTrie

_TBL24_SIZE = 1 << 24
_EMPTY = -1
#: TBL24 entries <= _LONG_BASE encode a second-level table id: tid = -(v+2).
_LONG_BASE = -2


class Dir24_8:
    """DIR-24-8-BASIC with incremental updates.

    Values are arbitrary Python objects (typically next hops); ``None`` is
    not a legal value since it encodes "no route".
    """

    def __init__(self):
        self._tbl24 = np.full(_TBL24_SIZE, _EMPTY, dtype=np.int32)
        self._depth24 = np.zeros(_TBL24_SIZE, dtype=np.int8)
        self._long_values = []   # list of np.int32[256]
        self._long_depths = []   # list of np.int8[256]
        self._free_long = []     # recycled second-level table ids
        self._values = []
        self._value_index = {}   # hashable value -> slot (dedup by equality)
        self._id_index = {}      # id(value) -> slot for unhashable values
        self._value_refs = []    # trie prefixes referencing each slot
        self._free_values = []   # recycled value slots
        self._shadow = BinaryTrie()
        self._size = 0
        self._long_stack = None  # cached np.stack of second-level tables

    def __len__(self) -> int:
        return self._size

    # -- helpers -----------------------------------------------------------

    def _intern(self, value) -> int:
        """Slot index for ``value``, allocating (or recycling) one if new.

        Hashable values dedup by equality, unhashable ones by identity;
        either way the slot is refcounted by the number of trie prefixes
        that route to it, so update churn cannot leak slots.
        """
        if value is None:
            raise RoutingError("None is not a legal route value")
        try:
            index = self._value_index.get(value)
            hashable = True
        except TypeError:
            index = self._id_index.get(id(value))
            hashable = False
        if index is None:
            if self._free_values:
                index = self._free_values.pop()
                self._values[index] = value
            else:
                index = len(self._values)
                self._values.append(value)
                self._value_refs.append(0)
            if hashable:
                self._value_index[value] = index
            else:
                self._id_index[id(value)] = index
        return index

    def _find_index(self, value) -> int:
        """Slot of a value known to be referenced by the shadow trie."""
        try:
            return self._value_index[value]
        except TypeError:
            return self._id_index[id(value)]

    def _release(self, index: int) -> None:
        """Drop one trie reference; reclaim the slot when none remain."""
        self._value_refs[index] -= 1
        if self._value_refs[index] == 0:
            value = self._values[index]
            try:
                del self._value_index[value]
            except TypeError:
                del self._id_index[id(value)]
            self._values[index] = None
            self._free_values.append(index)

    def _alloc_long(self, fill_value: int, fill_depth: int) -> int:
        if self._free_long:
            tid = self._free_long.pop()
            self._long_values[tid].fill(fill_value)
            self._long_depths[tid].fill(fill_depth)
            return tid
        self._long_values.append(np.full(256, fill_value, dtype=np.int32))
        self._long_depths.append(np.full(256, fill_depth, dtype=np.int8))
        return len(self._long_values) - 1

    # -- updates -----------------------------------------------------------

    def insert(self, prefix: Prefix, value) -> None:
        """Insert or replace the route for ``prefix``."""
        self._long_stack = None
        old_value = self._shadow.get(prefix)
        vindex = self._intern(value)
        self._value_refs[vindex] += 1
        self._shadow.insert(prefix, value)
        if old_value is None:
            self._size += 1
        if prefix.length <= 24:
            self._write_short(prefix, vindex, prefix.length)
        else:
            self._write_long(prefix, vindex, prefix.length)
        if old_value is not None:
            # Replacement: the displaced value loses this prefix's
            # reference (after the table rewrite, so its slot can never
            # be recycled while still reachable).
            self._release(self._find_index(old_value))

    def remove(self, prefix: Prefix) -> None:
        """Remove the route for ``prefix``; raises if absent."""
        self._long_stack = None
        old_value = self._shadow.get(prefix)
        self._shadow.remove(prefix)  # raises RoutingError if absent
        self._size -= 1
        # Find what now covers the removed range: the longest remaining
        # prefix *shorter* than the removed one (longer prefixes inside the
        # range own their own entries and must not be disturbed).
        cover_prefix, cover_value = self._shadow.lookup_covering(
            prefix.network, prefix.length - 1)
        if cover_value is None:
            cover_index, cover_depth = _EMPTY, 0
        else:
            cover_index = self._intern(cover_value)
            cover_depth = cover_prefix.length
        if prefix.length <= 24:
            self._write_short(prefix, cover_index, cover_depth,
                              overwrite_depth=prefix.length)
        else:
            self._write_long(prefix, cover_index, cover_depth,
                             overwrite_depth=prefix.length)
        # The removed prefix no longer references its value; its table
        # entries were just rewritten to the covering route, so the slot
        # can be reclaimed if this was the last reference.
        self._release(self._find_index(old_value))

    def _write_short(self, prefix: Prefix, vindex: int, depth: int,
                     overwrite_depth: Optional[int] = None) -> None:
        """Write a <=24-bit prefix across its TBL24 range.

        When ``overwrite_depth`` is given (removal), only entries written by
        a prefix of exactly that length are rewritten; otherwise entries
        written by shorter-or-equal prefixes are (insertion semantics).
        """
        start = prefix.network.value >> 8
        count = 1 << (24 - prefix.length)
        sl = slice(start, start + count)
        tbl = self._tbl24[sl]
        dep = self._depth24[sl]
        if overwrite_depth is None:
            mask = dep <= depth
        else:
            mask = dep == overwrite_depth
        # Plain slots: write directly.
        plain = mask & (tbl > _LONG_BASE)
        tbl[plain] = vindex
        dep[plain] = depth
        # Slots diverted to second-level tables: update their default part.
        diverted = np.nonzero(mask & (tbl <= _LONG_BASE))[0]
        for offset in diverted:
            tid = -(int(tbl[offset]) + 2)
            lvals = self._long_values[tid]
            ldeps = self._long_depths[tid]
            # Only the slot's *background* entries (depth <= 24, i.e. not
            # owned by a longer prefix) belong to short-prefix writes;
            # entries owned by >24-bit prefixes must never be disturbed.
            background = ldeps <= 24
            if overwrite_depth is None:
                lmask = background & (ldeps <= depth)
            else:
                lmask = background & (ldeps == overwrite_depth)
            lvals[lmask] = vindex
            ldeps[lmask] = depth
            # TBL24's recorded depth for a diverted slot tracks the
            # background's prefix length (every background entry shares
            # it -- the slot-selection mask above matched it), so record
            # the new background depth alongside the rewrite.
            dep[offset] = depth

    def _write_long(self, prefix: Prefix, vindex: int, depth: int,
                    overwrite_depth: Optional[int] = None) -> None:
        """Write a >24-bit prefix into (creating if needed) a level-2 table."""
        slot = prefix.network.value >> 8
        entry = int(self._tbl24[slot])
        if entry > _LONG_BASE:
            # Divert this slot: seed the new table with the current route.
            tid = self._alloc_long(entry, int(self._depth24[slot]))
            self._tbl24[slot] = -(tid + 2)
        else:
            tid = -(entry + 2)
        lvals = self._long_values[tid]
        ldeps = self._long_depths[tid]
        start = prefix.network.value & 0xFF
        count = 1 << (32 - prefix.length)
        sl = slice(start, start + count)
        if overwrite_depth is None:
            lmask = ldeps[sl] <= depth
        else:
            lmask = ldeps[sl] == overwrite_depth
        lvals[sl][lmask] = vindex
        ldeps[sl][lmask] = depth
        if overwrite_depth is not None and not (ldeps > 24).any():
            # Removal left no >24-bit prefix under this slot: every entry
            # now holds the (uniform) background route, so fold it back
            # into TBL24, un-divert the slot, and recycle the table.
            # Without this the second-level pool only ever grows --
            # long-prefix churn leaks a 256-entry table per cycle.
            if (lvals == lvals[0]).all():
                self._tbl24[slot] = int(lvals[0])
                self._depth24[slot] = int(ldeps[0])
                self._free_long.append(tid)

    # -- lookups -----------------------------------------------------------

    def lookup(self, address) -> Optional[object]:
        """Longest-prefix-match ``address``; 1-2 table probes."""
        addr = int(IPv4Address(address))
        entry = int(self._tbl24[addr >> 8])
        if entry >= 0:
            return self._values[entry]
        if entry == _EMPTY:
            return None
        tid = -(entry + 2)
        long_entry = int(self._long_values[tid][addr & 0xFF])
        if long_entry == _EMPTY:
            return None
        return self._values[long_entry]

    def lookup_batch_slots(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorized lookup returning value-*slot* indices.

        ``addresses`` is any integer array; the result is an int64 array
        where entry ``i`` is the slot of the matched value (index into
        :meth:`value_slots`) or ``-1`` for a miss.  Second-level tables
        are resolved through a cached ``np.stack`` of all level-2 tables
        (invalidated on any insert/remove), so the whole batch costs two
        fancy-index operations regardless of size.
        """
        addresses = np.asarray(addresses, dtype=np.uint32)
        entries = self._tbl24[
            (addresses >> np.uint32(8)).astype(np.int64)].astype(np.int64)
        if self._long_values:
            long_mask = entries <= _LONG_BASE
            if long_mask.any():
                if self._long_stack is None:
                    self._long_stack = np.stack(self._long_values)
                tids = -(entries[long_mask] + 2)
                offsets = (addresses[long_mask]
                           & np.uint32(0xFF)).astype(np.int64)
                entries[long_mask] = self._long_stack[tids, offsets]
        return entries

    def lookup_batch(self, addresses: np.ndarray) -> list:
        """Vectorized lookup of a uint32 array of addresses.

        Returns a list of values (``None`` for misses).  Used by the
        workload-driven benchmarks and the batch dataplane, where
        per-call Python overhead would otherwise dominate.
        """
        slots = self.lookup_batch_slots(addresses)
        values = self._values
        return [None if slot < 0 else values[slot]
                for slot in slots.tolist()]

    def value_slots(self) -> list:
        """The slot-indexed value list (``None`` marks a freed slot).

        Slot numbers returned by :meth:`lookup_batch_slots` index this
        list; callers may build slot-aligned lookaside arrays from it
        (see :meth:`repro.routing.table.RoutingTable.lookup_batch`).
        """
        return self._values

    def memory_bytes(self) -> int:
        """Approximate resident size of the lookup structures."""
        total = self._tbl24.nbytes + self._depth24.nbytes
        for lvals, ldeps in zip(self._long_values, self._long_depths):
            total += lvals.nbytes + ldeps.nbytes
        return total
