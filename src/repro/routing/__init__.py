"""IPv4 longest-prefix-match routing substrate.

The paper's IP-routing application performs a longest-prefix-match lookup
with "the Click distribution's implementation of the D-lookup algorithm
[Gupta et al.]" over a 256 K-entry table (Sec. 5.1).  This package provides:

* :class:`BinaryTrie` -- a reference bitwise trie (correct by construction,
  used as the oracle in property tests),
* :class:`Dir24_8` -- the DIR-24-8-BASIC scheme of Gupta, Lin & McKeown
  (the "D-lookup" the paper uses): a 2^24-entry first-level table plus
  overflow second-level tables, giving 1-2 memory probes per lookup,
* :class:`RoutingTable` -- the facade used by the dataplane, keeping both
  structures in sync,
* :func:`generate_rib` -- a synthetic RIB with a realistic prefix-length
  mix, defaulting to the paper's 256 K entries.
"""

from .trie import BinaryTrie
from .dir24_8 import Dir24_8
from .table import Route, RoutingTable
from .rib_gen import generate_prefixes, generate_rib, PREFIX_LENGTH_MIX

__all__ = [
    "BinaryTrie",
    "Dir24_8",
    "Route",
    "RoutingTable",
    "generate_prefixes",
    "generate_rib",
    "PREFIX_LENGTH_MIX",
]
