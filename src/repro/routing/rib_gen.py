"""Synthetic RIB generation.

The paper uses a 256 K-entry routing table, "in keeping with recent
reports" (Sec. 5.1), and generates packets with random destinations to
stress lookup cache locality.  We do not have a 2009 BGP table dump, so we
synthesize one with the well-known prefix-length distribution of Internet
tables of that era: /24 dominates (~55 %), with mass at /16-/23 and a thin
tail of short prefixes and a sliver of >24 prefixes.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

from ..calibration import ROUTING_TABLE_ENTRIES
from ..net.addresses import IPv4Address, MACAddress, Prefix
from .table import Route, RoutingTable

#: (prefix length, share of table).  Shares sum to 1.0; shaped after
#: published breakdowns of DFZ tables circa 2008-2009.
PREFIX_LENGTH_MIX: List[Tuple[int, float]] = [
    (8, 0.0005),
    (12, 0.002),
    (14, 0.004),
    (16, 0.055),
    (17, 0.020),
    (18, 0.035),
    (19, 0.060),
    (20, 0.065),
    (21, 0.070),
    (22, 0.105),
    (23, 0.090),
    (24, 0.480),
    (25, 0.005),
    (26, 0.004),
    (27, 0.002),
    (28, 0.0015),
    (30, 0.001),
]


def generate_prefixes(num_entries: int, seed: int = 1) -> Iterator[Prefix]:
    """Deterministic stream of ``num_entries`` unique prefixes with the
    DFZ length mix.

    Prefixes are drawn uniformly from the unicast space (1.0.0.0 --
    223.255.255.255) and deduplicated.  This is the raw generator behind
    :func:`generate_rib`; the control plane reuses it to announce a
    full-Internet-scale master RIB (~1 M entries) without materializing
    a lookup table first.
    """
    if num_entries < 1:
        raise ValueError("num_entries must be >= 1, got %r" % num_entries)
    rng = random.Random(seed)
    lengths, weights = zip(*PREFIX_LENGTH_MIX)
    seen = set()
    while len(seen) < num_entries:
        length = rng.choices(lengths, weights=weights)[0]
        # Unicast space only: first octet in [1, 223].
        addr = (rng.randint(1, 223) << 24) | rng.getrandbits(24)
        prefix = Prefix.from_address(addr, length)
        if prefix in seen:
            continue
        seen.add(prefix)
        yield prefix


def generate_rib(num_entries: int = ROUTING_TABLE_ENTRIES,
                 num_ports: int = 4,
                 seed: int = 1,
                 table: Optional[RoutingTable] = None) -> RoutingTable:
    """Build a synthetic routing table with a realistic prefix-length mix.

    Prefixes come from :func:`generate_prefixes`, each mapped to one of
    ``num_ports`` next hops round-robin.  Deterministic for a given
    ``seed``.
    """
    if num_ports < 1:
        raise ValueError("num_ports must be >= 1, got %r" % num_ports)
    if table is None:
        table = RoutingTable()
    next_hops = [
        Route(port=p,
              next_hop=IPv4Address((10 << 24) | (p << 8) | 1),
              next_hop_mac=MACAddress(0x020000000000 | p))
        for p in range(num_ports)
    ]
    for installed, prefix in enumerate(generate_prefixes(num_entries, seed)):
        table.add_route(prefix, next_hops[installed % num_ports])
    return table


def random_destinations(num: int, table: RoutingTable, seed: int = 2,
                        hit_fraction: float = 1.0) -> List[IPv4Address]:
    """Random destination addresses, ``hit_fraction`` of which match a route.

    Hits are synthesized by sampling installed prefixes and randomizing the
    host bits, mirroring the paper's "random destination addresses so as to
    stress cache locality" (Sec. 5.1).
    """
    if not 0.0 <= hit_fraction <= 1.0:
        raise ValueError("hit_fraction must be in [0, 1]")
    rng = random.Random(seed)
    prefixes = [p for p, _ in table.routes()]
    if not prefixes and hit_fraction > 0:
        raise ValueError("table is empty; cannot synthesize hits")
    out = []
    for _ in range(num):
        if prefixes and rng.random() < hit_fraction:
            prefix = prefixes[rng.randrange(len(prefixes))]
            host_bits = 32 - prefix.length
            addr = prefix.network.value | (
                rng.getrandbits(host_bits) if host_bits else 0)
            out.append(IPv4Address(addr))
        else:
            out.append(IPv4Address(rng.getrandbits(32)))
    return out
