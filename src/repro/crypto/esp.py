"""IPsec ESP (RFC 4303) tunnel-mode encapsulation with AES-128-CBC.

The IPsec workload encrypts every packet (Sec. 5.1).  This module provides
the functional path: the original IP packet is encrypted and wrapped in an
outer IPv4+ESP envelope with an incrementing sequence number; decapsulation
validates and reverses the operation.  (No authentication trailer: the
paper's workload is encryption-only.)
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..errors import CryptoError
from ..net.addresses import IPv4Address
from ..net.headers import ETHERNET_HEADER_BYTES, IPv4Header, PROTO_ESP
from ..net.packet import Packet
from .aes import AES128
from .modes import cbc_decrypt, cbc_encrypt

ESP_HEADER_BYTES = 8   # SPI (4) + sequence number (4)
ESP_IV_BYTES = 16


@dataclass
class EspContext:
    """A unidirectional ESP security association."""

    spi: int
    key: bytes
    tunnel_src: IPv4Address
    tunnel_dst: IPv4Address
    seq: int = 0
    _cipher: AES128 = field(init=False, repr=False)

    def __post_init__(self):
        self._cipher = AES128(self.key)

    def next_seq(self) -> int:
        """Advance and return the outbound sequence number (wraps at 2^32)."""
        self.seq = (self.seq + 1) & 0xFFFFFFFF
        if self.seq == 0:
            raise CryptoError("ESP sequence number exhausted for SPI %d" % self.spi)
        return self.seq

    def _iv(self, seq: int) -> bytes:
        # Deterministic per-packet IV derived from (SPI, seq); fine for a
        # simulation (a production SA would use an unpredictable IV).
        return self._cipher.encrypt_block(struct.pack("!IIII", self.spi, seq, 0, 0))


def esp_encapsulate(ctx: EspContext, packet: Packet) -> Packet:
    """Tunnel-mode encrypt ``packet`` into a new outer packet.

    The inner packet's serialized bytes (IP header onward) become the ESP
    payload; the outer frame is addressed tunnel_src -> tunnel_dst.
    """
    if packet.ip is None:
        raise CryptoError("cannot ESP-encapsulate a non-IP packet")
    inner = packet.pack()[ETHERNET_HEADER_BYTES:]
    seq = ctx.next_seq()
    iv = ctx._iv(seq)
    ciphertext = cbc_encrypt(ctx._cipher, iv, inner)
    esp_header = struct.pack("!II", ctx.spi, seq)
    body = esp_header + iv + ciphertext
    outer_ip = IPv4Header(src=ctx.tunnel_src, dst=ctx.tunnel_dst,
                          proto=PROTO_ESP, ttl=64,
                          total_length=20 + len(body))
    outer = Packet(length=ETHERNET_HEADER_BYTES + outer_ip.total_length,
                   ip=outer_ip, payload=body)
    outer.flow_seq = packet.flow_seq
    outer.annotations["esp_seq"] = seq
    return outer


def esp_decapsulate(ctx: EspContext, packet: Packet) -> Packet:
    """Reverse :func:`esp_encapsulate`, returning the inner packet."""
    if packet.ip is None or packet.ip.proto != PROTO_ESP:
        raise CryptoError("packet is not ESP")
    body = packet.payload
    if body is None or len(body) < ESP_HEADER_BYTES + ESP_IV_BYTES:
        raise CryptoError("truncated ESP payload")
    spi, seq = struct.unpack("!II", body[:ESP_HEADER_BYTES])
    if spi != ctx.spi:
        raise CryptoError("SPI mismatch: packet %d, context %d" % (spi, ctx.spi))
    iv = body[ESP_HEADER_BYTES:ESP_HEADER_BYTES + ESP_IV_BYTES]
    ciphertext = body[ESP_HEADER_BYTES + ESP_IV_BYTES:]
    inner_bytes = cbc_decrypt(ctx._cipher, iv, ciphertext)
    # Re-frame the inner IP packet under a fresh Ethernet header.
    inner = Packet.unpack(b"\x00" * 12 + b"\x08\x00" + inner_bytes)
    inner.flow_seq = packet.flow_seq
    inner.annotations["esp_seq"] = seq
    return inner
