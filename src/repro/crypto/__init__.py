"""Cryptographic substrate for the IPsec application.

The paper's third workload encrypts every packet with AES-128 "as is
typical in VPNs" (Sec. 5.1).  This package implements AES-128 from scratch
(verified against FIPS-197 vectors in the test suite), CBC and CTR modes,
and IPsec ESP tunnel-mode encapsulation with sequence numbers.
"""

from .aes import AES128
from .modes import cbc_encrypt, cbc_decrypt, ctr_transform
from .esp import EspContext, esp_encapsulate, esp_decapsulate

__all__ = [
    "AES128",
    "cbc_encrypt",
    "cbc_decrypt",
    "ctr_transform",
    "EspContext",
    "esp_encapsulate",
    "esp_decapsulate",
]
