"""Block-cipher modes of operation: CBC (with PKCS#7 padding) and CTR."""

from __future__ import annotations

from ..errors import CryptoError
from .aes import AES128

_BLOCK = AES128.BLOCK_BYTES


def pkcs7_pad(data: bytes, block_bytes: int = _BLOCK) -> bytes:
    """Append PKCS#7 padding up to a whole number of blocks."""
    pad_len = block_bytes - (len(data) % block_bytes)
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_bytes: int = _BLOCK) -> bytes:
    """Strip and validate PKCS#7 padding."""
    if not data or len(data) % block_bytes:
        raise CryptoError("padded data length %d is not block-aligned" % len(data))
    pad_len = data[-1]
    if not 1 <= pad_len <= block_bytes:
        raise CryptoError("invalid PKCS#7 pad byte %d" % pad_len)
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise CryptoError("corrupt PKCS#7 padding")
    return data[:-pad_len]


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def cbc_encrypt(cipher: AES128, iv: bytes, plaintext: bytes) -> bytes:
    """CBC-encrypt ``plaintext`` (PKCS#7-padded) under ``iv``."""
    if len(iv) != _BLOCK:
        raise CryptoError("IV must be %d bytes, got %d" % (_BLOCK, len(iv)))
    padded = pkcs7_pad(plaintext)
    out = []
    previous = iv
    for i in range(0, len(padded), _BLOCK):
        block = _xor_bytes(padded[i:i + _BLOCK], previous)
        previous = cipher.encrypt_block(block)
        out.append(previous)
    return b"".join(out)


def cbc_decrypt(cipher: AES128, iv: bytes, ciphertext: bytes) -> bytes:
    """CBC-decrypt and strip PKCS#7 padding."""
    if len(iv) != _BLOCK:
        raise CryptoError("IV must be %d bytes, got %d" % (_BLOCK, len(iv)))
    if len(ciphertext) % _BLOCK:
        raise CryptoError("ciphertext length %d not block-aligned" % len(ciphertext))
    out = []
    previous = iv
    for i in range(0, len(ciphertext), _BLOCK):
        block = ciphertext[i:i + _BLOCK]
        out.append(_xor_bytes(cipher.decrypt_block(block), previous))
        previous = block
    return pkcs7_unpad(b"".join(out))


def ctr_transform(cipher: AES128, nonce: bytes, data: bytes) -> bytes:
    """CTR-mode encrypt/decrypt (symmetric) with a 16-byte initial counter."""
    if len(nonce) != _BLOCK:
        raise CryptoError("CTR nonce must be %d bytes, got %d" % (_BLOCK, len(nonce)))
    counter = int.from_bytes(nonce, "big")
    out = bytearray()
    for i in range(0, len(data), _BLOCK):
        keystream = cipher.encrypt_block(
            (counter & ((1 << 128) - 1)).to_bytes(_BLOCK, "big"))
        chunk = data[i:i + _BLOCK]
        out.extend(x ^ y for x, y in zip(chunk, keystream))
        counter += 1
    return bytes(out)
