"""AES-128 block cipher (FIPS-197), implemented from first principles.

The S-box and its inverse are generated from the GF(2^8) multiplicative
inverse plus the affine transform, rather than hardcoded, so the tables are
correct by construction; the test suite checks the FIPS-197 Appendix B/C
vectors.  This is a clarity-first implementation -- the performance path of
the simulator charges IPsec cost via calibrated cycles/byte, while this
code provides the *functional* encryption used by the ESP layer.
"""

from __future__ import annotations

from ..errors import CryptoError

_NB = 4          # columns in the state
_NK = 4          # 32-bit words in an AES-128 key
_NR = 10         # rounds for AES-128


def _xtime(a: int) -> int:
    """Multiply by x (i.e., {02}) in GF(2^8) mod x^8+x^4+x^3+x+1."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox():
    # Multiplicative inverses via exhaustive products (field is tiny).
    inverse = [0] * 256
    for a in range(1, 256):
        for b in range(1, 256):
            if _gf_mul(a, b) == 1:
                inverse[a] = b
                break
    sbox = [0] * 256
    for value in range(256):
        x = inverse[value]
        # Affine transform: b_i = x_i ^ x_{i+4} ^ x_{i+5} ^ x_{i+6} ^ x_{i+7} ^ c_i
        y = 0
        for bit in range(8):
            t = ((x >> bit) ^ (x >> ((bit + 4) % 8)) ^ (x >> ((bit + 5) % 8))
                 ^ (x >> ((bit + 6) % 8)) ^ (x >> ((bit + 7) % 8))
                 ^ (0x63 >> bit)) & 1
            y |= t << bit
        sbox[value] = y
    inv_sbox = [0] * 256
    for value, substituted in enumerate(sbox):
        inv_sbox[substituted] = value
    return bytes(sbox), bytes(inv_sbox)


SBOX, INV_SBOX = _build_sbox()

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


class AES128:
    """AES with a 128-bit key; 16-byte blocks."""

    BLOCK_BYTES = 16
    KEY_BYTES = 16

    def __init__(self, key: bytes):
        if len(key) != self.KEY_BYTES:
            raise CryptoError("AES-128 key must be 16 bytes, got %d" % len(key))
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes):
        words = [list(key[4 * i:4 * i + 4]) for i in range(_NK)]
        for i in range(_NK, _NB * (_NR + 1)):
            temp = list(words[i - 1])
            if i % _NK == 0:
                temp = temp[1:] + temp[:1]                 # RotWord
                temp = [SBOX[b] for b in temp]             # SubWord
                temp[0] ^= _RCON[i // _NK - 1]
            words.append([words[i - _NK][j] ^ temp[j] for j in range(4)])
        # Group into per-round 16-byte keys.
        round_keys = []
        for r in range(_NR + 1):
            rk = []
            for c in range(4):
                rk.extend(words[4 * r + c])
            round_keys.append(rk)
        return round_keys

    # State layout: list of 16 bytes, column-major (s[r + 4c]).

    def _add_round_key(self, state, round_index):
        rk = self._round_keys[round_index]
        for i in range(16):
            state[i] ^= rk[i]

    @staticmethod
    def _sub_bytes(state, box):
        for i in range(16):
            state[i] = box[state[i]]

    @staticmethod
    def _shift_rows(state):
        for r in range(1, 4):
            row = [state[r + 4 * c] for c in range(4)]
            row = row[r:] + row[:r]
            for c in range(4):
                state[r + 4 * c] = row[c]

    @staticmethod
    def _inv_shift_rows(state):
        for r in range(1, 4):
            row = [state[r + 4 * c] for c in range(4)]
            row = row[-r:] + row[:-r]
            for c in range(4):
                state[r + 4 * c] = row[c]

    @staticmethod
    def _mix_columns(state):
        for c in range(4):
            col = state[4 * c:4 * c + 4]
            state[4 * c + 0] = (_gf_mul(col[0], 2) ^ _gf_mul(col[1], 3)
                                ^ col[2] ^ col[3])
            state[4 * c + 1] = (col[0] ^ _gf_mul(col[1], 2)
                                ^ _gf_mul(col[2], 3) ^ col[3])
            state[4 * c + 2] = (col[0] ^ col[1] ^ _gf_mul(col[2], 2)
                                ^ _gf_mul(col[3], 3))
            state[4 * c + 3] = (_gf_mul(col[0], 3) ^ col[1] ^ col[2]
                                ^ _gf_mul(col[3], 2))

    @staticmethod
    def _inv_mix_columns(state):
        for c in range(4):
            col = state[4 * c:4 * c + 4]
            state[4 * c + 0] = (_gf_mul(col[0], 14) ^ _gf_mul(col[1], 11)
                                ^ _gf_mul(col[2], 13) ^ _gf_mul(col[3], 9))
            state[4 * c + 1] = (_gf_mul(col[0], 9) ^ _gf_mul(col[1], 14)
                                ^ _gf_mul(col[2], 11) ^ _gf_mul(col[3], 13))
            state[4 * c + 2] = (_gf_mul(col[0], 13) ^ _gf_mul(col[1], 9)
                                ^ _gf_mul(col[2], 14) ^ _gf_mul(col[3], 11))
            state[4 * c + 3] = (_gf_mul(col[0], 11) ^ _gf_mul(col[1], 13)
                                ^ _gf_mul(col[2], 9) ^ _gf_mul(col[3], 14))

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != self.BLOCK_BYTES:
            raise CryptoError("AES block must be 16 bytes, got %d" % len(block))
        state = list(block)
        self._add_round_key(state, 0)
        for rnd in range(1, _NR):
            self._sub_bytes(state, SBOX)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, rnd)
        self._sub_bytes(state, SBOX)
        self._shift_rows(state)
        self._add_round_key(state, _NR)
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != self.BLOCK_BYTES:
            raise CryptoError("AES block must be 16 bytes, got %d" % len(block))
        state = list(block)
        self._add_round_key(state, _NR)
        for rnd in range(_NR - 1, 0, -1):
            self._inv_shift_rows(state)
            self._sub_bytes(state, INV_SBOX)
            self._add_round_key(state, rnd)
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._sub_bytes(state, INV_SBOX)
        self._add_round_key(state, 0)
        return bytes(state)
