"""The assembled server: sockets, buses, NICs, under one spec.

:class:`ServerSpec` is the declarative description (what the paper calls a
"server configuration"); :class:`Server` instantiates the component ledger
used by the performance model and the DES.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import ConfigurationError
from .components import Bus, Core, MemoryController, Socket
from .dma import DmaEngine
from .nic import Nic, NicPort


@dataclass(frozen=True)
class ServerSpec:
    """Declarative description of a server model.

    Capacities are in bits/second (as in Table 2).  ``shared_bus`` selects
    the pre-Nehalem architecture in which all memory and I/O traffic
    crosses a single front-side bus (Fig. 5) instead of per-socket memory
    buses and point-to-point links (Fig. 4).
    """

    name: str
    sockets: int
    cores_per_socket: int
    clock_hz: float
    memory_bps: float
    memory_empirical_bps: float
    io_bps: float
    io_empirical_bps: float
    qpi_bps: float
    qpi_empirical_bps: float
    pcie_bps: float
    pcie_empirical_bps: float
    nic_slots: int
    ports_per_nic: int = 2
    port_rate_bps: float = 10e9
    nic_payload_limit_bps: float = 12.3e9
    l3_bytes: int = 8 * 1024 * 1024
    shared_bus: bool = False
    fsb_bps: float = 0.0
    cpi_factor: float = 1.0   # memory-stall inflation (shared-bus Xeon)

    def __post_init__(self):
        if self.sockets < 1 or self.cores_per_socket < 1:
            raise ConfigurationError("server needs >= 1 socket and core")
        if self.shared_bus and self.fsb_bps <= 0:
            raise ConfigurationError("shared-bus spec needs fsb_bps")

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def cycles_per_second(self) -> float:
        return self.total_cores * self.clock_hz

    @property
    def max_ports(self) -> int:
        return self.nic_slots * self.ports_per_nic

    @property
    def max_input_bps(self) -> float:
        """Aggregate payload the NIC slots can move (2 x 12.3 Gbps on the
        prototype)."""
        return self.nic_slots * self.nic_payload_limit_bps


class Server:
    """A concrete server assembled from a :class:`ServerSpec`.

    Instantiates cores/sockets/buses and, on demand, NICs with a chosen
    number of ports and queues.  All component ledgers start at zero.
    """

    def __init__(self, spec: ServerSpec, num_ports: Optional[int] = None,
                 queues_per_port: Optional[int] = None):
        self.spec = spec
        self.sockets: List[Socket] = []
        core_id = 0
        for sid in range(spec.sockets):
            cores = []
            for _ in range(spec.cores_per_socket):
                cores.append(Core(core_id=core_id, socket_id=sid,
                                  clock_hz=spec.clock_hz))
                core_id += 1
            memory = MemoryController(
                socket_id=sid,
                bus=Bus(name="memory-%d" % sid,
                        capacity_bps=spec.memory_bps / spec.sockets))
            self.sockets.append(Socket(socket_id=sid, cores=cores,
                                       l3_bytes=spec.l3_bytes, memory=memory))
        self.io_bus = Bus(name="socket-io", capacity_bps=spec.io_bps)
        self.qpi = Bus(name="inter-socket", capacity_bps=spec.qpi_bps)
        self.pcie = Bus(name="pcie", capacity_bps=spec.pcie_bps)
        self.fsb = (Bus(name="fsb", capacity_bps=spec.fsb_bps)
                    if spec.shared_bus else None)
        self.dma = DmaEngine()
        self.nics: List[Nic] = []
        if num_ports is not None:
            self.attach_ports(num_ports, queues_per_port or 1)

    @property
    def cores(self) -> List[Core]:
        return [core for socket in self.sockets for core in socket.cores]

    def attach_ports(self, num_ports: int, queues_per_port: int) -> None:
        """Populate NIC slots with ``num_ports`` ports, 2 per NIC."""
        per_nic = self.spec.ports_per_nic
        max_ports = self.spec.max_ports
        if num_ports > max_ports:
            raise ConfigurationError(
                "%d ports exceed the %d NIC slots x %d ports of %s"
                % (num_ports, self.spec.nic_slots, per_nic, self.spec.name))
        self.nics = []
        port_id = 0
        while port_id < num_ports:
            ports = []
            for _ in range(min(per_nic, num_ports - port_id)):
                ports.append(NicPort(port_id=port_id,
                                     rate_bps=self.spec.port_rate_bps,
                                     num_queues=queues_per_port))
                port_id += 1
            self.nics.append(Nic(nic_id=len(self.nics), ports=ports,
                                 payload_limit_bps=self.spec.nic_payload_limit_bps))

    @property
    def ports(self) -> List[NicPort]:
        return [port for nic in self.nics for port in nic.ports]

    def port(self, port_id: int) -> NicPort:
        for candidate in self.ports:
            if candidate.port_id == port_id:
                return candidate
        raise ConfigurationError("no port %d on this server" % port_id)

    def reset_ledgers(self) -> None:
        """Zero every component's cumulative-load counters."""
        for core in self.cores:
            core.reset()
        for socket in self.sockets:
            socket.memory.bus.reset()
        self.io_bus.reset()
        self.qpi.reset()
        self.pcie.reset()
        if self.fsb is not None:
            self.fsb.reset()
