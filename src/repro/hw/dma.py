"""DMA engine and PCIe transaction accounting.

Models the NIC<->memory path: every packet incurs two DMA transfers in each
direction (payload + descriptor), and descriptors are relayed in batches of
``kn`` per PCIe transaction (NIC-driven batching, Sec. 4.2).  PCIe1.1
limits a transaction's payload to 256 bytes; a 16-byte descriptor therefore
packs at most 16 per transaction -- which is why the paper stops at kn=16.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..calibration import (
    DESCRIPTOR_BYTES,
    DMA_TRANSFER_USEC,
    PCIE_MAX_PAYLOAD_BYTES,
)
from ..errors import ConfigurationError
from ..units import usec

#: PCIe TLP header overhead per transaction (12 B header + 4 B digest +
#: framing), the standard figure for PCIe1.1.
TLP_OVERHEAD_BYTES = 20


def pcie_transactions_for(num_bytes: int) -> int:
    """Number of PCIe transactions needed to move ``num_bytes`` of payload."""
    if num_bytes < 0:
        raise ValueError("num_bytes must be >= 0")
    if num_bytes == 0:
        return 0
    return -(-num_bytes // PCIE_MAX_PAYLOAD_BYTES)  # ceil division


def pcie_bytes_for_packet(packet_bytes: int, kn: int = 16) -> float:
    """Total PCIe bytes (wire overhead included) to move one packet once.

    Counts the packet payload, its share of a batched descriptor
    transaction, and TLP headers.
    """
    if kn < 1:
        raise ConfigurationError("kn must be >= 1, got %r" % kn)
    payload_txns = pcie_transactions_for(packet_bytes)
    payload_bytes = packet_bytes + payload_txns * TLP_OVERHEAD_BYTES
    # One descriptor per packet; kn descriptors share a transaction.
    descriptor_bytes = DESCRIPTOR_BYTES + TLP_OVERHEAD_BYTES / kn
    return payload_bytes + descriptor_bytes


@dataclass
class DmaEngine:
    """The NIC's DMA engine (400 MHz, Sec. 6.2).

    ``transfer_time`` scales the paper's measured 2.56 us for a 64 B packet
    linearly in transaction count (each 256 B chunk is one transaction of
    roughly constant setup time plus proportional payload time).
    """

    base_usec: float = DMA_TRANSFER_USEC

    def transfer_time(self, packet_bytes: int) -> float:
        """Seconds to DMA one packet between NIC and memory."""
        if packet_bytes <= 0:
            raise ValueError("packet_bytes must be positive")
        # 2.56 us covers setup plus one <=256 B transaction; additional
        # chunks cost proportionally less (no per-transfer setup).
        extra_chunks = max(0, pcie_transactions_for(packet_bytes) - 1)
        return usec(self.base_usec + 0.4 * extra_chunks)
