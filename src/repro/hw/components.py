"""Capacity-accounted hardware components: cores, sockets, buses.

Each component tracks cumulative load (cycles for cores, bytes for buses)
against its capacity per second.  The performance model uses these to find
which component saturates first; the DES uses them as service-rate limits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..errors import ConfigurationError


@dataclass
class Core:
    """A CPU core with a clock rate and a cycle ledger."""

    core_id: int
    socket_id: int
    clock_hz: float
    cycles_used: float = 0.0

    def __post_init__(self):
        if self.clock_hz <= 0:
            raise ConfigurationError("core clock must be positive")

    def charge(self, cycles: float) -> None:
        """Record ``cycles`` of work on this core."""
        if cycles < 0:
            raise ValueError("cannot charge negative cycles")
        self.cycles_used += cycles

    def utilization(self, elapsed_sec: float) -> float:
        """Fraction of available cycles consumed over ``elapsed_sec``."""
        if elapsed_sec <= 0:
            raise ValueError("elapsed time must be positive")
        return self.cycles_used / (self.clock_hz * elapsed_sec)

    def reset(self) -> None:
        self.cycles_used = 0.0


@dataclass
class Bus:
    """A shared byte-moving resource (memory bus, QPI, socket-I/O, PCIe, FSB).

    ``capacity_bps`` is in bits/second to match the paper's Table 2;
    loads are charged in bytes.
    """

    name: str
    capacity_bps: float
    bytes_moved: float = 0.0

    def __post_init__(self):
        if self.capacity_bps <= 0:
            raise ConfigurationError("bus %r capacity must be positive" % self.name)

    def charge(self, num_bytes: float) -> None:
        """Record ``num_bytes`` moved over this bus."""
        if num_bytes < 0:
            raise ValueError("cannot charge negative bytes")
        self.bytes_moved += num_bytes

    def utilization(self, elapsed_sec: float) -> float:
        """Fraction of capacity consumed over ``elapsed_sec``."""
        if elapsed_sec <= 0:
            raise ValueError("elapsed time must be positive")
        return (self.bytes_moved * 8) / (self.capacity_bps * elapsed_sec)

    def reset(self) -> None:
        self.bytes_moved = 0.0


@dataclass
class MemoryController:
    """A per-socket integrated memory controller and its memory bus."""

    socket_id: int
    bus: Bus

    def charge(self, num_bytes: float) -> None:
        self.bus.charge(num_bytes)


@dataclass
class Socket:
    """A CPU socket: cores sharing an L3 cache plus a memory controller."""

    socket_id: int
    cores: List[Core] = field(default_factory=list)
    l3_bytes: int = 8 * 1024 * 1024
    memory: MemoryController = None

    def core_count(self) -> int:
        return len(self.cores)

    def shares_cache(self, core_a: Core, core_b: Core) -> bool:
        """True if both cores belong to this socket (and hence share L3)."""
        return (core_a.socket_id == self.socket_id
                and core_b.socket_id == self.socket_id)
