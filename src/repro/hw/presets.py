"""Server presets matching the paper's hardware.

* :data:`NEHALEM` -- the dual-socket prototype of Sec. 4.1 (the paper's
  evaluation platform): 8 x 2.8 GHz cores, Table 2 capacities, two PCIe1.1
  slots each holding a dual-port 10 G NIC.
* :data:`XEON_SHARED_BUS` -- the pre-Nehalem shared-bus Xeon (Fig. 5):
  eight 2.4 GHz cores behind one front-side bus; memory-stall inflation
  calibrated so 64 B forwarding lands at the paper's 11x-lower point.
* :data:`NEHALEM_NEXT_GEN` -- the projected follow-up of Sec. 5.3: four
  sockets of eight cores (4x CPU), double memory and I/O capacity.
"""

from __future__ import annotations

from .. import calibration as cal
from .server import Server, ServerSpec

NEHALEM = ServerSpec(
    name="nehalem",
    sockets=cal.NEHALEM_SOCKETS,
    cores_per_socket=cal.NEHALEM_CORES_PER_SOCKET,
    clock_hz=cal.NEHALEM_CLOCK_HZ,
    memory_bps=cal.MEMORY_NOMINAL_BPS,
    memory_empirical_bps=cal.MEMORY_EMPIRICAL_BPS,
    io_bps=cal.IO_NOMINAL_BPS,
    io_empirical_bps=cal.IO_EMPIRICAL_BPS,
    qpi_bps=cal.INTERSOCKET_NOMINAL_BPS,
    qpi_empirical_bps=cal.INTERSOCKET_EMPIRICAL_BPS,
    pcie_bps=cal.PCIE_NOMINAL_BPS,
    pcie_empirical_bps=cal.PCIE_EMPIRICAL_BPS,
    nic_slots=cal.NUM_NICS,
    ports_per_nic=2,
    port_rate_bps=cal.PORT_RATE_BPS,
    nic_payload_limit_bps=cal.NIC_PAYLOAD_LIMIT_BPS,
    l3_bytes=cal.NEHALEM_L3_BYTES,
)

XEON_SHARED_BUS = ServerSpec(
    name="xeon-shared-bus",
    sockets=cal.XEON_SOCKETS,
    cores_per_socket=cal.XEON_CORES_PER_SOCKET,
    clock_hz=cal.XEON_CLOCK_HZ,
    # Behind the FSB these never bind first, but keep Table-2-like values.
    memory_bps=cal.MEMORY_NOMINAL_BPS / 4,
    memory_empirical_bps=cal.MEMORY_EMPIRICAL_BPS / 4,
    io_bps=cal.IO_NOMINAL_BPS / 4,
    io_empirical_bps=cal.IO_EMPIRICAL_BPS / 4,
    qpi_bps=cal.INTERSOCKET_NOMINAL_BPS,
    qpi_empirical_bps=cal.INTERSOCKET_EMPIRICAL_BPS,
    pcie_bps=cal.PCIE_NOMINAL_BPS,
    pcie_empirical_bps=cal.PCIE_EMPIRICAL_BPS,
    nic_slots=cal.NUM_NICS,
    ports_per_nic=2,
    port_rate_bps=cal.PORT_RATE_BPS,
    nic_payload_limit_bps=cal.NIC_PAYLOAD_LIMIT_BPS,
    shared_bus=True,
    fsb_bps=cal.XEON_FSB_BPS,
    cpi_factor=cal.XEON_CPI_FACTOR,
)

NEHALEM_NEXT_GEN = ServerSpec(
    name="nehalem-next-gen",
    sockets=4,
    cores_per_socket=8,
    clock_hz=cal.NEHALEM_CLOCK_HZ,
    memory_bps=cal.MEMORY_NOMINAL_BPS * 2,
    memory_empirical_bps=cal.MEMORY_EMPIRICAL_BPS * 2,
    io_bps=cal.IO_NOMINAL_BPS * 2,
    io_empirical_bps=cal.IO_EMPIRICAL_BPS * 2,
    qpi_bps=cal.INTERSOCKET_NOMINAL_BPS * 2,
    qpi_empirical_bps=cal.INTERSOCKET_EMPIRICAL_BPS * 2,
    # 8 PCIe2.0 slots vs 2 PCIe1.1 slots: 2x per-lane rate, 4x slots;
    # we conservatively scale the aggregate fabric 4x.
    pcie_bps=cal.PCIE_NOMINAL_BPS * 4,
    pcie_empirical_bps=cal.PCIE_EMPIRICAL_BPS * 4,
    nic_slots=8,                            # "4-8 PCIe2.0 slots" (Sec. 4.1)
    ports_per_nic=2,
    port_rate_bps=cal.PORT_RATE_BPS,
    nic_payload_limit_bps=cal.NIC_PAYLOAD_LIMIT_BPS * 2,
    l3_bytes=cal.NEHALEM_L3_BYTES,
)


def nehalem_server(num_ports: int = 4, queues_per_port: int = 8) -> Server:
    """The prototype server as evaluated: 4 x 10 G ports, multi-queue."""
    return Server(NEHALEM, num_ports=num_ports,
                  queues_per_port=queues_per_port)


def xeon_server(num_ports: int = 4) -> Server:
    """The shared-bus Xeon reference, single-queue NICs."""
    return Server(XEON_SHARED_BUS, num_ports=num_ports, queues_per_port=1)
