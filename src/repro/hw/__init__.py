"""Server hardware models.

Models the two server architectures the paper studies (Sec. 4.1-4.2):

* the **Nehalem** prototype -- two sockets of four 2.8 GHz cores, per-socket
  integrated memory controllers, point-to-point inter-socket (QPI) and
  socket-I/O links, and PCIe1.1 x8 slots holding dual-port 10 G NICs, and
* the **shared-bus Xeon** reference -- eight 2.4 GHz cores behind a single
  front-side bus shared by all memory and I/O traffic.

Components are capacity-accounted resources: the performance model charges
per-packet loads against them to find the bottleneck, and the DES charges
service times.  NICs model multiple receive/transmit queues with RSS-style
flow assignment and descriptor-ring batching.
"""

from .components import Bus, Core, MemoryController, Socket
from .nic import Nic, NicPort, NicQueue
from .dma import DmaEngine, pcie_bytes_for_packet
from .server import Server, ServerSpec
from .presets import (
    NEHALEM,
    NEHALEM_NEXT_GEN,
    XEON_SHARED_BUS,
    nehalem_server,
    xeon_server,
)

__all__ = [
    "Bus",
    "Core",
    "MemoryController",
    "Socket",
    "Nic",
    "NicPort",
    "NicQueue",
    "DmaEngine",
    "pcie_bytes_for_packet",
    "Server",
    "ServerSpec",
    "NEHALEM",
    "NEHALEM_NEXT_GEN",
    "XEON_SHARED_BUS",
    "nehalem_server",
    "xeon_server",
]
