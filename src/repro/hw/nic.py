"""Multi-queue NIC model.

The paper's single-server scaling hinges on multi-queue NICs (Sec. 4.2):
with one receive and one transmit queue per core per port, every queue is
accessed by exactly one core and every packet is handled by exactly one
core.  The model provides:

* :class:`NicQueue` -- a bounded descriptor ring that records which cores
  access it (so the scheduler can detect rule violations and the
  performance model can charge lock-contention penalties),
* :class:`NicPort` -- a port with per-queue RSS flow assignment, or
  MAC-based assignment for the cluster's output-node encoding trick
  (Sec. 6.1),
* :class:`Nic` -- a card holding one or two ports that share a PCIe slot's
  payload budget (12.3 Gbps on the prototype's PCIe1.1 x8 slots).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..calibration import NIC_PAYLOAD_LIMIT_BPS
from ..errors import CapacityError, ConfigurationError
from ..net.flows import queue_for_flow
from ..net.packet import Packet

DEFAULT_RING_SLOTS = 512


class NicQueue:
    """A bounded RX or TX descriptor ring.

    Drops (rather than blocks) on overflow, as a real ring does; drop and
    enqueue counts feed the loss-free-rate measurements.
    """

    def __init__(self, queue_id: int, direction: str,
                 capacity: int = DEFAULT_RING_SLOTS):
        if direction not in ("rx", "tx"):
            raise ConfigurationError("queue direction must be rx|tx")
        if capacity < 1:
            raise ConfigurationError("ring capacity must be >= 1")
        self.queue_id = queue_id
        self.direction = direction
        self.capacity = capacity
        self._ring = deque()
        #: Count-only occupancy used by the batch fast-path: descriptors
        #: whose payload nobody will inspect are tracked as an integer
        #: instead of ring entries, so push/pop are O(1) regardless of
        #: burst size.  ``__len__`` and the capacity check see the sum of
        #: both, so token and object descriptors share the ring honestly.
        self._tokens = 0
        self.enqueued = 0
        self.dropped = 0
        self.accessing_cores: Set[int] = set()

    def __len__(self) -> int:
        return len(self._ring) + self._tokens

    def push(self, packet: Packet) -> bool:
        """Append a packet; returns False (and counts a drop) if full."""
        if len(self._ring) >= self.capacity:
            self.dropped += 1
            return False
        self._ring.append(packet)
        self.enqueued += 1
        return True

    def pop(self) -> Optional[Packet]:
        """Remove and return the oldest packet, or None when empty."""
        if not self._ring:
            return None
        return self._ring.popleft()

    def pop_batch(self, max_packets: int) -> List[Packet]:
        """Remove up to ``max_packets`` packets (poll-driven batching)."""
        if max_packets < 1:
            raise ValueError("max_packets must be >= 1")
        out = []
        while self._ring and len(out) < max_packets:
            out.append(self._ring.popleft())
        return out

    def push_token(self) -> bool:
        """Count-only enqueue: same capacity/drop accounting as
        :meth:`push`, for descriptors whose payload is never read."""
        if len(self._ring) + self._tokens >= self.capacity:
            self.dropped += 1
            return False
        self._tokens += 1
        self.enqueued += 1
        return True

    def pop_tokens(self, max_packets: int) -> int:
        """Remove up to ``max_packets`` token descriptors; returns how
        many came off (the count-only mirror of :meth:`pop_batch`)."""
        tokens = self._tokens
        n = max_packets if tokens > max_packets else tokens
        self._tokens = tokens - n
        return n

    def clear(self) -> None:
        """Drop all queued descriptors, object and token alike (run
        setup: scrub residue left by a previous run on the same port)."""
        self._ring.clear()
        self._tokens = 0

    def note_access(self, core_id: int) -> None:
        """Record that ``core_id`` touches this queue."""
        self.accessing_cores.add(core_id)

    def is_shared(self) -> bool:
        """True if more than one core accesses this queue (rule violation)."""
        return len(self.accessing_cores) > 1


class NicPort:
    """One network port with multiple RX and TX queues."""

    def __init__(self, port_id: int, rate_bps: float, num_queues: int = 1,
                 ring_slots: int = DEFAULT_RING_SLOTS):
        if rate_bps <= 0:
            raise ConfigurationError("port rate must be positive")
        if num_queues < 1:
            raise ConfigurationError("port needs at least one queue")
        self.port_id = port_id
        self.rate_bps = rate_bps
        self.rx_queues = [NicQueue(i, "rx", ring_slots)
                          for i in range(num_queues)]
        self.tx_queues = [NicQueue(i, "tx", ring_slots)
                          for i in range(num_queues)]
        self.rx_bytes = 0
        self.tx_bytes = 0
        #: When set, RX queue selection uses the destination MAC's encoded
        #: node id instead of the flow hash (the Sec. 6.1 trick).
        self.mac_steering = False

    @property
    def num_queues(self) -> int:
        return len(self.rx_queues)

    def classify(self, packet: Packet) -> int:
        """Pick the RX queue for an arriving packet."""
        if self.mac_steering:
            return packet.eth.dst.node_id() % self.num_queues
        if packet.ip is None:
            return packet.packet_id % self.num_queues
        return queue_for_flow(packet.five_tuple(), self.num_queues)

    def receive(self, packet: Packet) -> bool:
        """Deliver an arriving packet into its RX queue; False on drop."""
        self.rx_bytes += packet.length
        return self.rx_queues[self.classify(packet)].push(packet)

    def transmit(self, packet: Packet, queue_id: int = 0) -> bool:
        """Queue a packet for transmission; False on ring overflow."""
        if not 0 <= queue_id < self.num_queues:
            raise ConfigurationError(
                "tx queue %d out of range for port %d" % (queue_id, self.port_id))
        ok = self.tx_queues[queue_id].push(packet)
        if ok:
            self.tx_bytes += packet.length
        return ok

    def drain(self) -> List[Packet]:
        """Pop everything from all TX queues (the wire side of the model)."""
        out = []
        for queue in self.tx_queues:
            while True:
                packet = queue.pop()
                if packet is None:
                    break
                out.append(packet)
        return out

    def total_rx_drops(self) -> int:
        return sum(q.dropped for q in self.rx_queues)


@dataclass
class Nic:
    """A NIC card: up to two ports sharing one PCIe slot's payload budget."""

    nic_id: int
    ports: List[NicPort] = field(default_factory=list)
    payload_limit_bps: float = NIC_PAYLOAD_LIMIT_BPS

    def __post_init__(self):
        if not 1 <= len(self.ports) <= 2:
            raise ConfigurationError("a NIC holds 1 or 2 ports")

    def offered_load_bps(self, elapsed_sec: float) -> float:
        """Aggregate payload rate moved through this NIC (both directions
        counted once each, per the paper's 12.3 Gbps per-NIC observation)."""
        if elapsed_sec <= 0:
            raise ValueError("elapsed time must be positive")
        total_bytes = sum(p.rx_bytes + p.tx_bytes for p in self.ports)
        return total_bytes * 8 / elapsed_sec

    def check_capacity(self, elapsed_sec: float) -> None:
        """Raise :class:`CapacityError` if the PCIe payload budget is blown."""
        load = self.offered_load_bps(elapsed_sec)
        if load > self.payload_limit_bps:
            raise CapacityError(
                "NIC %d offered %.2f Gbps exceeds slot limit %.2f Gbps"
                % (self.nic_id, load / 1e9, self.payload_limit_bps / 1e9))
