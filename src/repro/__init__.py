"""repro: a reproduction of RouteBricks (SOSP 2009).

RouteBricks is a router architecture that parallelizes packet processing
both across commodity servers (via Valiant load-balanced switching) and
within each server (multi-queue NICs, one-core-per-packet scheduling, and
batched I/O).  This library reproduces the system and its evaluation as a
calibrated performance model plus a packet-level discrete-event simulation,
with real substrates (LPM routing, AES-128/ESP, a Click-like dataplane).

Public entry points
-------------------

``repro.costs``
    The unified cost layer: ``ResourceVector``, the calibrated
    ``CostModel``, and the ``compile_loads`` pipeline compiler that the
    analytic model, the Click scheduler, and the DES all charge from.
``repro.perfmodel``
    Single-server performance model (Tables 1-3, Figs 6-10).
``repro.core``
    The cluster router: VLB switching, topologies, RB4 (Sec. 3, 6).
``repro.click``
    The Click-like modular dataplane.
``repro.workloads``
    Traffic generation (fixed-size, Abilene-like, traffic matrices) and
    ``WorkloadSpec``, the uniform workload descriptor every throughput
    API accepts.
``repro.faults``
    Fault injection (timed crash/recover/link/NIC-stall schedules) and
    the analytic graceful-degradation model (Sec. 3.2).
``repro.results``
    ``RunResult``, the common base for every result object
    (``to_dict()`` / ``summary()``).
``repro.analysis``
    Bottleneck deconstruction and experiment runners.
"""

from . import calibration, costs, units
from .errors import (
    CapacityError,
    ConfigurationError,
    CryptoError,
    PacketError,
    ReproError,
    RoutingError,
    SchedulingError,
    SimulationError,
    TopologyError,
)

__version__ = "1.0.0"

__all__ = [
    "calibration",
    "costs",
    "units",
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "CapacityError",
    "PacketError",
    "RoutingError",
    "SchedulingError",
    "SimulationError",
    "CryptoError",
    "__version__",
]
