"""A synthetic stand-in for the Abilene-I packet trace.

The paper's realistic workload is the "Abilene-I" capture from the Abilene
backbone [10].  That trace is not redistributable, so we synthesize one
with the properties the evaluation actually depends on:

* the **packet-size mixture** -- the classic trimodal backbone profile
  (minimum-size ACKs, a 576 B legacy mode, and full 1500 B data packets)
  with weights set so the mean matches the calibrated
  ``ABILENE_MEAN_PACKET_BYTES`` (740 B), which is what fixes the trace's
  bits-per-packet ratio and hence every NIC-limited rate in Fig. 8; and
* the **flow structure** -- heavy-tailed flow lengths with Poisson flow
  arrivals and bursty within-flow spacing, which is what the flowlet
  mechanism (Sec. 6.1) exploits.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Tuple

from .. import calibration as cal
from ..errors import ConfigurationError
from ..net.addresses import IPv4Address
from ..net.packet import Packet
from .synthetic import PacketSource

#: (frame bytes, probability).  Weights chosen so the mean is ~740 B.
ABILENE_SIZE_MIX: List[Tuple[int, float]] = [
    (64, 0.45),
    (576, 0.1232),
    (1500, 0.4268),
]


def mix_mean_bytes() -> float:
    """Mean frame size of :data:`ABILENE_SIZE_MIX`."""
    return sum(size * weight for size, weight in ABILENE_SIZE_MIX)


class AbileneTrace(PacketSource):
    """Generate an Abilene-like packet stream.

    Parameters
    ----------
    num_flows:
        Size of the live-flow pool; completed flows are replaced so the
        pool stays full (an approximation of flow churn).
    mean_flow_packets:
        Mean of the geometric flow-length distribution mixed with a Pareto
        tail (a small fraction of elephants carry most bytes).
    seed:
        Deterministic generation for a given seed.
    """

    def __init__(self, num_flows: int = 256, mean_flow_packets: float = 20.0,
                 elephant_fraction: float = 0.05, seed: int = 0):
        if num_flows < 1:
            raise ConfigurationError("need >= 1 flow")
        if mean_flow_packets <= 1:
            raise ConfigurationError("mean_flow_packets must exceed 1")
        if not 0 <= elephant_fraction < 1:
            raise ConfigurationError("elephant_fraction must be in [0, 1)")
        self.rng = random.Random(seed)
        self.num_flows = num_flows
        self.mean_flow_packets = mean_flow_packets
        self.elephant_fraction = elephant_fraction
        self._sizes, self._weights = zip(*ABILENE_SIZE_MIX)
        self._flows = [self._new_flow() for _ in range(num_flows)]

    def _new_flow(self) -> dict:
        if self.rng.random() < self.elephant_fraction:
            # Pareto tail: elephants of ~20x the mean length.
            remaining = int(self.rng.paretovariate(1.2)
                            * self.mean_flow_packets * 2)
        else:
            remaining = max(1, int(self.rng.expovariate(
                1.0 / self.mean_flow_packets)))
        return {
            "src": IPv4Address(self.rng.getrandbits(32)),
            "dst": IPv4Address(self.rng.getrandbits(32)),
            "sport": 1024 + self.rng.randrange(60000),
            "dport": self.rng.choice([80, 443, 22, 53, 8080]),
            "remaining": remaining,
            "seq": 0,
        }

    def mean_packet_bytes(self) -> float:
        return cal.ABILENE_MEAN_PACKET_BYTES

    def draw_size(self) -> int:
        """One frame size from the trimodal mixture."""
        return self.rng.choices(self._sizes, weights=self._weights)[0]

    def packets(self, count: int) -> Iterator[Packet]:
        """Yield ``count`` packets, interleaving the live flows."""
        if count < 0:
            raise ValueError("count must be >= 0")
        for _ in range(count):
            index = self.rng.randrange(self.num_flows)
            flow = self._flows[index]
            flow["seq"] += 1
            flow["remaining"] -= 1
            packet = Packet.udp(flow["src"], flow["dst"],
                                length=self.draw_size(),
                                src_port=flow["sport"],
                                dst_port=flow["dport"])
            packet.flow_seq = flow["seq"]
            if flow["remaining"] <= 0:
                self._flows[index] = self._new_flow()
            yield packet

    def timed_packets(self, count: int, rate_bps: float) \
            -> Iterator[Tuple[float, Packet]]:
        """Yield (arrival time, packet) pairs at an average bit rate.

        Inter-arrivals are exponential in *bits* (Poisson packet process
        modulated by packet size), giving the burstiness the flowlet
        mechanism needs to be meaningfully exercised.
        """
        if rate_bps <= 0:
            raise ConfigurationError("rate must be positive")
        now = 0.0
        for packet in self.packets(count):
            mean_gap = packet.length * 8 / rate_bps
            now += self.rng.expovariate(1.0 / mean_gap) if mean_gap > 0 else 0
            packet.arrival_time = now
            yield now, packet
