"""IMIX packet-size mixtures.

Standard Internet-mix workloads used throughout the router-benchmarking
literature: the "simple IMIX" (7:4:1 at 64/570/1518 B, mean ~353 B) and a
small library of named mixes.  These complement the paper's fixed-size and
Abilene workloads when characterizing the rate-vs-size surface.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Tuple

from ..errors import ConfigurationError
from ..net.addresses import IPv4Address
from ..net.packet import Packet
from .synthetic import PacketSource

#: Named (size, weight) mixes; weights need not be normalized.
MIXES: Dict[str, List[Tuple[int, float]]] = {
    # The classic simple IMIX: 7 x 64 B, 4 x 570 B, 1 x 1518 B.
    "simple": [(64, 7), (570, 4), (1518, 1)],
    # Tomahawk-style IMIX used in some vendor test plans.
    "cisco": [(64, 0.58), (594, 0.33), (1518, 0.09)],
    # A worst-case all-minimum mix for stress comparisons.
    "minimum": [(64, 1)],
}


def mix_mean_bytes(mix: List[Tuple[int, float]]) -> float:
    """Weighted mean frame size of a mix."""
    total_weight = sum(weight for _, weight in mix)
    if total_weight <= 0:
        raise ConfigurationError("mix weights must sum to > 0")
    return sum(size * weight for size, weight in mix) / total_weight


class ImixWorkload(PacketSource):
    """Generate packets whose sizes follow a named or custom IMIX."""

    def __init__(self, mix="simple", num_flows: int = 64, seed: int = 0):
        if isinstance(mix, str):
            if mix not in MIXES:
                raise ConfigurationError("unknown mix %r (have %s)"
                                         % (mix, sorted(MIXES)))
            mix = MIXES[mix]
        if not mix or any(size < 64 or weight < 0 for size, weight in mix):
            raise ConfigurationError("mix entries need size >= 64, weight >= 0")
        if num_flows < 1:
            raise ConfigurationError("need >= 1 flow")
        self.mix = list(mix)
        self.rng = random.Random(seed)
        self._sizes, self._weights = zip(*self.mix)
        self._flows = [(IPv4Address(self.rng.getrandbits(32)),
                        IPv4Address(self.rng.getrandbits(32)),
                        1024 + self.rng.randrange(60000), 80)
                       for _ in range(num_flows)]
        self._seq = [0] * num_flows

    def mean_packet_bytes(self) -> float:
        return mix_mean_bytes(self.mix)

    def packets(self, count: int) -> Iterator[Packet]:
        """Yield ``count`` packets, sizes drawn from the mix."""
        if count < 0:
            raise ValueError("count must be >= 0")
        for index in range(count):
            flow = index % len(self._flows)
            src, dst, sport, dport = self._flows[flow]
            size = self.rng.choices(self._sizes, weights=self._weights)[0]
            packet = Packet.udp(src, dst, length=size, src_port=sport,
                                dst_port=dport)
            self._seq[flow] += 1
            packet.flow_seq = self._seq[flow]
            yield packet


def imix_rate_gbps(app_name: str = "forwarding", mix: str = "simple") -> float:
    """Loss-free rate for an application under a named IMIX (by mean size,
    exact for the affine cost model)."""
    from ..perfmodel.throughput import max_loss_free_rate
    from .spec import WorkloadSpec

    mix = MIXES[mix] if isinstance(mix, str) else mix
    return max_loss_free_rate(
        WorkloadSpec.imix(mix, app=app_name)).rate_gbps
