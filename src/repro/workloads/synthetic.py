"""Fixed-size synthetic workloads with random destinations."""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..net.addresses import IPv4Address
from ..net.batch import PacketBatch
from ..net.headers import PROTO_UDP
from ..net.packet import Packet
from ..units import MIN_PACKET_BYTES


class PacketSource:
    """Base class: an iterator of packets plus rate bookkeeping."""

    def packets(self, count: int) -> Iterator[Packet]:
        raise NotImplementedError

    def mean_packet_bytes(self) -> float:
        raise NotImplementedError


class FixedSizeWorkload(PacketSource):
    """Every packet has the same size; destinations randomized per flow.

    ``num_flows`` five-tuples are pre-generated; packets cycle through them
    (round-robin by default, or randomly with ``randomize_flows``), each
    carrying a per-flow sequence number for reordering measurements.
    """

    def __init__(self, packet_bytes: int = 64, num_flows: int = 64,
                 seed: int = 0, randomize_flows: bool = False,
                 dst_pool: Optional[List[IPv4Address]] = None):
        if packet_bytes < MIN_PACKET_BYTES:
            raise ConfigurationError(
                "packet size %d below Ethernet minimum" % packet_bytes)
        if num_flows < 1:
            raise ConfigurationError("need >= 1 flow")
        self.packet_bytes = packet_bytes
        self.rng = random.Random(seed)
        self.randomize_flows = randomize_flows
        self._flows = []
        for i in range(num_flows):
            src = IPv4Address((10 << 24) | self.rng.getrandbits(24))
            if dst_pool:
                dst = dst_pool[i % len(dst_pool)]
            else:
                dst = IPv4Address(self.rng.getrandbits(32))
            self._flows.append((src, dst,
                                1024 + self.rng.randrange(60000),
                                80 if i % 2 else 443))
        self._flow_seq = [0] * num_flows
        self._next_flow = 0
        self._flow_columns = None  # cached (src, dst) uint32 flow arrays

    def mean_packet_bytes(self) -> float:
        return float(self.packet_bytes)

    def _pick_flow(self) -> int:
        if self.randomize_flows:
            return self.rng.randrange(len(self._flows))
        index = self._next_flow
        self._next_flow = (self._next_flow + 1) % len(self._flows)
        return index

    def packets(self, count: int) -> Iterator[Packet]:
        """Yield ``count`` packets cycling over the flow pool."""
        if count < 0:
            raise ValueError("count must be >= 0")
        flows = self._flows
        flow_seq = self._flow_seq
        pick = self._pick_flow
        udp = Packet.udp
        length = self.packet_bytes
        for _ in range(count):
            index = pick()
            src, dst, sport, dport = flows[index]
            packet = udp(src, dst, length=length,
                         src_port=sport, dst_port=dport)
            flow_seq[index] += 1
            packet.flow_seq = flow_seq[index]
            yield packet

    def packet_batch(self, count: int) -> PacketBatch:
        """``count`` packets as one structure-of-arrays batch.

        Produces the same flow sequence -- and leaves the workload's
        flow/RNG state exactly where :meth:`packets` would have -- but
        builds only numpy columns; real :class:`Packet` objects
        materialize lazily (per row, on demand) with the same fields and
        per-flow ``flow_seq`` the scalar generator would have assigned.
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        num_flows = len(self._flows)
        flow_seq = self._flow_seq
        if self.randomize_flows:
            # The RNG must advance once per packet, same as the scalar
            # path, so random flow picking stays a Python loop.
            idx = np.empty(count, dtype=np.int64)
            seq = np.empty(count, dtype=np.int64)
            randrange = self.rng.randrange
            for i in range(count):
                index = randrange(num_flows)
                idx[i] = index
                flow_seq[index] += 1
                seq[i] = flow_seq[index]
        else:
            start = self._next_flow
            positions = np.arange(count, dtype=np.int64)
            idx = (start + positions) % num_flows
            base = np.asarray(flow_seq, dtype=np.int64)
            # Round-robin: flow f's k-th appearance is row f_pos + k*N,
            # so its sequence number is base + row // N + 1.
            seq = base[idx] + positions // num_flows + 1
            for index, extra in enumerate(np.bincount(
                    idx, minlength=num_flows).tolist()):
                flow_seq[index] += extra
            self._next_flow = (start + count) % num_flows
        if self._flow_columns is None:
            self._flow_columns = (
                np.fromiter((flow[0].value for flow in self._flows),
                            dtype=np.uint32, count=num_flows),
                np.fromiter((flow[1].value for flow in self._flows),
                            dtype=np.uint32, count=num_flows))
        src_col, dst_col = self._flow_columns
        length = self.packet_bytes
        flows = self._flows

        def materialize(i: int) -> Packet:
            src, dst, sport, dport = flows[int(idx[i])]
            packet = Packet.udp(src, dst, length=length,
                                src_port=sport, dst_port=dport)
            packet.flow_seq = int(seq[i])
            return packet

        return PacketBatch.from_columns(
            lengths=np.full(count, length, dtype=np.int64),
            dst=dst_col[idx], src=src_col[idx],
            ttl=np.full(count, 64, dtype=np.int16),
            proto=np.full(count, PROTO_UDP, dtype=np.int16),
            total_length=np.full(count, max(length - 14, 20),
                                 dtype=np.int32),
            materialize=materialize)
