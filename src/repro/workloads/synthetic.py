"""Fixed-size synthetic workloads with random destinations."""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from ..errors import ConfigurationError
from ..net.addresses import IPv4Address
from ..net.packet import Packet
from ..units import MIN_PACKET_BYTES


class PacketSource:
    """Base class: an iterator of packets plus rate bookkeeping."""

    def packets(self, count: int) -> Iterator[Packet]:
        raise NotImplementedError

    def mean_packet_bytes(self) -> float:
        raise NotImplementedError


class FixedSizeWorkload(PacketSource):
    """Every packet has the same size; destinations randomized per flow.

    ``num_flows`` five-tuples are pre-generated; packets cycle through them
    (round-robin by default, or randomly with ``randomize_flows``), each
    carrying a per-flow sequence number for reordering measurements.
    """

    def __init__(self, packet_bytes: int = 64, num_flows: int = 64,
                 seed: int = 0, randomize_flows: bool = False,
                 dst_pool: Optional[List[IPv4Address]] = None):
        if packet_bytes < MIN_PACKET_BYTES:
            raise ConfigurationError(
                "packet size %d below Ethernet minimum" % packet_bytes)
        if num_flows < 1:
            raise ConfigurationError("need >= 1 flow")
        self.packet_bytes = packet_bytes
        self.rng = random.Random(seed)
        self.randomize_flows = randomize_flows
        self._flows = []
        for i in range(num_flows):
            src = IPv4Address((10 << 24) | self.rng.getrandbits(24))
            if dst_pool:
                dst = dst_pool[i % len(dst_pool)]
            else:
                dst = IPv4Address(self.rng.getrandbits(32))
            self._flows.append((src, dst,
                                1024 + self.rng.randrange(60000),
                                80 if i % 2 else 443))
        self._flow_seq = [0] * num_flows
        self._next_flow = 0

    def mean_packet_bytes(self) -> float:
        return float(self.packet_bytes)

    def _pick_flow(self) -> int:
        if self.randomize_flows:
            return self.rng.randrange(len(self._flows))
        index = self._next_flow
        self._next_flow = (self._next_flow + 1) % len(self._flows)
        return index

    def packets(self, count: int) -> Iterator[Packet]:
        """Yield ``count`` packets cycling over the flow pool."""
        if count < 0:
            raise ValueError("count must be >= 0")
        flows = self._flows
        flow_seq = self._flow_seq
        pick = self._pick_flow
        udp = Packet.udp
        length = self.packet_bytes
        for _ in range(count):
            index = pick()
            src, dst, sport, dport = flows[index]
            packet = udp(src, dst, length=length,
                         src_port=sport, dst_port=dport)
            flow_seq[index] += 1
            packet.flow_seq = flow_seq[index]
            yield packet
