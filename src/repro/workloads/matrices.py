"""Cluster traffic matrices.

The VLB analysis (Sec. 3.2) distinguishes close-to-uniform matrices (where
Direct VLB routes almost everything directly, c -> 2) from worst-case
matrices (where the full two-phase tax applies, c -> 3).  A
:class:`TrafficMatrix` maps (input node, output node) to a demand rate.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError


class TrafficMatrix:
    """An N x N demand matrix in bits/second.

    Row = input node, column = output node.  The diagonal (self-traffic)
    is typically zero.
    """

    def __init__(self, demands):
        matrix = np.asarray(demands, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ConfigurationError("traffic matrix must be square")
        if (matrix < 0).any():
            raise ConfigurationError("demands cannot be negative")
        self.demands = matrix

    @property
    def n(self) -> int:
        return self.demands.shape[0]

    def row_sum(self, node: int) -> float:
        """Total traffic entering at ``node``."""
        return float(self.demands[node].sum())

    def col_sum(self, node: int) -> float:
        """Total traffic exiting at ``node``."""
        return float(self.demands[:, node].sum())

    def is_admissible(self, port_rate_bps: float, tol: float = 1e-9) -> bool:
        """True if no input or output line is oversubscribed.

        VLB's 100 %-throughput guarantee only applies to admissible
        matrices (no port asked to carry more than its line rate).
        """
        for node in range(self.n):
            if self.row_sum(node) > port_rate_bps * (1 + tol):
                return False
            if self.col_sum(node) > port_rate_bps * (1 + tol):
                return False
        return True

    def uniformity(self) -> float:
        """1.0 for a perfectly uniform off-diagonal matrix, less otherwise.

        Computed as (mean off-diagonal demand) / (max off-diagonal demand);
        a permutation matrix scores 1/(N-1)... -> 0 as N grows.
        """
        off_diag = self.demands[~np.eye(self.n, dtype=bool)]
        peak = off_diag.max()
        if peak == 0:
            return 1.0
        return float(off_diag.mean() / peak)

    def scaled(self, factor: float) -> "TrafficMatrix":
        return TrafficMatrix(self.demands * factor)


def uniform_matrix(n: int, port_rate_bps: float) -> TrafficMatrix:
    """Each input spreads its full line rate evenly over the other nodes."""
    if n < 2:
        raise ConfigurationError("need >= 2 nodes")
    demand = port_rate_bps / (n - 1)
    matrix = np.full((n, n), demand)
    np.fill_diagonal(matrix, 0.0)
    return TrafficMatrix(matrix)


def permutation_matrix(n: int, port_rate_bps: float,
                       shift: int = 1) -> TrafficMatrix:
    """The VLB worst case: node i sends everything to node (i+shift) mod n."""
    if n < 2:
        raise ConfigurationError("need >= 2 nodes")
    if shift % n == 0:
        raise ConfigurationError("shift would create self-traffic")
    matrix = np.zeros((n, n))
    for i in range(n):
        matrix[i][(i + shift) % n] = port_rate_bps
    return TrafficMatrix(matrix)


def hotspot_matrix(n: int, port_rate_bps: float, hot_node: int = 0,
                   hot_fraction: float = 0.5) -> TrafficMatrix:
    """Every input sends ``hot_fraction`` of its traffic to one output.

    Still admissible only while n * hot_fraction <= 1 -- the constructor
    scales hot demands down to keep the hot output at line rate, modeling
    an output-constrained hotspot.
    """
    if n < 2:
        raise ConfigurationError("need >= 2 nodes")
    if not 0 < hot_fraction <= 1:
        raise ConfigurationError("hot_fraction must be in (0, 1]")
    if not 0 <= hot_node < n:
        raise ConfigurationError("hot_node out of range")
    matrix = np.zeros((n, n))
    senders = [i for i in range(n) if i != hot_node]
    hot_share = min(port_rate_bps * hot_fraction,
                    port_rate_bps / len(senders))
    for i in senders:
        matrix[i][hot_node] = hot_share
        cold = (port_rate_bps - hot_share) / max(1, n - 2)
        for j in range(n):
            if j not in (i, hot_node):
                matrix[i][j] = cold
    return TrafficMatrix(matrix)
