"""Routing-table churn workloads (BGP-update-style).

Software routers must absorb control-plane churn while forwarding; this
generator produces update streams against the FIB: announcements of new
prefixes, re-announcements (next-hop changes), and withdrawals, with the
announce/withdraw mix and prefix-length distribution of typical BGP feeds.
Used to exercise DIR-24-8's incremental update path (a classic weakness of
the scheme is /8 announcements rewriting 64 K first-level slots -- the
generator includes a tunable share of short prefixes to stress exactly
that).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List

from ..errors import ConfigurationError
from ..net.addresses import IPv4Address, MACAddress, Prefix
from ..routing.rib_gen import PREFIX_LENGTH_MIX
from ..routing.table import Route, RoutingTable


@dataclass(frozen=True)
class Update:
    """One routing update: announce (route set) or withdraw (route None)."""

    prefix: Prefix
    route: object  # Route or None

    @property
    def is_withdrawal(self) -> bool:
        return self.route is None


class ChurnGenerator:
    """Generate a stream of updates against an existing table.

    ``withdraw_fraction`` of updates remove an installed prefix;
    ``reannounce_fraction`` change an installed prefix's next hop; the
    rest announce fresh prefixes.  Deterministic per seed.
    """

    def __init__(self, table: RoutingTable, num_ports: int = 4,
                 withdraw_fraction: float = 0.3,
                 reannounce_fraction: float = 0.4, seed: int = 0):
        if not 0 <= withdraw_fraction <= 1 or not 0 <= reannounce_fraction <= 1:
            raise ConfigurationError("fractions must be in [0, 1]")
        if withdraw_fraction + reannounce_fraction > 1:
            raise ConfigurationError("fractions exceed 1")
        if num_ports < 1:
            raise ConfigurationError("need >= 1 port")
        self.table = table
        self.num_ports = num_ports
        self.withdraw_fraction = withdraw_fraction
        self.reannounce_fraction = reannounce_fraction
        self.rng = random.Random(seed)
        self._installed: List[Prefix] = [p for p, _ in table.routes()]
        self._lengths, self._weights = zip(*PREFIX_LENGTH_MIX)

    def _random_route(self) -> Route:
        port = self.rng.randrange(self.num_ports)
        return Route(port=port,
                     next_hop=IPv4Address((10 << 24) | (port << 8) | 1),
                     next_hop_mac=MACAddress(0x020000000000 | port))

    def _fresh_prefix(self) -> Prefix:
        while True:
            length = self.rng.choices(self._lengths,
                                      weights=self._weights)[0]
            addr = (self.rng.randint(1, 223) << 24) | self.rng.getrandbits(24)
            prefix = Prefix.from_address(addr, length)
            if not self.table.has_route(prefix):
                return prefix

    def updates(self, count: int) -> Iterator[Update]:
        """Yield ``count`` updates (announce / re-announce / withdraw)."""
        if count < 0:
            raise ValueError("count must be >= 0")
        for _ in range(count):
            roll = self.rng.random()
            if roll < self.withdraw_fraction and self._installed:
                index = self.rng.randrange(len(self._installed))
                prefix = self._installed.pop(index)
                yield Update(prefix=prefix, route=None)
            elif roll < self.withdraw_fraction + self.reannounce_fraction \
                    and self._installed:
                prefix = self._installed[
                    self.rng.randrange(len(self._installed))]
                yield Update(prefix=prefix, route=self._random_route())
            else:
                prefix = self._fresh_prefix()
                self._installed.append(prefix)
                yield Update(prefix=prefix, route=self._random_route())

    def apply(self, count: int) -> dict:
        """Apply ``count`` updates to the table; returns operation counts."""
        stats = {"announced": 0, "reannounced": 0, "withdrawn": 0,
                 "withdraw_misses": 0}
        for update in self.updates(count):
            if update.is_withdrawal:
                try:
                    self.table.remove_route(update.prefix)
                    stats["withdrawn"] += 1
                except Exception:
                    stats["withdraw_misses"] += 1
            else:
                existed = self.table.has_route(update.prefix)
                self.table.add_route(update.prefix, update.route)
                if existed:
                    stats["reannounced"] += 1
                else:
                    stats["announced"] += 1
        return stats
