"""pcap trace I/O (libpcap classic format, implemented from the spec).

The paper's realistic workload is a captured packet trace; this module
lets the library consume and produce real traces: classic pcap
(magic 0xa1b2c3d4, microsecond timestamps, LINKTYPE_ETHERNET) written and
parsed from scratch, round-tripping `repro.net.Packet` objects with their
arrival timestamps.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterable, Iterator, Tuple

from ..errors import PacketError
from ..net.packet import Packet

_MAGIC = 0xA1B2C3D4
_VERSION_MAJOR = 2
_VERSION_MINOR = 4
_LINKTYPE_ETHERNET = 1
_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")
_MAX_SNAPLEN = 65_535


def write_pcap(stream: BinaryIO,
               timed_packets: Iterable[Tuple[float, Packet]]) -> int:
    """Write (time, packet) pairs as a pcap file; returns packets written.

    Timestamps are split into seconds/microseconds; packets are fully
    serialized (headers + payload padding) so external tools can read the
    output.
    """
    stream.write(_GLOBAL_HEADER.pack(_MAGIC, _VERSION_MAJOR, _VERSION_MINOR,
                                     0, 0, _MAX_SNAPLEN, _LINKTYPE_ETHERNET))
    count = 0
    last_time = -1.0
    for time, packet in timed_packets:
        if time < 0:
            raise PacketError("negative timestamp %r" % time)
        if time < last_time:
            raise PacketError("timestamps must be non-decreasing")
        last_time = time
        raw = packet.pack()
        seconds = int(time)
        micros = int(round((time - seconds) * 1e6))
        if micros >= 1_000_000:
            seconds += 1
            micros -= 1_000_000
        stream.write(_RECORD_HEADER.pack(seconds, micros, len(raw), len(raw)))
        stream.write(raw)
        count += 1
    return count


def read_pcap(stream: BinaryIO) -> Iterator[Tuple[float, Packet]]:
    """Parse a pcap file into (time, Packet) pairs.

    Supports the classic little-endian microsecond format written by
    :func:`write_pcap` (and by tcpdump on little-endian machines).
    """
    header = stream.read(_GLOBAL_HEADER.size)
    if len(header) < _GLOBAL_HEADER.size:
        raise PacketError("truncated pcap global header")
    magic, major, minor, _tz, _sig, snaplen, linktype = _GLOBAL_HEADER.unpack(
        header)
    if magic != _MAGIC:
        raise PacketError("bad pcap magic 0x%08x (big-endian and nanosecond "
                          "variants unsupported)" % magic)
    if linktype != _LINKTYPE_ETHERNET:
        raise PacketError("unsupported linktype %d" % linktype)
    while True:
        record = stream.read(_RECORD_HEADER.size)
        if not record:
            return
        if len(record) < _RECORD_HEADER.size:
            raise PacketError("truncated pcap record header")
        seconds, micros, caplen, origlen = _RECORD_HEADER.unpack(record)
        if caplen > snaplen or micros >= 1_000_000:
            raise PacketError("corrupt pcap record header")
        data = stream.read(caplen)
        if len(data) < caplen:
            raise PacketError("truncated pcap record body")
        packet = Packet.unpack(data)
        time = seconds + micros / 1e6
        packet.arrival_time = time
        yield time, packet


def save_trace(path: str,
               timed_packets: Iterable[Tuple[float, Packet]]) -> int:
    """Write a trace to ``path``; returns packets written."""
    with open(path, "wb") as stream:
        return write_pcap(stream, timed_packets)


def load_trace(path: str,
               renumber_flows: bool = False) -> Iterator[Tuple[float, Packet]]:
    """Stream (time, Packet) pairs from a pcap file at ``path``.

    ``renumber_flows`` re-stamps per-flow sequence numbers in arrival
    order (the wire format cannot carry the simulation's ``flow_seq``
    metadata); enable it when the loaded trace feeds the reordering
    metric.
    """
    seq_by_flow = {}
    with open(path, "rb") as stream:
        for time, packet in read_pcap(stream):
            if renumber_flows and packet.ip is not None:
                key = packet.five_tuple()
                seq_by_flow[key] = seq_by_flow.get(key, 0) + 1
                packet.flow_seq = seq_by_flow[key]
            yield time, packet
