"""Generate timed cluster events from a traffic matrix.

Bridges the analytic world (`TrafficMatrix`, Sec. 3's uniform/worst-case
demands) and the packet-level simulation (`RouteBricksRouter.simulate``):
each (ingress, egress) demand becomes a Poisson packet stream at the
demanded rate, with per-pair flow pools so the flowlet machinery sees
realistic flow structure.
"""

from __future__ import annotations

import heapq
import random
from typing import Iterator, Tuple

from ..errors import ConfigurationError
from ..net.addresses import IPv4Address
from ..net.packet import Packet
from .matrices import TrafficMatrix


def matrix_events(matrix: TrafficMatrix, duration_sec: float,
                  packet_bytes: int = 740, flows_per_pair: int = 4,
                  seed: int = 0, size_mix=None) \
        -> Iterator[Tuple[float, int, int, Packet]]:
    """Yield (time, ingress, egress, packet) events realizing ``matrix``.

    Each nonzero demand entry runs an independent Poisson process at its
    rate; events from all pairs are merged in time order.  Per-flow
    sequence numbers are stamped so reordering can be measured.

    ``size_mix`` (optional (size, weight) pairs, e.g. from a
    :class:`~repro.workloads.spec.WorkloadSpec`) draws per-packet frame
    sizes from a distribution; pair rates are then set by the mix's mean
    size so the bits/second demand is still honored in expectation.
    """
    if duration_sec <= 0:
        raise ConfigurationError("duration must be positive")
    if packet_bytes < 64:
        raise ConfigurationError("packet size below Ethernet minimum")
    if flows_per_pair < 1:
        raise ConfigurationError("need >= 1 flow per pair")
    rng = random.Random(seed)
    if size_mix is not None:
        sizes = [size for size, _ in size_mix]
        weights = [weight for _, weight in size_mix]
        if not sizes or min(sizes) < 64 or min(weights) < 0 \
                or sum(weights) <= 0:
            raise ConfigurationError("bad size mix %r" % (size_mix,))
        mean_bytes = (sum(s * w for s, w in size_mix) / sum(weights))
        if len(sizes) == 1:
            size_mix = None
            packet_bytes = sizes[0]
        else:
            packet_bytes = mean_bytes
    packet_bits = packet_bytes * 8

    # Per-pair state: mean gap, flow pool, per-flow sequence counters.
    heap = []
    pair_state = {}
    for src in range(matrix.n):
        for dst in range(matrix.n):
            demand = matrix.demands[src][dst]
            if src == dst or demand <= 0:
                continue
            mean_gap = packet_bits / demand
            flows = []
            for index in range(flows_per_pair):
                flows.append((
                    IPv4Address((10 << 24) | (src << 16) | index),
                    IPv4Address((10 << 24) | (dst << 16) | index),
                    1024 + index, 80))
            pair_state[(src, dst)] = {
                "mean_gap": mean_gap,
                "flows": flows,
                "seq": [0] * flows_per_pair,
            }
            first = rng.expovariate(1.0 / mean_gap)
            heapq.heappush(heap, (first, src, dst))

    while heap:
        time, src, dst = heapq.heappop(heap)
        if time > duration_sec:
            continue
        state = pair_state[(src, dst)]
        flow_index = rng.randrange(len(state["flows"]))
        fsrc, fdst, sport, dport = state["flows"][flow_index]
        length = int(round(rng.choices(sizes, weights=weights)[0]
                           if size_mix is not None else packet_bytes))
        packet = Packet.udp(fsrc, fdst, length=length,
                            src_port=sport, dst_port=dport)
        state["seq"][flow_index] += 1
        packet.flow_seq = state["seq"][flow_index]
        yield time, src, dst, packet
        next_time = time + rng.expovariate(1.0 / state["mean_gap"])
        if next_time <= duration_sec:
            heapq.heappush(heap, (next_time, src, dst))


def offered_packets(matrix: TrafficMatrix, duration_sec: float,
                    packet_bytes: int = 740) -> float:
    """Expected event count for a (matrix, duration) realization."""
    total_bps = float(matrix.demands.sum())
    return total_bps * duration_sec / (packet_bytes * 8)
