"""Traffic generation.

Reproduces the paper's workloads (Sec. 5.1): fixed-size synthetic packets
(64 B worst case up to 1024 B), random destination addresses that stress
lookup locality, an Abilene-like trace (a synthetic stand-in for the
Abilene-I capture, matching its packet-size mixture and flow structure),
and cluster traffic matrices (uniform, worst-case permutation, hotspot).
"""

from .synthetic import FixedSizeWorkload, PacketSource
from .abilene import AbileneTrace, ABILENE_SIZE_MIX
from .matrices import TrafficMatrix, uniform_matrix, permutation_matrix, hotspot_matrix
from .flowgen import Flow, FlowGenerator
from .imix import ImixWorkload, MIXES
from .churn import ChurnGenerator, Update
from .zipf_flows import PacketRecord, SkewedFlowWorkload
from .cluster_traffic import matrix_events, offered_packets
from .pcapio import load_trace, save_trace
from .spec import WorkloadSpec, resolve_app

__all__ = [
    "WorkloadSpec",
    "resolve_app",
    "FixedSizeWorkload",
    "PacketSource",
    "AbileneTrace",
    "ABILENE_SIZE_MIX",
    "TrafficMatrix",
    "uniform_matrix",
    "permutation_matrix",
    "hotspot_matrix",
    "Flow",
    "FlowGenerator",
    "ImixWorkload",
    "MIXES",
    "ChurnGenerator",
    "Update",
    "PacketRecord",
    "SkewedFlowWorkload",
    "matrix_events",
    "offered_packets",
    "load_trace",
    "save_trace",
]
