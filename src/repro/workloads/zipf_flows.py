"""Flow-skewed traffic for the stateful NF suite (repro.stateful).

State-Compute Replication's interesting regime is *skewed* per-flow load:
a few elephant flows carry most packets, so RSS flow-pinning concentrates
work on one core while shared-state locking serializes on the elephants'
entries.  This generator produces exactly that structure:

* a **Zipf rank distribution** over a fixed pool of flow slots -- slot
  ``k`` (0-based) receives traffic proportional to ``1/(k+1)**skew``, so
  ``skew=0`` is uniform and ``skew>1`` concentrates on a handful of
  elephants;
* **flow churn** -- each slot's flow has a geometric lifetime in packets;
  when it expires, a fresh flow (new five-tuple, next generation) takes
  over the slot, so the *rank* structure persists while flow identities
  turn over, the way backbone traffic behaves;
* the **Abilene structure** -- frame sizes come from
  :data:`~repro.workloads.abilene.ABILENE_SIZE_MIX` (the trimodal
  backbone profile) and inter-arrivals are exponential, matching the
  synthetic Abilene trace the cluster experiments replay.

Everything is deterministic for a given seed, including the flow-ID
stream, which is what lets the three dispatch strategies (and their
tests) consume byte-identical packet histories.
"""

from __future__ import annotations

import bisect
import itertools
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..errors import ConfigurationError
from ..net.addresses import IPv4Address
from ..net.flows import FiveTuple
from ..net.headers import PROTO_UDP
from .abilene import ABILENE_SIZE_MIX


@dataclass(frozen=True)
class PacketRecord:
    """One packet of the flow-skewed stream, as the dispatch engine and
    the SCR history log see it: global sequence, arrival time, flow key,
    frame length.  Compact on purpose -- this is what SCR would actually
    share between cores."""

    seq: int
    time: float
    key: FiveTuple
    length: int
    flow_slot: int
    flow_generation: int


class SkewedFlowWorkload:
    """Zipf-skewed, churning flow population over Abilene packet sizes.

    Parameters
    ----------
    num_flows:
        Number of concurrently live flow slots (the rank distribution's
        support).
    skew:
        Zipf exponent ``s``; slot ``k`` draws traffic ``~ 1/(k+1)**s``.
        ``0.0`` is uniform; backbone measurements sit around 1.0-1.3.
    churn_packets:
        Mean flow lifetime in packets (geometric); ``None`` disables
        churn so slot and flow are one-to-one.
    rate_pps:
        Aggregate arrival rate; inter-arrivals are exponential.
    seed:
        Deterministic stream per seed.
    """

    def __init__(self, num_flows: int = 512, skew: float = 1.1,
                 churn_packets: Optional[float] = None,
                 rate_pps: float = 1e6, seed: int = 0):
        if num_flows < 1:
            raise ConfigurationError("need >= 1 flow slot")
        if skew < 0:
            raise ConfigurationError("skew exponent cannot be negative")
        if churn_packets is not None and churn_packets < 1:
            raise ConfigurationError("churn_packets must be >= 1 packet")
        if rate_pps <= 0:
            raise ConfigurationError("rate must be positive")
        self.num_flows = num_flows
        self.skew = skew
        self.churn_packets = churn_packets
        self.rate_pps = rate_pps
        self.seed = seed
        self.rng = random.Random(seed)
        # Zipf CDF over slots: cum[k] = sum of weights of slots 0..k.
        weights = [1.0 / (k + 1) ** skew for k in range(num_flows)]
        total = sum(weights)
        self._cdf: List[float] = list(itertools.accumulate(
            w / total for w in weights))
        self._cdf[-1] = 1.0  # guard float undershoot at the tail
        self._sizes, self._size_weights = zip(*ABILENE_SIZE_MIX)
        self._generations = [0] * num_flows
        self._remaining = [self._draw_lifetime() for _ in range(num_flows)]
        self._keys = [self._new_key(slot) for slot in range(num_flows)]

    # -- flow identity -----------------------------------------------------

    def _draw_lifetime(self) -> float:
        if self.churn_packets is None:
            return float("inf")
        return max(1, int(self.rng.expovariate(1.0 / self.churn_packets)))

    def _new_key(self, slot: int) -> FiveTuple:
        """A fresh five-tuple for ``slot``; drawn from the seeded RNG so
        the identity stream is deterministic."""
        src = IPv4Address((10 << 24) | self.rng.getrandbits(24))
        dst = IPv4Address((172 << 24) | (16 << 16)
                          | (slot & 0xFFFF))
        sport = 1024 + self.rng.randrange(60000)
        return FiveTuple(src=src, dst=dst, proto=PROTO_UDP,
                         src_port=sport, dst_port=80)

    def _draw_slot(self) -> int:
        return bisect.bisect_left(self._cdf, self.rng.random())

    def draw_size(self) -> int:
        """One frame size from the Abilene trimodal mixture."""
        return self.rng.choices(self._sizes,
                                weights=self._size_weights)[0]

    # -- streams -----------------------------------------------------------

    def flow_ids(self, count: int) -> Iterator[tuple]:
        """The deterministic ``(slot, generation)`` stream, advancing
        churn exactly as :meth:`records` would.  Consuming this stream
        and consuming :meth:`records` from two equal-seeded instances
        yields the same identities."""
        for record in self.records(count):
            yield (record.flow_slot, record.flow_generation)

    def records(self, count: int) -> Iterator[PacketRecord]:
        """Yield ``count`` packet records in arrival order."""
        if count < 0:
            raise ValueError("count must be >= 0")
        now = 0.0
        mean_gap = 1.0 / self.rate_pps
        for seq in range(count):
            now += self.rng.expovariate(1.0 / mean_gap)
            slot = self._draw_slot()
            yield PacketRecord(seq=seq, time=now, key=self._keys[slot],
                               length=self.draw_size(), flow_slot=slot,
                               flow_generation=self._generations[slot])
            self._remaining[slot] -= 1
            if self._remaining[slot] <= 0:
                self._generations[slot] += 1
                self._keys[slot] = self._new_key(slot)
                self._remaining[slot] = self._draw_lifetime()

    # -- skew diagnostics --------------------------------------------------

    @staticmethod
    def empirical_shares(records: List[PacketRecord]) -> Dict[FiveTuple,
                                                              float]:
        """Per-flow packet share of a materialized record list."""
        counts: Dict[FiveTuple, int] = {}
        for record in records:
            counts[record.key] = counts.get(record.key, 0) + 1
        total = float(len(records)) or 1.0
        return {key: count / total for key, count in counts.items()}

    @staticmethod
    def top_share(records: List[PacketRecord]) -> float:
        """The busiest flow's packet share (the elephant's weight)."""
        shares = SkewedFlowWorkload.empirical_shares(records)
        return max(shares.values()) if shares else 0.0
