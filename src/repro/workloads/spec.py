"""A single workload description accepted by every throughput API.

Historically each entry point took its own mix of positional arguments:
``max_loss_free_rate(app, packet_bytes)``,
``RouteBricksRouter.max_throughput(packet_bytes, ingress_app=...)``,
``simulate(events)``.  A :class:`WorkloadSpec` bundles the three things a
workload actually is -- a packet-size distribution, the application run on
ingress, and (for cluster runs) a traffic matrix -- and is accepted
uniformly by:

* :meth:`repro.core.RouteBricksRouter.max_throughput`
* :meth:`repro.core.RouteBricksRouter.simulate`
* :func:`repro.perfmodel.max_loss_free_rate`

The old positional signatures keep working through deprecation shims.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple, Union

from .. import calibration as cal
from ..errors import ConfigurationError
from ..net.packet import Packet
from .abilene import ABILENE_SIZE_MIX
from .imix import MIXES, mix_mean_bytes
from .matrices import TrafficMatrix

#: A packet-size distribution: (frame bytes, weight) pairs.
SizeMix = Tuple[Tuple[int, float], ...]


def resolve_app(app: Union[str, cal.AppCost, None]) -> cal.AppCost:
    """Accept an :class:`~repro.calibration.AppCost` or its catalog name."""
    if app is None:
        return cal.IP_ROUTING
    if isinstance(app, cal.AppCost):
        return app
    if app in cal.APPLICATIONS:
        return cal.APPLICATIONS[app]
    raise ConfigurationError("unknown application %r (have %s)"
                             % (app, sorted(cal.APPLICATIONS)))


def _normalize_mix(mix) -> SizeMix:
    if isinstance(mix, str):
        if mix not in MIXES:
            raise ConfigurationError("unknown mix %r (have %s)"
                                     % (mix, sorted(MIXES)))
        mix = MIXES[mix]
    mix = tuple((float(size), float(weight)) for size, weight in mix)
    if not mix or any(size < 64 or weight < 0 for size, weight in mix):
        raise ConfigurationError("mix entries need size >= 64, weight >= 0")
    if sum(weight for _, weight in mix) <= 0:
        raise ConfigurationError("mix weights must sum to > 0")
    return mix


@dataclass(frozen=True)
class WorkloadSpec:
    """A named workload: packet sizes + application + optional matrix.

    ``mix`` is a (size, weight) distribution; fixed-size workloads are a
    one-entry mix.  ``matrix`` (demands in bits/second) is required only
    for packet-level cluster simulation, where :meth:`events` realizes it
    as merged Poisson streams.
    """

    name: str
    mix: SizeMix
    app: cal.AppCost = field(default_factory=lambda: cal.IP_ROUTING)
    matrix: Optional[TrafficMatrix] = None
    flows_per_pair: int = 4
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "mix", _normalize_mix(self.mix))
        object.__setattr__(self, "app", resolve_app(self.app))
        if self.flows_per_pair < 1:
            raise ConfigurationError("need >= 1 flow per pair")

    # -- constructors --------------------------------------------------------

    @classmethod
    def fixed(cls, packet_bytes: float, app="routing",
              matrix: Optional[TrafficMatrix] = None,
              **kwargs) -> "WorkloadSpec":
        """Every packet the same size (the paper's 64 B..1024 B points)."""
        return cls(name="fixed-%gB" % packet_bytes,
                   mix=((packet_bytes, 1.0),), app=app, matrix=matrix,
                   **kwargs)

    @classmethod
    def imix(cls, mix="simple", app="routing",
             matrix: Optional[TrafficMatrix] = None,
             **kwargs) -> "WorkloadSpec":
        """A named IMIX from :data:`repro.workloads.imix.MIXES`."""
        label = mix if isinstance(mix, str) else "custom"
        return cls(name="imix-%s" % label, mix=_normalize_mix(mix),
                   app=app, matrix=matrix, **kwargs)

    @classmethod
    def abilene(cls, app="routing", matrix: Optional[TrafficMatrix] = None,
                **kwargs) -> "WorkloadSpec":
        """The Abilene-like trimodal size mixture (mean 740 B)."""
        return cls(name="abilene", mix=tuple(ABILENE_SIZE_MIX), app=app,
                   matrix=matrix, **kwargs)

    # -- derived quantities --------------------------------------------------

    @property
    def mean_packet_bytes(self) -> float:
        return mix_mean_bytes(list(self.mix))

    def with_matrix(self, matrix: TrafficMatrix) -> "WorkloadSpec":
        """The same workload bound to a cluster traffic matrix."""
        return WorkloadSpec(name=self.name, mix=self.mix, app=self.app,
                            matrix=matrix,
                            flows_per_pair=self.flows_per_pair,
                            seed=self.seed)

    def size_sampler(self, rng: random.Random):
        """A zero-argument callable drawing frame sizes from the mix."""
        sizes = [size for size, _ in self.mix]
        weights = [weight for _, weight in self.mix]
        if len(sizes) == 1:
            only = sizes[0]
            return lambda: only
        return lambda: rng.choices(sizes, weights=weights)[0]

    def events(self, duration_sec: float) \
            -> Iterator[Tuple[float, int, int, Packet]]:
        """Realize the workload as timed cluster events.

        Requires ``matrix``; demands become merged Poisson packet streams
        with sizes drawn from the mix (see
        :func:`repro.workloads.cluster_traffic.matrix_events`).
        """
        if self.matrix is None:
            raise ConfigurationError(
                "workload %r has no traffic matrix; use with_matrix() "
                "before simulating" % self.name)
        from .cluster_traffic import matrix_events
        return matrix_events(self.matrix, duration_sec,
                             size_mix=self.mix,
                             flows_per_pair=self.flows_per_pair,
                             seed=self.seed)
