"""Flow-level traffic generation for the reordering experiments.

The Sec. 6.2 reordering measurement replays a trace between one input and
one output port and counts reordered same-flow sequences.  This generator
produces timed flows whose within-flow gaps are bursty (flowlets): packets
arrive in bursts separated by idle gaps, the structure the Flare-style
path switcher exploits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..errors import ConfigurationError
from ..net.addresses import IPv4Address
from ..net.packet import Packet


@dataclass
class Flow:
    """One TCP-like flow: endpoints plus generated packet timestamps."""

    src: IPv4Address
    dst: IPv4Address
    sport: int
    dport: int
    start_time: float
    num_packets: int
    sent: int = 0

    def next_seq(self) -> int:
        self.sent += 1
        return self.sent


class FlowGenerator:
    """Generate interleaved bursty flows at an aggregate packet rate."""

    def __init__(self, num_flows: int = 50, packets_per_flow: int = 100,
                 packet_bytes: int = 600, burst_size: int = 8,
                 burst_gap_sec: float = 2e-3, intra_burst_gap_sec: float = 1e-5,
                 seed: int = 0):
        if num_flows < 1 or packets_per_flow < 1:
            raise ConfigurationError("need >= 1 flow and packet")
        if burst_size < 1:
            raise ConfigurationError("burst size must be >= 1")
        self.rng = random.Random(seed)
        self.num_flows = num_flows
        self.packets_per_flow = packets_per_flow
        self.packet_bytes = packet_bytes
        self.burst_size = burst_size
        self.burst_gap_sec = burst_gap_sec
        self.intra_burst_gap_sec = intra_burst_gap_sec

    def flows(self) -> List[Flow]:
        """The flow population (deterministic for the seed)."""
        flows = []
        for i in range(self.num_flows):
            flows.append(Flow(
                src=IPv4Address((10 << 24) | i),
                dst=IPv4Address((172 << 24) | (16 << 16) | i),
                sport=1024 + i,
                dport=80,
                start_time=self.rng.uniform(0, 5e-3),
                num_packets=self.packets_per_flow,
            ))
        return flows

    def timed_packets(self) -> Iterator[Tuple[float, Packet]]:
        """All packets of all flows, merged in arrival-time order.

        Within a flow, packets come in bursts of ``burst_size`` spaced
        ``intra_burst_gap_sec`` apart, with ``burst_gap_sec``-scale pauses
        between bursts (exponentially distributed).
        """
        events = []
        for flow in self.flows():
            t = flow.start_time
            in_burst = 0
            for _ in range(flow.num_packets):
                packet = Packet.udp(flow.src, flow.dst,
                                    length=self.packet_bytes,
                                    src_port=flow.sport, dst_port=flow.dport)
                packet.flow_seq = flow.next_seq()
                packet.arrival_time = t
                events.append((t, packet))
                in_burst += 1
                if in_burst >= self.burst_size:
                    in_burst = 0
                    t += self.rng.expovariate(1.0 / self.burst_gap_sec)
                else:
                    t += self.intra_burst_gap_sec
        events.sort(key=lambda pair: (pair[0], pair[1].packet_id))
        return iter(events)
