"""A parser for the Click configuration language (the subset RB4 uses).

Click routers are declared in a small language of element declarations and
connections::

    src :: PollDevice(0, QUEUE 0, BURST 32);
    check :: CheckIPHeader();
    ttl :: DecIPTTL;
    src -> check -> ttl -> [0] rt;
    rt [1] -> Discard;

This module parses that language into a :class:`RouterGraph`, resolving
element classes through a registry.  Supported syntax:

* ``name :: Class(args...)`` declarations (args are comma-separated
  tokens handed to the class's registered factory);
* anonymous elements in connection position: ``... -> Discard -> ...``;
* chains ``a -> b -> c`` with optional port selectors ``a [1] -> [0] b``;
* ``//`` and ``/* */`` comments; semicolon-terminated statements.

The registry maps Click class names to factories; the built-in registry
covers this package's element library, and callers may register more.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from .element import Element
from .graph import RouterGraph

_TOKEN_RE = re.compile(r"""
    (?P<arrow>->)
  | (?P<dcolon>::)
  | (?P<port>\[\s*\d+\s*\])
  | (?P<semi>;)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<string>"[^"]*")
  | (?P<space>\s+)
""", re.VERBOSE)


def _strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", " ", text)


def tokenize(text: str) -> List[Tuple[str, str]]:
    """Tokenize a Click config; raises on unrecognized input."""
    tokens = []
    position = 0
    text = _strip_comments(text)
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ConfigurationError(
                "unrecognized input at %r" % text[position:position + 20])
        position = match.end()
        kind = match.lastgroup
        if kind == "space":
            continue
        tokens.append((kind, match.group()))
    return tokens


class ElementRegistry:
    """Maps Click class names to element factories.

    A factory receives the parsed argument strings and the instance name
    and returns an :class:`Element`.
    """

    def __init__(self):
        self._factories: Dict[str, Callable[..., Element]] = {}

    def register(self, class_name: str,
                 factory: Callable[..., Element]) -> None:
        if class_name in self._factories:
            raise ConfigurationError("class %r already registered"
                                     % class_name)
        self._factories[class_name] = factory

    def create(self, class_name: str, args: List[str],
               name: str) -> Element:
        if class_name not in self._factories:
            raise ConfigurationError("unknown element class %r (have %s)"
                                     % (class_name,
                                        sorted(self._factories)))
        return self._factories[class_name](args, name)

    def __contains__(self, class_name: str) -> bool:
        return class_name in self._factories


def default_registry() -> ElementRegistry:
    """The built-in element classes (those needing no external state)."""
    from .elements.standard import (
        Classifier, CounterElement, Discard, Meter, PacketQueue, Paint,
        RandomSample, SetTTL, SourceFilter, Tee,
    )
    from .elements.loadbalance import FlowHashSwitch, RoundRobinSwitch
    from .elements.stateful import (
        ConnTrackFirewall, L4LoadBalancer, NetworkAddressTranslator,
        TokenBucketPolicer,
    )

    registry = ElementRegistry()
    from .elements.queue_policies import DropFrontQueue, RedQueue

    registry.register("RedQueue", lambda args, name: RedQueue(
        capacity=int(args[0]) if args else 1000, name=name))
    registry.register("DropFrontQueue", lambda args, name: DropFrontQueue(
        capacity=int(args[0]) if args else 1000, name=name))
    registry.register("SetTTL", lambda args, name: SetTTL(
        ttl=int(args[0]), name=name))
    registry.register("SourceFilter", lambda args, name: SourceFilter(
        prefix=args[0].replace(" ", ""), name=name))
    registry.register("Discard", lambda args, name: Discard(name=name))
    registry.register("Counter",
                      lambda args, name: CounterElement(name=name))
    registry.register("Queue", lambda args, name: PacketQueue(
        capacity=int(args[0]) if args else 1000, name=name))
    registry.register("Tee", lambda args, name: Tee(
        n=int(args[0]) if args else 2, name=name))
    registry.register("Paint", lambda args, name: Paint(
        color=int(args[0]), name=name))
    registry.register("RandomSample", lambda args, name: RandomSample(
        p=float(args[0]), name=name))
    registry.register("Meter", lambda args, name: Meter(
        rate_pps=float(args[0]), name=name))
    registry.register("RoundRobinSwitch",
                      lambda args, name: RoundRobinSwitch(
                          n=int(args[0]) if args else 2, name=name))
    registry.register("FlowHashSwitch",
                      lambda args, name: FlowHashSwitch(
                          n=int(args[0]) if args else 2, name=name))
    registry.register("NAT",
                      lambda args, name: NetworkAddressTranslator(
                          pool_size=int(args[0]) if args else 60000,
                          name=name))
    registry.register("ConnTrackFirewall",
                      lambda args, name: ConnTrackFirewall(
                          establish_after=int(args[0]) if args else 3,
                          max_packets=int(args[1]) if len(args) > 1
                          else 10000, name=name))
    registry.register("TokenBucketPolicer",
                      lambda args, name: TokenBucketPolicer(
                          rate_bps=float(args[0]) if args else 8e6,
                          burst_bytes=float(args[1]) if len(args) > 1
                          else 3000.0, name=name))
    registry.register("L4LoadBalancer",
                      lambda args, name: L4LoadBalancer(
                          n=int(args[0]) if args else 2, name=name))
    return registry


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]],
                 registry: ElementRegistry):
        self.tokens = tokens
        self.position = 0
        self.registry = registry
        self.graph = RouterGraph()
        self._anon_counter = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Optional[Tuple[str, str]]:
        index = self.position + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def _take(self, kind: Optional[str] = None) -> Tuple[str, str]:
        token = self._peek()
        if token is None:
            raise ConfigurationError("unexpected end of configuration")
        if kind is not None and token[0] != kind:
            raise ConfigurationError("expected %s, found %r"
                                     % (kind, token[1]))
        self.position += 1
        return token

    # -- grammar -------------------------------------------------------------

    def parse(self) -> RouterGraph:
        while self._peek() is not None:
            self._statement()
        return self.graph

    def _statement(self) -> None:
        if self._peek()[0] == "semi":
            self._take()
            return
        # Declaration: word :: word ( args ) ;
        if (self._peek()[0] == "word" and self._peek(1) is not None
                and self._peek(1)[0] == "dcolon"):
            self._declaration()
            return
        self._connection()

    def _declaration(self) -> None:
        name = self._take("word")[1]
        self._take("dcolon")
        class_name = self._take("word")[1]
        args = self._maybe_args()
        element = self.registry.create(class_name, args, name)
        if element.name != name:
            raise ConfigurationError(
                "factory for %s ignored the instance name" % class_name)
        self.graph.add(element)
        self._take("semi")

    def _maybe_args(self) -> List[str]:
        if self._peek() is None or self._peek()[0] != "lparen":
            return []
        self._take("lparen")
        args = []
        current: List[str] = []
        while True:
            kind, value = self._take()
            if kind == "rparen":
                break
            if kind == "comma":
                args.append(" ".join(current))
                current = []
            else:
                current.append(value.strip('"'))
        if current:
            args.append(" ".join(current))
        return args

    def _element_ref(self) -> Element:
        """A connection endpoint: a declared name or an anonymous class."""
        name = self._take("word")[1]
        if name in self.graph:
            # Declared instance; anonymous use of a class name that
            # collides with an instance name resolves to the instance.
            return self.graph[name]
        if name in self.registry:
            args = self._maybe_args()
            self._anon_counter += 1
            anon_name = "%s@%d" % (name, self._anon_counter)
            element = self.registry.create(name, args, anon_name)
            self.graph.add(element)
            return element
        raise ConfigurationError("undeclared element %r" % name)

    @staticmethod
    def _port_number(token: Tuple[str, str]) -> int:
        return int(token[1].strip("[] \t"))

    def _connection(self) -> None:
        source = self._element_ref()
        while True:
            out_port = 0
            if self._peek() is not None and self._peek()[0] == "port":
                out_port = self._port_number(self._take("port"))
            self._take("arrow")
            in_port = 0
            if self._peek() is not None and self._peek()[0] == "port":
                in_port = self._port_number(self._take("port"))
            target = self._element_ref()
            source.output(out_port).connect(target, in_port)
            source = target
            token = self._peek()
            if token is None or token[0] == "semi":
                if token is not None:
                    self._take("semi")
                return


def parse_config(text: str,
                 registry: Optional[ElementRegistry] = None,
                 validate: bool = True) -> RouterGraph:
    """Parse a Click configuration into a wired :class:`RouterGraph`."""
    registry = registry or default_registry()
    parser = _Parser(tokenize(text), registry)
    graph = parser.parse()
    if validate:
        graph.validate()
    return graph
