"""Task scheduling: threads statically pinned to cores.

RouteBricks keeps Click's programming model but enforces a specific
element-to-core allocation (Sec. 8): polling and sending elements are
bound to queues, queues to threads, threads to cores.  The scheduler here

* owns that static assignment,
* validates the two rules -- (1) each NIC queue is accessed by one core,
  (2) each packet is handled by one core (no cross-thread PacketQueue
  handoffs) -- reporting violations rather than silently degrading, and
* runs polling rounds, charging each element's cycle cost to the core its
  thread is pinned on (cycles feed the utilization analysis of Sec. 5.3).
"""

from __future__ import annotations

from typing import Dict, List

from .. import calibration as cal
from ..errors import SchedulingError
from ..hw.components import Core
from ..net.batch import PacketBatch
from .element import Element
from .elements.device import PollDevice, ToDevice
from .elements.standard import PacketQueue


class CoreThread:
    """A kernel thread pinned to one core, running tasks round-robin."""

    def __init__(self, thread_id: int, core: Core):
        self.thread_id = thread_id
        self.core = core
        self.poll_tasks: List[PollDevice] = []
        self.pull_tasks: List[tuple] = []  # (PacketQueue, downstream Element)
        self.owned_elements: List[Element] = []
        self.packets_handled = 0

    def add_poll_task(self, device: PollDevice) -> None:
        """Schedule a PollDevice on this thread and claim its queue."""
        device.queue.note_access(self.core.core_id)
        self.poll_tasks.append(device)
        self.own(device)

    def add_pull_task(self, queue: PacketQueue, downstream: Element) -> None:
        """Pull packets from a Click queue into ``downstream`` (pipelining)."""
        self.pull_tasks.append((queue, downstream))
        self.own(downstream)

    def own(self, element: Element) -> None:
        """Statically assign ``element``'s work to this thread's core."""
        if element not in self.owned_elements:
            self.owned_elements.append(element)
            if isinstance(element, ToDevice):
                element.queue.note_access(self.core.core_id)

    def run_once(self, kp: int = cal.DEFAULT_KP, batch: bool = False) -> int:
        """One scheduling round: every task runs once.  Returns packets moved.

        With ``batch``, poll tasks drain their burst as one
        :class:`~repro.net.batch.PacketBatch` via ``run_task_batch`` and
        pull tasks hand a batch to the downstream element; counters are
        identical to the scalar round.
        """
        moved = 0
        if batch:
            for device in self.poll_tasks:
                moved += device.run_task_batch()
            for queue, downstream in self.pull_tasks:
                packets = queue.fifo.poll_batch(kp)
                if packets:
                    downstream.receive_batch(
                        PacketBatch.from_packets(packets), 0)
                    moved += len(packets)
        else:
            for device in self.poll_tasks:
                moved += device.run_task()
            for queue, downstream in self.pull_tasks:
                for packet in queue.fifo.poll_batch(kp):
                    downstream.receive(packet)
                    moved += 1
        self.packets_handled += moved
        return moved


class Scheduler:
    """Static thread-to-core scheduler with rule validation."""

    def __init__(self):
        self.threads: List[CoreThread] = []
        self._cores_used: Dict[int, CoreThread] = {}

    def spawn(self, core: Core) -> CoreThread:
        """Create a thread pinned to ``core`` (one thread per core)."""
        if core.core_id in self._cores_used:
            raise SchedulingError("core %d already has a thread" % core.core_id)
        thread = CoreThread(len(self.threads), core)
        self.threads.append(thread)
        self._cores_used[core.core_id] = thread
        return thread

    def validate_rules(self) -> List[str]:
        """Check the two RouteBricks rules; returns violation descriptions.

        Violations are not errors -- the paper deliberately measures rule-
        violating configurations (Fig. 6) -- but callers can assert on an
        empty list for production configurations.
        """
        violations = []
        # Rule 1: one core per NIC queue.
        seen_queues = {}
        for thread in self.threads:
            for element in thread.owned_elements:
                queue = getattr(element, "queue", None)
                if queue is None:
                    continue
                key = id(queue)
                if key in seen_queues and seen_queues[key] is not thread:
                    violations.append(
                        "queue of %s accessed by threads %d and %d"
                        % (element.name, seen_queues[key].thread_id,
                           thread.thread_id))
                seen_queues.setdefault(key, thread)
        for thread in self.threads:
            for element in thread.owned_elements:
                queue = getattr(element, "queue", None)
                if queue is not None and queue.is_shared():
                    violations.append("%s queue is touched by cores %s"
                                      % (element.name,
                                         sorted(queue.accessing_cores)))
        # Rule 2: one core per packet -- a pull task whose upstream queue
        # is fed by a different thread is a pipeline handoff.
        producers = {}
        for thread in self.threads:
            for element in thread.owned_elements:
                for index in range(element.n_outputs):
                    peer = element.output(index).peer
                    if isinstance(peer, PacketQueue):
                        producers.setdefault(id(peer), set()).add(thread)
        for thread in self.threads:
            for queue, _ in thread.pull_tasks:
                feeders = producers.get(id(queue), set())
                if any(feeder is not thread for feeder in feeders):
                    violations.append(
                        "packets handed off across cores via %s" % queue.name)
        return violations

    def run_rounds(self, rounds: int, kp: int = cal.DEFAULT_KP,
                   charge_cycles: bool = True, batch: bool = False) -> int:
        """Run ``rounds`` scheduling rounds on every thread.

        With ``charge_cycles``, each element's calibrated per-packet cost
        vector -- evaluated at the *actual* mean size of the packets it
        handled, since costs are affine in packet size -- is charged to
        the owning core, so ``Core.cycles_used`` reflects Sec. 5.3's
        accounting.  The device elements' terms already include the
        irreducible per-packet base and the amortized batching shares.
        """
        if rounds < 1:
            raise SchedulingError("rounds must be >= 1")
        total = 0
        before = {}
        if charge_cycles:
            for thread in self.threads:
                for element in thread.owned_elements:
                    before[id(element)] = (element.packets_in,
                                           element.bytes_in)
        for _ in range(rounds):
            for thread in self.threads:
                total += thread.run_once(kp, batch=batch)
        if charge_cycles:
            for thread in self.threads:
                for element in thread.owned_elements:
                    packets0, bytes0 = before[id(element)]
                    handled = element.packets_in - packets0
                    if handled <= 0:
                        continue
                    mean_bytes = (element.bytes_in - bytes0) / handled
                    probe = _CostProbe(length=mean_bytes)
                    per_packet = element.resource_cost(probe).cpu_cycles
                    thread.core.charge(handled * per_packet)
        return total


class _CostProbe:
    """A minimal stand-in packet for querying size-affine costs."""

    def __init__(self, length: float):
        self.length = length
