"""A Click-like modular dataplane.

The paper's router software is Click in polling mode (Sec. 4.1); the
RouteBricks changes preserve Click's programming model while adding
multi-queue device elements and batching (Sec. 4.2, 8).  This package
reproduces that model: elements with push ports composed into a router
graph, device elements bound to NIC queues, and a scheduler that
statically assigns tasks to cores and enforces the two RouteBricks rules
(one core per queue, one core per packet).
"""

from .element import Element, PushPort
from .graph import RouterGraph
from .config import ElementRegistry, default_registry, parse_config
from .pipelines import PRESET_PIPELINES, build_pipeline, pipeline_registry
from .scheduler import CoreThread, Scheduler
from .simrun import TimedForwardingRun, TimedPipelineRun, TimedRunReport
from .elements.standard import (
    Classifier,
    CounterElement,
    Discard,
    PacketQueue,
    Tee,
)
from .elements.device import PollDevice, ToDevice
from .elements.ip import CheckIPHeader, DecIPTTL, EtherEncap, LookupIPRoute
from .elements.ipsec import IPsecESPEncap
from .elements.loadbalance import FlowHashSwitch, RoundRobinSwitch

__all__ = [
    "Element",
    "PushPort",
    "RouterGraph",
    "ElementRegistry",
    "default_registry",
    "parse_config",
    "PRESET_PIPELINES",
    "build_pipeline",
    "pipeline_registry",
    "CoreThread",
    "Scheduler",
    "TimedForwardingRun",
    "TimedPipelineRun",
    "TimedRunReport",
    "Classifier",
    "CounterElement",
    "Discard",
    "PacketQueue",
    "Tee",
    "PollDevice",
    "ToDevice",
    "CheckIPHeader",
    "DecIPTTL",
    "EtherEncap",
    "LookupIPRoute",
    "IPsecESPEncap",
    "FlowHashSwitch",
    "RoundRobinSwitch",
]
