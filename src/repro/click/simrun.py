"""Timed single-server forwarding runs.

Drives a server's cores in *simulated time*: each core repeatedly polls
its RX queue, pays the calibrated per-packet (or empty-poll) cycle cost,
and advances its own clock accordingly.  Offered load arrives as timed
events.  This closes the loop between the analytic model and the DES: at
offered loads below the model's saturation rate the run is loss-free; at
higher loads the achieved rate plateaus at the model's prediction and RX
rings overflow -- exactly how the paper measures the "maximum loss-free
forwarding rate" (Sec. 5.1).

Two runners share that discipline: :class:`TimedForwardingRun` charges a
preset application's cost as one number per packet (the original Sec. 5.1
experiment), while :class:`TimedPipelineRun` instantiates an arbitrary
Click configuration once per core (multi-queue replication) and charges
each element's :class:`~repro.costs.ResourceVector` for the packets it
actually handled -- the same vectors :func:`repro.costs.compile_loads`
sums analytically, which is what makes model-vs-DES agreement checkable
for custom pipelines.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import cycle
from typing import List, Optional

from .. import calibration as cal
from ..costs import DEFAULT_COST_MODEL, CostModel
from ..errors import ConfigurationError
from ..hw.server import Server
from ..obs.metrics import active_registry
from ..obs.profile import first_poll_after
from ..obs.trace import TRACE_ANNOTATION
from ..simnet.engine import Simulator
from ..workloads.synthetic import FixedSizeWorkload
from .element import Element
from .elements.device import PollDevice, ToDevice
from .elements.standard import PacketQueue

#: Cycles burned by a poll that finds no packets (Sec. 5.3's ce).
#: Re-exported from :mod:`repro.calibration`, the single owner.
EMPTY_POLL_CYCLES = cal.EMPTY_POLL_CYCLES


class _RunObs:
    """Resolved metric handles for one timed run (absent when disabled).

    Both runners charge the same names: ``core_cycles``/``core_polls``
    split busy vs empty (the Sec. 5.3 idle-polling attribution),
    ``bus_bytes`` per shared bus, ``rxq_occupancy``/``rxq_drops``
    timelines per RX ring.  When the registry carries a
    :class:`~repro.obs.profile.SpanProfiler` the runners additionally
    charge per-element cycles under ``core<N>`` frames (cycle units).
    """

    def __init__(self, registry):
        self.registry = registry
        self.profiler = registry.profiler
        self.core_cycles = registry.counter(
            "core_cycles", help="cycles charged per core, busy vs empty")
        self.core_polls = registry.counter(
            "core_polls", help="poll events per core, busy vs empty")
        self.bus_bytes = registry.counter(
            "bus_bytes", help="bytes moved per shared bus")
        self.rxq_occupancy = registry.timeline(
            "rxq_occupancy", help="RX-ring occupancy, sampled per poll")
        self.rxq_drops = registry.timeline(
            "rxq_drops", help="RX-ring drops per time bin")
        self.tracer = registry.tracer
        # Per-bus incrementers, bound once per run (see Counter.bind).
        self._inc_mem = self.bus_bytes.bind(bus="memory")
        self._inc_io = self.bus_bytes.bind(bus="io")
        self._inc_pcie = self.bus_bytes.bind(bus="pcie")
        self._inc_qpi = self.bus_bytes.bind(bus="qpi")

    @classmethod
    def resolve(cls, metrics) -> "Optional[_RunObs]":
        registry = metrics if metrics is not None else active_registry()
        return cls(registry) if registry.enabled else None

    def core_handles(self, core_id: int):
        """Pre-bound (busy cycles, empty cycles, busy polls, empty
        polls) incrementers for one core -- the per-poll charge path."""
        return (self.core_cycles.bind(core=core_id, kind="busy"),
                self.core_cycles.bind(core=core_id, kind="empty"),
                self.core_polls.bind(core=core_id, kind="busy"),
                self.core_polls.bind(core=core_id, kind="empty"))

    def charge_bus(self, mem: float, io: float, pcie: float,
                   qpi: float) -> None:
        if mem:
            self._inc_mem(mem)
        if io:
            self._inc_io(io)
        if pcie:
            self._inc_pcie(pcie)
        if qpi:
            self._inc_qpi(qpi)


@dataclass
class TimedRunReport:
    """Outcome of a timed forwarding run."""

    offered_packets: int
    forwarded_packets: int
    dropped_packets: int
    duration_sec: float
    packet_bytes: int
    empty_polls: int
    total_polls: int
    residual_backlog: int = 0

    @property
    def achieved_bps(self) -> float:
        return (self.forwarded_packets * self.packet_bytes * 8
                / self.duration_sec)

    @property
    def achieved_gbps(self) -> float:
        return self.achieved_bps / 1e9

    @property
    def loss_free(self) -> bool:
        return self.dropped_packets == 0

    @property
    def loss_fraction(self) -> float:
        if not self.offered_packets:
            return 0.0
        return self.dropped_packets / self.offered_packets

    def sustainable(self, max_backlog_packets: int) -> bool:
        """Loss-free *and* not merely buffering the excess in the rings."""
        return (self.dropped_packets == 0
                and self.residual_backlog <= max_backlog_packets)


def _noop_charge(cycles: float) -> None:
    """Stand-in profiler charge when no profiler is attached."""


class TimedForwardingRun:
    """Simulate minimal forwarding on one server at an offered load.

    One core per RX queue (the multi-queue discipline); arrivals are
    spread round-robin across queues, matching the paper's uniform
    any-to-any pattern.  ``kp``/``kn`` control batching as in Table 1.

    ``batch=True`` selects the batch fast-path: the whole run's arrival
    events are bulk-filed into the engine's event wheel up front, RX
    rings carry arrival indices instead of packet objects (materialized
    only for trace-sampled slots), and per-poll bookkeeping is kept in
    locals flushed once at the end.  Every simulated quantity -- event
    times and counts, forwarded/dropped totals, rates, and the profiler's
    per-element attribution -- is identical to scalar mode; only wall
    clock differs.
    """

    def __init__(self, server: Server, packet_bytes: int = 64,
                 kp: int = cal.DEFAULT_KP, kn: int = cal.DEFAULT_KN,
                 app: cal.AppCost = cal.MINIMAL_FORWARDING,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 batch: bool = False,
                 metrics=None):
        if not server.ports:
            raise ConfigurationError("server has no ports attached")
        if kp < 1 or not 1 <= kn <= cal.MAX_NIC_BATCH:
            raise ConfigurationError("bad batching parameters")
        self.server = server
        self.packet_bytes = packet_bytes
        self.kp = kp
        self.kn = kn
        self.app = app
        self.cost_model = cost_model
        self.batch = batch
        self.metrics = metrics
        self.cycles_per_packet = (
            cost_model.app_vector(app, packet_bytes).cpu_cycles
            + cost_model.bookkeeping_cycles(kp, kn))
        # Pair each core with one RX queue, spreading cores over ports.
        self._assignments = []
        cores = server.cores
        queues = [queue for port in server.ports for queue in port.rx_queues]
        if len(queues) < len(cores):
            raise ConfigurationError(
                "need >= 1 RX queue per core (%d cores, %d queues)"
                % (len(cores), len(queues)))
        for index, core in enumerate(cores):
            self._assignments.append((core, queues[index]))

    def run(self, offered_bps: float, duration_sec: float = 5e-3,
            seed: int = 0) -> TimedRunReport:
        """Offer fixed-size packets at ``offered_bps`` for ``duration_sec``."""
        if offered_bps <= 0 or duration_sec <= 0:
            raise ConfigurationError("offered load and duration must be > 0")
        if self.batch:
            return self._run_batch(offered_bps, duration_sec, seed)
        obs = _RunObs.resolve(self.metrics)
        sim = Simulator(metrics=self.metrics)
        workload = FixedSizeWorkload(packet_bytes=self.packet_bytes,
                                     num_flows=len(self._assignments) * 8,
                                     seed=seed)
        interarrival = self.packet_bytes * 8 / offered_bps
        offered = int(duration_sec / interarrival)
        packets = workload.packets(offered)

        state = {"forwarded": 0, "empty_polls": 0, "polls": 0}
        queues = [queue for _, queue in self._assignments]
        drops_before = sum(queue.dropped for queue in queues)
        # Clear any residue from a previous run on the same server.
        for queue in queues:
            queue.clear()
        # Every packet of this run carries the same app vector, so bus
        # bytes are chargeable per batch without walking elements.
        per_packet_vec = (self.cost_model.app_vector(self.app,
                                                     self.packet_bytes)
                          if obs is not None else None)

        def arrival(index=[0]):
            try:
                packet = next(packets)
            except StopIteration:
                return
            queue = queues[index[0] % len(queues)]
            index[0] += 1
            if obs is not None:
                trace = obs.tracer.maybe_start(packet, sim.now, "arrival")
                if not queue.push(packet) and trace is not None:
                    trace.hop("dropped", sim.now)
            else:
                queue.push(packet)
            schedule_timer(interarrival, arrival)

        clock_hz = self.server.spec.clock_hz
        # Poll loops and arrivals are homogeneous high-rate timers: ride
        # the engine's bucketed event wheel instead of the main heap.
        schedule_timer = sim.schedule_timer

        def make_poll_loop(core, queue, queue_label):
            seen_drops = [queue.dropped]
            poll_times: List[float] = []  # obs-only: poll-wait split
            core_frame = "core%d" % core.core_id
            app_frame = getattr(self.app, "name", "app")
            # Hoist every per-poll attribute lookup out of the loop.
            kp = self.kp
            cycles_per_packet = self.cycles_per_packet
            empty_poll_cycles = self.cost_model.empty_poll_cycles
            pop_batch = queue.pop_batch
            charge = core.charge
            if obs is not None:
                prof = obs.profiler
                charge_app = (prof.bind(core_frame, app_frame)
                              if prof is not None else None)
                charge_empty = (prof.bind(core_frame, "empty_poll")
                                if prof is not None else None)
                (inc_busy_cycles, inc_empty_cycles,
                 inc_busy_polls, inc_empty_polls) = \
                    obs.core_handles(core.core_id)
                record_occupancy = obs.rxq_occupancy.bind(queue=queue_label)
                record_drops = obs.rxq_drops.bind(queue=queue_label)

            def poll():
                now = sim.now
                if now >= duration_sec:
                    return
                state["polls"] += 1
                if obs is not None:
                    poll_times.append(now)
                batch = pop_batch(kp)
                if batch:
                    cycles = len(batch) * cycles_per_packet
                    state["forwarded"] += len(batch)
                else:
                    state["empty_polls"] += 1
                    cycles = empty_poll_cycles
                charge(cycles)
                if obs is not None:
                    if batch:
                        if charge_app is not None:
                            charge_app(cycles)
                        inc_busy_cycles(cycles)
                        inc_busy_polls()
                    else:
                        if charge_empty is not None:
                            charge_empty(cycles)
                        inc_empty_cycles(cycles)
                        inc_empty_polls()
                    record_occupancy(now, len(queue))
                    if queue.dropped > seen_drops[0]:
                        record_drops(now, queue.dropped - seen_drops[0])
                        seen_drops[0] = queue.dropped
                    if batch:
                        n = len(batch)
                        obs.charge_bus(n * per_packet_vec.mem_bytes,
                                       n * per_packet_vec.io_bytes,
                                       n * per_packet_vec.pcie_bytes,
                                       n * per_packet_vec.qpi_bytes)
                        t_done = now + cycles / clock_hz
                        for packet in batch:
                            trace = packet.annotations.get(TRACE_ANNOTATION)
                            if trace is not None:
                                trace.hop("poll", first_poll_after(
                                    poll_times, trace.started, now))
                                trace.hop("pickup", now)
                                trace.hop("core%d" % core.core_id, now,
                                          note="forwarded")
                                trace.hop("service_done", t_done)
                schedule_timer(cycles / clock_hz, poll)
            return poll

        sim.schedule(0.0, arrival)
        for index, (core, queue) in enumerate(self._assignments):
            sim.schedule(0.0, make_poll_loop(core, queue, str(index)))
        sim.run(until=duration_sec)

        dropped = sum(queue.dropped for queue in queues) - drops_before
        return TimedRunReport(
            offered_packets=offered,
            forwarded_packets=state["forwarded"],
            dropped_packets=dropped,
            duration_sec=duration_sec,
            packet_bytes=self.packet_bytes,
            empty_polls=state["empty_polls"],
            total_polls=state["polls"],
            residual_backlog=sum(len(queue) for queue in queues),
        )

    def _run_batch(self, offered_bps: float, duration_sec: float,
                   seed: int) -> TimedRunReport:
        """The batch fast-path behind :meth:`run` (``batch=True``).

        Event-for-event equivalent to scalar mode: arrival times are the
        same chained ``t += interarrival`` floats (bulk-filed into the
        event wheel before the measured window), poll cadence and cycle
        charges are untouched, and the trace sampler advances over the
        same arrival positions.  The savings are all constant-factor
        Python overhead, removed from the measured loop two ways:

        * **Count-only descriptors.**  Nothing downstream of minimal
          forwarding inspects a packet, so rings carry token counts
          (:meth:`~repro.hw.nic.NicQueue.push_token`) and arrivals
          materialize a real Packet only for trace-sampled slots.
        * **Deferred, order-exact bookkeeping.**  Each poll appends one
          tuple to a run-wide log; after :meth:`Simulator.run` returns,
          the log is replayed in event order through the same counter,
          timeline, profiler, and trace calls the scalar loop makes per
          poll.  Same calls, same order, same float chains -- every
          derived number is bit-identical, but none of it is paid inside
          the measured event loop.
        """
        obs = _RunObs.resolve(self.metrics)
        sim = Simulator(metrics=self.metrics)
        interarrival = self.packet_bytes * 8 / offered_bps
        offered = int(duration_sec / interarrival)

        queues = [queue for _, queue in self._assignments]
        n_queues = len(queues)
        drops_before = sum(queue.dropped for queue in queues)
        for queue in queues:
            queue.clear()
        drops_start = [queue.dropped for queue in queues]
        per_packet_vec = (self.cost_model.app_vector(self.app,
                                                     self.packet_bytes)
                          if obs is not None else None)

        # Arrival times, chained exactly like the scalar path's repeated
        # schedule_timer(interarrival, ...) -- t[k] = t[k-1] + dt, never
        # k * dt.  The extra final event mirrors the scalar generator's
        # StopIteration no-op.
        times = [0.0] * (offered + 1)
        t = 0.0
        for k in range(1, offered + 1):
            t += interarrival
            times[k] = t

        push_tokens = [queue.push_token for queue in queues]
        pending = [deque() for _ in range(n_queues)]
        if obs is not None:
            # Same workload state evolution as scalar mode; rows
            # materialize into real packets only for trace-sampled
            # arrivals.
            workload = FixedSizeWorkload(
                packet_bytes=self.packet_bytes,
                num_flows=len(self._assignments) * 8, seed=seed)
            arrival_batch = workload.packet_batch(offered)
            packet_at = arrival_batch.packet
            tracer = obs.tracer
            sample_every = tracer.sample_every
            counter = [0]
            seen = [tracer.seen]
            base_enqueued = [queue.enqueued for queue in queues]

            def sample_arrival(i, qi, pushed):
                # Rare path (1-in-sample_every): materialize the packet
                # and start its trace, as scalar maybe_start() would.
                trace = tracer.start_trace(packet_at(i), sim.now, "arrival")
                if pushed:
                    position = queues[qi].enqueued - base_enqueued[qi] - 1
                    pending[qi].append((position, trace))
                else:
                    trace.hop("dropped", sim.now)

            def arrival():
                i = counter[0]
                counter[0] = i + 1
                s = seen[0]
                seen[0] = s + 1
                qi = i % n_queues
                pushed = push_tokens[qi]()
                if not s % sample_every:
                    sample_arrival(i, qi, pushed)
        else:
            push_cycle = cycle(push_tokens)

            def arrival():
                next(push_cycle)()

        def final_arrival():
            # The scalar generator's StopIteration no-op: one extra
            # arrival event that does nothing but advance the clock.
            pass

        # Bulk-file all arrivals first so they take sequence numbers
        # 0..offered -- the same tie-break order vs the t=0 poll events
        # that the scalar path's schedule(0.0, arrival) call produces.
        # Splitting off the final event lets the hot closure skip the
        # bounds check the scalar path pays per arrival.
        if offered:
            sim.preschedule_timers(times[:offered], arrival)
        sim.preschedule_timers(times[offered:], final_arrival)

        clock_hz = self.server.spec.clock_hz
        # Every poll charges one of kp+1 possible cycle values; index 0
        # is the empty poll.  Same multiplications/divisions the scalar
        # loop performs, just done once.
        cycles_for = [self.cost_model.empty_poll_cycles] + [
            n * self.cycles_per_packet for n in range(1, self.kp + 1)]
        delay_for = [cycles / clock_hz for cycles in cycles_for]
        file_at = sim.timer_filer()
        kp = self.kp
        log: List[tuple] = []
        log_append = log.append

        def make_poll_loop(queue, queue_index):
            # The measured loop does only what changes simulated state:
            # pop the burst, log one tuple, file the successor timer.
            pop_tokens = queue.pop_tokens

            def poll():
                now = sim.now
                if now >= duration_sec:
                    return
                n = pop_tokens(kp)
                log_append((queue_index, now, n, queue._tokens,
                            queue.dropped))
                file_at(now + delay_for[n], poll)
            return poll

        for index, (core, queue) in enumerate(self._assignments):
            sim.schedule(0.0, make_poll_loop(queue, index))
        sim.run(until=duration_sec)

        # -- deferred bookkeeping: replay the poll log in event order --
        forwarded = 0
        empty_polls = 0
        charge_by = [core.charge for core, _ in self._assignments]
        if obs is not None:
            tracer.seen = seen[0]
            prof = obs.profiler
            app_frame = getattr(self.app, "name", "app")
            charge_app_by, charge_empty_by = [], []
            busy_handles, empty_handles = [], []
            occupancy_by, drops_by = [], []
            label_by, poll_times_by = [], []
            seen_drops = list(drops_start)
            for index, (core, queue) in enumerate(self._assignments):
                core_frame = "core%d" % core.core_id
                charge_app_by.append(prof.bind(core_frame, app_frame)
                                     if prof is not None else _noop_charge)
                charge_empty_by.append(prof.bind(core_frame, "empty_poll")
                                       if prof is not None else _noop_charge)
                (inc_busy_cycles, inc_empty_cycles,
                 inc_busy_polls, inc_empty_polls) = \
                    obs.core_handles(core.core_id)
                busy_handles.append((inc_busy_cycles, inc_busy_polls))
                empty_handles.append((inc_empty_cycles, inc_empty_polls))
                occupancy_by.append(obs.rxq_occupancy.bind(queue=str(index)))
                drops_by.append(obs.rxq_drops.bind(queue=str(index)))
                label_by.append(core_frame)
                poll_times_by.append([])
            charge_bus = obs.charge_bus
            mem_b = per_packet_vec.mem_bytes
            io_b = per_packet_vec.io_bytes
            pcie_b = per_packet_vec.pcie_bytes
            qpi_b = per_packet_vec.qpi_bytes
            popped = [0] * n_queues
            for qi, now, n, occupancy, dropped in log:
                poll_times_by[qi].append(now)
                cycles = cycles_for[n]
                if n:
                    forwarded += n
                    charge_app_by[qi](cycles)
                    inc_cycles, inc_polls = busy_handles[qi]
                    inc_cycles(cycles)
                    inc_polls()
                    charge_bus(n * mem_b, n * io_b, n * pcie_b, n * qpi_b)
                else:
                    empty_polls += 1
                    charge_empty_by[qi](cycles)
                    inc_cycles, inc_polls = empty_handles[qi]
                    inc_cycles(cycles)
                    inc_polls()
                charge_by[qi](cycles)
                occupancy_by[qi](now, occupancy)
                if dropped > seen_drops[qi]:
                    drops_by[qi](now, dropped - seen_drops[qi])
                    seen_drops[qi] = dropped
                if n:
                    end = popped[qi] + n
                    popped[qi] = end
                    my_pending = pending[qi]
                    if my_pending and my_pending[0][0] < end:
                        t_done = now + delay_for[n]
                        while my_pending and my_pending[0][0] < end:
                            _, trace = my_pending.popleft()
                            trace.hop("poll", first_poll_after(
                                poll_times_by[qi], trace.started, now))
                            trace.hop("pickup", now)
                            trace.hop(label_by[qi], now, note="forwarded")
                            trace.hop("service_done", t_done)
        else:
            for qi, now, n, occupancy, dropped in log:
                if n:
                    forwarded += n
                else:
                    empty_polls += 1
                charge_by[qi](cycles_for[n])

        dropped = sum(queue.dropped for queue in queues) - drops_before
        return TimedRunReport(
            offered_packets=offered,
            forwarded_packets=forwarded,
            dropped_packets=dropped,
            duration_sec=duration_sec,
            packet_bytes=self.packet_bytes,
            empty_polls=empty_polls,
            total_polls=len(log),
            residual_backlog=sum(len(queue) for queue in queues),
        )

    def find_loss_free_rate(self, low_bps: float = 0.5e9,
                            high_bps: float = 30e9,
                            tolerance_bps: float = 0.25e9,
                            duration_sec: float = 2e-3) -> float:
        """Binary-search the maximum loss-free rate (the Sec. 5.1 metric)."""
        if low_bps >= high_bps:
            raise ConfigurationError("need low < high")
        # A sustainable run may leave up to ~2 poll batches per queue.
        max_backlog = 2 * self.kp * len(self._assignments)
        while high_bps - low_bps > tolerance_bps:
            mid = (low_bps + high_bps) / 2
            report = self.run(mid, duration_sec=duration_sec)
            if report.sustainable(max_backlog):
                low_bps = mid
            else:
                high_bps = mid
        return low_bps


def _element_cycles(element: Element, d_packets: int,
                    d_bytes: float) -> float:
    """CPU cycles for ``d_packets``/``d_bytes`` of new work on an element.

    Exact for affine costs -- which also makes batch and scalar modes
    charge identically: the deltas are integer packet/byte counts either
    way.
    """
    if d_packets <= 0:
        return 0.0
    return (d_packets * element.cost_base.cpu_cycles
            + d_bytes * element.cost_per_byte.cpu_cycles)


def _element_vector(element: Element, d_packets: int, d_bytes: float):
    """Full :class:`~repro.costs.ResourceVector` for the same new work.

    The CPU entry matches :func:`_element_cycles` exactly, so running
    with observability on cannot change the simulated timing; the bus
    entries feed the per-bus byte-utilization counters.
    """
    if d_packets <= 0:
        return None
    return (element.cost_base.scaled(d_packets)
            + element.cost_per_byte.scaled(d_bytes))


class _PipelineReplica:
    """One core's instantiation of the pipeline (multi-queue slice)."""

    def __init__(self, graph, core):
        self.graph = graph
        self.core = core
        self.elements: List[Element] = graph.elements()
        self.polls = [e for e in self.elements if isinstance(e, PollDevice)]
        self.tos = [e for e in self.elements if isinstance(e, ToDevice)]
        self.pulls = [(e, e.output(0).peer) for e in self.elements
                      if isinstance(e, PacketQueue)
                      and e.output(0).peer is not None]


class TimedPipelineRun:
    """Simulate an arbitrary Click pipeline on one server at offered load.

    The configuration text (or a :data:`~repro.click.pipelines
    .PRESET_PIPELINES` name) is instantiated once per participating core,
    with each replica's device elements bound to NIC queue ``replica`` --
    the multi-queue discipline.  Each poll event runs the replica's poll
    devices, drives any Click ``Queue`` pulls, drains the TX rings, and
    charges the core the element-wise resource cost of the packets that
    actually moved.

    ``batch=True`` drives each replica through
    :meth:`~repro.click.elements.device.PollDevice.run_task_batch`, so a
    poll burst traverses batch-native graph segments as one
    :class:`~repro.net.batch.PacketBatch`.  Charging is unchanged -- it
    reads the same integer packets_in/bytes_in deltas either way -- so
    cycles, loads, and counters are identical between the modes.
    """

    def __init__(self, server: Server, config_text: str,
                 packet_bytes: int = 64,
                 kp: int = cal.DEFAULT_KP, kn: int = cal.DEFAULT_KN,
                 table=None, esp_context=None,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 replicas: Optional[int] = None,
                 batch: bool = False,
                 metrics=None):
        from .pipelines import build_pipeline
        if not server.ports:
            raise ConfigurationError("server has no ports attached")
        if kp < 1 or not 1 <= kn <= cal.MAX_NIC_BATCH:
            raise ConfigurationError("bad batching parameters")
        self.server = server
        self.packet_bytes = packet_bytes
        self.kp = kp
        self.kn = kn
        self.cost_model = cost_model
        self.batch = batch
        self.metrics = metrics
        queues_per_port = min(port.num_queues for port in server.ports)
        n_replicas = min(len(server.cores), queues_per_port)
        if replicas is not None:
            if replicas > n_replicas:
                raise ConfigurationError(
                    "%d replicas need %d cores and %d queues per port"
                    % (replicas, replicas, replicas))
            n_replicas = replicas
        self.replicas: List[_PipelineReplica] = []
        for index in range(n_replicas):
            graph = build_pipeline(config_text, server, replica=index,
                                   kp=kp, kn=kn, table=table,
                                   esp_context=esp_context,
                                   cost_model=cost_model)
            replica = _PipelineReplica(graph, server.cores[index])
            if not replica.polls:
                raise ConfigurationError(
                    "pipeline has no PollDevice; nothing drives it")
            self.replicas.append(replica)

    def _rx_queues(self):
        return [poll.queue for replica in self.replicas
                for poll in replica.polls]

    def run(self, offered_bps: float, duration_sec: float = 5e-3,
            seed: int = 0) -> TimedRunReport:
        """Offer fixed-size packets at ``offered_bps`` for ``duration_sec``."""
        if offered_bps <= 0 or duration_sec <= 0:
            raise ConfigurationError("offered load and duration must be > 0")
        obs = _RunObs.resolve(self.metrics)
        sim = Simulator(metrics=self.metrics)
        workload = FixedSizeWorkload(packet_bytes=self.packet_bytes,
                                     num_flows=len(self.replicas) * 8,
                                     seed=seed)
        interarrival = self.packet_bytes * 8 / offered_bps
        offered = int(duration_sec / interarrival)
        packets = workload.packets(offered)

        state = {"forwarded": 0, "empty_polls": 0, "polls": 0}
        rx_queues = self._rx_queues()
        drops_before = sum(queue.dropped for queue in rx_queues)
        for queue in rx_queues:
            queue.clear()
        # Per-RX-ring poll timestamps (obs-only) feed the traced packets'
        # poll-wait vs ring-wait split at drain time.
        poll_times = ({id(queue): [] for queue in rx_queues}
                      if obs is not None else None)

        def arrival(index=[0]):
            try:
                packet = next(packets)
            except StopIteration:
                return
            queue = rx_queues[index[0] % len(rx_queues)]
            index[0] += 1
            if obs is not None:
                trace = obs.tracer.maybe_start(packet, sim.now, "arrival")
                if trace is not None:
                    if not queue.push(packet):
                        trace.hop("dropped", sim.now)
                    else:
                        packet.annotations["rxq_id"] = id(queue)
                else:
                    queue.push(packet)
            else:
                queue.push(packet)
            schedule_timer(interarrival, arrival)

        clock_hz = self.server.spec.clock_hz
        # Same wheel discipline as TimedForwardingRun: polls and
        # arrivals are homogeneous high-rate timers.
        schedule_timer = sim.schedule_timer

        def make_poll_loop(replica):
            counters = {id(e): (e.packets_in, e.bytes_in)
                        for e in replica.elements}
            seen_drops = {id(d): d.queue.dropped for d in replica.polls}
            poll_tasks = [(device.run_task_batch if self.batch
                           else device.run_task)
                          for device in replica.polls]
            core = replica.core
            core_frame = "core%d" % core.core_id
            empty_poll_cycles = self.cost_model.empty_poll_cycles
            charge = core.charge
            if obs is not None:
                prof = obs.profiler
                charge_element = ({id(e): prof.bind(core_frame, e.name)
                                   for e in replica.elements}
                                  if prof is not None else None)
                charge_empty = (prof.bind(core_frame, "empty_poll")
                                if prof is not None else None)
                (inc_busy_cycles, inc_empty_cycles,
                 inc_busy_polls, inc_empty_polls) = \
                    obs.core_handles(core.core_id)
                record_occupancy = {
                    id(d): obs.rxq_occupancy.bind(queue=d.name)
                    for d in replica.polls}
                record_drops = {
                    id(d): obs.rxq_drops.bind(queue=d.name)
                    for d in replica.polls}

            def poll():
                if sim.now >= duration_sec:
                    return
                state["polls"] += 1
                if obs is not None:
                    for device in replica.polls:
                        poll_times[id(device.queue)].append(sim.now)
                moved = 0
                for task in poll_tasks:
                    moved += task()
                for queue, downstream in replica.pulls:
                    while True:
                        packet = queue.pull()
                        if packet is None:
                            break
                        downstream.receive(packet)
                        moved += 1
                traced_drained = []
                for device in replica.tos:
                    drained = device.drain()
                    state["forwarded"] += len(drained)
                    if obs is not None:
                        for packet in drained:
                            trace = packet.annotations.get(TRACE_ANNOTATION)
                            if trace is not None:
                                times = poll_times.get(
                                    packet.annotations.pop("rxq_id", None))
                                if times:
                                    trace.hop("poll", first_poll_after(
                                        times, trace.started, sim.now))
                                trace.hop("pickup", sim.now)
                                trace.hop(device.name, sim.now, note="tx")
                                traced_drained.append(trace)
                if moved:
                    cycles = 0.0
                    mem = io = pcie = qpi = 0.0
                    for element in replica.elements:
                        packets0, bytes0 = counters[id(element)]
                        d_packets = element.packets_in - packets0
                        d_bytes = element.bytes_in - bytes0
                        if obs is None:
                            cycles += _element_cycles(element, d_packets,
                                                      d_bytes)
                        else:
                            vec = _element_vector(element, d_packets,
                                                  d_bytes)
                            if vec is not None:
                                cycles += vec.cpu_cycles
                                mem += vec.mem_bytes
                                io += vec.io_bytes
                                pcie += vec.pcie_bytes
                                qpi += vec.qpi_bytes
                                if charge_element is not None:
                                    charge_element[id(element)](
                                        vec.cpu_cycles)
                        counters[id(element)] = (element.packets_in,
                                                 element.bytes_in)
                    if obs is not None:
                        obs.charge_bus(mem, io, pcie, qpi)
                        inc_busy_cycles(cycles)
                        inc_busy_polls()
                else:
                    state["empty_polls"] += 1
                    cycles = empty_poll_cycles
                    if obs is not None:
                        if charge_empty is not None:
                            charge_empty(cycles)
                        inc_empty_cycles(cycles)
                        inc_empty_polls()
                charge(cycles)
                if obs is not None:
                    if traced_drained:
                        t_done = sim.now + cycles / clock_hz
                        for trace in traced_drained:
                            trace.hop("service_done", t_done)
                    for device in replica.polls:
                        record_occupancy[id(device)](sim.now,
                                                     len(device.queue))
                        dropped = device.queue.dropped
                        if dropped > seen_drops[id(device)]:
                            record_drops[id(device)](
                                sim.now, dropped - seen_drops[id(device)])
                            seen_drops[id(device)] = dropped
                schedule_timer(cycles / clock_hz, poll)
            return poll

        sim.schedule(0.0, arrival)
        for replica in self.replicas:
            sim.schedule(0.0, make_poll_loop(replica))
        sim.run(until=duration_sec)

        dropped = sum(queue.dropped for queue in rx_queues) - drops_before
        backlog = sum(len(queue) for queue in rx_queues)
        for replica in self.replicas:
            backlog += sum(len(queue) for queue, _ in replica.pulls)
        return TimedRunReport(
            offered_packets=offered,
            forwarded_packets=state["forwarded"],
            dropped_packets=dropped,
            duration_sec=duration_sec,
            packet_bytes=self.packet_bytes,
            empty_polls=state["empty_polls"],
            total_polls=state["polls"],
            residual_backlog=backlog,
        )

    def find_loss_free_rate(self, low_bps: float = 0.5e9,
                            high_bps: float = 30e9,
                            tolerance_bps: float = 0.25e9,
                            duration_sec: float = 2e-3) -> float:
        """Binary-search the maximum loss-free rate (the Sec. 5.1 metric)."""
        if low_bps >= high_bps:
            raise ConfigurationError("need low < high")
        max_backlog = 2 * self.kp * len(self._rx_queues())
        while high_bps - low_bps > tolerance_bps:
            mid = (low_bps + high_bps) / 2
            report = self.run(mid, duration_sec=duration_sec)
            if report.sustainable(max_backlog):
                low_bps = mid
            else:
                high_bps = mid
        return low_bps
