"""Timed single-server forwarding runs.

Drives a server's cores in *simulated time*: each core repeatedly polls
its RX queue, pays the calibrated per-packet (or empty-poll) cycle cost,
and advances its own clock accordingly.  Offered load arrives as timed
events.  This closes the loop between the analytic model and the DES: at
offered loads below the model's saturation rate the run is loss-free; at
higher loads the achieved rate plateaus at the model's prediction and RX
rings overflow -- exactly how the paper measures the "maximum loss-free
forwarding rate" (Sec. 5.1).

Two runners share that discipline: :class:`TimedForwardingRun` charges a
preset application's cost as one number per packet (the original Sec. 5.1
experiment), while :class:`TimedPipelineRun` instantiates an arbitrary
Click configuration once per core (multi-queue replication) and charges
each element's :class:`~repro.costs.ResourceVector` for the packets it
actually handled -- the same vectors :func:`repro.costs.compile_loads`
sums analytically, which is what makes model-vs-DES agreement checkable
for custom pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .. import calibration as cal
from ..costs import DEFAULT_COST_MODEL, CostModel
from ..errors import ConfigurationError
from ..hw.server import Server
from ..obs.metrics import active_registry
from ..obs.profile import first_poll_after
from ..obs.trace import TRACE_ANNOTATION
from ..simnet.engine import Simulator
from ..workloads.synthetic import FixedSizeWorkload
from .element import Element
from .elements.device import PollDevice, ToDevice
from .elements.standard import PacketQueue

#: Cycles burned by a poll that finds no packets (Sec. 5.3's ce).
#: Re-exported from :mod:`repro.calibration`, the single owner.
EMPTY_POLL_CYCLES = cal.EMPTY_POLL_CYCLES


class _RunObs:
    """Resolved metric handles for one timed run (absent when disabled).

    Both runners charge the same names: ``core_cycles``/``core_polls``
    split busy vs empty (the Sec. 5.3 idle-polling attribution),
    ``bus_bytes`` per shared bus, ``rxq_occupancy``/``rxq_drops``
    timelines per RX ring.  When the registry carries a
    :class:`~repro.obs.profile.SpanProfiler` the runners additionally
    charge per-element cycles under ``core<N>`` frames (cycle units).
    """

    def __init__(self, registry):
        self.registry = registry
        self.profiler = registry.profiler
        self.core_cycles = registry.counter(
            "core_cycles", help="cycles charged per core, busy vs empty")
        self.core_polls = registry.counter(
            "core_polls", help="poll events per core, busy vs empty")
        self.bus_bytes = registry.counter(
            "bus_bytes", help="bytes moved per shared bus")
        self.rxq_occupancy = registry.timeline(
            "rxq_occupancy", help="RX-ring occupancy, sampled per poll")
        self.rxq_drops = registry.timeline(
            "rxq_drops", help="RX-ring drops per time bin")
        self.tracer = registry.tracer
        # Per-bus incrementers, bound once per run (see Counter.bind).
        self._inc_mem = self.bus_bytes.bind(bus="memory")
        self._inc_io = self.bus_bytes.bind(bus="io")
        self._inc_pcie = self.bus_bytes.bind(bus="pcie")
        self._inc_qpi = self.bus_bytes.bind(bus="qpi")

    @classmethod
    def resolve(cls, metrics) -> "Optional[_RunObs]":
        registry = metrics if metrics is not None else active_registry()
        return cls(registry) if registry.enabled else None

    def core_handles(self, core_id: int):
        """Pre-bound (busy cycles, empty cycles, busy polls, empty
        polls) incrementers for one core -- the per-poll charge path."""
        return (self.core_cycles.bind(core=core_id, kind="busy"),
                self.core_cycles.bind(core=core_id, kind="empty"),
                self.core_polls.bind(core=core_id, kind="busy"),
                self.core_polls.bind(core=core_id, kind="empty"))

    def charge_bus(self, mem: float, io: float, pcie: float,
                   qpi: float) -> None:
        if mem:
            self._inc_mem(mem)
        if io:
            self._inc_io(io)
        if pcie:
            self._inc_pcie(pcie)
        if qpi:
            self._inc_qpi(qpi)


@dataclass
class TimedRunReport:
    """Outcome of a timed forwarding run."""

    offered_packets: int
    forwarded_packets: int
    dropped_packets: int
    duration_sec: float
    packet_bytes: int
    empty_polls: int
    total_polls: int
    residual_backlog: int = 0

    @property
    def achieved_bps(self) -> float:
        return (self.forwarded_packets * self.packet_bytes * 8
                / self.duration_sec)

    @property
    def achieved_gbps(self) -> float:
        return self.achieved_bps / 1e9

    @property
    def loss_free(self) -> bool:
        return self.dropped_packets == 0

    @property
    def loss_fraction(self) -> float:
        if not self.offered_packets:
            return 0.0
        return self.dropped_packets / self.offered_packets

    def sustainable(self, max_backlog_packets: int) -> bool:
        """Loss-free *and* not merely buffering the excess in the rings."""
        return (self.dropped_packets == 0
                and self.residual_backlog <= max_backlog_packets)


class TimedForwardingRun:
    """Simulate minimal forwarding on one server at an offered load.

    One core per RX queue (the multi-queue discipline); arrivals are
    spread round-robin across queues, matching the paper's uniform
    any-to-any pattern.  ``kp``/``kn`` control batching as in Table 1.
    """

    def __init__(self, server: Server, packet_bytes: int = 64,
                 kp: int = cal.DEFAULT_KP, kn: int = cal.DEFAULT_KN,
                 app: cal.AppCost = cal.MINIMAL_FORWARDING,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 metrics=None):
        if not server.ports:
            raise ConfigurationError("server has no ports attached")
        if kp < 1 or not 1 <= kn <= cal.MAX_NIC_BATCH:
            raise ConfigurationError("bad batching parameters")
        self.server = server
        self.packet_bytes = packet_bytes
        self.kp = kp
        self.kn = kn
        self.app = app
        self.cost_model = cost_model
        self.metrics = metrics
        self.cycles_per_packet = (
            cost_model.app_vector(app, packet_bytes).cpu_cycles
            + cost_model.bookkeeping_cycles(kp, kn))
        # Pair each core with one RX queue, spreading cores over ports.
        self._assignments = []
        cores = server.cores
        queues = [queue for port in server.ports for queue in port.rx_queues]
        if len(queues) < len(cores):
            raise ConfigurationError(
                "need >= 1 RX queue per core (%d cores, %d queues)"
                % (len(cores), len(queues)))
        for index, core in enumerate(cores):
            self._assignments.append((core, queues[index]))

    def run(self, offered_bps: float, duration_sec: float = 5e-3,
            seed: int = 0) -> TimedRunReport:
        """Offer fixed-size packets at ``offered_bps`` for ``duration_sec``."""
        if offered_bps <= 0 or duration_sec <= 0:
            raise ConfigurationError("offered load and duration must be > 0")
        obs = _RunObs.resolve(self.metrics)
        sim = Simulator(metrics=self.metrics)
        workload = FixedSizeWorkload(packet_bytes=self.packet_bytes,
                                     num_flows=len(self._assignments) * 8,
                                     seed=seed)
        interarrival = self.packet_bytes * 8 / offered_bps
        offered = int(duration_sec / interarrival)
        packets = workload.packets(offered)

        state = {"forwarded": 0, "empty_polls": 0, "polls": 0}
        queues = [queue for _, queue in self._assignments]
        drops_before = sum(queue.dropped for queue in queues)
        # Clear any residue from a previous run on the same server.
        for queue in queues:
            while queue.pop() is not None:
                pass
        # Every packet of this run carries the same app vector, so bus
        # bytes are chargeable per batch without walking elements.
        per_packet_vec = (self.cost_model.app_vector(self.app,
                                                     self.packet_bytes)
                          if obs is not None else None)

        def arrival(index=[0]):
            try:
                packet = next(packets)
            except StopIteration:
                return
            queue = queues[index[0] % len(queues)]
            index[0] += 1
            if obs is not None:
                trace = obs.tracer.maybe_start(packet, sim.now, "arrival")
                if not queue.push(packet) and trace is not None:
                    trace.hop("dropped", sim.now)
            else:
                queue.push(packet)
            schedule_timer(interarrival, arrival)

        clock_hz = self.server.spec.clock_hz
        # Poll loops and arrivals are homogeneous high-rate timers: ride
        # the engine's bucketed event wheel instead of the main heap.
        schedule_timer = sim.schedule_timer

        def make_poll_loop(core, queue, queue_label):
            seen_drops = [queue.dropped]
            poll_times: List[float] = []  # obs-only: poll-wait split
            core_frame = "core%d" % core.core_id
            app_frame = getattr(self.app, "name", "app")
            # Hoist every per-poll attribute lookup out of the loop.
            kp = self.kp
            cycles_per_packet = self.cycles_per_packet
            empty_poll_cycles = self.cost_model.empty_poll_cycles
            pop_batch = queue.pop_batch
            charge = core.charge
            if obs is not None:
                prof = obs.profiler
                charge_app = (prof.bind(core_frame, app_frame)
                              if prof is not None else None)
                charge_empty = (prof.bind(core_frame, "empty_poll")
                                if prof is not None else None)
                (inc_busy_cycles, inc_empty_cycles,
                 inc_busy_polls, inc_empty_polls) = \
                    obs.core_handles(core.core_id)
                record_occupancy = obs.rxq_occupancy.bind(queue=queue_label)
                record_drops = obs.rxq_drops.bind(queue=queue_label)

            def poll():
                now = sim.now
                if now >= duration_sec:
                    return
                state["polls"] += 1
                if obs is not None:
                    poll_times.append(now)
                batch = pop_batch(kp)
                if batch:
                    cycles = len(batch) * cycles_per_packet
                    state["forwarded"] += len(batch)
                else:
                    state["empty_polls"] += 1
                    cycles = empty_poll_cycles
                charge(cycles)
                if obs is not None:
                    if batch:
                        if charge_app is not None:
                            charge_app(cycles)
                        inc_busy_cycles(cycles)
                        inc_busy_polls()
                    else:
                        if charge_empty is not None:
                            charge_empty(cycles)
                        inc_empty_cycles(cycles)
                        inc_empty_polls()
                    record_occupancy(now, len(queue))
                    if queue.dropped > seen_drops[0]:
                        record_drops(now, queue.dropped - seen_drops[0])
                        seen_drops[0] = queue.dropped
                    if batch:
                        n = len(batch)
                        obs.charge_bus(n * per_packet_vec.mem_bytes,
                                       n * per_packet_vec.io_bytes,
                                       n * per_packet_vec.pcie_bytes,
                                       n * per_packet_vec.qpi_bytes)
                        t_done = now + cycles / clock_hz
                        for packet in batch:
                            trace = packet.annotations.get(TRACE_ANNOTATION)
                            if trace is not None:
                                trace.hop("poll", first_poll_after(
                                    poll_times, trace.started, now))
                                trace.hop("pickup", now)
                                trace.hop("core%d" % core.core_id, now,
                                          note="forwarded")
                                trace.hop("service_done", t_done)
                schedule_timer(cycles / clock_hz, poll)
            return poll

        sim.schedule(0.0, arrival)
        for index, (core, queue) in enumerate(self._assignments):
            sim.schedule(0.0, make_poll_loop(core, queue, str(index)))
        sim.run(until=duration_sec)

        dropped = sum(queue.dropped for queue in queues) - drops_before
        return TimedRunReport(
            offered_packets=offered,
            forwarded_packets=state["forwarded"],
            dropped_packets=dropped,
            duration_sec=duration_sec,
            packet_bytes=self.packet_bytes,
            empty_polls=state["empty_polls"],
            total_polls=state["polls"],
            residual_backlog=sum(len(queue) for queue in queues),
        )

    def find_loss_free_rate(self, low_bps: float = 0.5e9,
                            high_bps: float = 30e9,
                            tolerance_bps: float = 0.25e9,
                            duration_sec: float = 2e-3) -> float:
        """Binary-search the maximum loss-free rate (the Sec. 5.1 metric)."""
        if low_bps >= high_bps:
            raise ConfigurationError("need low < high")
        # A sustainable run may leave up to ~2 poll batches per queue.
        max_backlog = 2 * self.kp * len(self._assignments)
        while high_bps - low_bps > tolerance_bps:
            mid = (low_bps + high_bps) / 2
            report = self.run(mid, duration_sec=duration_sec)
            if report.sustainable(max_backlog):
                low_bps = mid
            else:
                high_bps = mid
        return low_bps


class _SizeProbe:
    """A minimal stand-in packet for evaluating size-affine costs."""

    __slots__ = ("length",)

    def __init__(self, length: float):
        self.length = length


def _element_cycles(element: Element, d_packets: int,
                    d_bytes: float) -> float:
    """CPU cycles for ``d_packets``/``d_bytes`` of new work on an element.

    Exact for affine costs; elements with a legacy ``cycle_cost`` override
    are charged at the actual mean packet size they handled.
    """
    if d_packets <= 0:
        return 0.0
    if type(element).cycle_cost is not Element.cycle_cost:
        probe = _SizeProbe(d_bytes / d_packets)
        return d_packets * element.resource_cost(probe).cpu_cycles
    return (d_packets * element.cost_base.cpu_cycles
            + d_bytes * element.cost_per_byte.cpu_cycles)


def _element_vector(element: Element, d_packets: int, d_bytes: float):
    """Full :class:`~repro.costs.ResourceVector` for the same new work.

    The CPU entry matches :func:`_element_cycles` exactly, so running
    with observability on cannot change the simulated timing; the bus
    entries feed the per-bus byte-utilization counters.
    """
    if d_packets <= 0:
        return None
    if type(element).cycle_cost is not Element.cycle_cost:
        probe = _SizeProbe(d_bytes / d_packets)
        return element.resource_cost(probe).scaled(d_packets)
    return (element.cost_base.scaled(d_packets)
            + element.cost_per_byte.scaled(d_bytes))


class _PipelineReplica:
    """One core's instantiation of the pipeline (multi-queue slice)."""

    def __init__(self, graph, core):
        self.graph = graph
        self.core = core
        self.elements: List[Element] = graph.elements()
        self.polls = [e for e in self.elements if isinstance(e, PollDevice)]
        self.tos = [e for e in self.elements if isinstance(e, ToDevice)]
        self.pulls = [(e, e.output(0).peer) for e in self.elements
                      if isinstance(e, PacketQueue)
                      and e.output(0).peer is not None]


class TimedPipelineRun:
    """Simulate an arbitrary Click pipeline on one server at offered load.

    The configuration text (or a :data:`~repro.click.pipelines
    .PRESET_PIPELINES` name) is instantiated once per participating core,
    with each replica's device elements bound to NIC queue ``replica`` --
    the multi-queue discipline.  Each poll event runs the replica's poll
    devices, drives any Click ``Queue`` pulls, drains the TX rings, and
    charges the core the element-wise resource cost of the packets that
    actually moved.
    """

    def __init__(self, server: Server, config_text: str,
                 packet_bytes: int = 64,
                 kp: int = cal.DEFAULT_KP, kn: int = cal.DEFAULT_KN,
                 table=None, esp_context=None,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 replicas: Optional[int] = None,
                 metrics=None):
        from .pipelines import build_pipeline
        if not server.ports:
            raise ConfigurationError("server has no ports attached")
        if kp < 1 or not 1 <= kn <= cal.MAX_NIC_BATCH:
            raise ConfigurationError("bad batching parameters")
        self.server = server
        self.packet_bytes = packet_bytes
        self.kp = kp
        self.kn = kn
        self.cost_model = cost_model
        self.metrics = metrics
        queues_per_port = min(port.num_queues for port in server.ports)
        n_replicas = min(len(server.cores), queues_per_port)
        if replicas is not None:
            if replicas > n_replicas:
                raise ConfigurationError(
                    "%d replicas need %d cores and %d queues per port"
                    % (replicas, replicas, replicas))
            n_replicas = replicas
        self.replicas: List[_PipelineReplica] = []
        for index in range(n_replicas):
            graph = build_pipeline(config_text, server, replica=index,
                                   kp=kp, kn=kn, table=table,
                                   esp_context=esp_context,
                                   cost_model=cost_model)
            replica = _PipelineReplica(graph, server.cores[index])
            if not replica.polls:
                raise ConfigurationError(
                    "pipeline has no PollDevice; nothing drives it")
            self.replicas.append(replica)

    def _rx_queues(self):
        return [poll.queue for replica in self.replicas
                for poll in replica.polls]

    def run(self, offered_bps: float, duration_sec: float = 5e-3,
            seed: int = 0) -> TimedRunReport:
        """Offer fixed-size packets at ``offered_bps`` for ``duration_sec``."""
        if offered_bps <= 0 or duration_sec <= 0:
            raise ConfigurationError("offered load and duration must be > 0")
        obs = _RunObs.resolve(self.metrics)
        sim = Simulator(metrics=self.metrics)
        workload = FixedSizeWorkload(packet_bytes=self.packet_bytes,
                                     num_flows=len(self.replicas) * 8,
                                     seed=seed)
        interarrival = self.packet_bytes * 8 / offered_bps
        offered = int(duration_sec / interarrival)
        packets = workload.packets(offered)

        state = {"forwarded": 0, "empty_polls": 0, "polls": 0}
        rx_queues = self._rx_queues()
        drops_before = sum(queue.dropped for queue in rx_queues)
        for queue in rx_queues:
            while queue.pop() is not None:
                pass
        # Per-RX-ring poll timestamps (obs-only) feed the traced packets'
        # poll-wait vs ring-wait split at drain time.
        poll_times = ({id(queue): [] for queue in rx_queues}
                      if obs is not None else None)

        def arrival(index=[0]):
            try:
                packet = next(packets)
            except StopIteration:
                return
            queue = rx_queues[index[0] % len(rx_queues)]
            index[0] += 1
            if obs is not None:
                trace = obs.tracer.maybe_start(packet, sim.now, "arrival")
                if trace is not None:
                    if not queue.push(packet):
                        trace.hop("dropped", sim.now)
                    else:
                        packet.annotations["rxq_id"] = id(queue)
                else:
                    queue.push(packet)
            else:
                queue.push(packet)
            schedule_timer(interarrival, arrival)

        clock_hz = self.server.spec.clock_hz
        # Same wheel discipline as TimedForwardingRun: polls and
        # arrivals are homogeneous high-rate timers.
        schedule_timer = sim.schedule_timer

        def make_poll_loop(replica):
            counters = {id(e): (e.packets_in, e.bytes_in)
                        for e in replica.elements}
            seen_drops = {id(d): d.queue.dropped for d in replica.polls}
            core = replica.core
            core_frame = "core%d" % core.core_id
            empty_poll_cycles = self.cost_model.empty_poll_cycles
            charge = core.charge
            if obs is not None:
                prof = obs.profiler
                charge_element = ({id(e): prof.bind(core_frame, e.name)
                                   for e in replica.elements}
                                  if prof is not None else None)
                charge_empty = (prof.bind(core_frame, "empty_poll")
                                if prof is not None else None)
                (inc_busy_cycles, inc_empty_cycles,
                 inc_busy_polls, inc_empty_polls) = \
                    obs.core_handles(core.core_id)
                record_occupancy = {
                    id(d): obs.rxq_occupancy.bind(queue=d.name)
                    for d in replica.polls}
                record_drops = {
                    id(d): obs.rxq_drops.bind(queue=d.name)
                    for d in replica.polls}

            def poll():
                if sim.now >= duration_sec:
                    return
                state["polls"] += 1
                if obs is not None:
                    for device in replica.polls:
                        poll_times[id(device.queue)].append(sim.now)
                moved = 0
                for device in replica.polls:
                    moved += device.run_task()
                for queue, downstream in replica.pulls:
                    while True:
                        packet = queue.pull()
                        if packet is None:
                            break
                        downstream.receive(packet)
                        moved += 1
                traced_drained = []
                for device in replica.tos:
                    drained = device.drain()
                    state["forwarded"] += len(drained)
                    if obs is not None:
                        for packet in drained:
                            trace = packet.annotations.get(TRACE_ANNOTATION)
                            if trace is not None:
                                times = poll_times.get(
                                    packet.annotations.pop("rxq_id", None))
                                if times:
                                    trace.hop("poll", first_poll_after(
                                        times, trace.started, sim.now))
                                trace.hop("pickup", sim.now)
                                trace.hop(device.name, sim.now, note="tx")
                                traced_drained.append(trace)
                if moved:
                    cycles = 0.0
                    mem = io = pcie = qpi = 0.0
                    for element in replica.elements:
                        packets0, bytes0 = counters[id(element)]
                        d_packets = element.packets_in - packets0
                        d_bytes = element.bytes_in - bytes0
                        if obs is None:
                            cycles += _element_cycles(element, d_packets,
                                                      d_bytes)
                        else:
                            vec = _element_vector(element, d_packets,
                                                  d_bytes)
                            if vec is not None:
                                cycles += vec.cpu_cycles
                                mem += vec.mem_bytes
                                io += vec.io_bytes
                                pcie += vec.pcie_bytes
                                qpi += vec.qpi_bytes
                                if charge_element is not None:
                                    charge_element[id(element)](
                                        vec.cpu_cycles)
                        counters[id(element)] = (element.packets_in,
                                                 element.bytes_in)
                    if obs is not None:
                        obs.charge_bus(mem, io, pcie, qpi)
                        inc_busy_cycles(cycles)
                        inc_busy_polls()
                else:
                    state["empty_polls"] += 1
                    cycles = empty_poll_cycles
                    if obs is not None:
                        if charge_empty is not None:
                            charge_empty(cycles)
                        inc_empty_cycles(cycles)
                        inc_empty_polls()
                charge(cycles)
                if obs is not None:
                    if traced_drained:
                        t_done = sim.now + cycles / clock_hz
                        for trace in traced_drained:
                            trace.hop("service_done", t_done)
                    for device in replica.polls:
                        record_occupancy[id(device)](sim.now,
                                                     len(device.queue))
                        dropped = device.queue.dropped
                        if dropped > seen_drops[id(device)]:
                            record_drops[id(device)](
                                sim.now, dropped - seen_drops[id(device)])
                            seen_drops[id(device)] = dropped
                schedule_timer(cycles / clock_hz, poll)
            return poll

        sim.schedule(0.0, arrival)
        for replica in self.replicas:
            sim.schedule(0.0, make_poll_loop(replica))
        sim.run(until=duration_sec)

        dropped = sum(queue.dropped for queue in rx_queues) - drops_before
        backlog = sum(len(queue) for queue in rx_queues)
        for replica in self.replicas:
            backlog += sum(len(queue) for queue, _ in replica.pulls)
        return TimedRunReport(
            offered_packets=offered,
            forwarded_packets=state["forwarded"],
            dropped_packets=dropped,
            duration_sec=duration_sec,
            packet_bytes=self.packet_bytes,
            empty_polls=state["empty_polls"],
            total_polls=state["polls"],
            residual_backlog=backlog,
        )

    def find_loss_free_rate(self, low_bps: float = 0.5e9,
                            high_bps: float = 30e9,
                            tolerance_bps: float = 0.25e9,
                            duration_sec: float = 2e-3) -> float:
        """Binary-search the maximum loss-free rate (the Sec. 5.1 metric)."""
        if low_bps >= high_bps:
            raise ConfigurationError("need low < high")
        max_backlog = 2 * self.kp * len(self._rx_queues())
        while high_bps - low_bps > tolerance_bps:
            mid = (low_bps + high_bps) / 2
            report = self.run(mid, duration_sec=duration_sec)
            if report.sustainable(max_backlog):
                low_bps = mid
            else:
                high_bps = mid
        return low_bps
