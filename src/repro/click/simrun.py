"""Timed single-server forwarding runs.

Drives a server's cores in *simulated time*: each core repeatedly polls
its RX queue, pays the calibrated per-packet (or empty-poll) cycle cost,
and advances its own clock accordingly.  Offered load arrives as timed
events.  This closes the loop between the analytic model and the DES: at
offered loads below the model's saturation rate the run is loss-free; at
higher loads the achieved rate plateaus at the model's prediction and RX
rings overflow -- exactly how the paper measures the "maximum loss-free
forwarding rate" (Sec. 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import calibration as cal
from ..errors import ConfigurationError
from ..hw.server import Server
from ..simnet.engine import Simulator
from ..workloads.synthetic import FixedSizeWorkload

#: Cycles burned by a poll that finds no packets (Sec. 5.3's ce).
EMPTY_POLL_CYCLES = 120.0


@dataclass
class TimedRunReport:
    """Outcome of a timed forwarding run."""

    offered_packets: int
    forwarded_packets: int
    dropped_packets: int
    duration_sec: float
    packet_bytes: int
    empty_polls: int
    total_polls: int
    residual_backlog: int = 0

    @property
    def achieved_bps(self) -> float:
        return (self.forwarded_packets * self.packet_bytes * 8
                / self.duration_sec)

    @property
    def achieved_gbps(self) -> float:
        return self.achieved_bps / 1e9

    @property
    def loss_free(self) -> bool:
        return self.dropped_packets == 0

    @property
    def loss_fraction(self) -> float:
        if not self.offered_packets:
            return 0.0
        return self.dropped_packets / self.offered_packets

    def sustainable(self, max_backlog_packets: int) -> bool:
        """Loss-free *and* not merely buffering the excess in the rings."""
        return (self.dropped_packets == 0
                and self.residual_backlog <= max_backlog_packets)


class TimedForwardingRun:
    """Simulate minimal forwarding on one server at an offered load.

    One core per RX queue (the multi-queue discipline); arrivals are
    spread round-robin across queues, matching the paper's uniform
    any-to-any pattern.  ``kp``/``kn`` control batching as in Table 1.
    """

    def __init__(self, server: Server, packet_bytes: int = 64,
                 kp: int = cal.DEFAULT_KP, kn: int = cal.DEFAULT_KN,
                 app: cal.AppCost = cal.MINIMAL_FORWARDING):
        if not server.ports:
            raise ConfigurationError("server has no ports attached")
        if kp < 1 or not 1 <= kn <= cal.MAX_NIC_BATCH:
            raise ConfigurationError("bad batching parameters")
        self.server = server
        self.packet_bytes = packet_bytes
        self.kp = kp
        self.kn = kn
        self.app = app
        self.cycles_per_packet = (app.cpu_cycles(packet_bytes)
                                  + cal.bookkeeping_cycles(kp, kn))
        # Pair each core with one RX queue, spreading cores over ports.
        self._assignments = []
        cores = server.cores
        queues = [queue for port in server.ports for queue in port.rx_queues]
        if len(queues) < len(cores):
            raise ConfigurationError(
                "need >= 1 RX queue per core (%d cores, %d queues)"
                % (len(cores), len(queues)))
        for index, core in enumerate(cores):
            self._assignments.append((core, queues[index]))

    def run(self, offered_bps: float, duration_sec: float = 5e-3,
            seed: int = 0) -> TimedRunReport:
        """Offer fixed-size packets at ``offered_bps`` for ``duration_sec``."""
        if offered_bps <= 0 or duration_sec <= 0:
            raise ConfigurationError("offered load and duration must be > 0")
        sim = Simulator()
        workload = FixedSizeWorkload(packet_bytes=self.packet_bytes,
                                     num_flows=len(self._assignments) * 8,
                                     seed=seed)
        interarrival = self.packet_bytes * 8 / offered_bps
        offered = int(duration_sec / interarrival)
        packets = workload.packets(offered)

        state = {"forwarded": 0, "empty_polls": 0, "polls": 0}
        queues = [queue for _, queue in self._assignments]
        drops_before = sum(queue.dropped for queue in queues)
        # Clear any residue from a previous run on the same server.
        for queue in queues:
            while queue.pop() is not None:
                pass

        def arrival(index=[0]):
            try:
                packet = next(packets)
            except StopIteration:
                return
            queue = queues[index[0] % len(queues)]
            index[0] += 1
            queue.push(packet)
            sim.schedule(interarrival, arrival)

        clock_hz = self.server.spec.clock_hz

        def make_poll_loop(core, queue):
            def poll():
                if sim.now >= duration_sec:
                    return
                state["polls"] += 1
                batch = queue.pop_batch(self.kp)
                if batch:
                    cycles = len(batch) * self.cycles_per_packet
                    state["forwarded"] += len(batch)
                else:
                    state["empty_polls"] += 1
                    cycles = EMPTY_POLL_CYCLES
                core.charge(cycles)
                sim.schedule(cycles / clock_hz, poll)
            return poll

        sim.schedule(0.0, arrival)
        for core, queue in self._assignments:
            sim.schedule(0.0, make_poll_loop(core, queue))
        sim.run(until=duration_sec)

        dropped = sum(queue.dropped for queue in queues) - drops_before
        return TimedRunReport(
            offered_packets=offered,
            forwarded_packets=state["forwarded"],
            dropped_packets=dropped,
            duration_sec=duration_sec,
            packet_bytes=self.packet_bytes,
            empty_polls=state["empty_polls"],
            total_polls=state["polls"],
            residual_backlog=sum(len(queue) for queue in queues),
        )

    def find_loss_free_rate(self, low_bps: float = 0.5e9,
                            high_bps: float = 30e9,
                            tolerance_bps: float = 0.25e9,
                            duration_sec: float = 2e-3) -> float:
        """Binary-search the maximum loss-free rate (the Sec. 5.1 metric)."""
        if low_bps >= high_bps:
            raise ConfigurationError("need low < high")
        # A sustainable run may leave up to ~2 poll batches per queue.
        max_backlog = 2 * self.kp * len(self._assignments)
        while high_bps - low_bps > tolerance_bps:
            mid = (low_bps + high_bps) / 2
            report = self.run(mid, duration_sec=duration_sec)
            if report.sustainable(max_backlog):
                low_bps = mid
            else:
                high_bps = mid
        return low_bps
