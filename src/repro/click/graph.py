"""Router configuration graph: wiring validation and statistics."""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..errors import ConfigurationError
from .element import Element


class RouterGraph:
    """A named collection of connected elements.

    Mirrors a Click configuration file: elements are declared, wired, and
    validated (no dangling mandatory outputs, no duplicate names) before
    the router runs.
    """

    def __init__(self):
        self._elements: Dict[str, Element] = {}

    def add(self, element: Element) -> Element:
        """Register an element; names must be unique."""
        if element.name in self._elements:
            raise ConfigurationError("duplicate element name %r" % element.name)
        self._elements[element.name] = element
        return element

    def add_all(self, elements: Iterable[Element]) -> None:
        for element in elements:
            self.add(element)

    def __getitem__(self, name: str) -> Element:
        if name not in self._elements:
            raise ConfigurationError("no element named %r" % name)
        return self._elements[name]

    def __contains__(self, name: str) -> bool:
        return name in self._elements

    def __len__(self) -> int:
        return len(self._elements)

    def elements(self) -> List[Element]:
        return list(self._elements.values())

    def validate(self) -> None:
        """Check that every mandatory output is connected.

        Elements may declare a set of ``optional_outputs`` (e.g.
        DecIPTTL's time-exceeded port) that are allowed to dangle.
        """
        problems = []
        for element in self._elements.values():
            optional = getattr(element, "optional_outputs", set())
            for index in range(element.n_outputs):
                if index in optional:
                    continue
                if element.output(index).peer is None:
                    problems.append("%s output %d is dangling"
                                    % (element.name, index))
        if problems:
            raise ConfigurationError("; ".join(problems))

    def stats(self) -> Dict[str, dict]:
        """Per-element packet counters."""
        return {
            name: {
                "in": el.packets_in,
                "out": el.packets_out,
                "dropped": el.packets_dropped,
            }
            for name, el in self._elements.items()
        }
