"""The IPFragmenter element: egress-MTU enforcement.

Packets larger than the egress MTU are fragmented (RFC 791); DF-marked
oversized packets become ICMP Fragmentation Needed errors on output 1
(path-MTU discovery's signal).
"""

from __future__ import annotations

from ...errors import ConfigurationError, PacketError
from ...net.addresses import IPv4Address
from ...net.fragment import FLAG_DF, fragment_packet
from ...net.icmp import fragmentation_needed
from ...net.packet import Packet
from ..element import Element


class IPFragmenter(Element):
    """Fragment oversized packets; DF violations exit output 1 as ICMP."""

    n_outputs = 2
    optional_outputs = {1}

    def __init__(self, mtu: int, router_address: IPv4Address = None,
                 name: str = ""):
        if mtu < 68:
            raise ConfigurationError("IPv4 requires MTU >= 68")
        super().__init__(name)
        self.mtu = mtu
        self.router_address = router_address or IPv4Address("192.88.99.1")
        self.fragmented_packets = 0
        self.fragments_out = 0
        self.df_rejections = 0

    def process(self, packet: Packet, port: int) -> None:
        if packet.ip is None:
            self.drop(packet)
            return
        if packet.ip.total_length <= self.mtu:
            self.push(packet, 0)
            return
        if packet.ip.flags & FLAG_DF:
            self.df_rejections += 1
            error = fragmentation_needed(packet, self.router_address)
            if self.output(1).peer is not None:
                self.push(error, 1)
            else:
                self.drop(packet)
            return
        try:
            fragments = fragment_packet(packet, self.mtu)
        except PacketError:
            self.drop(packet)
            return
        self.fragmented_packets += 1
        self.fragments_out += len(fragments)
        for fragment in fragments:
            self.push(fragment, 0)
