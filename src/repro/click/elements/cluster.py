"""The two RouteBricks Click elements (Sec. 8).

"Beyond our 10G NIC driver, the RB4 implementation required us to write
only two new Click elements" -- the cluster's data plane is ordinary Click
plus these:

* :class:`VLBIngress` -- runs at a node's external port: looks up the
  output node (routing-table port = cluster node id), encodes it into the
  destination MAC (Sec. 6.1), and picks the first hop with adaptive
  Direct VLB + flowlet pinning.  Output ``i`` leads toward cluster node
  ``i``; output ``self_node`` is the local egress path.
* :class:`VLBTransit` -- runs at internal ports: reads the output node
  from the receive queue's MAC (no IP processing) and forwards toward it,
  or delivers locally.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from ... import calibration as cal
from ...core.flowlet import FlowletTable
from ...costs import DEFAULT_COST_MODEL, ResourceVector
from ...core.mac_encoding import decode_output_node, encode_output_node
from ...errors import ConfigurationError
from ...net.packet import Packet
from ...routing.table import RoutingTable
from ..element import Element


class VLBIngress(Element):
    """External-port ingress: route, encode, and load-balance."""

    def __init__(self, table: RoutingTable, self_node: int, num_nodes: int,
                 link_available: Optional[Callable[[int], bool]] = None,
                 use_flowlets: bool = True, seed: int = 0, name: str = ""):
        if num_nodes < 2:
            raise ConfigurationError("cluster needs >= 2 nodes")
        if not 0 <= self_node < num_nodes:
            raise ConfigurationError("self_node out of range")
        self.n_outputs = num_nodes + 1  # one per node + routing-miss port
        super().__init__(name or "VLBIngress(n%d)" % self_node)
        self.table = table
        self.self_node = self_node
        self.num_nodes = num_nodes
        self.link_available = link_available or (lambda node: True)
        self.flowlets = FlowletTable() if use_flowlets else None
        self.rng = random.Random(seed)
        self.now = 0.0  # advanced by the caller (simulation clock)
        self.routed = 0
        self.misses = 0
        # Routing lookup + header work + reordering-avoidance tracking.
        base, per_byte = DEFAULT_COST_MODEL.increment_terms("routing")
        if use_flowlets:
            base = base + ResourceVector(
                cpu_cycles=cal.REORDER_AVOIDANCE_CYCLES)
        self.set_cost_terms(base, per_byte)

    def _fresh_path(self, egress: int) -> int:
        if self.link_available(egress):
            return egress
        candidates = [i for i in range(self.num_nodes)
                      if i not in (self.self_node, egress)
                      and self.link_available(i)]
        if not candidates:
            return egress
        return candidates[self.rng.randrange(len(candidates))]

    def process(self, packet: Packet, port: int) -> None:
        route = self.table.lookup(packet.ip.dst) if packet.ip else None
        if route is None or route.port >= self.num_nodes:
            self.misses += 1
            self.push(packet, self.num_nodes)
            return
        egress = route.port
        encode_output_node(packet, egress, max_nodes=self.num_nodes)
        self.routed += 1
        if egress == self.self_node:
            self.push(packet, self.self_node)
            return
        if self.flowlets is not None:
            first_hop = self.flowlets.assign(
                (packet.five_tuple(), egress), self.now,
                path_available=lambda p: p != self.self_node
                and self.link_available(p),
                fresh_path=lambda: self._fresh_path(egress))
        else:
            first_hop = self._fresh_path(egress)
        self.push(packet, first_hop)

    def output_probabilities(self) -> List[float]:
        """Direct VLB spreads first hops uniformly over the nodes; the
        routing-miss port carries no load in the analytic model."""
        return [1.0 / self.num_nodes] * self.num_nodes + [0.0]


class VLBTransit(Element):
    """Internal-port forwarding: steer by the MAC-encoded output node."""

    def __init__(self, self_node: int, num_nodes: int, name: str = ""):
        if num_nodes < 2:
            raise ConfigurationError("cluster needs >= 2 nodes")
        if not 0 <= self_node < num_nodes:
            raise ConfigurationError("self_node out of range")
        self.n_outputs = num_nodes  # one per node; self = local egress
        super().__init__(name or "VLBTransit(n%d)" % self_node)
        self.self_node = self_node
        self.num_nodes = num_nodes
        self.delivered = 0
        self.forwarded = 0

    def process(self, packet: Packet, port: int) -> None:
        output = decode_output_node(packet)
        if output >= self.num_nodes:
            self.drop(packet)
            return
        if output == self.self_node:
            self.delivered += 1
        else:
            self.forwarded += 1
        self.push(packet, output)

    # Queue-to-queue move only: no header processing (Sec. 6.1), so the
    # inherited zero cost terms are correct.

    def output_probabilities(self) -> List[float]:
        """MAC-steered output nodes are uniform under VLB."""
        return [1.0 / self.num_nodes] * self.num_nodes
