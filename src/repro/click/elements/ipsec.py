"""The IPsec application element: ESP-encrypt every packet (Sec. 5.1)."""

from __future__ import annotations

from ...costs import DEFAULT_COST_MODEL
from ...crypto.esp import EspContext, esp_encapsulate
from ...errors import CryptoError
from ...net.packet import Packet
from ..element import Element


class IPsecESPEncap(Element):
    """AES-128 ESP tunnel encapsulation.

    ``functional`` selects real encryption of the packet bytes (slow,
    exercised in tests and examples); otherwise only the size/annotation
    effects are applied and the cost model charges the calibrated
    cycles/byte -- what the throughput experiments use.
    """

    def __init__(self, context: EspContext, functional: bool = False,
                 name: str = ""):
        super().__init__(name)
        self.context = context
        self.functional = functional
        self.encrypted = 0
        self.failed = 0
        # AES cost: the ipsec increment over minimal forwarding --
        # calibrated cycles/byte plus the fixed ESP overhead.
        self.set_cost_terms(*DEFAULT_COST_MODEL.increment_terms("ipsec"))

    def process(self, packet: Packet, port: int) -> None:
        if packet.ip is None:
            self.failed += 1
            self.drop(packet)
            return
        if self.functional:
            try:
                outer = esp_encapsulate(self.context, packet)
            except CryptoError:
                self.failed += 1
                self.drop(packet)
                return
        else:
            outer = packet
            # ESP framing grows the packet: 20 B outer IP + 8 B ESP header
            # + 16 B IV + padding to the AES block.
            grown = packet.length + 44
            outer.length = grown + (-grown % 16)
            outer.annotations["esp_seq"] = self.context.next_seq()
        self.encrypted += 1
        self.push(outer)
