"""ESP decapsulation element: the receiving side of the VPN gateway."""

from __future__ import annotations

from ...crypto.esp import EspContext, esp_decapsulate
from ...errors import CryptoError
from ...net.headers import PROTO_ESP
from ...net.packet import Packet
from ..element import Element


class IPsecESPDecap(Element):
    """Decrypt ESP packets; non-ESP and failed packets go to output 1.

    Enforces a simple anti-replay window: sequence numbers at or below the
    highest seen minus ``replay_window`` are rejected (RFC 4303's check,
    without the bitmap -- adequate for the simulation's in-order SAs).
    """

    n_outputs = 2
    optional_outputs = {1}

    def __init__(self, context: EspContext, replay_window: int = 64,
                 name: str = ""):
        super().__init__(name)
        self.context = context
        self.replay_window = replay_window
        self.decrypted = 0
        self.failed = 0
        self.replayed = 0
        self._highest_seq = 0

    def _fail(self, packet: Packet) -> None:
        self.failed += 1
        if self.output(1).peer is not None:
            self.push(packet, 1)
        else:
            self.drop(packet)

    def process(self, packet: Packet, port: int) -> None:
        if packet.ip is None or packet.ip.proto != PROTO_ESP:
            self._fail(packet)
            return
        try:
            inner = esp_decapsulate(self.context, packet)
        except CryptoError:
            self._fail(packet)
            return
        seq = inner.annotations.get("esp_seq", 0)
        if seq + self.replay_window <= self._highest_seq:
            self.replayed += 1
            self._fail(packet)
            return
        self._highest_seq = max(self._highest_seq, seq)
        self.decrypted += 1
        self.push(inner, 0)
