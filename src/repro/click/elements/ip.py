"""IP-path elements: header check, TTL decrement, LPM lookup, re-encap.

Together these form the paper's "IP routing" application (Sec. 5.1): full
header validation, checksum update, and a longest-prefix-match lookup in a
256 K-entry table via the D-lookup structure.
"""

from __future__ import annotations

from typing import List

from ...costs import DEFAULT_COST_MODEL
from ...errors import ConfigurationError
from ...net.addresses import MACAddress
from ...net.checksum import ttl_decrement_checksum
from ...net.headers import ETHERTYPE_IPV4
from ...net.packet import Packet
from ...routing.table import RoutingTable
from ..element import Element


class CheckIPHeader(Element):
    """Validate the IP header; bad packets are dropped (and counted)."""

    def __init__(self, name: str = ""):
        super().__init__(name)
        self.invalid = 0

    def process(self, packet: Packet, port: int) -> None:
        if packet.ip is None or packet.eth.ethertype != ETHERTYPE_IPV4:
            self.invalid += 1
            self.drop(packet)
            return
        if packet.ip.ttl <= 0 or packet.ip.total_length < 20:
            self.invalid += 1
            self.drop(packet)
            return
        self.push(packet)


class DecIPTTL(Element):
    """Decrement TTL with an incremental checksum update (RFC 1624).

    Packets whose TTL would reach zero go to output 1 when connected
    (for ICMP time-exceeded handling), else are dropped.
    """

    n_outputs = 2
    #: The time-exceeded port may legitimately dangle.
    optional_outputs = {1}

    def __init__(self, name: str = ""):
        super().__init__(name)
        self.expired = 0

    def process(self, packet: Packet, port: int) -> None:
        ip = packet.ip
        if ip is None:
            self.drop(packet)
            return
        if ip.ttl <= 1:
            self.expired += 1
            if self.output(1).peer is not None:
                self.push(packet, 1)
            else:
                self.drop(packet)
            return
        ip.checksum = ttl_decrement_checksum(ip.checksum, ip.ttl, ip.proto)
        ip.ttl -= 1
        self.push(packet, 0)


class LookupIPRoute(Element):
    """Longest-prefix-match and output-port selection.

    One output per router port; packets with no matching route go to the
    extra last output (typically Discard), mirroring Click's
    ``LookupIPRoute`` failure port.
    """

    def __init__(self, table: RoutingTable, n_ports: int, name: str = ""):
        if n_ports < 1:
            raise ConfigurationError("router needs >= 1 port")
        self.n_outputs = n_ports + 1
        super().__init__(name)
        self.table = table
        self.n_ports = n_ports
        self.misses = 0
        # The routing increment over minimal forwarding (lookup + header
        # work), from the calibrated application costs.
        self.set_cost_terms(*DEFAULT_COST_MODEL.increment_terms("routing"))

    def process(self, packet: Packet, port: int) -> None:
        route = self.table.lookup(packet.ip.dst) if packet.ip else None
        if route is None or route.port >= self.n_ports:
            self.misses += 1
            self.push(packet, self.n_ports)
            return
        packet.annotations["next_hop"] = route.next_hop
        packet.annotations["next_hop_mac"] = route.next_hop_mac
        self.push(packet, route.port)

    def output_probabilities(self) -> List[float]:
        """Routed traffic spreads uniformly over the port outputs; the
        failure port carries no load in the analytic model."""
        return [1.0 / self.n_ports] * self.n_ports + [0.0]


class EtherEncap(Element):
    """Rewrite the Ethernet header for the chosen next hop."""

    def __init__(self, src_mac: MACAddress, name: str = ""):
        super().__init__(name)
        self.src_mac = src_mac

    def process(self, packet: Packet, port: int) -> None:
        next_hop_mac = packet.annotations.get("next_hop_mac")
        if next_hop_mac is not None:
            packet.eth.dst = next_hop_mac
        packet.eth.src = self.src_mac
        packet.eth.ethertype = ETHERTYPE_IPV4
        self.push(packet)
