"""IP-path elements: header check, TTL decrement, LPM lookup, re-encap.

Together these form the paper's "IP routing" application (Sec. 5.1): full
header validation, checksum update, and a longest-prefix-match lookup in a
256 K-entry table via the D-lookup structure.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ...costs import DEFAULT_COST_MODEL
from ...errors import ConfigurationError
from ...net.addresses import MACAddress
from ...net.batch import PacketBatch
from ...net.checksum import ttl_decrement_checksum, ttl_decrement_checksum_array
from ...net.headers import ETHERTYPE_IPV4
from ...net.packet import Packet
from ...routing.table import RoutingTable
from ..element import Element


class CheckIPHeader(Element):
    """Validate the IP header; bad packets are dropped (and counted)."""

    def __init__(self, name: str = ""):
        super().__init__(name)
        self.invalid = 0

    def process(self, packet: Packet, port: int) -> None:
        if packet.ip is None or packet.eth.ethertype != ETHERTYPE_IPV4:
            self.invalid += 1
            self.drop(packet, "invalid_header")
            return
        if packet.ip.ttl <= 0 or packet.ip.total_length < 20:
            self.invalid += 1
            self.drop(packet, "invalid_header")
            return
        self.push(packet)

    def process_batch(self, batch: PacketBatch, port: int) -> None:
        valid = (batch.has_ip & (batch.ethertype == ETHERTYPE_IPV4)
                 & (batch.ttl > 0) & (batch.total_length >= 20))
        if valid.all():
            self.push_batch(batch)
            return
        n_bad = len(batch) - int(valid.sum())
        self.invalid += n_bad
        self.drop_batch(batch.select(~valid), "invalid_header")
        good = batch.select(valid)
        if len(good):
            self.push_batch(good)


class DecIPTTL(Element):
    """Decrement TTL with an incremental checksum update (RFC 1624).

    Packets whose TTL would reach zero go to output 1 when connected
    (for ICMP time-exceeded handling), else are dropped.
    """

    n_outputs = 2
    #: The time-exceeded port may legitimately dangle.
    optional_outputs = {1}

    def __init__(self, name: str = ""):
        super().__init__(name)
        self.expired = 0

    def process(self, packet: Packet, port: int) -> None:
        ip = packet.ip
        if ip is None:
            self.drop(packet, "no_ip")
            return
        if ip.ttl <= 1:
            self.expired += 1
            if self.output(1).peer is not None:
                self.push(packet, 1)
            else:
                self.drop(packet, "ttl_expired")
            return
        ip.checksum = ttl_decrement_checksum(ip.checksum, ip.ttl, ip.proto)
        ip.ttl -= 1
        self.push(packet, 0)

    def process_batch(self, batch: PacketBatch, port: int) -> None:
        if not batch.has_ip.all():
            self.drop_batch(batch.select(~batch.has_ip), "no_ip")
            batch = batch.select(batch.has_ip)
            if not len(batch):
                return
        expired = batch.ttl <= 1
        if expired.any():
            self.expired += int(expired.sum())
            doomed = batch.select(expired)
            if self.output(1).peer is not None:
                self.push_batch(doomed, 1)
            else:
                self.drop_batch(doomed, "ttl_expired")
            batch = batch.select(~expired)
            if not len(batch):
                return
        # Checksum first (it needs the pre-decrement TTL), then TTL --
        # the vectorized RFC 1624 form is integer-exact vs the scalar.
        batch.checksum = ttl_decrement_checksum_array(
            batch.checksum, batch.ttl, batch.proto)
        batch.ttl = batch.ttl - np.int16(1)
        batch.mark_ip_dirty()
        self.push_batch(batch, 0)


class LookupIPRoute(Element):
    """Longest-prefix-match and output-port selection.

    One output per router port; packets with no matching route go to the
    extra last output (typically Discard), mirroring Click's
    ``LookupIPRoute`` failure port.
    """

    def __init__(self, table: RoutingTable, n_ports: int, name: str = ""):
        if n_ports < 1:
            raise ConfigurationError("router needs >= 1 port")
        self.n_outputs = n_ports + 1
        super().__init__(name)
        self.table = table
        self.n_ports = n_ports
        self.misses = 0
        # The routing increment over minimal forwarding (lookup + header
        # work), from the calibrated application costs.
        self.set_cost_terms(*DEFAULT_COST_MODEL.increment_terms("routing"))

    def process(self, packet: Packet, port: int) -> None:
        route = self.table.lookup(packet.ip.dst) if packet.ip else None
        if route is None or route.port >= self.n_ports:
            self.misses += 1
            self.push(packet, self.n_ports)
            return
        packet.annotations["next_hop"] = route.next_hop
        packet.annotations["next_hop_mac"] = route.next_hop_mac
        self.push(packet, route.port)

    def process_batch(self, batch: PacketBatch, port: int) -> None:
        ports, next_hops, macs = self.table.lookup_batch(batch.dst)
        if not batch.has_ip.all():
            # Rows without an IP header never reach the table in the
            # scalar path; force them onto the failure port.
            ports = np.where(batch.has_ip, ports, -1)
        miss = (ports < 0) | (ports >= self.n_ports)
        if miss.any():
            self.misses += int(miss.sum())
            self.push_batch(batch.select(miss), self.n_ports)
            hit_rows = ~miss
            if not hit_rows.any():
                return
            hit = batch.select(hit_rows)
            ports = ports[hit_rows]
            next_hops = next_hops[hit_rows]
            macs = macs[hit_rows]
        else:
            hit = batch
        hop_col, mac_col = hit.route_columns()
        hop_col[:] = next_hops
        mac_col[:] = macs
        out_ports = np.unique(ports)
        if len(out_ports) == 1:
            self.push_batch(hit, int(out_ports[0]))
            return
        for out in out_ports.tolist():
            self.push_batch(hit.select(ports == out), int(out))

    def output_probabilities(self) -> List[float]:
        """Routed traffic spreads uniformly over the port outputs; the
        failure port carries no load in the analytic model."""
        return [1.0 / self.n_ports] * self.n_ports + [0.0]


class EtherEncap(Element):
    """Rewrite the Ethernet header for the chosen next hop."""

    def __init__(self, src_mac: MACAddress, name: str = ""):
        super().__init__(name)
        self.src_mac = src_mac

    def process(self, packet: Packet, port: int) -> None:
        next_hop_mac = packet.annotations.get("next_hop_mac")
        if next_hop_mac is not None:
            packet.eth.dst = next_hop_mac
        packet.eth.src = self.src_mac
        packet.eth.ethertype = ETHERTYPE_IPV4
        self.push(packet)

    def process_batch(self, batch: PacketBatch, port: int) -> None:
        if batch.next_hop_mac is None:
            # No route columns on this batch: the next-hop MAC (if any)
            # lives in per-packet annotations, so only the scalar loop
            # can see it.
            super().process_batch(batch, port)
            return
        batch.eth_src = self.src_mac
        batch.eth_ethertype = ETHERTYPE_IPV4
        batch.mark_eth_dirty()
        self.push_batch(batch)
