"""Load-spreading elements: round-robin and flow-hash switches."""

from __future__ import annotations

from typing import List

from ...errors import ConfigurationError
from ...net.flows import queue_for_flow
from ...net.packet import Packet
from ..element import Element


class RoundRobinSwitch(Element):
    """Spread packets across outputs round-robin (per-packet balancing).

    This is the classic-VLB spreading discipline; it reorders flows and is
    what the flowlet switcher (repro.core.flowlet) improves on.
    """

    def __init__(self, n: int, name: str = ""):
        if n < 1:
            raise ConfigurationError("switch needs >= 1 output")
        self.n_outputs = n
        super().__init__(name)
        self._next = 0

    def process(self, packet: Packet, port: int) -> None:
        self.push(packet, self._next)
        self._next = (self._next + 1) % self.n_outputs

    def output_probabilities(self) -> List[float]:
        return [1.0 / self.n_outputs] * self.n_outputs


class FlowHashSwitch(Element):
    """Pin each flow to one output by hashing its five-tuple.

    Keeps flows in order (same path for every packet of a flow) at the
    cost of balancing granularity.
    """

    def __init__(self, n: int, name: str = ""):
        if n < 1:
            raise ConfigurationError("switch needs >= 1 output")
        self.n_outputs = n
        super().__init__(name)

    def process(self, packet: Packet, port: int) -> None:
        if packet.ip is None:
            self.push(packet, packet.packet_id % self.n_outputs)
            return
        self.push(packet, queue_for_flow(packet.five_tuple(), self.n_outputs))

    def output_probabilities(self) -> List[float]:
        """Hashing spreads flows uniformly in expectation."""
        return [1.0 / self.n_outputs] * self.n_outputs
