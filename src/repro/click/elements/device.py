"""Device elements: the NIC-facing edge of the graph.

The RouteBricks Click extension binds polling and sending elements to a
particular NIC *queue* rather than a port (Sec. 4.2), which is what lets
the scheduler enforce one-core-per-queue.  ``PollDevice`` implements
poll-driven batching (up to ``kp`` packets per poll); ``ToDevice`` relays
descriptors to the NIC in batches of ``kn`` (NIC-driven batching lives in
the driver, modeled by the transmit path charging its amortized cost).

Their cost terms come from :meth:`repro.costs.CostModel.rx_terms` and
:meth:`~repro.costs.CostModel.tx_terms`: the RX element carries the
amortized poll bookkeeping plus the packet-movement baseline (CPU and
half of each bus term), the TX element the descriptor-relay share and
the other bus half -- so an element-wise pipeline sum reproduces the
analytic application totals.
"""

from __future__ import annotations

from typing import List

from ... import calibration as cal
from ...costs import DEFAULT_COST_MODEL, CostModel
from ...errors import ConfigurationError
from ...hw.nic import NicPort, NicQueue
from ...net.batch import PacketBatch
from ...net.packet import Packet
from ...obs.trace import TRACE_ANNOTATION
from ..element import Element


class PollDevice(Element):
    """Poll packets from one RX queue of one port.

    A schedulable task: the owning thread calls :meth:`run_task`, which
    polls up to ``kp`` packets and pushes each through the graph.  Returns
    the number of packets moved so the scheduler can track empty polls
    (needed to factor idle polling out of CPU-load measurements, Sec. 5.3).
    """

    def __init__(self, port: NicPort, queue_id: int = 0,
                 kp: int = cal.DEFAULT_KP, name: str = "",
                 cost_model: CostModel = DEFAULT_COST_MODEL):
        if not 0 <= queue_id < port.num_queues:
            raise ConfigurationError(
                "port %d has no RX queue %d" % (port.port_id, queue_id))
        if kp < 1:
            raise ConfigurationError("kp must be >= 1")
        super().__init__(name or "PollDevice(p%d,q%d)" % (port.port_id, queue_id))
        self.port = port
        self.queue: NicQueue = port.rx_queues[queue_id]
        self.kp = kp
        self.empty_polls = 0
        self.total_polls = 0
        self.set_cost_terms(*cost_model.rx_terms(kp))

    def run_task(self) -> int:
        """One poll: move up to ``kp`` packets into the graph."""
        self.total_polls += 1
        batch = self.queue.pop_batch(self.kp)
        if not batch:
            self.empty_polls += 1
            return 0
        for packet in batch:
            self.packets_in += 1
            self.bytes_in += packet.length
            trace = packet.annotations.get(TRACE_ANNOTATION)
            if trace is not None:
                trace.hop(self.name)  # run_task bypasses receive()
            self.push(packet)
        return len(batch)

    def run_task_batch(self) -> int:
        """One poll, batch-native: drain the burst into one
        :class:`PacketBatch` and push it through the graph as columns.

        Per-element counters come out identical to :meth:`run_task`
        (``receive_batch``/``push_batch`` count whole bursts with
        integer sums), so the two modes are interchangeable everywhere
        except wall-clock time.
        """
        self.total_polls += 1
        packets = self.queue.pop_batch(self.kp)
        if not packets:
            self.empty_polls += 1
            return 0
        batch = PacketBatch.from_packets(packets, trace_key=TRACE_ANNOTATION)
        n = len(packets)
        self.packets_in += n
        self.bytes_in += batch.total_bytes
        if batch.traced:
            name = self.name
            for _, trace in batch.traced:
                trace.hop(name)  # run_task_batch bypasses receive()
        self.push_batch(batch)
        return n

    def process(self, packet: Packet, port: int) -> None:
        raise ConfigurationError("PollDevice has no inputs")


class ToDevice(Element):
    """Send packets to one TX queue of one port."""

    n_outputs = 0

    def __init__(self, port: NicPort, queue_id: int = 0,
                 kn: int = cal.DEFAULT_KN, name: str = "",
                 cost_model: CostModel = DEFAULT_COST_MODEL):
        if not 0 <= queue_id < port.num_queues:
            raise ConfigurationError(
                "port %d has no TX queue %d" % (port.port_id, queue_id))
        if not 1 <= kn <= cal.MAX_NIC_BATCH:
            raise ConfigurationError("kn must be in [1, %d]" % cal.MAX_NIC_BATCH)
        super().__init__(name or "ToDevice(p%d,q%d)" % (port.port_id, queue_id))
        self.port = port
        self.queue_id = queue_id
        self.queue: NicQueue = port.tx_queues[queue_id]
        self.kn = kn
        self.set_cost_terms(*cost_model.tx_terms(kn))

    def process(self, packet: Packet, port: int) -> None:
        if not self.port.transmit(packet, self.queue_id):
            self.drop(packet, "tx_ring_full")

    def process_batch(self, batch: PacketBatch, port: int) -> None:
        # The wire is the scalar boundary: flush column state onto the
        # packets, then relay them to the TX ring one by one (the ring
        # may fill partway through the burst).
        transmit = self.port.transmit
        queue_id = self.queue_id
        for packet in batch.sync():
            if not transmit(packet, queue_id):
                self.drop(packet, "tx_ring_full")

    def drain(self) -> List[Packet]:
        """Pop everything this element has queued for the wire."""
        out = []
        while True:
            packet = self.queue.pop()
            if packet is None:
                break
            out.append(packet)
        return out
