"""Active queue management: RED and drop-from-front queues.

Production router ports do not run pure drop-tail; Random Early Detection
keeps average occupancy low and desynchronizes TCP flows.  These elements
extend :class:`PacketQueue` with the classic disciplines (Floyd & Jacobson
1993 for RED), giving the dataplane the queue behaviors a programmable
router is expected to offer.
"""

from __future__ import annotations

import random

from ...errors import ConfigurationError
from ...net.packet import Packet
from .standard import PacketQueue


class RedQueue(PacketQueue):
    """Random Early Detection.

    Maintains an EWMA of queue occupancy; arrivals are dropped with
    probability rising linearly from 0 at ``min_thresh`` to ``max_p`` at
    ``max_thresh``, and always beyond ``max_thresh``.  The gentle variant
    (probability rising to 1.0 at 2*max_thresh) is selectable.
    """

    def __init__(self, capacity: int = 1000, min_thresh: int = None,
                 max_thresh: int = None, max_p: float = 0.1,
                 weight: float = 0.002, gentle: bool = True,
                 seed: int = 0, name: str = ""):
        super().__init__(capacity=capacity, name=name)
        self.min_thresh = min_thresh if min_thresh is not None \
            else capacity // 4
        self.max_thresh = max_thresh if max_thresh is not None \
            else capacity // 2
        if not 0 < self.min_thresh < self.max_thresh <= capacity:
            raise ConfigurationError(
                "need 0 < min_thresh < max_thresh <= capacity")
        if not 0 < max_p <= 1:
            raise ConfigurationError("max_p must be in (0, 1]")
        if not 0 < weight <= 1:
            raise ConfigurationError("weight must be in (0, 1]")
        self.max_p = max_p
        self.weight = weight
        self.gentle = gentle
        self.avg = 0.0
        self.early_drops = 0
        self.forced_drops = 0
        self._rng = random.Random(seed)

    def drop_probability(self) -> float:
        """Current early-drop probability from the averaged occupancy."""
        if self.avg < self.min_thresh:
            return 0.0
        if self.avg < self.max_thresh:
            span = self.max_thresh - self.min_thresh
            return self.max_p * (self.avg - self.min_thresh) / span
        if self.gentle and self.avg < 2 * self.max_thresh:
            extra = (self.avg - self.max_thresh) / self.max_thresh
            return self.max_p + (1.0 - self.max_p) * extra
        return 1.0

    def process(self, packet: Packet, port: int) -> None:
        self.avg = (1 - self.weight) * self.avg \
            + self.weight * len(self.fifo)
        probability = self.drop_probability()
        if probability >= 1.0 or (probability > 0
                                  and self._rng.random() < probability):
            self.early_drops += 1
            self.drop(packet)
            return
        if not self.fifo.offer(packet):
            self.forced_drops += 1
            self.drop(packet)


class DropFrontQueue(PacketQueue):
    """Drop-from-front: on overflow, evict the *oldest* packet.

    Keeps queue latency bounded under persistent overload (the newest
    packets, which TCP is actively probing with, survive).
    """

    def __init__(self, capacity: int = 1000, name: str = ""):
        super().__init__(capacity=capacity, name=name)
        self.front_drops = 0

    def process(self, packet: Packet, port: int) -> None:
        if self.fifo.is_full():
            evicted = self.fifo.poll()
            if evicted is not None:
                self.front_drops += 1
                self.drop(evicted)
        if not self.fifo.offer(packet):
            self.drop(packet)
