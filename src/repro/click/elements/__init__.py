"""Element library: standard, device, IP, IPsec, and load-balance elements."""
