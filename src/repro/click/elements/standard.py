"""Standard Click elements: queues, counters, classifiers, tees, discard."""

from __future__ import annotations

from typing import Callable, List, Optional

from ...errors import ConfigurationError
from ...net.batch import PacketBatch
from ...net.packet import Packet
from ...simnet.queues import FiniteQueue
from ..element import Element


class Discard(Element):
    """Swallow every packet (counting it)."""

    n_outputs = 0

    def process(self, packet: Packet, port: int) -> None:
        self.drop(packet, "discard")

    def process_batch(self, batch: PacketBatch, port: int) -> None:
        self.drop_batch(batch, "discard")


class CounterElement(Element):
    """Count packets and bytes, then forward unchanged."""

    def __init__(self, name: str = ""):
        super().__init__(name)
        self.count = 0
        self.byte_count = 0

    def process(self, packet: Packet, port: int) -> None:
        self.count += 1
        self.byte_count += packet.length
        self.push(packet)

    def process_batch(self, batch: PacketBatch, port: int) -> None:
        self.count += len(batch)
        self.byte_count += batch.total_bytes
        self.push_batch(batch)


class PacketQueue(Element):
    """A Click Queue: push in, explicit pull out.

    Downstream is driven by :meth:`pull` (called by a schedulable task),
    not by push propagation -- this is where pipelined configurations hand
    packets between cores.
    """

    def __init__(self, capacity: int = 1000, name: str = ""):
        super().__init__(name)
        self.fifo = FiniteQueue(capacity, name=self.name)

    def process(self, packet: Packet, port: int) -> None:
        if not self.fifo.offer(packet):
            self.drop(packet, "queue_full")

    def pull(self) -> Optional[Packet]:
        """Remove and return the oldest packet, or None."""
        return self.fifo.poll()

    def __len__(self) -> int:
        return len(self.fifo)


class Tee(Element):
    """Duplicate each packet to every output."""

    def __init__(self, n: int = 2, name: str = ""):
        if n < 1:
            raise ConfigurationError("Tee needs >= 1 output")
        self.n_outputs = n
        super().__init__(name)

    def process(self, packet: Packet, port: int) -> None:
        self.push(packet, 0)
        for i in range(1, self.n_outputs):
            self.push(packet.copy(), i)

    def output_probabilities(self) -> List[float]:
        """Every output sees every packet (duplication, not splitting)."""
        return [1.0] * self.n_outputs


class SetTTL(Element):
    """Overwrite the IP TTL (used when re-originating tunneled packets)."""

    def __init__(self, ttl: int, name: str = ""):
        if not 1 <= ttl <= 255:
            raise ConfigurationError("TTL must be in [1, 255]")
        super().__init__(name)
        self.ttl = ttl

    def process(self, packet: Packet, port: int) -> None:
        if packet.ip is None:
            self.drop(packet, "no_ip")
            return
        packet.ip.ttl = self.ttl
        packet.ip.pack()  # refresh the checksum
        self.push(packet)


class SourceFilter(Element):
    """Drop packets whose source falls in a prefix (ingress filtering).

    Matching packets go to output 1 when connected, else are dropped --
    the uRPF/martian-filter shape of real edge routers.
    """

    n_outputs = 2
    optional_outputs = {1}

    def __init__(self, prefix, name: str = ""):
        from ...net.addresses import Prefix
        super().__init__(name)
        self.prefix = Prefix.parse(prefix) if isinstance(prefix, str) \
            else prefix
        self.filtered = 0

    def process(self, packet: Packet, port: int) -> None:
        if packet.ip is not None and self.prefix.contains(packet.ip.src):
            self.filtered += 1
            if self.output(1).peer is not None:
                self.push(packet, 1)
            else:
                self.drop(packet, "filtered")
            return
        self.push(packet, 0)


class Paint(Element):
    """Stamp a color annotation on each packet (Click's Paint)."""

    def __init__(self, color: int, name: str = ""):
        super().__init__(name)
        self.color = color

    def process(self, packet: Packet, port: int) -> None:
        packet.annotations["paint"] = self.color
        self.push(packet)

    def process_batch(self, batch: PacketBatch, port: int) -> None:
        batch.paint_column()[:] = self.color
        self.push_batch(batch)


class CheckPaint(Element):
    """Packets painted ``color`` exit output 0; everything else output 1."""

    n_outputs = 2

    def __init__(self, color: int, name: str = ""):
        super().__init__(name)
        self.color = color

    def process(self, packet: Packet, port: int) -> None:
        if packet.annotations.get("paint") == self.color:
            self.push(packet, 0)
        else:
            self.push(packet, 1)

    def process_batch(self, batch: PacketBatch, port: int) -> None:
        if batch.paint is None:
            # No paint column: colors (if any) live in per-packet
            # annotations, so only the scalar loop can see them.
            super().process_batch(batch, port)
            return
        match = batch.paint == self.color
        if match.all():
            self.push_batch(batch, 0)
        elif not match.any():
            self.push_batch(batch, 1)
        else:
            self.push_batch(batch.select(match), 0)
            self.push_batch(batch.select(~match), 1)


class RandomSample(Element):
    """Forward each packet with probability ``p``; drop the rest.

    Deterministic for a seed -- used for sampled measurement paths (the
    monitoring-style workloads the paper's introduction motivates).
    """

    def __init__(self, p: float, seed: int = 0, name: str = ""):
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError("sample probability must be in [0, 1]")
        super().__init__(name)
        self.p = p
        import random as _random
        self._rng = _random.Random(seed)
        self.sampled = 0

    def process(self, packet: Packet, port: int) -> None:
        if self._rng.random() < self.p:
            self.sampled += 1
            self.push(packet)
        else:
            self.drop(packet, "not_sampled")

    def output_probabilities(self) -> List[float]:
        return [self.p]


class Meter(Element):
    """Split traffic by measured rate: at or below ``rate_pps`` -> output
    0, excess -> output 1 (Click's Meter, token-bucket form).

    The element clock is advanced by the caller via :attr:`now`.
    """

    n_outputs = 2

    def __init__(self, rate_pps: float, burst: int = 32, name: str = ""):
        if rate_pps <= 0 or burst < 1:
            raise ConfigurationError("bad meter parameters")
        super().__init__(name)
        self.rate_pps = rate_pps
        self.burst = burst
        self.now = 0.0
        self._tokens = float(burst)
        self._last = 0.0
        self.conforming = 0
        self.excess = 0

    def process(self, packet: Packet, port: int) -> None:
        elapsed = self.now - self._last
        if elapsed > 0:
            self._tokens = min(self.burst,
                               self._tokens + elapsed * self.rate_pps)
            self._last = self.now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.conforming += 1
            self.push(packet, 0)
        else:
            self.excess += 1
            self.push(packet, 1)


class Classifier(Element):
    """Route packets to the first output whose predicate matches.

    Packets matching no predicate go to the last output if ``catch_all``
    (the Click ``-`` pattern), else are dropped.
    """

    def __init__(self, predicates: List[Callable[[Packet], bool]],
                 catch_all: bool = True, name: str = ""):
        if not predicates:
            raise ConfigurationError("Classifier needs >= 1 predicate")
        self.n_outputs = len(predicates) + (1 if catch_all else 0)
        super().__init__(name)
        self.predicates = predicates
        self.catch_all = catch_all

    def process(self, packet: Packet, port: int) -> None:
        for index, predicate in enumerate(self.predicates):
            if predicate(packet):
                self.push(packet, index)
                return
        if self.catch_all:
            self.push(packet, self.n_outputs - 1)
        else:
            self.drop(packet, "no_match")

    def output_probabilities(self) -> List[float]:
        """Without traffic knowledge, assume a uniform match distribution."""
        return [1.0 / self.n_outputs] * self.n_outputs
