"""Stateful NF elements: NAT, conntrack firewall, policer, load balancer.

These wrap the :mod:`repro.stateful` NF logic in dataplane elements so
the same state machines that the dispatch benchmark drives also run
inside Click graphs.  Each element owns one :class:`~repro.stateful.
FlowTable` (the single-core view; the multi-core strategies live in
:mod:`repro.stateful.dispatch`) and charges the calibrated per-packet
state-access cost for its NF.

The batch paths keep the per-packet state updates -- flow state is
inherently sequential -- but classify the whole burst into one
downstream push plus one drop batch, so consecutive batch-native
elements still hand whole bursts to each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ...costs.model import DEFAULT_COST_MODEL
from ...errors import ConfigurationError
from ...net.packet import Packet
from ...stateful.nf import FORWARD, StatefulNF, make_nf
from ...stateful.state import FlowTable
from ...workloads.zipf_flows import PacketRecord
from ..element import Element

if TYPE_CHECKING:
    from ...net.batch import PacketBatch

#: Annotation key carrying NAT's allocated external port downstream.
NAT_PORT_ANNOTATION = "nat_ext_port"
#: Annotation key carrying the load balancer's sticky backend choice.
LB_BACKEND_ANNOTATION = "lb_backend"


def _flow_record(packet: Packet) -> PacketRecord:
    """Adapt a dataplane packet to the NF history-record interface."""
    return PacketRecord(seq=packet.packet_id, time=packet.arrival_time,
                        key=packet.five_tuple(), length=packet.length,
                        flow_slot=-1, flow_generation=0)


class StatefulElement(Element):
    """Shared plumbing: one NF instance over one flow table.

    Subclasses map the NF verdict/entry to dataplane behaviour in
    :meth:`apply`; non-IP packets bypass the NF and forward unchanged on
    output 0 (a stateful NF has no flow to bind them to).
    """

    def __init__(self, nf: StatefulNF, name: str = ""):
        super().__init__(name)
        self.nf = nf
        self.flow_table = FlowTable(name=self.name)
        self.set_cost_terms(DEFAULT_COST_MODEL.state_access_vector(nf.name))

    def _advance(self, packet: Packet):
        """Run the NF for one packet; returns ``(entry, verdict)``."""
        rec = _flow_record(packet)
        entry, verdict, _ = self.nf.process(self.flow_table.get(rec.key), rec)
        self.flow_table.put(rec.key, entry)
        return entry, verdict

    def apply(self, packet: Packet, entry: tuple, verdict: str) -> None:
        raise NotImplementedError

    def process(self, packet: Packet, port: int) -> None:
        if packet.ip is None:
            self.push(packet, 0)
            return
        entry, verdict = self._advance(packet)
        self.apply(packet, entry, verdict)


class NetworkAddressTranslator(StatefulElement):
    """Source NAT: allocate a deterministic external port per flow.

    The mapping rides in ``annotations[NAT_PORT_ANNOTATION]`` rather than
    a header rewrite -- L4 headers are shared between packet copies, so
    mutating them in place would corrupt siblings.
    """

    def __init__(self, pool_size: int = 60000, name: str = ""):
        super().__init__(make_nf("nat", pool_size=pool_size), name)

    def apply(self, packet: Packet, entry: tuple, verdict: str) -> None:
        packet.annotations[NAT_PORT_ANNOTATION] = entry[0]
        self.push(packet, 0)

    def process_batch(self, batch: "PacketBatch", port: int) -> None:
        # State updates stay per-packet (they are order-dependent), but
        # NAT never drops, so the burst forwards as one batch push.
        for packet in batch.sync():
            if packet.ip is not None:
                entry, _ = self._advance(packet)
                packet.annotations[NAT_PORT_ANNOTATION] = entry[0]
        self.push_batch(batch, 0)


class _FilteringStatefulElement(StatefulElement):
    """Stateful elements whose verdict partitions the burst: forwarded
    packets leave as one batch, refused packets as one drop batch."""

    #: Drop cause recorded for refused packets.
    drop_cause = "refused"

    def apply(self, packet: Packet, entry: tuple, verdict: str) -> None:
        if verdict == FORWARD:
            self.push(packet, 0)
        else:
            self.drop(packet, self.drop_cause)

    def process_batch(self, batch: "PacketBatch", port: int) -> None:
        forwarded: List[int] = []
        refused: List[int] = []
        for index, packet in enumerate(batch.sync()):
            if packet.ip is None:
                forwarded.append(index)
                continue
            _, verdict = self._advance(packet)
            (forwarded if verdict == FORWARD else refused).append(index)
        if not refused:
            self.push_batch(batch, 0)
            return
        if forwarded:
            self.push_batch(batch.select(forwarded), 0)
        self.drop_batch(batch.select(refused), self.drop_cause)


class ConnTrackFirewall(_FilteringStatefulElement):
    """Connection-tracking firewall: per-flow admission state machine."""

    drop_cause = "conntrack_closed"

    def __init__(self, establish_after: int = 3, max_packets: int = 10000,
                 name: str = ""):
        super().__init__(make_nf("firewall", establish_after=establish_after,
                                 max_packets=max_packets), name)


class TokenBucketPolicer(_FilteringStatefulElement):
    """Per-flow token-bucket policer; exceeding packets drop."""

    drop_cause = "police_exceed"

    def __init__(self, rate_bps: float = 8e6, burst_bytes: float = 3000.0,
                 name: str = ""):
        super().__init__(make_nf("policer", rate_bps=rate_bps,
                                 burst_bytes=burst_bytes), name)


class L4LoadBalancer(StatefulElement):
    """L4 load balancer: rendezvous-hash flows across ``n`` backend
    outputs; the choice is sticky (recorded in the flow entry)."""

    def __init__(self, n: int = 2, name: str = ""):
        if n < 1:
            raise ConfigurationError("load balancer needs >= 1 backend")
        self.n_outputs = n
        super().__init__(make_nf("lb", num_backends=n), name)

    def apply(self, packet: Packet, entry: tuple, verdict: str) -> None:
        backend = entry[0]
        packet.annotations[LB_BACKEND_ANNOTATION] = backend
        self.push(packet, backend)

    def output_probabilities(self) -> List[float]:
        """Rendezvous hashing spreads flows uniformly in expectation."""
        return [1.0 / self.n_outputs] * self.n_outputs
