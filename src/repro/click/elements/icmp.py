"""ICMP error-generation elements.

Wired to DecIPTTL's expiry port and LookupIPRoute's miss port, these turn
dropped packets into the ICMP errors a production router must emit.  Rate
limiting follows standard practice (a router must not amplify a packet
flood into an ICMP flood).
"""

from __future__ import annotations

from ...errors import ConfigurationError
from ...net.addresses import IPv4Address
from ...net.icmp import destination_unreachable, time_exceeded
from ...net.packet import Packet
from ..element import Element


class IcmpErrorGenerator(Element):
    """Emit an ICMP error per offending packet, token-bucket limited.

    ``kind`` selects Time Exceeded (for TTL expiry) or Destination
    Unreachable (for routing misses).  The token bucket refills
    ``rate_pps`` tokens per second of *element-observed* time, which the
    caller advances via :attr:`now` (simulation clock).
    """

    def __init__(self, router_address: IPv4Address, kind: str,
                 rate_pps: float = 1000.0, burst: int = 10, name: str = ""):
        if kind not in ("time-exceeded", "unreachable"):
            raise ConfigurationError("kind must be time-exceeded|unreachable")
        if rate_pps <= 0 or burst < 1:
            raise ConfigurationError("bad rate limit")
        super().__init__(name or "IcmpErrorGenerator(%s)" % kind)
        self.router_address = router_address
        self.kind = kind
        self.rate_pps = rate_pps
        self.burst = burst
        self.now = 0.0
        self._tokens = float(burst)
        self._last_refill = 0.0
        self.generated = 0
        self.suppressed = 0

    def _take_token(self) -> bool:
        elapsed = self.now - self._last_refill
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens
                               + elapsed * self.rate_pps)
            self._last_refill = self.now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def process(self, packet: Packet, port: int) -> None:
        if packet.ip is None or not self._take_token():
            self.suppressed += 1
            self.drop(packet)
            return
        if self.kind == "time-exceeded":
            error = time_exceeded(packet, self.router_address)
        else:
            error = destination_unreachable(packet, self.router_address)
        self.generated += 1
        self.push(error)
