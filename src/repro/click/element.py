"""Element base class and ports.

Click composes routers from small elements connected through ports.  This
reproduction keeps the push discipline (upstream calls downstream) that
Click uses on the forwarding path, plus per-element packet/byte counters
and a :meth:`Element.resource_cost` hook so the scheduler, the timed
simulation, and the analytic pipeline compiler all charge the same
per-packet :class:`~repro.costs.ResourceVector` for the work an element
represents.

Elements come in two speeds.  Every element implements the scalar
:meth:`Element.process`; hot elements may additionally override
:meth:`Element.process_batch` to handle a whole
:class:`~repro.net.batch.PacketBatch` per call (the RouteBricks batching
argument applied to the Python interpreter itself).  The base class
provides a loop-over-scalar fallback, so a batch pushed into a graph
degrades gracefully: it travels as columns through consecutive
batch-native elements and splits back to per-packet calls at the first
element that is not.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..costs import ZERO_VECTOR, ResourceVector
from ..errors import ConfigurationError
from ..net.packet import Packet
from ..obs.metrics import active_registry
from ..obs.trace import TRACE_ANNOTATION

if TYPE_CHECKING:
    from ..net.batch import PacketBatch


class PushPort:
    """An output port: a one-to-one connection to a downstream element."""

    def __init__(self, owner: "Element", index: int):
        self.owner = owner
        self.index = index
        self.peer: Optional[Element] = None
        self.peer_port: int = 0

    def connect(self, peer: "Element", peer_port: int = 0) -> None:
        if self.peer is not None:
            raise ConfigurationError(
                "%s output %d already connected" % (self.owner.name, self.index))
        self.peer = peer
        self.peer_port = peer_port

    def push(self, packet: Packet) -> None:
        if self.peer is None:
            raise ConfigurationError(
                "%s output %d is dangling" % (self.owner.name, self.index))
        self.peer.receive(packet, self.peer_port)

    def push_batch(self, batch: "PacketBatch") -> None:
        if self.peer is None:
            raise ConfigurationError(
                "%s output %d is dangling" % (self.owner.name, self.index))
        self.peer.receive_batch(batch, self.peer_port)


class Element:
    """Base class for all dataplane elements.

    Subclasses implement :meth:`process`, which receives a packet and an
    input-port index and pushes results downstream via ``self.output(i)``.
    Returning without pushing drops the packet.

    Costs are affine in packet size: an element charges ``cost_base +
    cost_per_byte * packet.length`` on each component, either from the
    class-level term declarations or from terms set at construction via
    :meth:`set_cost_terms` (device and application elements derive theirs
    from the shared :class:`~repro.costs.CostModel`).  A batch charges
    ``n * cost_base + cost_per_byte * sum(lengths)`` -- the same affine
    form, so the analytic compiler and the timed simulation agree
    whether or not the fast path ran.
    """

    #: Number of output ports; subclasses override as needed.
    n_outputs = 1

    #: Size-independent per-packet cost (class default; instances may
    #: override via :meth:`set_cost_terms`).
    cost_base: ResourceVector = ZERO_VECTOR
    #: Cost per packet byte on each component.
    cost_per_byte: ResourceVector = ZERO_VECTOR

    def __init__(self, name: str = ""):
        self.name = name or self.__class__.__name__
        self._outputs = [PushPort(self, i) for i in range(self.n_outputs)]
        self.packets_in = 0
        self.bytes_in = 0
        self.packets_out = 0
        self.packets_dropped = 0
        # Drop-cause counter, resolved once (same discipline as
        # core.node): None unless an enabled registry is active, so the
        # disabled-observability cost is a single attribute check.
        registry = active_registry()
        self._drop_counter = (
            registry.counter("element_drops",
                             help="packets dropped, by element and cause")
            if registry.enabled else None)

    def output(self, index: int = 0) -> PushPort:
        if not 0 <= index < len(self._outputs):
            raise ConfigurationError(
                "%s has no output %d" % (self.name, index))
        return self._outputs[index]

    def connect_to(self, peer: "Element", output: int = 0,
                   peer_port: int = 0) -> "Element":
        """Wire ``self[output] -> peer[peer_port]``; returns ``peer`` so
        chains read left to right."""
        self.output(output).connect(peer, peer_port)
        return peer

    def receive(self, packet: Packet, port: int = 0) -> None:
        """Entry point called by upstream elements."""
        self.packets_in += 1
        self.bytes_in += packet.length
        trace = packet.annotations.get(TRACE_ANNOTATION)
        if trace is not None:
            # Elements execute within one DES event, so the hop carries
            # no timestamp of its own; the element *sequence* is the
            # signal (reports inherit the enclosing event's clock).
            trace.hop(self.name)
        self.process(packet, port)

    def receive_batch(self, batch: "PacketBatch", port: int = 0) -> None:
        """Batch entry point called by upstream elements.

        Counts the whole burst (``packets_in += n``, ``bytes_in +=
        sum(lengths)`` -- integer sums, so the totals are exactly what
        ``n`` scalar receives would have produced), records trace hops
        for sampled rows, then dispatches to :meth:`process_batch`.
        """
        n = len(batch)
        if n == 0:
            return
        self.packets_in += n
        self.bytes_in += batch.total_bytes
        if batch.traced:
            name = self.name
            for _, trace in batch.traced:
                trace.hop(name)
        self.process_batch(batch, port)

    def push(self, packet: Packet, output: int = 0) -> None:
        """Push a packet downstream (used inside :meth:`process`)."""
        self.packets_out += 1
        self.output(output).push(packet)

    def push_batch(self, batch: "PacketBatch", output: int = 0) -> None:
        """Push a whole batch downstream (used inside
        :meth:`process_batch`)."""
        n = len(batch)
        if n == 0:
            return
        self.packets_out += n
        self.output(output).push_batch(batch)

    def drop(self, packet: Packet, cause: str = "dropped") -> None:
        """Account a deliberate drop, tagged with its cause."""
        self.packets_dropped += 1
        if self._drop_counter is not None:
            self._drop_counter.inc(1, element=self.name, cause=cause)

    def drop_batch(self, batch: "PacketBatch",
                   cause: str = "dropped") -> None:
        """Account every packet of a batch as dropped.

        One increment of ``n`` equals ``n`` increments of one (integer
        counters), so batch drops and scalar drops are indistinguishable
        in every report.
        """
        n = len(batch)
        if n == 0:
            return
        self.packets_dropped += n
        if self._drop_counter is not None:
            self._drop_counter.inc(n, element=self.name, cause=cause)

    def process(self, packet: Packet, port: int) -> None:
        raise NotImplementedError

    def process_batch(self, batch: "PacketBatch", port: int) -> None:
        """Scalar fallback: flush column state and loop :meth:`process`.

        ``receive_batch`` already counted the burst, so this calls
        :meth:`process` directly (not :meth:`receive`) -- the per-element
        counters end up identical to ``n`` scalar traversals of *this*
        element, and any downstream pushes go through the ordinary scalar
        ports from here on.
        """
        process = self.process
        for packet in batch.sync():
            process(packet, port)

    # -- cost accounting ---------------------------------------------------

    def set_cost_terms(self, base: ResourceVector,
                       per_byte: ResourceVector = ZERO_VECTOR) -> None:
        """Declare this instance's affine cost terms."""
        self.cost_base = base
        self.cost_per_byte = per_byte

    def resource_cost(self, packet: Packet) -> ResourceVector:
        """Per-packet cost of this element's work on every component.

        Computed from the declared affine terms.
        """
        if self.cost_per_byte.is_zero():
            return self.cost_base
        return self.cost_base + self.cost_per_byte.scaled(packet.length)

    # -- static forwarding behaviour ---------------------------------------

    def output_probabilities(self) -> List[float]:
        """Fraction of received packets forwarded to each output.

        Used by :func:`repro.costs.traversal_probabilities` to weight
        downstream elements.  The default sends everything down output 0
        (secondary outputs are exception paths); classifiers, switches,
        and tees override.
        """
        if self.n_outputs == 0:
            return []
        return [1.0] + [0.0] * (self.n_outputs - 1)

    def __repr__(self):
        return "<%s %r>" % (self.__class__.__name__, self.name)
