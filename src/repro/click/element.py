"""Element base class and ports.

Click composes routers from small elements connected through ports.  This
reproduction keeps the push discipline (upstream calls downstream) that
Click uses on the forwarding path, plus per-element packet/byte counters
and a :meth:`Element.resource_cost` hook so the scheduler, the timed
simulation, and the analytic pipeline compiler all charge the same
per-packet :class:`~repro.costs.ResourceVector` for the work an element
represents.
"""

from __future__ import annotations

import warnings
from typing import List, Optional

from ..costs import ZERO_VECTOR, ResourceVector
from ..errors import ConfigurationError
from ..net.packet import Packet
from ..obs.trace import TRACE_ANNOTATION


class PushPort:
    """An output port: a one-to-one connection to a downstream element."""

    def __init__(self, owner: "Element", index: int):
        self.owner = owner
        self.index = index
        self.peer: Optional[Element] = None
        self.peer_port: int = 0

    def connect(self, peer: "Element", peer_port: int = 0) -> None:
        if self.peer is not None:
            raise ConfigurationError(
                "%s output %d already connected" % (self.owner.name, self.index))
        self.peer = peer
        self.peer_port = peer_port

    def push(self, packet: Packet) -> None:
        if self.peer is None:
            raise ConfigurationError(
                "%s output %d is dangling" % (self.owner.name, self.index))
        self.peer.receive(packet, self.peer_port)


class Element:
    """Base class for all dataplane elements.

    Subclasses implement :meth:`process`, which receives a packet and an
    input-port index and pushes results downstream via ``self.output(i)``.
    Returning without pushing drops the packet.

    Costs are affine in packet size: an element charges ``cost_base +
    cost_per_byte * packet.length`` on each component, either from the
    class-level term declarations or from terms set at construction via
    :meth:`set_cost_terms` (device and application elements derive theirs
    from the shared :class:`~repro.costs.CostModel`).
    """

    #: Number of output ports; subclasses override as needed.
    n_outputs = 1

    #: Size-independent per-packet cost (class default; instances may
    #: override via :meth:`set_cost_terms`).
    cost_base: ResourceVector = ZERO_VECTOR
    #: Cost per packet byte on each component.
    cost_per_byte: ResourceVector = ZERO_VECTOR

    def __init__(self, name: str = ""):
        self.name = name or self.__class__.__name__
        self._outputs = [PushPort(self, i) for i in range(self.n_outputs)]
        self.packets_in = 0
        self.bytes_in = 0
        self.packets_out = 0
        self.packets_dropped = 0

    def output(self, index: int = 0) -> PushPort:
        if not 0 <= index < len(self._outputs):
            raise ConfigurationError(
                "%s has no output %d" % (self.name, index))
        return self._outputs[index]

    def connect_to(self, peer: "Element", output: int = 0,
                   peer_port: int = 0) -> "Element":
        """Wire ``self[output] -> peer[peer_port]``; returns ``peer`` so
        chains read left to right."""
        self.output(output).connect(peer, peer_port)
        return peer

    def receive(self, packet: Packet, port: int = 0) -> None:
        """Entry point called by upstream elements."""
        self.packets_in += 1
        self.bytes_in += packet.length
        trace = packet.annotations.get(TRACE_ANNOTATION)
        if trace is not None:
            # Elements execute within one DES event, so the hop carries
            # no timestamp of its own; the element *sequence* is the
            # signal (reports inherit the enclosing event's clock).
            trace.hop(self.name)
        self.process(packet, port)

    def push(self, packet: Packet, output: int = 0) -> None:
        """Push a packet downstream (used inside :meth:`process`)."""
        self.packets_out += 1
        self.output(output).push(packet)

    def drop(self, packet: Packet) -> None:
        """Account a deliberate drop."""
        self.packets_dropped += 1

    def process(self, packet: Packet, port: int) -> None:
        raise NotImplementedError

    # -- cost accounting ---------------------------------------------------

    def set_cost_terms(self, base: ResourceVector,
                       per_byte: ResourceVector = ZERO_VECTOR) -> None:
        """Declare this instance's affine cost terms."""
        self.cost_base = base
        self.cost_per_byte = per_byte

    def resource_cost(self, packet: Packet) -> ResourceVector:
        """Per-packet cost of this element's work on every component.

        Computed from the declared affine terms.  Subclasses that still
        override the legacy :meth:`cycle_cost` hook are honored: their
        cycles become the vector's CPU entry (bus terms zero).
        """
        if type(self).cycle_cost is not Element.cycle_cost:
            return ResourceVector(cpu_cycles=self.cycle_cost(packet))
        if self.cost_per_byte.is_zero():
            return self.cost_base
        return self.cost_base + self.cost_per_byte.scaled(packet.length)

    def cycle_cost(self, packet: Packet) -> float:
        """Deprecated: CPU cycles this element's work costs for ``packet``.

        Kept as a thin shim over :meth:`resource_cost` for callers that
        only want the CPU entry; new code should use the vector API.
        """
        warnings.warn(
            "Element.cycle_cost is deprecated; use resource_cost(packet)"
            ".cpu_cycles instead",
            DeprecationWarning, stacklevel=2)
        return self.resource_cost(packet).cpu_cycles

    # -- static forwarding behaviour ---------------------------------------

    def output_probabilities(self) -> List[float]:
        """Fraction of received packets forwarded to each output.

        Used by :func:`repro.costs.traversal_probabilities` to weight
        downstream elements.  The default sends everything down output 0
        (secondary outputs are exception paths); classifiers, switches,
        and tees override.
        """
        if self.n_outputs == 0:
            return []
        return [1.0] + [0.0] * (self.n_outputs - 1)

    def __repr__(self):
        return "<%s %r>" % (self.__class__.__name__, self.name)
