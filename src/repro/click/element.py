"""Element base class and ports.

Click composes routers from small elements connected through ports.  This
reproduction keeps the push discipline (upstream calls downstream) that
Click uses on the forwarding path, plus per-element packet counters and a
``cycle_cost`` hook so the scheduler can charge CPU time for the work an
element represents.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError
from ..net.packet import Packet


class PushPort:
    """An output port: a one-to-one connection to a downstream element."""

    def __init__(self, owner: "Element", index: int):
        self.owner = owner
        self.index = index
        self.peer: Optional[Element] = None
        self.peer_port: int = 0

    def connect(self, peer: "Element", peer_port: int = 0) -> None:
        if self.peer is not None:
            raise ConfigurationError(
                "%s output %d already connected" % (self.owner.name, self.index))
        self.peer = peer
        self.peer_port = peer_port

    def push(self, packet: Packet) -> None:
        if self.peer is None:
            raise ConfigurationError(
                "%s output %d is dangling" % (self.owner.name, self.index))
        self.peer.receive(packet, self.peer_port)


class Element:
    """Base class for all dataplane elements.

    Subclasses implement :meth:`process`, which receives a packet and an
    input-port index and pushes results downstream via ``self.output(i)``.
    Returning without pushing drops the packet.
    """

    #: Number of output ports; subclasses override as needed.
    n_outputs = 1

    def __init__(self, name: str = ""):
        self.name = name or self.__class__.__name__
        self._outputs = [PushPort(self, i) for i in range(self.n_outputs)]
        self.packets_in = 0
        self.packets_out = 0
        self.packets_dropped = 0

    def output(self, index: int = 0) -> PushPort:
        if not 0 <= index < len(self._outputs):
            raise ConfigurationError(
                "%s has no output %d" % (self.name, index))
        return self._outputs[index]

    def connect_to(self, peer: "Element", output: int = 0,
                   peer_port: int = 0) -> "Element":
        """Wire ``self[output] -> peer[peer_port]``; returns ``peer`` so
        chains read left to right."""
        self.output(output).connect(peer, peer_port)
        return peer

    def receive(self, packet: Packet, port: int = 0) -> None:
        """Entry point called by upstream elements."""
        self.packets_in += 1
        self.process(packet, port)

    def push(self, packet: Packet, output: int = 0) -> None:
        """Push a packet downstream (used inside :meth:`process`)."""
        self.packets_out += 1
        self.output(output).push(packet)

    def drop(self, packet: Packet) -> None:
        """Account a deliberate drop."""
        self.packets_dropped += 1

    def process(self, packet: Packet, port: int) -> None:
        raise NotImplementedError

    def cycle_cost(self, packet: Packet) -> float:
        """CPU cycles this element's work costs for ``packet`` (default 0;
        device and application elements override)."""
        return 0.0

    def __repr__(self):
        return "<%s %r>" % (self.__class__.__name__, self.name)
