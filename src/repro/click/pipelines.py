"""Server-bound element registries and the preset application pipelines.

The parser in :mod:`repro.click.config` needs factories for elements that
touch external state: ``PollDevice``/``ToDevice`` bind to a server's NIC
queues, ``LookupIPRoute`` needs a routing table, ``IPsecESPEncap`` a
security association.  :func:`pipeline_registry` builds a registry with
all of those bound to one server (and one queue index, for multi-queue
replication), on top of the stateless default registry.

:data:`PRESET_PIPELINES` holds the Click texts of the paper's three
evaluated applications (Sec. 5.1) expressed in this element library --
the same pipelines the calibrated :class:`~repro.costs.CostModel`
describes analytically, which is what lets tests assert that
:func:`repro.costs.compile_loads` reproduces the preset load vectors.
"""

from __future__ import annotations

from typing import Optional

from .. import calibration as cal
from ..costs import DEFAULT_COST_MODEL, CostModel
from ..crypto.esp import EspContext
from ..errors import ConfigurationError
from ..hw.server import Server
from ..net.addresses import IPv4Address, MACAddress
from ..routing.table import Route, RoutingTable
from .config import ElementRegistry, default_registry, parse_config
from .elements.device import PollDevice, ToDevice
from .elements.ip import CheckIPHeader, DecIPTTL, EtherEncap, LookupIPRoute
from .elements.ipsec import IPsecESPEncap
from .graph import RouterGraph


def demo_routing_table(n_ports: int) -> RoutingTable:
    """A small table spreading ``10.<p>.0.0/16`` over ``n_ports`` ports."""
    table = RoutingTable()
    for port in range(n_ports):
        table.add_route("10.%d.0.0/16" % port,
                        Route(port=port,
                              next_hop=IPv4Address("10.%d.0.1" % port),
                              next_hop_mac=MACAddress(0x0200_0000_0000 + port)))
    table.add_route("0.0.0.0/0",
                    Route(port=0, next_hop=IPv4Address("10.0.0.1"),
                          next_hop_mac=MACAddress(0x0200_0000_0000)))
    return table


def demo_esp_context() -> EspContext:
    """A fixed security association for non-functional IPsec pipelines."""
    return EspContext(spi=1, key=bytes(range(16)),
                      tunnel_src=IPv4Address("192.88.0.1"),
                      tunnel_dst=IPv4Address("192.88.0.2"))


def pipeline_registry(server: Server, replica: int = 0,
                      kp: int = cal.DEFAULT_KP, kn: int = cal.DEFAULT_KN,
                      table: Optional[RoutingTable] = None,
                      esp_context: Optional[EspContext] = None,
                      cost_model: CostModel = DEFAULT_COST_MODEL
                      ) -> ElementRegistry:
    """The full element registry, bound to ``server``.

    Device factories take the port index as their first argument
    (``PollDevice(0)`` polls port 0) and bind to queue ``replica`` -- so
    instantiating the same text once per core with increasing replicas
    yields the multi-queue discipline: every core runs the whole graph on
    its own queue slice.
    """
    registry = default_registry()
    table = table if table is not None else demo_routing_table(
        max(1, len(server.ports)))
    esp_context = esp_context or demo_esp_context()

    def poll_device(args, name):
        port = server.port(int(args[0]) if args else 0)
        return PollDevice(port, queue_id=replica, kp=kp, name=name,
                          cost_model=cost_model)

    def to_device(args, name):
        port = server.port(int(args[0]) if args else 0)
        return ToDevice(port, queue_id=replica, kn=kn, name=name,
                        cost_model=cost_model)

    registry.register("PollDevice", poll_device)
    registry.register("ToDevice", to_device)
    registry.register("CheckIPHeader",
                      lambda args, name: CheckIPHeader(name=name))
    registry.register("DecIPTTL", lambda args, name: DecIPTTL(name=name))
    registry.register("LookupIPRoute", lambda args, name: LookupIPRoute(
        table, n_ports=int(args[0]) if args else max(1, len(server.ports)),
        name=name))
    registry.register("EtherEncap", lambda args, name: EtherEncap(
        src_mac=MACAddress(int(args[0], 0)) if args
        else MACAddress(0x0200_0000_00FF), name=name))
    registry.register("IPsecESPEncap", lambda args, name: IPsecESPEncap(
        esp_context, functional=bool(args and args[0] == "FUNCTIONAL"),
        name=name))
    return registry


#: Click texts of the paper's evaluated applications (Sec. 5.1).
PRESET_PIPELINES = {
    "forwarding": """
        // Minimal forwarding: port 0 straight to port 0 (Sec. 5.1).
        src :: PollDevice(0);
        dst :: ToDevice(0);
        src -> dst;
    """,
    "routing": """
        // Full IP routing: header check, TTL, LPM lookup, re-encap.
        src :: PollDevice(0);
        rt :: LookupIPRoute(1);
        src -> CheckIPHeader -> DecIPTTL -> rt;
        rt [0] -> EtherEncap -> ToDevice(0);
        rt [1] -> Discard;
    """,
    "ipsec": """
        // IPsec tunnel: ESP-encrypt every packet, then forward.
        src :: PollDevice(0);
        src -> IPsecESPEncap -> ToDevice(0);
    """,
    "nat": """
        // Stateful NAT gateway: conntrack admission, source NAT,
        // per-flow token-bucket policing (repro.stateful suite).
        src :: PollDevice(0);
        src -> CheckIPHeader -> ConnTrackFirewall -> NAT
            -> TokenBucketPolicer -> ToDevice(0);
    """,
}


def build_pipeline(which_or_text: str, server: Server, replica: int = 0,
                   kp: int = cal.DEFAULT_KP, kn: int = cal.DEFAULT_KN,
                   table: Optional[RoutingTable] = None,
                   esp_context: Optional[EspContext] = None,
                   cost_model: CostModel = DEFAULT_COST_MODEL
                   ) -> RouterGraph:
    """Parse a preset name or raw Click text against ``server``."""
    text = PRESET_PIPELINES.get(which_or_text, which_or_text)
    if "->" not in text:
        raise ConfigurationError(
            "%r is neither a preset pipeline (%s) nor Click text"
            % (which_or_text, sorted(PRESET_PIPELINES)))
    registry = pipeline_registry(server, replica=replica, kp=kp, kn=kn,
                                 table=table, esp_context=esp_context,
                                 cost_model=cost_model)
    return parse_config(text, registry)
