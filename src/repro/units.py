"""Unit conversions and physical constants used throughout the library.

The paper reports rates in Gbps (bits per second) and Mpps (packets per
second).  Internally the library works in base SI units: bits/second,
packets/second, bytes, seconds, and CPU cycles.  These helpers keep the
conversions explicit and greppable.
"""

from __future__ import annotations

#: Bits per byte.
BITS_PER_BYTE = 8

#: Multipliers (decimal, as used for link rates -- not binary).
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

#: Ethernet-level per-packet overhead, in bytes.  The paper quotes rates at
#: the Ethernet frame level (a "64B packet" is a 64-byte frame), so we do not
#: add preamble/IFG overhead anywhere; this constant documents that choice.
ETHERNET_OVERHEAD_BYTES = 0

#: Minimum and maximum Ethernet frame sizes considered by the paper.
MIN_PACKET_BYTES = 64
MAX_PACKET_BYTES = 1514


def gbps(value: float) -> float:
    """Convert a rate expressed in Gbps to bits/second."""
    return value * GIGA


def to_gbps(bits_per_second: float) -> float:
    """Convert bits/second to Gbps."""
    return bits_per_second / GIGA


def mpps(value: float) -> float:
    """Convert a rate expressed in Mpps to packets/second."""
    return value * MEGA

def to_mpps(packets_per_second: float) -> float:
    """Convert packets/second to Mpps."""
    return packets_per_second / MEGA


def ghz(value: float) -> float:
    """Convert a clock frequency in GHz to cycles/second."""
    return value * GIGA


def usec(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * 1e-6


def to_usec(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds * 1e6


def msec(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * 1e-3


def packets_to_bits(num_packets: float, packet_bytes: float) -> float:
    """Total bits carried by ``num_packets`` packets of ``packet_bytes``."""
    return num_packets * packet_bytes * BITS_PER_BYTE


def rate_bps_to_pps(bits_per_second: float, packet_bytes: float) -> float:
    """Convert a bit rate to a packet rate for fixed-size packets."""
    if packet_bytes <= 0:
        raise ValueError("packet_bytes must be positive, got %r" % packet_bytes)
    return bits_per_second / (packet_bytes * BITS_PER_BYTE)


def rate_pps_to_bps(packets_per_second: float, packet_bytes: float) -> float:
    """Convert a packet rate to a bit rate for fixed-size packets."""
    if packet_bytes <= 0:
        raise ValueError("packet_bytes must be positive, got %r" % packet_bytes)
    return packets_per_second * packet_bytes * BITS_PER_BYTE
