"""Output-node re-sequencing: the alternative RB4 rejected (Sec. 6.1).

"Another option would be to tag incoming packets with sequence numbers and
re-sequence them at the output node; this is an option we would pursue, if
the CPUs were not our bottleneck."

This module implements that option so the trade-off is measurable: the
input node tags each flow's packets with consecutive sequence numbers; the
output node buffers out-of-order arrivals and releases them in order, with
a timeout bounding how long a gap can stall a flow (packets lost or
overtaken beyond the timeout are flushed).  The cost is buffer memory,
added latency while holding back early arrivals, and per-packet CPU work —
the reason the paper chose flowlets instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Tuple

from ..errors import ConfigurationError
from ..net.packet import Packet

#: CPU cost of resequencing per packet (tag insert + buffer management);
#: roughly comparable to the flowlet overhead but paid at the *output*
#: node, where forwarding work already competes for cycles.
RESEQUENCE_CYCLES = 600.0


@dataclass
class _FlowState:
    next_expected: int = 1
    buffer: Dict[int, Tuple[Packet, float]] = field(default_factory=dict)
    flushed: int = 0


class Resequencer:
    """Per-flow in-order release with a gap timeout.

    ``deliver`` is called with each packet in sequence order.  ``offer``
    feeds arrivals; ``expire`` (driven by the caller's clock) flushes
    flows whose head-of-line gap has outlived ``timeout_sec``.
    """

    def __init__(self, deliver: Callable[[Packet], None],
                 timeout_sec: float = 1e-3, max_buffer: int = 4096):
        if timeout_sec <= 0:
            raise ConfigurationError("timeout must be positive")
        if max_buffer < 1:
            raise ConfigurationError("max_buffer must be >= 1")
        self.deliver = deliver
        self.timeout_sec = timeout_sec
        self.max_buffer = max_buffer
        self._flows: Dict[Hashable, _FlowState] = {}
        self.buffered_high_watermark = 0
        self.delivered = 0
        self.timed_out = 0
        self.held = 0  # packets that had to wait at least once

    def _buffered(self) -> int:
        return sum(len(state.buffer) for state in self._flows.values())

    def offer(self, flow: Hashable, packet: Packet, now: float) -> None:
        """Feed one arrival; releases as much in-order prefix as possible."""
        state = self._flows.setdefault(flow, _FlowState())
        seq = packet.flow_seq
        if seq < state.next_expected:
            # Duplicate or already-flushed straggler: deliver immediately
            # (dropping would turn reordering into loss).
            self.deliver(packet)
            self.delivered += 1
            return
        if seq == state.next_expected:
            self.deliver(packet)
            self.delivered += 1
            state.next_expected += 1
            self._release_ready(state)
            return
        # A gap: hold the packet.
        if self._buffered() >= self.max_buffer:
            # Buffer exhausted: flush this flow's backlog in seq order.
            self._flush(state)
        state.buffer[seq] = (packet, now)
        self.held += 1
        self.buffered_high_watermark = max(self.buffered_high_watermark,
                                           self._buffered())

    def _release_ready(self, state: _FlowState) -> None:
        while state.next_expected in state.buffer:
            packet, _ = state.buffer.pop(state.next_expected)
            self.deliver(packet)
            self.delivered += 1
            state.next_expected += 1

    def _flush(self, state: _FlowState) -> None:
        for seq in sorted(state.buffer):
            packet, _ = state.buffer.pop(seq)
            self.deliver(packet)
            self.delivered += 1
            state.next_expected = max(state.next_expected, seq + 1)
        state.flushed += 1

    def expire(self, now: float) -> int:
        """Flush flows whose oldest buffered packet exceeded the timeout.

        Returns the number of packets released by timeout (these count as
        give-ups: the missing predecessor is presumed lost)."""
        released = 0
        for state in self._flows.values():
            if not state.buffer:
                continue
            oldest = min(arrival for _, arrival in state.buffer.values())
            if now - oldest > self.timeout_sec:
                before = len(state.buffer)
                self._flush(state)
                released += before
                self.timed_out += before
        return released

    def pending(self) -> int:
        """Packets currently held back."""
        return self._buffered()


def added_latency_bound_sec(timeout_sec: float) -> float:
    """Worst-case extra latency a resequenced packet can incur."""
    if timeout_sec <= 0:
        raise ConfigurationError("timeout must be positive")
    return timeout_sec


def cpu_overhead_cycles() -> float:
    """Per-packet CPU cost of the resequencing alternative."""
    return RESEQUENCE_CYCLES
