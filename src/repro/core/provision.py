"""Topology selection and cluster provisioning (Sec. 3.3).

The selection algorithm: (1) give each server as many external ports as
its processing rate allows; (2) full mesh if the fanout accommodates the
resulting server count; (3) otherwise a k-ary n-fly.  The three Fig. 3
server configurations are provided as :data:`SERVER_MODELS`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

from ..errors import TopologyError
from .topology import FullMesh, KAryNFly

#: 1 G ports per NIC in compact form factor (Sec. 3.3).
PORTS_PER_NIC_1G = 8


@dataclass(frozen=True)
class ServerModel:
    """A Fig. 3 server configuration."""

    name: str
    external_ports_per_server: int
    nic_slots: int
    #: NIC slots consumed by the external port(s).
    slots_for_external: int = 1

    def internal_fanout(self) -> int:
        """1 G internal ports available after the external port(s)."""
        free_slots = self.nic_slots - self.slots_for_external
        if free_slots < 1:
            raise TopologyError("%s has no slots left for internal links"
                                % self.name)
        return free_slots * PORTS_PER_NIC_1G


SERVER_MODELS = {
    # "Current servers": one port, 5 NIC slots.
    "current": ServerModel("current", external_ports_per_server=1,
                           nic_slots=5),
    # "More NICs": custom 20-slot motherboards.
    "more-nics": ServerModel("more-nics", external_ports_per_server=1,
                             nic_slots=20),
    # "Faster servers with more NICs": two ports per server.
    "faster": ServerModel("faster", external_ports_per_server=2,
                          nic_slots=20),
}


def provision(num_ports: int,
              model: Union[str, ServerModel] = "current") \
        -> Union[FullMesh, KAryNFly]:
    """Pick the topology for an N-port router on the given server model.

    Returns the cheapest feasible topology object; its ``total_servers()``
    is the Fig. 3 y-value.
    """
    if isinstance(model, str):
        if model not in SERVER_MODELS:
            raise TopologyError("unknown server model %r (have %s)"
                                % (model, sorted(SERVER_MODELS)))
        model = SERVER_MODELS[model]
    if num_ports < 2:
        raise TopologyError("a router needs >= 2 ports")
    mesh = FullMesh(num_ports=num_ports,
                    ports_per_server=model.external_ports_per_server,
                    fanout=model.internal_fanout())
    if mesh.feasible():
        return mesh
    return KAryNFly(num_ports=num_ports,
                    ports_per_server=model.external_ports_per_server,
                    fanout=model.internal_fanout())


def servers_required(num_ports: int,
                     model: Union[str, ServerModel] = "current") -> int:
    """Fig. 3: total cluster servers for an N-port router."""
    return provision(num_ports, model).total_servers()


def max_mesh_ports(model: Union[str, ServerModel]) -> int:
    """Largest power-of-two port count the full mesh supports."""
    if isinstance(model, str):
        model = SERVER_MODELS[model]
    fanout = model.internal_fanout()
    # Mesh feasible while ceil(N/s) - 1 <= fanout.
    max_servers = fanout + 1
    max_ports = max_servers * model.external_ports_per_server
    return 1 << int(math.log2(max_ports))


def cost_usd(num_servers: int) -> int:
    """Cluster cost at the paper's $2000/server."""
    from .. import calibration as cal
    return num_servers * cal.SERVER_COST_USD
