"""A cluster node in the packet-level simulation.

Each node plays all three VLB roles (Fig. 2): *input* (full IP processing,
output-node selection, path choice), *intermediate* (queue-to-queue move,
steering by the MAC-encoded node id), and *output* (transmit on the
external line).  Path choice is Direct VLB with adaptive local decisions
plus the flowlet rule of Sec. 6.1; per-packet balancing (classic VLB
spreading) is available for the ablation the paper reports (5.5 % vs
0.15 % reordering).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from ..errors import SimulationError
from ..net.packet import Packet
from ..obs.metrics import active_registry
from ..obs.trace import TRACE_ANNOTATION
from ..simnet.engine import Simulator
from ..simnet.links import Link
from ..units import to_usec, usec
from .flowlet import FlowletTable
from .latency import server_latency_usec
from .mac_encoding import decode_output_node, encode_output_node


class ClusterNode:
    """One server of the cluster router (DES behavior)."""

    def __init__(self, node_id: int, sim: Simulator, num_nodes: int,
                 rng: random.Random, use_flowlets: bool = True,
                 link_busy_threshold_sec: float = 200e-6,
                 metrics=None):
        self.node_id = node_id
        self.sim = sim
        self.num_nodes = num_nodes
        self.rng = rng
        self.use_flowlets = use_flowlets
        self.flowlets = FlowletTable() if use_flowlets else None
        #: Outgoing internal links, keyed by destination node id.
        self.links: Dict[int, Link] = {}
        #: Optional rate-limited external line; when set, egress packets
        #: serialize through it (and can be dropped under contention),
        #: which is what makes the fairness guarantee measurable.
        self.egress_link: Optional[Link] = None
        #: Called when a packet exits this node's external port.
        self.egress_callback: Optional[Callable[[Packet, float], None]] = None
        self.link_busy_threshold_sec = link_busy_threshold_sec
        self.ingress_packets = 0
        self.egress_packets = 0
        self.intermediate_packets = 0
        self.dropped = 0
        #: False once the server has crashed: every packet that touches
        #: the node (arriving, queued, or scheduled inside it) is lost.
        self.alive = True
        #: Next hops this node considers unreachable (failed peers or
        #: cables); path choice routes around them with purely local
        #: information, as VLB permits.
        self.failed_hops = set()
        # Observability: resolved once; ``self.obs`` is None unless an
        # enabled registry was passed in (or is globally active), so the
        # per-packet cost of disabled instrumentation is one check.
        registry = metrics if metrics is not None else active_registry()
        self.obs = registry if registry.enabled else None
        if self.obs is not None:
            self._hop_latency = registry.histogram(
                "vlb_hop_latency_usec",
                help="per-hop latency by receiving role")
            self._path_hops = registry.histogram(
                "vlb_path_hops", help="nodes touched per delivered packet")
            self._drop_counter = registry.counter(
                "node_drops", help="packets lost, by node and cause")
            self._tracer = registry.tracer
            # Span profiler (None unless the registry carries one):
            # cluster frames are charged in *microseconds* under
            # ``node<N>`` so the collapsed stacks read as wall-clock.
            self._profiler = registry.profiler
            # Pre-bound per-role/per-frame charge closures: the label
            # sets are fixed per node, so resolve them once instead of
            # per packet hop.
            self._observe_role = {
                role: self._hop_latency.bind(role=role)
                for role in ("input", "intermediate", "output")}
            self._observe_path_hops = self._path_hops.bind()
            node_frame = "node%d" % node_id
            self._prof_frames = (
                {frame: self._profiler.bind(node_frame, frame)
                 for frame in ("input", "intermediate", "link",
                               "output", "egress_line")}
                if self._profiler is not None else None)

    # -- wiring -------------------------------------------------------------

    def connect(self, dst_node_id: int, link: Link) -> None:
        if dst_node_id == self.node_id:
            raise SimulationError("node cannot link to itself")
        self.links[dst_node_id] = link

    # -- accounting -----------------------------------------------------------

    def _count_drop(self, reason: str, amount: int = 1) -> None:
        """Book ``amount`` lost packets (and attribute the cause when
        observability is on)."""
        self.dropped += amount
        if self.obs is not None and amount:
            self._drop_counter.inc(amount, node=self.node_id, reason=reason)

    def _prof_charge(self, packet: Packet, frame: str) -> None:
        """Charge the time since the packet's last profiled point to this
        node's ``frame`` (microseconds), and advance the point."""
        if self._profiler is None:
            return
        last = packet.annotations.get("prof_t")
        now = self.sim.now
        if last is not None and now > last:
            self._prof_frames[frame](to_usec(now - last))
        packet.annotations["prof_t"] = now

    # -- failure --------------------------------------------------------------

    def fail(self) -> int:
        """Crash this server.  Packets queued on its transmit links are
        lost (counted here); anything later scheduled inside the node is
        dropped on arrival.  Returns the number of packets flushed."""
        self.alive = False
        flushed = 0
        for link in self.links.values():
            flushed += link.flush()
        if self.egress_link is not None:
            flushed += self.egress_link.flush()
        self._count_drop("crash_flush", flushed)
        return flushed

    def recover(self) -> None:
        """Bring a crashed server back (state, e.g. flowlets, is fresh --
        a rebooted server remembers nothing)."""
        self.alive = True
        if self.flowlets is not None:
            self.flowlets = FlowletTable(
                delta_sec=self.flowlets.delta_sec,
                max_entries=self.flowlets.max_entries)

    # -- path choice ----------------------------------------------------------

    def _link_available(self, next_hop: int) -> bool:
        """Local-information load check: is the link up and unbacklogged?"""
        if next_hop in self.failed_hops:
            return False
        link = self.links[next_hop]
        backlog_sec = link.queued_bits() / link.rate_bps
        return backlog_sec < self.link_busy_threshold_sec

    def _path_available(self, path: int, egress: int) -> bool:
        """A path is its first hop: direct (path == egress) or via an
        intermediate node id."""
        if path == self.node_id:
            return False
        return self._link_available(path)

    def _fresh_path(self, egress: int) -> int:
        """Adaptive Direct VLB: direct while the direct link has headroom,
        otherwise the least-loaded live intermediate."""
        if self._link_available(egress):
            return egress
        candidates = [i for i in range(self.num_nodes)
                      if i not in (self.node_id, egress)
                      and i not in self.failed_hops]
        if not candidates:
            return egress
        self.rng.shuffle(candidates)
        return min(candidates,
                   key=lambda i: self.links[i].queued_bits())

    def choose_path(self, packet: Packet, egress: int, now: float) -> int:
        """First hop for a packet entering here, destined for ``egress``."""
        if egress == self.node_id:
            return egress  # local delivery, no internal hop
        if self.use_flowlets:
            # Key by (flow, egress): a path pinned for one output node
            # must never be reused for another.
            return self.flowlets.assign(
                (packet.five_tuple(), egress), now,
                path_available=lambda p: self._path_available(p, egress),
                fresh_path=lambda: self._fresh_path(egress))
        # Per-packet balancing (the reordering-prone baseline).
        return self._fresh_path(egress)

    # -- roles ----------------------------------------------------------------

    def ingress(self, packet: Packet, egress_node: int) -> None:
        """A packet arrives on this node's external line."""
        if not self.alive:
            # A dead server's external port is dark: offered traffic is
            # lost until the port is re-homed or the server recovers.
            self._count_drop("dead_port")
            return
        self.ingress_packets += 1
        packet.ingress_node = self.node_id
        packet.egress_node = egress_node
        packet.arrival_time = self.sim.now
        packet.path = [self.node_id]
        if self.obs is not None:
            packet.annotations["hop_t"] = self.sim.now
            packet.annotations["prof_t"] = self.sim.now
            self._tracer.maybe_start(packet, self.sim.now,
                                     "node%d.input" % self.node_id,
                                     key=self.node_id)
        encode_output_node(packet, egress_node, max_nodes=max(
            self.num_nodes, 1))
        delay = usec(server_latency_usec("input"))
        if egress_node == self.node_id:
            # Arrived at its own output node: no internal traversal.
            self.sim.schedule_timer(
                delay + usec(server_latency_usec("output")),
                lambda p=packet: self._egress(p))
            return
        first_hop = self.choose_path(packet, egress_node, self.sim.now)
        self.sim.schedule_timer(
            delay, lambda p=packet, h=first_hop: self._send(p, h))

    def _send(self, packet: Packet, next_hop: int) -> None:
        if not self.alive:
            # The server died while the packet was being processed.
            self._count_drop("died_holding")
            return
        if self.obs is not None:
            # Path length 1 means we are still the input node; anything
            # longer means the intermediate role is transmitting.
            role = "input" if len(packet.path) == 1 else "intermediate"
            self._prof_charge(packet, role)
            trace = packet.annotations.get(TRACE_ANNOTATION)
            if trace is not None:
                trace.hop("node%d.tx" % self.node_id, self.sim.now)
        if next_hop in self.failed_hops:
            # A dead cable: anything committed to it is lost.
            self._count_drop("cut_cable")
            return
        link = self.links.get(next_hop)
        if link is None:
            raise SimulationError("node %d has no link to %d"
                                  % (self.node_id, next_hop))
        if not link.send(packet):
            self._count_drop("link_overflow")

    def receive_wire(self, wire) -> None:
        """A packet arrives from another partition as a transit record.

        Decodes the compact :meth:`~repro.net.packet.Packet.to_wire`
        tuple, re-registers any in-flight path trace with the local
        sampler (so downstream hops keep appending to the same object and
        a later merge can stitch the full path back together), then takes
        the normal internal-receive path.
        """
        packet = Packet.from_wire(wire)
        if self.obs is not None:
            trace = packet.annotations.get(TRACE_ANNOTATION)
            if trace is not None:
                self._tracer.resume(trace)
        self.receive_internal(packet)

    def receive_internal(self, packet: Packet) -> None:
        """A packet arrives on an internal link."""
        if not self.alive:
            # In-flight delivery to a crashed server: lost.
            self._count_drop("dead_receiver")
            return
        output = decode_output_node(packet)
        packet.path.append(self.node_id)
        if self.obs is not None:
            self._observe_hop(
                packet, "output" if output == self.node_id
                else "intermediate")
        if output == self.node_id:
            delay = usec(server_latency_usec("output"))
            self.sim.schedule_timer(delay, lambda p=packet: self._egress(p))
            return
        # Intermediate role: queue-to-queue move, steer by MAC.
        self.intermediate_packets += 1
        delay = usec(server_latency_usec("intermediate"))
        self.sim.schedule_timer(
            delay, lambda p=packet, h=output: self._send(p, h))

    def _observe_hop(self, packet: Packet, role: str) -> None:
        """Charge one internal hop's latency to the role that received
        it, and extend the packet's trace when it carries one."""
        now = self.sim.now
        last = packet.annotations.get("hop_t")
        if last is not None:
            self._observe_role[role](to_usec(now - last))
        packet.annotations["hop_t"] = now
        self._prof_charge(packet, "link")
        trace = packet.annotations.get(TRACE_ANNOTATION)
        if trace is not None:
            trace.hop("node%d.%s" % (self.node_id, role), now)

    def _egress(self, packet: Packet) -> None:
        if not self.alive:
            self._count_drop("dead_egress")
            return
        if self.obs is not None:
            self._prof_charge(packet, "output")
        if self.egress_link is not None:
            if self.obs is not None:
                trace = packet.annotations.get(TRACE_ANNOTATION)
                if trace is not None:
                    trace.hop("node%d.egress_q" % self.node_id, self.sim.now)
            if not self.egress_link.send(packet):
                self._count_drop("egress_overflow")
            return
        self._egress_done(packet)

    def _egress_done(self, packet: Packet) -> None:
        if not self.alive:
            self._count_drop("dead_egress")
            return
        self.egress_packets += 1
        packet.departure_time = self.sim.now
        if self.obs is not None:
            # Non-zero only when an external line serialized the packet.
            self._prof_charge(packet, "egress_line")
            self._observe_path_hops(len(packet.path))
            trace = packet.annotations.get(TRACE_ANNOTATION)
            if trace is not None:
                trace.hop("node%d.egress" % self.node_id, self.sim.now)
        if self.egress_callback is not None:
            self.egress_callback(packet, self.sim.now)
