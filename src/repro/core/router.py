"""The RouteBricks cluster router: RB4 and beyond.

Two complementary views:

* :meth:`RouteBricksRouter.max_throughput` -- the analytic operating point:
  per-node CPU budget against the VLB workload (ingress routing + egress
  forwarding + intermediate forwarding + reordering-avoidance overhead)
  and the per-NIC payload ceiling.  Reproduces RB4's 12 Gbps (64 B) and
  35 Gbps (Abilene) results (Sec. 6.2).
* :meth:`RouteBricksRouter.simulate` -- the packet-level DES: full-mesh
  links, Direct VLB with flowlets (or per-packet balancing), per-role
  latencies; measures reordering, latency, loss.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .. import calibration as cal
from ..errors import ConfigurationError
from ..hw.presets import NEHALEM
from ..hw.server import ServerSpec
from ..net.packet import Packet
from ..obs.trace import TRACE_ANNOTATION
from ..perfmodel.loads import DEFAULT_CONFIG, ServerConfig
from ..results import RunResult
from ..simnet.engine import Simulator
from ..simnet.links import Link
from ..simnet.rng import node_seeds
from ..simnet.stats import Histogram
from ..units import gbps, rate_pps_to_bps, to_usec
from .node import ClusterNode
from .reordering import ReorderingMeter

#: Effective per-NIC payload limit observed in cluster operation
#: (Sec. 6.2: the external-line NIC sustains ~8.75 Gbps external + ~3 Gbps
#: internal = 11.67 Gbps, slightly under the 12.3 Gbps single-direction
#: traffic-generation figure because both ports move payload and
#: descriptors concurrently).
RB4_NIC_EFFECTIVE_BPS = gbps(11.67)


@dataclass(frozen=True)
class ClusterThroughput(RunResult):
    """Analytic throughput of the cluster for one workload."""

    _summary_fields = ("aggregate_gbps", "per_port_bps", "binding")

    aggregate_bps: float
    per_port_bps: float
    binding: str                      # "cpu" | "nic" | "link"
    cycles_per_ingress_packet: float
    limits_bps: Dict[str, float]

    @property
    def aggregate_gbps(self) -> float:
        return self.aggregate_bps / 1e9


@dataclass
class SimulationReport(RunResult):
    """Results of a packet-level cluster run."""

    _summary_fields = ("offered_packets", "delivered_packets",
                       "dropped_packets", "reordered_fraction")

    offered_packets: int = 0
    delivered_packets: int = 0
    dropped_packets: int = 0
    reordered_fraction: float = 0.0
    latency_usec: Histogram = field(default_factory=Histogram)
    direct_packets: int = 0
    indirect_packets: int = 0
    flowlet_switches: int = 0
    flowlet_spills: int = 0
    resequencer_held: int = 0
    resequencer_timeouts: int = 0
    node_stats: List[dict] = field(default_factory=list)
    delivered_bytes: int = 0
    duration_sec: float = 0.0
    fault_events: int = 0
    fault_flushed_packets: int = 0
    convergence: List = field(default_factory=list)
    #: Packets whose destination had no route in the ingress node's FIB
    #: at arrival time (only populated by FIB-routed runs, where the
    #: egress node is resolved by a live per-node lookup instead of
    #: being precomputed -- see ``route_via_fib``).
    fib_miss_packets: int = 0
    #: How the run was executed (filled in by repro.parallel): number of
    #: worker partitions, conservative-lookahead epochs, and total DES
    #: events across all partitions.  A single-sim run reports workers=1
    #: and epochs=0.
    workers: int = 1
    epochs: int = 0
    events_run: int = 0
    #: CPU seconds each partition spent advancing its event loop
    #: (index = partition id).  ``max`` of this list is the parallel
    #: critical path; empty for single-sim runs.
    partition_busy_seconds: List[float] = field(default_factory=list)
    #: Wall seconds each partition spent stalled at epoch barriers
    #: waiting for the slowest sibling (index = partition id; empty for
    #: single-sim runs).  ``busy + wait`` per partition approximates the
    #: run's wall clock under the process backend.
    barrier_wait_seconds: List[float] = field(default_factory=list)
    #: Mean epoch length over the conservative-lookahead window ``W``
    #: (1.0 = every epoch spans the full window; 0 for single-sim runs).
    lookahead_efficiency: float = 0.0
    #: Busiest partition's busy seconds over the mean (1.0 = perfectly
    #: balanced; 0 for single-sim runs).
    load_imbalance: float = 0.0

    @property
    def delivery_ratio(self) -> float:
        return (self.delivered_packets / self.offered_packets
                if self.offered_packets else 0.0)

    @property
    def indirect_fraction(self) -> float:
        total = self.direct_packets + self.indirect_packets
        return self.indirect_packets / total if total else 0.0

    @property
    def delivered_bps(self) -> float:
        """Goodput over the measured window (external-line bits out)."""
        return (self.delivered_bytes * 8 / self.duration_sec
                if self.duration_sec > 0 else 0.0)


class RouteBricksRouter:
    """An N-node full-mesh RouteBricks cluster (RB4 when N = 4)."""

    def __init__(self, num_nodes: int = cal.RB4_NODES,
                 port_rate_bps: float = cal.PORT_RATE_BPS,
                 internal_link_bps: float = cal.PORT_RATE_BPS,
                 spec: ServerSpec = NEHALEM,
                 config: ServerConfig = DEFAULT_CONFIG,
                 use_flowlets: bool = True,
                 resequence: bool = False,
                 resequence_timeout_sec: float = 1e-3,
                 nic_effective_bps: float = RB4_NIC_EFFECTIVE_BPS,
                 link_busy_threshold_sec: float = 50e-6,
                 seed: int = 0,
                 propagation_sec: float = 1e-6):
        if num_nodes < 2:
            raise ConfigurationError("cluster needs >= 2 nodes")
        if propagation_sec <= 0:
            raise ConfigurationError("propagation delay must be positive")
        self.num_nodes = num_nodes
        self.port_rate_bps = port_rate_bps
        self.internal_link_bps = internal_link_bps
        self.spec = spec
        self.config = config
        self.use_flowlets = use_flowlets
        self.resequence = resequence
        self.resequence_timeout_sec = resequence_timeout_sec
        self.nic_effective_bps = nic_effective_bps
        self.link_busy_threshold_sec = link_busy_threshold_sec
        self.seed = seed
        #: Cable propagation delay on every internal link; it is also the
        #: conservative-lookahead window of a partitioned run (see
        #: :mod:`repro.parallel`), since cross-partition packets cannot
        #: arrive sooner than this after leaving their source.
        self.propagation_sec = propagation_sec

    # -- analytic model ------------------------------------------------------

    def _cycles_per_ingress_packet(self, packet_bytes: float,
                                   indirect_fraction: float,
                                   ingress_app: cal.AppCost = None) -> float:
        """CPU work one ingress packet induces across the cluster, charged
        per node (symmetric traffic): the ingress application at the input
        node (full IP routing by default, as in RB4), minimal forwarding
        at the output node, minimal forwarding at an intermediate for the
        balanced share, plus flowlet bookkeeping."""
        if ingress_app is None:
            ingress_app = cal.IP_ROUTING
        book = cal.bookkeeping_cycles(self.config.kp, self.config.kn)
        ingress = ingress_app.cpu_cycles(packet_bytes) + book
        forwarding = cal.MINIMAL_FORWARDING.cpu_cycles(packet_bytes) + book
        overhead = cal.REORDER_AVOIDANCE_CYCLES if self.use_flowlets else 0.0
        return (ingress + forwarding
                + indirect_fraction * forwarding + overhead)

    def max_throughput(self, workload,
                       uniform: bool = True,
                       ingress_app: cal.AppCost = None) -> ClusterThroughput:
        """Analytic loss-free throughput for a workload.

        ``workload`` is a :class:`~repro.workloads.WorkloadSpec` (its
        size mix supplies the mean packet size and its ``app`` the
        ingress application; an explicit ``ingress_app`` overrides).

        With a close-to-uniform matrix and adaptive Direct VLB, per-pair
        demand R/(N-1) stays below the internal link rate, so everything
        routes directly (``indirect_fraction = 0``) -- the regime both RB4
        experiments ran in.  A worst-case matrix forces the full two-phase
        tax (one extra forwarding per packet, links carry 2R/N each way).
        """
        from ..workloads.spec import WorkloadSpec

        if not isinstance(workload, WorkloadSpec):
            raise TypeError(
                "max_throughput() takes a repro.workloads.WorkloadSpec; "
                "the bare packet-size form was removed -- use "
                "WorkloadSpec.fixed(packet_bytes)")
        packet_bytes = workload.mean_packet_bytes
        if ingress_app is None:
            ingress_app = workload.app
        n = self.num_nodes
        indirect = 0.0 if uniform else 1.0
        cycles = self._cycles_per_ingress_packet(packet_bytes, indirect,
                                                 ingress_app)
        cpu_pps = self.spec.cycles_per_second / cycles
        cpu_bps = rate_pps_to_bps(cpu_pps, packet_bytes)

        # NIC ceiling: the external-line NIC carries R (external) plus the
        # busiest internal port's share.
        if uniform:
            internal_share = 1.0 / (n - 1)     # direct mesh spreading
        else:
            internal_share = 2.0 / n           # VLB two-phase per-link load
        nic_bps = self.nic_effective_bps / (1.0 + internal_share)

        # Internal links must carry their share at rate R.
        link_bps = self.internal_link_bps / internal_share

        limits = {"cpu": cpu_bps, "nic": nic_bps, "link": link_bps,
                  "port": self.port_rate_bps}
        binding = min(limits, key=limits.get)
        per_port = limits[binding]
        return ClusterThroughput(
            aggregate_bps=per_port * n,
            per_port_bps=per_port,
            binding=binding,
            cycles_per_ingress_packet=cycles,
            limits_bps=limits,
        )

    # -- packet-level simulation ----------------------------------------------

    def build_simulation(self, rate_limited_egress: bool = False,
                         metrics=None) \
            -> Tuple[Simulator, List[ClusterNode]]:
        """Instantiate the DES: nodes plus full-mesh internal links.

        With ``rate_limited_egress`` each node's external line is a real
        R-bps link: contended outputs serialize and drop, which the
        fairness experiments need.  ``metrics`` (or an enabled active
        :mod:`repro.obs` registry) turns on per-hop latency, drop-cause,
        and link-occupancy instrumentation.
        """
        sim = Simulator(metrics=metrics)
        seeds = node_seeds(self.seed, self.num_nodes)
        nodes = [ClusterNode(node_id=i, sim=sim, num_nodes=self.num_nodes,
                             rng=random.Random(seeds[i]),
                             use_flowlets=self.use_flowlets,
                             link_busy_threshold_sec=self.link_busy_threshold_sec,
                             metrics=metrics)
                 for i in range(self.num_nodes)]
        for src in nodes:
            for dst in nodes:
                if src is dst:
                    continue
                link = Link(sim,
                            name="link-%d-%d" % (src.node_id, dst.node_id),
                            rate_bps=self.internal_link_bps,
                            deliver=dst.receive_internal,
                            propagation_sec=self.propagation_sec)
                src.connect(dst.node_id, link)
        if rate_limited_egress:
            for node in nodes:
                node.egress_link = Link(
                    sim, name="ext-%d" % node.node_id,
                    rate_bps=self.port_rate_bps,
                    deliver=node._egress_done,
                    queue_packets=256)
        return sim, nodes

    def simulate(self,
                 events,
                 until: Optional[float] = None,
                 rate_limited_egress: bool = False,
                 failed_links: Iterable[Tuple[int, int]] = (),
                 faults=None,
                 manager=None,
                 detection_latency_sec: Optional[float] = None,
                 fib_push_latency_sec: float = 0.0,
                 route_via_fib: bool = False,
                 churn=None,
                 metrics=None) -> SimulationReport:
        """Run traffic through the cluster.

        ``events`` yields (time, ingress node, egress node, packet) -- or
        is a :class:`~repro.workloads.WorkloadSpec` carrying a traffic
        matrix, realized over the ``until`` horizon.  The report covers
        reordering (per the Sec. 6.2 metric), latency, goodput, and path
        statistics.

        ``failed_links`` marks directed (src, dst) internal cables as
        down from the start.  ``faults`` scripts *timed* failures: a
        :class:`~repro.faults.FaultSchedule` (or its dict/JSON-dict
        form).  Crashed nodes lose their queued and in-flight packets;
        peers detect the failure after ``detection_latency_sec`` and
        Direct VLB re-balances around it with local information only.
        With a :class:`~repro.core.control.ClusterManager` as
        ``manager``, node failures also trigger the control-plane
        reaction (reprovision + FIB re-push) and each reaction's
        convergence record lands in ``report.convergence``.

        ``route_via_fib`` makes forwarding consult the control plane's
        per-node FIBs *live*: each event's egress field is ignored and
        the ingress node instead looks up the packet's IP destination in
        its own FIB at arrival time, so control-plane churn applied on
        the simulation clock (``churn``) changes where packets go
        mid-run.  Destinations without a route are dropped and counted
        in ``report.fib_miss_packets``.  ``churn`` is an armable driver
        (see :class:`~repro.control.ChurnDriver`) whose scheduled
        update/sync callbacks interleave with forwarding events.
        """
        from ..workloads.spec import WorkloadSpec

        if isinstance(events, WorkloadSpec):
            workload = events
            if workload.matrix is None:
                raise ConfigurationError(
                    "workload %r has no traffic matrix; use with_matrix()"
                    % workload.name)
            if workload.matrix.n != self.num_nodes:
                raise ConfigurationError(
                    "workload matrix is %dx%d but the cluster has %d nodes"
                    % (workload.matrix.n, workload.matrix.n, self.num_nodes))
            if until is None:
                raise ConfigurationError(
                    "simulating a WorkloadSpec needs an explicit horizon "
                    "(until=...)")
            events = workload.events(until)
        sim, nodes = self.build_simulation(rate_limited_egress,
                                           metrics=metrics)
        for src, dst in failed_links:
            if not (0 <= src < self.num_nodes and 0 <= dst < self.num_nodes):
                raise ConfigurationError("bad failed link (%r, %r)"
                                         % (src, dst))
            nodes[src].failed_hops.add(dst)
        injector = None
        if faults is not None:
            from ..faults.inject import (DEFAULT_DETECTION_LATENCY_SEC,
                                         FaultInjector)
            from ..faults.schedule import FaultSchedule
            if not isinstance(faults, FaultSchedule):
                faults = FaultSchedule.from_dict(faults)
            injector = FaultInjector(
                sim, nodes, faults, manager=manager,
                detection_latency_sec=(
                    DEFAULT_DETECTION_LATENCY_SEC
                    if detection_latency_sec is None
                    else detection_latency_sec),
                fib_push_latency_sec=fib_push_latency_sec)
        if route_via_fib and manager is None:
            raise ConfigurationError(
                "route_via_fib needs a ClusterManager supplying per-node "
                "FIBs (manager=...)")
        if churn is not None:
            churn.arm(sim)
        report = SimulationReport()
        meter = ReorderingMeter()
        from ..obs.metrics import active_registry
        registry = metrics if metrics is not None else active_registry()
        # Forwarding-latency tail timeline, recorded only for control-
        # plane runs (churn / FIB-routed): fault-free runs stay
        # bit-identical with their partitioned twins.
        latency_tl = None
        if registry.enabled and (route_via_fib or churn is not None):
            from ..obs.hooks import observer_interval
            latency_tl = registry.timeline(
                "cluster_latency_usec",
                bin_sec=observer_interval(until),
                help="end-to-end forwarding latency during churn "
                     "(max per bin = the tail)").bind()

        def on_egress(packet: Packet, now: float) -> None:
            report.delivered_packets += 1
            report.delivered_bytes += packet.length
            meter.observe(packet)
            latency = to_usec(now - packet.arrival_time)
            report.latency_usec.observe(latency)
            if latency_tl is not None:
                latency_tl(now, latency)
            if len(packet.path) <= 2:
                report.direct_packets += 1
            else:
                report.indirect_packets += 1

        if self.resequence:
            # The rejected alternative (Sec. 6.1): buffer out-of-order
            # arrivals at the output node and release flows in order.
            from .resequencer import Resequencer
            resequencers = []

            def make_callback(node):
                def deliver(packet: Packet) -> None:
                    if registry.enabled:
                        # Attribute the hold time before crediting egress:
                        # the reorder buffer is a latency stage of its own.
                        profiler = registry.profiler
                        if profiler is not None:
                            last = packet.annotations.get("prof_t")
                            if last is not None and sim.now > last:
                                profiler.charge(
                                    to_usec(sim.now - last),
                                    "node%d" % node.node_id, "reorder")
                            packet.annotations["prof_t"] = sim.now
                        trace = packet.annotations.get(TRACE_ANNOTATION)
                        if trace is not None:
                            trace.hop("reorder.release", sim.now)
                    on_egress(packet, sim.now)

                reseq = Resequencer(
                    deliver=deliver,
                    timeout_sec=self.resequence_timeout_sec)
                resequencers.append(reseq)

                def callback(packet: Packet, now: float,
                             reseq=reseq) -> None:
                    reseq.offer(packet.five_tuple(), packet, now)

                return callback

            for node in nodes:
                node.egress_callback = make_callback(node)

            def expire_all():
                for reseq in resequencers:
                    reseq.expire(sim.now)
                if sim.peek_time() is not None:
                    sim.schedule(self.resequence_timeout_sec / 2, expire_all)

            sim.schedule(self.resequence_timeout_sec / 2, expire_all)
        else:
            resequencers = []
            for node in nodes:
                node.egress_callback = on_egress

        if route_via_fib:
            fib_of = manager.fib_of

            def fib_ingress(node, packet):
                # The egress node is whatever the ingress node's *own*
                # FIB says right now -- churn applied on the simulation
                # clock changes the answer mid-run.
                route = fib_of(node.node_id).lookup(int(packet.ip.dst))
                if route is None:
                    report.fib_miss_packets += 1
                    node._count_drop("fib_miss")
                    return
                node.ingress(packet, route.port)

            for time, ingress, egress, packet in events:
                if not 0 <= ingress < self.num_nodes:
                    raise ConfigurationError("bad ingress node %r" % ingress)
                report.offered_packets += 1
                sim.schedule_timer_at(time, lambda n=nodes[ingress],
                                      p=packet: fib_ingress(n, p))
        else:
            for time, ingress, egress, packet in events:
                if not 0 <= ingress < self.num_nodes:
                    raise ConfigurationError("bad ingress node %r" % ingress)
                if not 0 <= egress < self.num_nodes:
                    raise ConfigurationError("bad egress node %r" % egress)
                report.offered_packets += 1
                sim.schedule_timer_at(time, lambda n=nodes[ingress], p=packet,
                                      e=egress: n.ingress(p, e))
        observer = None
        if registry.enabled:
            from ..obs.hooks import ClusterObserver, observer_interval
            observer = ClusterObserver(
                sim, nodes, registry,
                interval_sec=observer_interval(until))
            observer.start()
        sim.run(until=until)
        if observer is not None:
            observer.stop()
        if churn is not None:
            churn.finalize()
        for reseq in resequencers:
            # Final flush: release anything still held back.
            reseq.expire(sim.now + self.resequence_timeout_sec * 2)
            report.resequencer_held += reseq.held
            report.resequencer_timeouts += reseq.timed_out

        # node.dropped already counts failed sends on both internal links
        # and the external line (the link's own drop counter double-books
        # the same event, so it is not summed here).  Fault flushes land
        # in node.dropped too, so the injector counter is informational.
        report.dropped_packets = sum(node.dropped for node in nodes)
        report.reordered_fraction = meter.reordered_fraction()
        report.duration_sec = sim.now
        report.events_run = sim.events_run
        if injector is not None:
            report.fault_events = injector.log.events_applied
            report.fault_flushed_packets = injector.log.flushed_packets
            report.convergence = list(injector.log.convergence)
        for node in nodes:
            report.node_stats.append({
                "node": node.node_id,
                "ingress": node.ingress_packets,
                "egress": node.egress_packets,
                "intermediate": node.intermediate_packets,
            })
            if node.flowlets is not None:
                report.flowlet_switches += node.flowlets.switches
                report.flowlet_spills += node.flowlets.spills
        return report

    def replay_pair(self, timed_packets: Iterable[Tuple[float, Packet]],
                    ingress: int = 0, egress: int = 1) -> SimulationReport:
        """The Sec. 6.2 reordering setup: a whole trace through one
        input/output pair (overloading the direct path so balancing kicks
        in)."""
        events = ((time, ingress, egress, packet)
                  for time, packet in timed_packets)
        return self.simulate(events)
