"""Switching guarantees: 100 % throughput and fairness (Sec. 3.1).

A switching solution must let all output ports run at full line rate when
demand exists (100 % throughput) and give each input its fair share of any
contended output.  VLB provides both with purely local decisions; these
checkers verify the claims analytically (link/node loads under an
admissible matrix stay within capacity) and empirically (DES egress
shares).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import ConfigurationError
from ..workloads.matrices import TrafficMatrix
from .vlb import DirectVlb, analyze


@dataclass(frozen=True)
class ThroughputCheck:
    """Result of the analytic 100 %-throughput check."""

    ok: bool
    max_link_utilization: float
    max_node_c_factor: float
    detail: str


def check_throughput(matrix: TrafficMatrix, port_rate_bps: float,
                     internal_link_bps: float,
                     node_processing_bps: float,
                     policy=None) -> ThroughputCheck:
    """Verify that VLB can carry ``matrix`` without overloading anything.

    The matrix must be admissible (no port oversubscribed); VLB then
    guarantees feasibility iff every internal link stays within its rate
    and every node within its processing budget.
    """
    if not matrix.is_admissible(port_rate_bps):
        return ThroughputCheck(False, float("inf"), float("inf"),
                               "matrix is not admissible")
    analysis = analyze(matrix, port_rate_bps, policy or DirectVlb())
    link_util = analysis.max_link_load / internal_link_bps
    node_util = analysis.max_node_processing / node_processing_bps
    ok = link_util <= 1.0 and node_util <= 1.0
    detail = ("ok" if ok else
              "overload: link %.2f, node %.2f" % (link_util, node_util))
    return ThroughputCheck(ok=ok,
                           max_link_utilization=link_util,
                           max_node_c_factor=analysis.c_factor(port_rate_bps),
                           detail=detail)


def check_fairness(egress_counts: Dict[int, int],
                   tolerance: float = 0.15) -> bool:
    """Are per-input egress shares within ``tolerance`` of equal?

    ``egress_counts`` maps input node -> packets it got through a
    contended output.  Jain-style check: all shares within tolerance of
    the mean.
    """
    if not egress_counts:
        raise ConfigurationError("no egress counts to check")
    if not 0 < tolerance < 1:
        raise ConfigurationError("tolerance must be in (0, 1)")
    counts = list(egress_counts.values())
    mean = sum(counts) / len(counts)
    if mean == 0:
        return False
    return all(abs(count - mean) / mean <= tolerance for count in counts)


def jain_index(egress_counts: Dict[int, int]) -> float:
    """Jain's fairness index of the per-input shares (1.0 = perfectly fair)."""
    counts = list(egress_counts.values())
    if not counts:
        raise ConfigurationError("no egress counts")
    total = sum(counts)
    squares = sum(c * c for c in counts)
    if squares == 0:
        return 0.0
    return total * total / (len(counts) * squares)
