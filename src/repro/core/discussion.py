"""The Sec. 8 discussion models: form factor, power, and cost.

The paper closes with back-of-the-envelope feasibility estimates for a
production RouteBricks:

* **Form factor**: RB4 is a 40 Gbps router in 4U.  Integrating 16 Ethernet
  controllers on the motherboard (2 x 10 G + 30 x 1 G per server, +48 W)
  allows direct meshes of 30-40 servers: 1U servers, one 10 G port each,
  i.e. a 300-400 Gbps router in 30U.  Reference: Cisco 7600 does
  360 Gbps in 21U.
* **Power**: RB4 draws 2.6 kW nominal vs 1.6 kW for a mid-range router
  loaded for 40 Gbps (~60 % more).
* **Cost**: RB4's parts cost $14,500 vs a $70,000 quoted price for a
  40 Gbps Cisco 7603 (raw cost vs product price; not a direct comparison).

These are modeled so the estimates regenerate from their inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

#: RB4 reference points (Sec. 8).
RB4_POWER_KW = 2.6
RB4_COST_USD = 14_500
RB4_RACK_UNITS = 4
RB4_CAPACITY_GBPS = 40

#: Mid-range hardware-router reference (Cisco 7600-class, Sec. 8).
REFERENCE_ROUTER_POWER_KW = 1.6
REFERENCE_ROUTER_COST_USD = 70_000
REFERENCE_ROUTER_GBPS_PER_RU = 360 / 21  # Cisco 7600: 360 Gbps in 21U

#: Per-server figures behind the RB4 aggregates.
SERVER_POWER_KW = RB4_POWER_KW / 4
SERVER_RACK_UNITS = 1

#: On-board Ethernet-controller integration estimate (Sec. 8): 16
#: controllers drive 2 x 10 G + 30 x 1 G for roughly +48 W.
INTEGRATED_CONTROLLERS = 16
INTEGRATED_10G_PORTS = 2
INTEGRATED_1G_PORTS = 30
INTEGRATION_POWER_W = 48


@dataclass(frozen=True)
class ClusterEstimate:
    """Space/power/cost estimate for an N-server RouteBricks cluster."""

    servers: int
    capacity_gbps: float
    rack_units: int
    power_kw: float
    cost_usd: int

    @property
    def gbps_per_rack_unit(self) -> float:
        return self.capacity_gbps / self.rack_units

    @property
    def watts_per_gbps(self) -> float:
        return self.power_kw * 1e3 / self.capacity_gbps


def estimate_cluster(num_servers: int, port_gbps_per_server: float = 10.0,
                     integrated_nics: bool = False,
                     server_cost_usd: int = 2000) -> ClusterEstimate:
    """Space/power/cost for a full-mesh cluster of 1U servers.

    With ``integrated_nics`` the per-server fanout supports meshes of up
    to ``INTEGRATED_1G_PORTS + INTEGRATED_10G_PORTS`` servers and adds
    the integration power; without it, the mesh is bounded by NIC slots
    as in `repro.core.provision`.
    """
    if num_servers < 1:
        raise ConfigurationError("need >= 1 server")
    if integrated_nics:
        max_mesh = INTEGRATED_1G_PORTS + INTEGRATED_10G_PORTS + 1
        if num_servers > max_mesh:
            raise ConfigurationError(
                "integrated controllers support meshes up to %d servers"
                % max_mesh)
    power = num_servers * SERVER_POWER_KW
    if integrated_nics:
        power += num_servers * INTEGRATION_POWER_W / 1e3
    return ClusterEstimate(
        servers=num_servers,
        capacity_gbps=num_servers * port_gbps_per_server,
        rack_units=num_servers * SERVER_RACK_UNITS,
        power_kw=power,
        cost_usd=num_servers * server_cost_usd,
    )


def rb4_estimate() -> ClusterEstimate:
    """The RB4 prototype's own numbers (cost held at the quoted $14,500)."""
    estimate = estimate_cluster(4)
    return ClusterEstimate(servers=4, capacity_gbps=RB4_CAPACITY_GBPS,
                           rack_units=RB4_RACK_UNITS,
                           power_kw=RB4_POWER_KW, cost_usd=RB4_COST_USD)


def power_overhead_vs_reference(estimate: ClusterEstimate) -> float:
    """Fractional extra power vs the hardware-router reference, scaled to
    the same capacity (the paper's "about 60 % more" at 40 Gbps)."""
    if estimate.capacity_gbps <= 0:
        raise ConfigurationError("estimate has no capacity")
    reference_kw = (REFERENCE_ROUTER_POWER_KW
                    * estimate.capacity_gbps / RB4_CAPACITY_GBPS)
    return estimate.power_kw / reference_kw - 1.0


def form_factor_comparison(num_servers: int = 33) -> dict:
    """The Sec. 8 integrated-controller scenario vs the Cisco 7600.

    A mesh of 1U servers with on-board controllers ("30-40 servers"):
    a 300-400 Gbps router in 30-40U, against 360 Gbps in 21U for the
    hardware router.
    """
    cluster = estimate_cluster(num_servers, integrated_nics=True)
    return {
        "cluster_gbps": cluster.capacity_gbps,
        "cluster_rack_units": cluster.rack_units,
        "cluster_gbps_per_ru": cluster.gbps_per_rack_unit,
        "reference_gbps_per_ru": REFERENCE_ROUTER_GBPS_PER_RU,
        "density_ratio": (cluster.gbps_per_rack_unit
                          / REFERENCE_ROUTER_GBPS_PER_RU),
    }


def next_gen_form_factor_gain() -> float:
    """Sec. 8: the 4-socket follow-up's ~4x performance shrinks the form
    factor ~4x at equal capacity."""
    from ..hw.presets import NEHALEM, NEHALEM_NEXT_GEN
    return (NEHALEM_NEXT_GEN.cycles_per_second / NEHALEM.cycles_per_second)


def cost_comparison() -> dict:
    """RB4 parts cost vs the hardware router's quoted price (Sec. 8)."""
    return {
        "rb4_cost_usd": RB4_COST_USD,
        "reference_price_usd": REFERENCE_ROUTER_COST_USD,
        "ratio": REFERENCE_ROUTER_COST_USD / RB4_COST_USD,
    }
