"""Valiant load balancing: classic and Direct, with adaptive direct routing.

Classic VLB (Sec. 3.2): every packet is routed S -> I -> D with I chosen
uniformly at random.  Internal link loads stay <= 2R/N for any admissible
traffic matrix, at the cost of each node processing up to 3R.

Direct VLB [49]: each input routes up to R/N of the traffic addressed to
each output *directly* and balances only the remainder, cutting the
per-node rate to ~2R when the matrix is close to uniform.  RB4 goes one
step further (adaptive, local information): a node sends *all* of a
destination's traffic directly while the direct link has headroom --
that's why the 64 B and Abilene experiments route everything directly
(Sec. 6.2).

This module provides both the *analysis* (link loads, per-node processing
rates -- the quantities the provisioning math needs) and the *policy*
objects the DES nodes consult per flowlet.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
import numpy as np

from ..errors import ConfigurationError
from ..workloads.matrices import TrafficMatrix


@dataclass(frozen=True)
class VlbAnalysis:
    """Load analysis of a (matrix, policy) pair on a full mesh of N nodes.

    ``link_loads[i][j]`` is the bits/second carried by the directed
    internal link i -> j.  ``node_processing[i]`` is the total rate at
    which node i must process packets (ingress + intermediate + egress),
    the paper's "cR" quantity.
    """

    link_loads: np.ndarray
    node_processing: np.ndarray
    direct_fraction: float

    @property
    def max_link_load(self) -> float:
        return float(self.link_loads.max())

    @property
    def max_node_processing(self) -> float:
        return float(self.node_processing.max())

    def c_factor(self, port_rate_bps: float) -> float:
        """The per-node processing multiple of R (between 2 and 3)."""
        return self.max_node_processing / port_rate_bps


class ClassicVlb:
    """Two-phase VLB: every packet bounces through a random intermediate."""

    name = "classic"

    def direct_share(self, demand: float, port_rate_bps: float,
                     n: int) -> float:
        """Classic VLB sends nothing direct (phase 1 covers everything);
        the 1/N of phase-1 traffic that lands on the destination is
        accounted as balanced, matching the 3R bound."""
        return 0.0

    def choose_intermediate(self, src: int, dst: int, n: int,
                            rng: random.Random) -> int:
        """Uniform over all nodes; picking src or dst degenerates to a
        shorter path, as in the original scheme."""
        return rng.randrange(n)


class DirectVlb:
    """Direct VLB with adaptive local decisions (what RB4 implements).

    ``guaranteed_fraction`` of R/N per destination may always go direct
    (the [49] rule); beyond that, a node keeps sending direct while its
    local estimate of the direct link's utilization stays below
    ``headroom`` -- the adaptation that routes everything directly for
    uniform-ish matrices.
    """

    name = "direct"

    def __init__(self, headroom: float = 0.95):
        if not 0 < headroom <= 1:
            raise ConfigurationError("headroom must be in (0, 1]")
        self.headroom = headroom

    def direct_share(self, demand: float, port_rate_bps: float,
                     n: int) -> float:
        """Bits/second of a pair's demand routed directly (analysis form).

        For analysis we apply the guarantee-preserving rule: up to R/N
        direct, remainder balanced -- the conservative (worst-case) figure
        used for provisioning.  The DES applies the adaptive rule on top.
        """
        return min(demand, port_rate_bps / n)

    def choose_intermediate(self, src: int, dst: int, n: int,
                            rng: random.Random) -> int:
        """Uniform over nodes other than src and dst."""
        if n <= 2:
            return dst
        choice = rng.randrange(n - 2)
        for excluded in sorted((src, dst)):
            if choice >= excluded:
                choice += 1
        return choice


def analyze(matrix: TrafficMatrix, port_rate_bps: float,
            policy=None) -> VlbAnalysis:
    """Compute link loads and per-node processing rates on a full mesh.

    Phase-1 remainders are spread uniformly over the n-2 candidate
    intermediates (classic VLB spreads over all n, which this converges to
    for large n; for the small-n RB4 analysis the distinction matters and
    the direct policy is the one the prototype runs).
    """
    if policy is None:
        policy = DirectVlb()
    n = matrix.n
    if n < 2:
        raise ConfigurationError("VLB needs >= 2 nodes")
    demands = matrix.demands
    links = np.zeros((n, n))
    intermediate = np.zeros(n)
    total_demand = 0.0
    total_direct = 0.0
    for s in range(n):
        for d in range(n):
            if s == d or demands[s][d] == 0:
                continue
            demand = demands[s][d]
            total_demand += demand
            direct = policy.direct_share(demand, port_rate_bps, n)
            direct = min(direct, demand)
            balanced = demand - direct
            total_direct += direct
            links[s][d] += direct
            if balanced > 0:
                if isinstance(policy, ClassicVlb):
                    # Spread over all n nodes; I == s skips the first hop,
                    # I == d skips the second.
                    share = balanced / n
                    for i in range(n):
                        if i != s:
                            links[s][i] += share
                        if i != d:
                            links[i][d] += share
                        if i not in (s, d):
                            intermediate[i] += share
                else:
                    candidates = [i for i in range(n) if i not in (s, d)]
                    share = balanced / len(candidates)
                    for i in candidates:
                        links[s][i] += share
                        links[i][d] += share
                        intermediate[i] += share
    node_processing = np.array([
        matrix.row_sum(i) + matrix.col_sum(i) + intermediate[i]
        for i in range(n)
    ])
    direct_fraction = total_direct / total_demand if total_demand else 1.0
    return VlbAnalysis(link_loads=links, node_processing=node_processing,
                       direct_fraction=direct_fraction)


def required_internal_link_rate(n: int, port_rate_bps: float) -> float:
    """The 2R/N internal-link capacity VLB needs on a full mesh (Sec. 3.2)."""
    if n < 2:
        raise ConfigurationError("VLB needs >= 2 nodes")
    return 2 * port_rate_bps / n


def processing_rate_bound(port_rate_bps: float, uniform: bool) -> float:
    """The paper's headline per-node requirement: 2R uniform, 3R worst case."""
    return (2 if uniform else 3) * port_rate_bps
