"""Per-server port sizing (the paper's conclusions, quantified).

Sec. 9: "we can comfortably build software routers with multiple (about
8-9) 1 Gbps ports per server ... we come very close to achieving a line
rate of 10 Gbps".  This module derives those numbers: a server can host
``s`` ports of rate R iff its packet-processing capacity covers the VLB
requirement c*s*R (c = 2 for close-to-uniform traffic, 3 worst case),
where the capacity is the workload-dependent saturation rate of Sec. 5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .. import calibration as cal
from ..errors import ConfigurationError
from ..hw.presets import NEHALEM
from ..hw.server import ServerSpec
from ..perfmodel.throughput import max_loss_free_rate
from ..workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class PortSizing:
    """How many ports of a given rate one server can host."""

    port_rate_bps: float
    processing_capacity_bps: float
    vlb_factor: float
    ports: int

    @property
    def utilized_fraction(self) -> float:
        required = self.ports * self.port_rate_bps * self.vlb_factor
        return required / self.processing_capacity_bps


def processing_capacity_bps(workload: str = "realistic",
                            app_name: str = "routing",
                            spec: ServerSpec = NEHALEM) -> float:
    """The server's packet-processing capacity for port sizing.

    ``workload``: "realistic" uses the Abilene-mean operating point (the
    NIC-limited 24.6 Gbps on the prototype); "worst-case" uses 64 B.
    The capacity takes the *input-node* application (routing) -- the
    VLB factor already covers the forwarding passes.
    """
    if workload == "realistic":
        size = cal.ABILENE_MEAN_PACKET_BYTES
    elif workload == "worst-case":
        size = 64
    else:
        raise ConfigurationError("workload must be realistic|worst-case")
    return max_loss_free_rate(WorkloadSpec.fixed(size, app=app_name),
                              spec=spec).rate_bps


def ports_per_server(port_rate_bps: float, workload: str = "realistic",
                     worst_case_matrix: bool = True,
                     app_name: str = "routing",
                     spec: ServerSpec = NEHALEM) -> PortSizing:
    """Size a server: how many R-rate ports can it host?

    ``worst_case_matrix`` selects the VLB factor: 3 guarantees any
    admissible matrix; 2 assumes close-to-uniform traffic.
    """
    if port_rate_bps <= 0:
        raise ConfigurationError("port rate must be positive")
    capacity = processing_capacity_bps(workload, app_name, spec)
    factor = 3.0 if worst_case_matrix else 2.0
    ports = math.floor(capacity / (factor * port_rate_bps))
    return PortSizing(port_rate_bps=port_rate_bps,
                      processing_capacity_bps=capacity,
                      vlb_factor=factor, ports=ports)


def conclusion_claims(spec: ServerSpec = NEHALEM) -> dict:
    """The Sec. 9 conclusions as numbers.

    * ``ports_1g``: 1 Gbps ports per server under realistic traffic with
      the full worst-case VLB guarantee ("about 8-9");
    * ``fraction_of_10g_realistic``: how close one 10 Gbps port comes to
      being fully served under realistic traffic ("very close");
    * ``fraction_of_10g_worst_case``: the same under 64 B worst case
      ("falls short").
    """
    ports_1g = ports_per_server(1e9, workload="realistic",
                                worst_case_matrix=True, spec=spec).ports
    realistic = processing_capacity_bps("realistic", spec=spec)
    worst = processing_capacity_bps("worst-case", spec=spec)
    return {
        "ports_1g": ports_1g,
        "fraction_of_10g_realistic": min(1.0, realistic / (2.0 * 10e9)),
        "fraction_of_10g_worst_case": worst / (2.0 * 10e9),
    }
