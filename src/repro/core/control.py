"""The cluster control plane: membership and FIB distribution.

The architecture's extensibility claim (Sec. 2) is that ports are added by
adding servers.  That needs a (thin) control plane: track cluster
membership, recompute the mesh wiring and port assignments when servers
join or leave, and keep every node's FIB consistent with the master RIB
(each node routes packets to *output nodes*, so all nodes must agree on
the prefix -> node mapping).  This module implements that bookkeeping with
versioned FIB snapshots and explicit consistency checks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError, TopologyError
from ..net.addresses import Prefix
from ..results import RunResult
from ..routing.table import Route, RoutingTable
from .mac_encoding import mac_trick_feasible

#: Journal ops: install/refresh the prefix -> node mapping, or drop it.
FIB_SET = "set"
FIB_DEL = "del"

#: Delta-journal size cap.  When the journal outgrows this, the oldest
#: half is discarded and nodes whose FIB predates the remaining window
#: fall back to a full rebuild on their next sync.
MAX_JOURNAL_ENTRIES = 1 << 18


@dataclass(frozen=True)
class FibDelta:
    """One compiled FIB change: ``op`` is :data:`FIB_SET` (map ``prefix``
    to egress node ``node_id``) or :data:`FIB_DEL` (drop the mapping)."""

    version: int
    op: str
    prefix: Prefix
    node_id: Optional[int] = None


@dataclass(frozen=True)
class SyncResult:
    """What one node's FIB synchronization did."""

    node_id: int
    version: int          # FIB version after the sync
    ops_applied: int      # incremental deltas applied (0 if rebuilt)
    rebuilt: bool         # True when the journal window forced a rebuild


@dataclass
class NodeState:
    """Control-plane view of one cluster server."""

    node_id: int
    external_port: int
    fib_version: int = 0
    fib: Optional[RoutingTable] = None
    alive: bool = True


@dataclass(frozen=True)
class ProvisionUpdate(RunResult):
    """What the control plane recomputed after a membership/health change."""

    _summary_fields = ("live_nodes", "failed_nodes", "capacity_gbps",
                       "internal_link_rate_gbps")

    live_nodes: int
    failed_nodes: int
    capacity_bps: float
    internal_link_rate_bps: float
    rib_version: int
    fibs_pushed: bool

    @property
    def capacity_gbps(self) -> float:
        return self.capacity_bps / 1e9

    @property
    def internal_link_rate_gbps(self) -> float:
        return self.internal_link_rate_bps / 1e9


class ClusterManager:
    """Membership + FIB distribution for a full-mesh RouteBricks cluster.

    The manager owns the master RIB (prefix -> external port).  Each
    external port belongs to exactly one node; pushing the FIB gives every
    node an identical routing table whose ``Route.port`` values are
    *cluster node ids* -- what ``VLBIngress`` consumes.
    """

    def __init__(self, port_rate_bps: float = 10e9):
        self.port_rate_bps = port_rate_bps
        self.rib: Dict[Prefix, int] = {}   # prefix -> external port
        self._nodes: Dict[int, NodeState] = {}
        self._port_owner: Dict[int, int] = {}
        self._next_node_id = 0
        self.rib_version = 0
        #: Compiled-FIB delta journal (see :class:`FibDelta`): every RIB
        #: or health change appends the FIB-level ops it implies, so a
        #: node can catch up incrementally instead of rebuilding.
        self._journal: List[FibDelta] = []
        #: Versions <= this floor fell out of the journal window.
        self._journal_floor = 0

    # -- membership -----------------------------------------------------------

    def add_node(self, external_port: int) -> int:
        """Add a server owning ``external_port``; returns its node id."""
        if external_port in self._port_owner:
            raise ConfigurationError("port %d already owned by node %d"
                                     % (external_port,
                                        self._port_owner[external_port]))
        node_id = self._next_node_id
        self._next_node_id += 1
        self._nodes[node_id] = NodeState(node_id=node_id,
                                         external_port=external_port)
        self._port_owner[external_port] = node_id
        if not mac_trick_feasible(len(self._nodes)):
            # Still allowed, but single-lookup forwarding stops working.
            self._nodes[node_id].alive = True
        return node_id

    def remove_node(self, node_id: int) -> None:
        """Remove a server; its port's routes become unresolvable until
        the port is reassigned.  The compiled FIB changes (the removed
        node's routes drop out), so the master version is bumped --
        otherwise previously-pushed FIBs would keep routing to the
        removed node while ``stale_nodes()``/``check_consistency()``
        report everything current."""
        if node_id not in self._nodes:
            raise ConfigurationError("no node %d" % node_id)
        state = self._nodes.pop(node_id)
        del self._port_owner[state.external_port]
        self.rib_version += 1
        self._journal_extend(
            (FIB_DEL, prefix, None)
            for prefix in self._owned_prefixes(state.external_port))

    def nodes(self) -> List[int]:
        return sorted(self._nodes)

    def live_nodes(self) -> List[int]:
        """Members currently believed healthy."""
        return sorted(node_id for node_id, state in self._nodes.items()
                      if state.alive)

    def ports(self) -> List[int]:
        """All owned external ports, sorted."""
        return sorted(self._port_owner)

    def owner_of(self, external_port: int) -> Optional[int]:
        """Node id owning ``external_port`` (``None`` if unowned)."""
        return self._port_owner.get(external_port)

    def failed_nodes(self) -> List[int]:
        """Members marked down by the health layer (still cluster members;
        their ports stay assigned, their routes drop out of the FIB)."""
        return sorted(node_id for node_id, state in self._nodes.items()
                      if not state.alive)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    # -- health ---------------------------------------------------------------

    def mark_failed(self, node_id: int) -> None:
        """Record that ``node_id`` stopped responding.  Its routes leave
        the compiled FIB (traffic to a dark port would be lost anyway),
        so the master version is bumped and every live FIB goes stale."""
        state = self._nodes.get(node_id)
        if state is None:
            raise ConfigurationError("no node %d" % node_id)
        if not state.alive:
            return
        state.alive = False
        self.rib_version += 1
        self._journal_extend(
            (FIB_DEL, prefix, None)
            for prefix in self._owned_prefixes(state.external_port))

    def mark_recovered(self, node_id: int) -> None:
        """A rebooted server rejoined: empty FIB, routes restored."""
        state = self._nodes.get(node_id)
        if state is None:
            raise ConfigurationError("no node %d" % node_id)
        if state.alive:
            return
        state.alive = True
        state.fib = None           # reboot: it remembers nothing
        state.fib_version = 0
        self.rib_version += 1
        self._journal_extend(
            (FIB_SET, prefix, node_id)
            for prefix in self._owned_prefixes(state.external_port))

    def handle_node_failure(self, node_id: int,
                            push: bool = True) -> ProvisionUpdate:
        """Failure reaction: mark the node down, recompute provisioning,
        and (by default) re-push FIBs to the survivors."""
        self.mark_failed(node_id)
        return self.reprovision(push=push)

    def handle_node_recovery(self, node_id: int,
                             push: bool = True) -> ProvisionUpdate:
        """Recovery reaction: readmit the node and re-push FIBs."""
        self.mark_recovered(node_id)
        return self.reprovision(push=push)

    def reprovision(self, push: bool = False) -> ProvisionUpdate:
        """Recompute the cluster's operating parameters for the current
        live membership (VLB's 2R/N internal-link requirement, aggregate
        capacity), optionally distributing fresh FIBs."""
        live = self.live_nodes()
        if push:
            self.push_fibs()
        return ProvisionUpdate(
            live_nodes=len(live),
            failed_nodes=len(self.failed_nodes()),
            capacity_bps=len(live) * self.port_rate_bps,
            internal_link_rate_bps=(
                2 * self.port_rate_bps / len(live) if len(live) >= 2
                else float("nan")),
            rib_version=self.rib_version,
            fibs_pushed=push,
        )

    def mesh_links(self) -> List[Tuple[int, int]]:
        """The directed internal links current membership requires."""
        ids = self.nodes()
        return [(a, b) for a in ids for b in ids if a != b]

    def internal_link_rate_bps(self) -> float:
        """VLB's required internal link rate for the current mesh."""
        if self.num_nodes < 2:
            raise TopologyError("mesh needs >= 2 nodes")
        return 2 * self.port_rate_bps / self.num_nodes

    # -- RIB / FIB -------------------------------------------------------------

    def _owned_prefixes(self, external_port: int) -> List[Prefix]:
        return [prefix for prefix, port in self.rib.items()
                if port == external_port]

    def _journal_extend(self, deltas) -> None:
        """Append FIB-level ops at the current master version, trimming
        the journal at a version boundary when it outgrows its cap."""
        version = self.rib_version
        self._journal.extend(
            FibDelta(version=version, op=op, prefix=prefix, node_id=node_id)
            for op, prefix, node_id in deltas)
        if len(self._journal) > MAX_JOURNAL_ENTRIES:
            drop = len(self._journal) // 2
            cut_version = self._journal[drop - 1].version
            while (drop < len(self._journal)
                   and self._journal[drop].version == cut_version):
                drop += 1
            self._journal_floor = cut_version
            del self._journal[:drop]

    def announce(self, prefix, external_port: int) -> None:
        """Install or move a prefix to an external port in the master RIB."""
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        if external_port not in self._port_owner:
            raise ConfigurationError("no node owns port %d" % external_port)
        self.rib[prefix] = external_port
        self.rib_version += 1
        owner = self._port_owner[external_port]
        if self._nodes[owner].alive:
            self._journal_extend([(FIB_SET, prefix, owner)])
        else:
            # Routes to a dark port are withheld from the compiled FIB
            # until the owner recovers (see build_fib).
            self._journal_extend([(FIB_DEL, prefix, None)])

    def withdraw(self, prefix) -> None:
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        if prefix not in self.rib:
            raise ConfigurationError("prefix %s not announced" % prefix)
        del self.rib[prefix]
        self.rib_version += 1
        self._journal_extend([(FIB_DEL, prefix, None)])

    def fib_deltas(self, since_version: int) -> Optional[List[FibDelta]]:
        """Compiled-FIB ops advancing ``since_version`` to the current
        version, or ``None`` when the journal no longer covers the gap
        (the caller must fall back to a full rebuild)."""
        if since_version < self._journal_floor:
            return None
        return [delta for delta in self._journal
                if delta.version > since_version]

    def build_fib(self) -> RoutingTable:
        """Compile the RIB into a node FIB (prefix -> owning node id).

        Routes whose owning node is dead are excluded: until the port is
        re-homed or the server recovers, those prefixes are unreachable
        and advertising them would blackhole traffic inside the mesh.
        """
        fib = RoutingTable()
        for prefix, port in self.rib.items():
            node_id = self._port_owner.get(port)
            if node_id is None:
                continue  # orphaned route: owner was removed
            if not self._nodes[node_id].alive:
                continue  # owner is down: withhold until recovery
            fib.add_route(prefix, Route(port=node_id,
                                        next_hop=prefix.network))
        return fib

    def sync_node(self, node_id: int) -> SyncResult:
        """Bring one live node's FIB up to the master version.

        Incremental by default: the delta journal is replayed against
        the node's existing table *in place* (``Dir24_8`` insert/remove,
        never a rebuild), so a dataplane holding a reference to the
        table sees updates live.  A node whose FIB predates the journal
        window (or has none yet) gets a full rebuild instead.
        """
        state = self._nodes.get(node_id)
        if state is None:
            raise ConfigurationError("no node %d" % node_id)
        if not state.alive:
            raise ConfigurationError(
                "node %d is down; it resyncs on recovery" % node_id)
        started = time.perf_counter()
        deltas = (self.fib_deltas(state.fib_version)
                  if state.fib is not None else None)
        if deltas is None:
            # Each node gets its own table instance (independent mutation
            # in tests mirrors independent memory in reality).
            state.fib = self.build_fib()
            state.fib_version = self.rib_version
            result = SyncResult(node_id=node_id, version=self.rib_version,
                                ops_applied=len(state.fib), rebuilt=True)
        else:
            fib = state.fib
            applied = 0
            for delta in deltas:
                if delta.op == FIB_SET:
                    fib.add_route(delta.prefix,
                                  Route(port=delta.node_id,
                                        next_hop=delta.prefix.network))
                    applied += 1
                elif fib.has_route(delta.prefix):
                    fib.remove_route(delta.prefix)
                    applied += 1
            state.fib_version = self.rib_version
            result = SyncResult(node_id=node_id, version=self.rib_version,
                                ops_applied=applied, rebuilt=False)
        from ..obs.metrics import active_registry
        registry = active_registry()
        if registry.enabled:
            registry.counter(
                "fib_updates_applied",
                "FIB update operations applied to per-node tables",
            ).inc(result.ops_applied, node=node_id)
            registry.counter(
                "fib_update_seconds",
                "wall seconds spent applying per-node FIB updates",
            ).inc(time.perf_counter() - started, node=node_id)
        return result

    def push_fibs(self) -> int:
        """Bring every live node's FIB to the master version; returns the
        version.  Nodes that can catch up from the delta journal do so
        incrementally (see :meth:`sync_node`); dead nodes cannot receive
        a push -- they rejoin stale and get a fresh table on recovery."""
        for node_id in self.live_nodes():
            self.sync_node(node_id)
        return self.rib_version

    def fib_of(self, node_id: int) -> RoutingTable:
        state = self._nodes.get(node_id)
        if state is None:
            raise ConfigurationError("no node %d" % node_id)
        if state.fib is None:
            raise ConfigurationError("node %d has no FIB yet" % node_id)
        return state.fib

    # -- consistency ------------------------------------------------------------

    def stale_nodes(self) -> List[int]:
        """Live nodes whose FIB lags the master RIB version (dead nodes
        are unreachable, not stale -- they re-sync on recovery)."""
        return [node_id for node_id, state in sorted(self._nodes.items())
                if state.alive and (state.fib is None
                                    or state.fib_version != self.rib_version)]

    def check_consistency(self, probes: List) -> bool:
        """All live nodes agree on the egress node for every probe."""
        if not self._nodes:
            raise ConfigurationError("empty cluster")
        if self.stale_nodes():
            return False
        for probe in probes:
            answers = set()
            for state in self._nodes.values():
                if not state.alive:
                    continue
                route = state.fib.lookup(probe)
                answers.add(None if route is None else route.port)
            if len(answers) > 1:
                return False
        return True

    def capacity_bps(self) -> float:
        """Aggregate external capacity of the live membership."""
        return len(self.live_nodes()) * self.port_rate_bps
