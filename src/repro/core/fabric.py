"""Multi-hop interconnect fabrics: explicit graphs for mesh, fly, torus.

`repro.core.topology` sizes clusters; this module *builds* them as graphs
so paths, per-node transit loads, and latency can be computed explicitly.
It reproduces the Sec. 3.3 latency estimate -- "even with current servers,
we need 2 intermediate servers per port to provide N = 1024 external
ports ... 96 usec of per-packet latency" (4 servers x 24 us) -- and feeds
the fabric-aware VLB analysis.

Graphs are directed; I/O servers are nodes named ``("io", i)`` and fly
stage servers ``("fly", stage, index)``.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

import networkx as nx

from ..errors import TopologyError

#: Per-server latency used in the Sec. 3.3 estimate (Sec. 6.2's 24 us).
SERVER_LATENCY_USEC = 24.0


def mesh_graph(num_servers: int) -> nx.DiGraph:
    """A full mesh of I/O servers."""
    if num_servers < 2:
        raise TopologyError("mesh needs >= 2 servers")
    graph = nx.DiGraph()
    nodes = [("io", i) for i in range(num_servers)]
    graph.add_nodes_from(nodes)
    for a in nodes:
        for b in nodes:
            if a != b:
                graph.add_edge(a, b)
    return graph


def fly_graph(k: int, stages: int, num_terminals: int = None) -> nx.DiGraph:
    """A k-ary n-fly: terminals enter stage 0 and exit after the last stage.

    The classic butterfly wiring: stage ``s`` switch ``j`` output ``d``
    connects to stage ``s+1`` switch obtained by replacing the (n-1-s)-th
    base-k digit of ``j``'s row with ``d``.  Terminals attach k-per-switch
    at both ends; the same physical I/O servers act as sources and sinks
    (the fabric is used in a folded fashion, as in the paper's cluster).
    """
    if k < 2:
        raise TopologyError("fly needs k >= 2")
    if stages < 1:
        raise TopologyError("fly needs >= 1 stage")
    capacity = k ** stages
    if num_terminals is None:
        num_terminals = capacity
    if num_terminals > capacity:
        raise TopologyError("%d terminals exceed k^n = %d"
                            % (num_terminals, capacity))
    switches_per_stage = k ** (stages - 1)
    graph = nx.DiGraph()
    terminals = [("io", i) for i in range(num_terminals)]
    graph.add_nodes_from(terminals)
    for stage in range(stages):
        for index in range(switches_per_stage):
            graph.add_node(("fly", stage, index))
    # Terminal -> stage 0: terminal i attaches to switch i // k.
    for i in range(num_terminals):
        graph.add_edge(("io", i), ("fly", 0, i // k))
    # Stage s -> stage s+1 butterfly wiring.
    for stage in range(stages - 1):
        digit = stages - 2 - stage  # digit replaced at this stage
        for index in range(switches_per_stage):
            for out in range(k):
                # A switch index is an (n-1)-digit base-k number; output
                # `out` rewires the `digit`-th digit.
                base = k ** digit
                next_index = (index - ((index // base) % k) * base
                              + out * base)
                graph.add_edge(("fly", stage, index),
                               ("fly", stage + 1, next_index))
    # Last stage -> terminals: switch j output d reaches terminal j*k + d.
    for index in range(switches_per_stage):
        for out in range(k):
            terminal = index * k + out
            if terminal < num_terminals:
                graph.add_edge(("fly", stages - 1, index),
                               ("io", terminal))
    return graph


def torus_graph(radix: int, dimensions: int) -> nx.DiGraph:
    """A radix^dimensions torus of I/O servers (bidirectional rings)."""
    if radix < 2 or dimensions < 1:
        raise TopologyError("torus needs radix >= 2 and >= 1 dimension")
    graph = nx.DiGraph()
    total = radix ** dimensions
    for i in range(total):
        graph.add_node(("io", i))

    def coords(i: int) -> Tuple[int, ...]:
        out = []
        for _ in range(dimensions):
            out.append(i % radix)
            i //= radix
        return tuple(out)

    def index(coordinates) -> int:
        i = 0
        for axis in reversed(range(dimensions)):
            i = i * radix + coordinates[axis]
        return i

    for i in range(total):
        c = coords(i)
        for axis in range(dimensions):
            for step in (1, -1):
                neighbor = list(c)
                neighbor[axis] = (neighbor[axis] + step) % radix
                graph.add_edge(("io", i), ("io", index(neighbor)))
    return graph


class FabricNetwork:
    """Path and load computations over an explicit fabric graph."""

    def __init__(self, graph: nx.DiGraph):
        if graph.number_of_nodes() < 2:
            raise TopologyError("fabric needs >= 2 nodes")
        self.graph = graph
        self.io_nodes = sorted(n for n in graph.nodes if n[0] == "io")
        if len(self.io_nodes) < 2:
            raise TopologyError("fabric needs >= 2 I/O nodes")
        self._paths: Dict[Tuple[Hashable, Hashable], List] = {}

    def num_servers(self) -> int:
        return self.graph.number_of_nodes()

    def path(self, src_io: int, dst_io: int) -> List:
        """Shortest server path from I/O node src to I/O node dst."""
        key = (src_io, dst_io)
        if key not in self._paths:
            self._paths[key] = nx.shortest_path(
                self.graph, ("io", src_io), ("io", dst_io))
        return self._paths[key]

    def hops(self, src_io: int, dst_io: int) -> int:
        """Number of servers a packet traverses src -> dst (inclusive)."""
        return len(self.path(src_io, dst_io))

    def vlb_hops(self, src_io: int, intermediate_io: int,
                 dst_io: int) -> int:
        """Servers traversed by a two-phase VLB route (intermediate
        counted once)."""
        first = self.path(src_io, intermediate_io)
        second = self.path(intermediate_io, dst_io)
        return len(first) + len(second) - 1

    def path_latency_usec(self, num_servers_on_path: int,
                          per_server_usec: float = SERVER_LATENCY_USEC) -> float:
        """The Sec. 3.3 estimate: latency = servers-on-path x 24 us."""
        if num_servers_on_path < 1:
            raise TopologyError("a path visits >= 1 server")
        return num_servers_on_path * per_server_usec

    def worst_case_vlb_latency_usec(self) -> float:
        """Max two-phase latency over sampled I/O triples."""
        worst = 0
        ios = range(len(self.io_nodes))
        sample = list(ios)[: min(len(self.io_nodes), 8)]
        for s in sample:
            for d in sample:
                if s == d:
                    continue
                for i in sample:
                    if i in (s, d):
                        continue
                    worst = max(worst, self.vlb_hops(s, i, d))
        return self.path_latency_usec(max(worst, 2))

    def transit_load(self, uniform_rate_bps: float) -> Dict[Hashable, float]:
        """Per-node transit rate for a uniform all-to-all demand, counting
        every node on each shortest path (endpoints included)."""
        loads = {node: 0.0 for node in self.graph.nodes}
        n = len(self.io_nodes)
        pair_rate = uniform_rate_bps / (n - 1)
        for s in range(n):
            for d in range(n):
                if s == d:
                    continue
                for node in self.path(s, d):
                    loads[node] += pair_rate
        return loads


def current_server_fabric(num_ports: int) -> FabricNetwork:
    """Build the fabric the provisioner would pick for 'current' servers."""
    from .provision import provision
    from .topology import FullMesh

    topo = provision(num_ports, "current")
    if isinstance(topo, FullMesh):
        return FabricNetwork(mesh_graph(topo.io_servers))
    k = topo.k
    stages = topo.stages
    return FabricNetwork(fly_graph(k, stages, num_terminals=topo.io_servers))


def sec33_latency_estimate(num_ports: int = 1024) -> dict:
    """Reproduce the Sec. 3.3 data point: N=1024 on current servers means
    ~2 intermediate servers per port and ~96 us per-packet latency."""
    from .provision import provision
    topo = provision(num_ports, "current")
    intermediates_per_port = getattr(topo, "intermediate_servers",
                                     lambda: 0)() / num_ports
    servers_on_path = 2 + round(intermediates_per_port)
    return {
        "ports": num_ports,
        "intermediates_per_port": intermediates_per_port,
        "servers_on_path": servers_on_path,
        "latency_usec": servers_on_path * SERVER_LATENCY_USEC,
    }
