"""The reordering metric of Sec. 6.2.

"We measure reordering as the fraction of same-flow packet sequences that
were reordered within their TCP/UDP flow; for instance, if a TCP flow
consists of 5 packets that enter the cluster in sequence <p1..p5> and exit
in sequence <p1, p4, p2, p3, p5>, we count one reordered sequence."

We implement that as: within each flow, count maximal descending breaks --
every position where the exiting packet's ingress sequence number is not
greater than the maximum seen so far starts/extends one reordered
sequence; consecutive displaced packets count once.  For the example
above, <p2, p3> after p4 is a single reordered sequence.
"""

from __future__ import annotations

from typing import Dict, List

from ..net.flows import FiveTuple
from ..net.packet import Packet


class ReorderingMeter:
    """Observe egress packets and report the reordered-sequence fraction."""

    def __init__(self):
        self._egress_order: Dict[FiveTuple, List[int]] = {}

    def observe(self, packet: Packet) -> None:
        """Record one packet leaving the cluster (uses ``flow_seq``)."""
        flow = packet.five_tuple()
        self._egress_order.setdefault(flow, []).append(packet.flow_seq)

    def observe_sequence(self, flow: FiveTuple, seqs: List[int]) -> None:
        """Record a whole flow's egress order at once (testing hook)."""
        self._egress_order.setdefault(flow, []).extend(seqs)

    @staticmethod
    def reordered_sequences(seqs: List[int]) -> int:
        """Number of reordered sequences in one flow's egress order."""
        count = 0
        max_seen = 0
        in_reordered_run = False
        for seq in seqs:
            if seq > max_seen:
                max_seen = seq
                in_reordered_run = False
            else:
                # This packet was overtaken by a later one.
                if not in_reordered_run:
                    count += 1
                    in_reordered_run = True
        return count

    def total_sequences(self) -> int:
        """Total same-flow packet sequences observed.

        Following the paper's normalization, every maximal in-order run is
        one sequence; the fraction reordered is (reordered runs) / (all
        runs).
        """
        total = 0
        for seqs in self._egress_order.values():
            total += self._runs(seqs)
        return total

    @staticmethod
    def _runs(seqs: List[int]) -> int:
        if not seqs:
            return 0
        runs = 1
        max_seen = seqs[0]
        in_reordered_run = False
        for seq in seqs[1:]:
            if seq > max_seen:
                max_seen = seq
                if in_reordered_run:
                    runs += 1
                    in_reordered_run = False
            else:
                if not in_reordered_run:
                    runs += 1
                    in_reordered_run = True
        return runs

    def reordered_count(self) -> int:
        """Total reordered sequences across every observed flow.

        Flows are keyed by five-tuple and observed at their egress node,
        so a partitioned run's per-partition meters see disjoint flow
        sets -- summing their counts reproduces the global figure.
        """
        return sum(self.reordered_sequences(seqs)
                   for seqs in self._egress_order.values())

    def reordered_fraction(self) -> float:
        """Reordered sequences per same-flow packet sequence observed.

        The paper's example counts one reordered sequence in a 5-packet
        flow; normalizing by packets observed (each packet heads one
        potential same-flow sequence) reproduces the sub-percent scale of
        the Sec. 6.2 numbers.  :meth:`reordered_run_fraction` provides the
        alternative run-based normalization.
        """
        total = self.packets_observed()
        return self.reordered_count() / total if total else 0.0

    def reordered_run_fraction(self) -> float:
        """Reordered runs over all maximal same-flow runs (stricter)."""
        total = self.total_sequences()
        return self.reordered_count() / total if total else 0.0

    def packets_observed(self) -> int:
        return sum(len(seqs) for seqs in self._egress_order.values())

    def flows_observed(self) -> int:
        return len(self._egress_order)
