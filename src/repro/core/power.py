"""Power-management modeling (Sec. 8's proposed direction).

The discussion suggests reducing the cluster's power draw by slowing or
sleeping "system components that are not stressed by router workloads,
using commonly available low-power modes".  This module quantifies that:
given the bottleneck analysis (which components have headroom at the
operating point), estimate the savings from clocking each non-bottleneck
component down to its utilization.

The per-component power split of a 650 W server follows typical 2008-era
budgets: CPUs ~40 %, memory ~25 %, I/O+NICs ~20 %, fixed (fans, VRs,
disks) ~15 %.  Only the proportional part of an idle component's budget
is recoverable (low-power modes do not reach zero).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .. import calibration as cal
from ..errors import ConfigurationError
from ..hw.presets import NEHALEM
from ..hw.server import ServerSpec

#: Nominal server draw (2.6 kW / 4 servers).
SERVER_POWER_W = 650.0

#: Share of server power per component class.
POWER_SHARES = {
    "cpu": 0.40,
    "memory": 0.25,
    "io": 0.20,
    "fixed": 0.15,
}

#: Fraction of a component's budget that scales with utilization (the
#: rest is leakage/idle draw that low-power modes cannot recover).
PROPORTIONAL_FRACTION = {
    "cpu": 0.65,
    "memory": 0.5,
    "io": 0.5,
    "fixed": 0.0,
}


@dataclass(frozen=True)
class PowerEstimate:
    """Estimated per-server draw at an operating point."""

    baseline_w: float
    managed_w: float
    component_w: Dict[str, float]

    @property
    def savings_fraction(self) -> float:
        return 1.0 - self.managed_w / self.baseline_w


def component_utilizations(app: cal.AppCost, packet_bytes: int = 64,
                           offered_fraction: float = 1.0,
                           spec: ServerSpec = NEHALEM) -> Dict[str, float]:
    """Utilization of each component class at a fraction of saturation."""
    from ..perfmodel.throughput import max_loss_free_rate
    from ..workloads.spec import WorkloadSpec

    if not 0 < offered_fraction <= 1:
        raise ConfigurationError("offered_fraction must be in (0, 1]")
    result = max_loss_free_rate(WorkloadSpec.fixed(packet_bytes, app=app),
                                spec=spec)
    offered_pps = result.rate_pps * offered_fraction
    utils = result.utilization_at(offered_pps)
    return {
        "cpu": min(1.0, utils.get("cpu", 0.0)),
        "memory": min(1.0, utils.get("memory", 0.0)),
        "io": min(1.0, max(utils.get("io", 0.0), utils.get("pcie", 0.0))),
        "fixed": 1.0,
    }


def managed_power(app: cal.AppCost, packet_bytes: int = 64,
                  offered_fraction: float = 1.0,
                  spec: ServerSpec = NEHALEM) -> PowerEstimate:
    """Per-server power with utilization-proportional low-power modes."""
    utils = component_utilizations(app, packet_bytes, offered_fraction,
                                   spec)
    component_w = {}
    total = 0.0
    for component, share in POWER_SHARES.items():
        budget = SERVER_POWER_W * share
        proportional = PROPORTIONAL_FRACTION[component]
        draw = budget * ((1 - proportional)
                         + proportional * utils[component])
        component_w[component] = draw
        total += draw
    return PowerEstimate(baseline_w=SERVER_POWER_W, managed_w=total,
                         component_w=component_w)


def cluster_power_kw(num_servers: int, app: cal.AppCost,
                     packet_bytes: int = 64,
                     offered_fraction: float = 1.0,
                     managed: bool = True) -> float:
    """Cluster draw with or without power management."""
    if num_servers < 1:
        raise ConfigurationError("need >= 1 server")
    if not managed:
        return num_servers * SERVER_POWER_W / 1e3
    estimate = managed_power(app, packet_bytes, offered_fraction)
    return num_servers * estimate.managed_w / 1e3
