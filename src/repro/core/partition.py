"""One shard of a partitioned cluster simulation, and the merge step.

:class:`ClusterPartition` builds the subset of a
:class:`~repro.core.router.RouteBricksRouter` cluster assigned to one
partition: local nodes, local-to-local mesh links, and
:class:`~repro.simnet.partition.CrossLink` boundaries for every directed
cable whose receive side lives elsewhere.  Node seeds come from the same
:func:`~repro.simnet.rng.node_seeds` chain the single-sim build uses, so
node ``i`` rolls identical dice no matter how the cluster is sharded --
the keystone of the workers-independence guarantee.

Everything a partition measures lands in a :class:`PartitionFragment`
(a picklable result bundle); :func:`merge_fragments` folds fragments
into one :class:`~repro.core.router.SimulationReport` in partition-id
order, so merged scalars are bit-identical run to run and -- for
fault-free runs -- bit-identical to the single-heap engine.

The driving epoch loop lives in :mod:`repro.parallel`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..net.packet import Packet
from ..obs.hooks import ClusterObserver
from ..obs.metrics import MetricsRegistry
from ..simnet.links import Link
from ..simnet.partition import Partition, TransitRecord
from ..simnet.rng import node_seeds
from ..units import to_usec
from .node import ClusterNode
from .reordering import ReorderingMeter
from .router import SimulationReport

#: ``registry_config`` layout: (enabled, timeline_bin_sec,
#: trace_sample_every, profile, max_traces) -- enough to rebuild a
#: worker-local registry shaped exactly like the parent's.
RegistryConfig = Tuple[bool, float, int, bool, int]

#: Observer placement: ``"event"`` keeps the legacy self-rearming tick
#: chain inside the partition's own event queue (exactly one partition
#: runs this, preserving the single-sim event count); ``"barrier"``
#: partitions are sampled by the runner at epoch barriers that land on
#: the same tick grid; ``None`` disables observation.
OBSERVER_EVENT = "event"
OBSERVER_BARRIER = "barrier"


def registry_config_of(registry: MetricsRegistry) -> RegistryConfig:
    """The shape of ``registry``, as a picklable worker-side recipe."""
    return (registry.enabled, registry.timeline_bin_sec,
            registry.tracer.sample_every,
            registry.profiler is not None,
            registry.tracer.max_traces)


@dataclass(frozen=True)
class PartitionSpec:
    """Everything a worker needs to build and drive one partition.

    The spec is fully picklable: the router carries only plain
    configuration, arrivals are pre-realized ``(time, ingress, egress,
    wire)`` tuples (the parent rolls the arrival process once, so the
    offered traffic is identical at any worker count), and the fault
    schedule is shared data every partition filters for itself.
    """

    router: object                      # RouteBricksRouter
    assignment: Tuple[int, ...]         # node id -> partition id
    partition_id: int
    rate_limited_egress: bool = False
    failed_links: Tuple[Tuple[int, int], ...] = ()
    faults: Optional[object] = None     # FaultSchedule
    detection_latency_sec: Optional[float] = None
    fib_push_latency_sec: float = 0.0
    arrivals: Tuple[Tuple[float, int, int, tuple], ...] = ()
    observer_mode: Optional[str] = None
    observer_interval_sec: float = 1e-4
    registry_config: RegistryConfig = (False, 1e-4, 64, False, 256)


@dataclass
class PartitionFragment:
    """One partition's share of the run results (picklable)."""

    partition_id: int
    delivered_packets: int = 0
    delivered_bytes: int = 0
    direct_packets: int = 0
    indirect_packets: int = 0
    #: Raw latency observations in local egress order; the merge refills
    #: a histogram whose scalars are multiset-determined.
    latency_usec: List[float] = field(default_factory=list)
    reordered_sequences: int = 0
    reorder_packets: int = 0
    dropped_packets: int = 0
    node_stats: List[dict] = field(default_factory=list)
    flowlet_switches: int = 0
    flowlet_spills: int = 0
    fault_events: int = 0
    fault_flushed_packets: int = 0
    events_run: int = 0
    busy_seconds: float = 0.0
    registry: Optional[MetricsRegistry] = None


class ClusterPartition:
    """The live simulation island for one :class:`PartitionSpec`.

    Construction mirrors :meth:`RouteBricksRouter.simulate` step for
    step (build, failed links, fault injector, egress accounting,
    arrival scheduling, observer) so that events landing at equal
    simulated times keep the single-sim engine's schedule-order
    tie-break within the partition.
    """

    def __init__(self, spec: PartitionSpec):
        router = spec.router
        enabled, bin_sec, sample_every, profile, max_traces = \
            spec.registry_config
        # Always an explicit registry (possibly disabled): partitions
        # must never fall back to the process-global active registry,
        # which in an inline run would be the parent's.
        self.registry = MetricsRegistry(
            enabled=enabled, timeline_bin_sec=bin_sec,
            trace_sample_every=sample_every, profile=profile)
        self.registry.tracer.max_traces = max_traces
        self.spec = spec
        self.partition = Partition(spec.partition_id, seed=router.seed,
                                   metrics=self.registry)
        sim = self.partition.sim
        self.sim = sim
        n = router.num_nodes
        seeds = node_seeds(router.seed, n)
        local = [i for i in range(n)
                 if spec.assignment[i] == spec.partition_id]
        self.nodes: Dict[int, ClusterNode] = {
            i: ClusterNode(
                node_id=i, sim=sim, num_nodes=n,
                rng=random.Random(seeds[i]),
                use_flowlets=router.use_flowlets,
                link_busy_threshold_sec=router.link_busy_threshold_sec,
                metrics=self.registry)
            for i in local}
        for src_id in local:
            src = self.nodes[src_id]
            for dst_id in range(n):
                if dst_id == src_id:
                    continue
                name = "link-%d-%d" % (src_id, dst_id)
                if spec.assignment[dst_id] == spec.partition_id:
                    link = Link(sim, name=name,
                                rate_bps=router.internal_link_bps,
                                deliver=self.nodes[dst_id].receive_internal,
                                propagation_sec=router.propagation_sec)
                else:
                    link = self.partition.cross_link(
                        name, router.internal_link_bps, src_id, dst_id,
                        propagation_sec=router.propagation_sec)
                src.connect(dst_id, link)
        for node_id, node in self.nodes.items():
            self.partition.register_destination(node_id, node.receive_wire)
        if spec.rate_limited_egress:
            for node in self.nodes.values():
                node.egress_link = Link(
                    sim, name="ext-%d" % node.node_id,
                    rate_bps=router.port_rate_bps,
                    deliver=node._egress_done,
                    queue_packets=256)

        for src_id, dst_id in spec.failed_links:
            if spec.assignment[src_id] == spec.partition_id:
                self.nodes[src_id].failed_hops.add(dst_id)

        self.injector = None
        if spec.faults is not None:
            from ..faults.inject import (DEFAULT_DETECTION_LATENCY_SEC,
                                         PartitionFaultInjector)
            self.injector = PartitionFaultInjector(
                sim, self.nodes, spec.faults, num_nodes=n,
                detection_latency_sec=(
                    DEFAULT_DETECTION_LATENCY_SEC
                    if spec.detection_latency_sec is None
                    else spec.detection_latency_sec),
                fib_push_latency_sec=spec.fib_push_latency_sec)

        self.delivered_packets = 0
        self.delivered_bytes = 0
        self.direct_packets = 0
        self.indirect_packets = 0
        self.latency_usec: List[float] = []
        self.meter = ReorderingMeter()

        def on_egress(packet: Packet, now: float) -> None:
            self.delivered_packets += 1
            self.delivered_bytes += packet.length
            self.meter.observe(packet)
            self.latency_usec.append(to_usec(now - packet.arrival_time))
            if len(packet.path) <= 2:
                self.direct_packets += 1
            else:
                self.indirect_packets += 1

        for node in self.nodes.values():
            node.egress_callback = on_egress

        for time, ingress, egress, wire in spec.arrivals:
            sim.schedule_timer_at(
                time, lambda node=self.nodes[ingress], w=wire, e=egress:
                node.ingress(Packet.from_wire(w), e))

        self.observer = None
        if spec.observer_mode is not None:
            self.observer = ClusterObserver(
                sim, [self.nodes[i] for i in local], self.registry,
                interval_sec=spec.observer_interval_sec,
                keep_alive=((lambda: self.partition.keep_alive)
                            if spec.observer_mode == OBSERVER_EVENT
                            else None))
            if spec.observer_mode == OBSERVER_EVENT:
                self.observer.start()
            else:
                # Barrier-driven partitions still take the legacy t=0
                # sample; later samples come from the runner at epoch
                # barriers landing exactly on the tick grid.
                self.observer.sample()

    # -- runner protocol -----------------------------------------------------

    @property
    def lookahead_sec(self) -> Optional[float]:
        return self.partition.lookahead_sec

    def peek_time(self) -> Optional[float]:
        return self.sim.peek_time()

    def set_keep_alive(self, flag: bool) -> None:
        self.partition.keep_alive = flag

    def inject(self, records: List[TransitRecord]) -> None:
        self.partition.inject(records)

    def advance(self, until: float) -> List[TransitRecord]:
        return self.partition.advance(until)

    def sample_barrier(self) -> None:
        """Take one observer sample at an epoch barrier (no-op unless
        this partition is in barrier-observation mode)."""
        if (self.observer is not None
                and self.spec.observer_mode == OBSERVER_BARRIER):
            self.observer.sample()

    def finish(self) -> PartitionFragment:
        """Stop observing and bundle up this partition's results."""
        if self.observer is not None:
            self.observer.stop()
        frag = PartitionFragment(partition_id=self.spec.partition_id)
        frag.delivered_packets = self.delivered_packets
        frag.delivered_bytes = self.delivered_bytes
        frag.direct_packets = self.direct_packets
        frag.indirect_packets = self.indirect_packets
        frag.latency_usec = self.latency_usec
        frag.reordered_sequences = self.meter.reordered_count()
        frag.reorder_packets = self.meter.packets_observed()
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            frag.dropped_packets += node.dropped
            frag.node_stats.append({
                "node": node.node_id,
                "ingress": node.ingress_packets,
                "egress": node.egress_packets,
                "intermediate": node.intermediate_packets,
            })
            if node.flowlets is not None:
                frag.flowlet_switches += node.flowlets.switches
                frag.flowlet_spills += node.flowlets.spills
        if self.injector is not None:
            frag.fault_events = self.injector.log.events_applied
            frag.fault_flushed_packets = self.injector.log.flushed_packets
        frag.events_run = self.sim.events_run
        frag.registry = self.registry if self.registry.enabled else None
        return frag


def merge_fragments(fragments: List[PartitionFragment], *,
                    offered_packets: int, duration_sec: float,
                    workers: int, epochs: int,
                    registry: Optional[MetricsRegistry] = None) \
        -> SimulationReport:
    """Fold partition fragments into one :class:`SimulationReport`.

    Fragments are processed in partition-id order, so every sum, the
    latency histogram's backing multiset, and the merged metrics
    registry come out identical regardless of which worker finished
    first.  When ``registry`` is given, each fragment's worker-local
    registry is merged into it.
    """
    report = SimulationReport()
    report.offered_packets = offered_packets
    report.duration_sec = duration_sec
    report.workers = workers
    report.epochs = epochs
    reordered = 0
    reorder_packets = 0
    for frag in sorted(fragments, key=lambda f: f.partition_id):
        report.delivered_packets += frag.delivered_packets
        report.delivered_bytes += frag.delivered_bytes
        report.direct_packets += frag.direct_packets
        report.indirect_packets += frag.indirect_packets
        for value in frag.latency_usec:
            report.latency_usec.observe(value)
        reordered += frag.reordered_sequences
        reorder_packets += frag.reorder_packets
        report.dropped_packets += frag.dropped_packets
        report.node_stats.extend(frag.node_stats)
        report.flowlet_switches += frag.flowlet_switches
        report.flowlet_spills += frag.flowlet_spills
        report.fault_events += frag.fault_events
        report.fault_flushed_packets += frag.fault_flushed_packets
        report.events_run += frag.events_run
        report.partition_busy_seconds.append(frag.busy_seconds)
        if registry is not None and frag.registry is not None:
            registry.merge(frag.registry)
    report.node_stats.sort(key=lambda row: row["node"])
    report.reordered_fraction = (reordered / reorder_packets
                                 if reorder_packets else 0.0)
    return report
