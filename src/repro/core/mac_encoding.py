"""The MAC-address output-node encoding trick (Sec. 6.1).

RB4 processes each packet's IP headers only once, at its input node: the
chosen output node's id is encoded in the destination MAC, and every
subsequent node steers the packet by *receive queue* (NICs assign packets
to RX queues by MAC), never touching the headers.  The trick needs as many
RX queues on each internal port as the router has external ports, which
caps it at ~64 external ports with contemporary NICs -- checked here.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..net.packet import Packet

#: Receive-queue count of the prototype's NICs ("32-64 RX and TX queues
#: already exist", Sec. 4.2); the MAC trick supports at most this many
#: external ports.
MAX_ENCODED_NODES = 64


def encode_output_node(packet: Packet, node_id: int,
                       max_nodes: int = MAX_ENCODED_NODES) -> None:
    """Stamp ``node_id`` into the packet's destination MAC."""
    if not 0 <= node_id < max_nodes:
        raise ConfigurationError(
            "node id %d not encodable (max %d with current NICs)"
            % (node_id, max_nodes))
    packet.eth.dst = packet.eth.dst.with_node_id(node_id)
    packet.annotations["encoded_output"] = node_id


def decode_output_node(packet: Packet) -> int:
    """Recover the output node from the destination MAC.

    This is what an intermediate node's CPU does *instead of* reading IP
    headers: the RX queue the packet sits in implies its MAC, which
    implies the output node.
    """
    return packet.eth.dst.node_id()


def rx_queues_needed(num_external_ports: int) -> int:
    """RX queues each internal port needs for MAC steering."""
    if num_external_ports < 1:
        raise ConfigurationError("need >= 1 external port")
    return num_external_ports


def mac_trick_feasible(num_external_ports: int,
                       nic_queues: int = MAX_ENCODED_NODES) -> bool:
    """Whether single-lookup forwarding works at this port count."""
    return rx_queues_needed(num_external_ports) <= nic_queues
