"""The RouteBricks cluster router (the paper's primary contribution).

Parallelizes a router with N external ports across commodity servers:

* **VLB switching** (:mod:`.vlb`): Valiant load balancing and Direct VLB
  give 100 % throughput and fairness with purely local decisions (Sec. 3.2).
* **Topologies** (:mod:`.topology`, :mod:`.provision`): full mesh while
  server fanout allows, k-ary n-fly beyond; plus the rejected
  switched-cluster cost comparison (Sec. 3.3, Fig. 3).
* **Reordering avoidance** (:mod:`.flowlet`, :mod:`.reordering`): Flare-
  style flowlet switching bounds same-flow reordering (Sec. 6.1-6.2).
* **The cluster router** (:mod:`.router`, :mod:`.node`): the RB4 prototype
  and arbitrary-size clusters, as an analytic throughput model plus a
  packet-level DES; per-hop latency model in :mod:`.latency`.
"""

from .vlb import DirectVlb, ClassicVlb, VlbAnalysis, analyze
from .fabric import FabricNetwork, fly_graph, mesh_graph, torus_graph
from .flowlet import FlowletTable
from .resequencer import Resequencer
from .mac_encoding import decode_output_node, encode_output_node
from .topology import (
    ClosReference,
    FullMesh,
    KAryNFly,
    Torus,
    switched_cluster_equivalent_servers,
)
from .provision import ServerModel, provision, SERVER_MODELS
from .latency import cluster_latency_usec, server_latency_usec
from .reordering import ReorderingMeter
from .sizing import conclusion_claims, ports_per_server
from .control import ClusterManager
from .router import ClusterThroughput, RouteBricksRouter, SimulationReport
from .switching import check_fairness, check_throughput

__all__ = [
    "DirectVlb",
    "ClassicVlb",
    "VlbAnalysis",
    "analyze",
    "FabricNetwork",
    "mesh_graph",
    "fly_graph",
    "torus_graph",
    "FlowletTable",
    "Resequencer",
    "encode_output_node",
    "decode_output_node",
    "FullMesh",
    "KAryNFly",
    "Torus",
    "ClosReference",
    "switched_cluster_equivalent_servers",
    "ServerModel",
    "provision",
    "SERVER_MODELS",
    "cluster_latency_usec",
    "server_latency_usec",
    "ReorderingMeter",
    "conclusion_claims",
    "ports_per_server",
    "ClusterManager",
    "ClusterThroughput",
    "RouteBricksRouter",
    "SimulationReport",
    "check_fairness",
    "check_throughput",
]
