"""Cluster interconnect topologies and the Fig. 3 cost model.

The paper picks, per configuration: a **full mesh** while the per-server
fanout allows directly cabling all servers, then a **k-ary n-fly**
(generalized butterfly) with extra intermediate servers; a **torus** was
evaluated and rejected (larger clusters for the same port count); and a
**switched cluster** of strictly non-blocking Clos-arranged commodity
Ethernet switches was rejected on cost and on needing load-sensitive
routing in switches (Sec. 3.3).

Cost model
----------

* An I/O server handles ``s`` external ports (processing rate 3sR).
* Mesh: feasible while ``M - 1 <= fanout`` with ``M = ceil(N/s)`` servers;
  internal links need only 2sR/M, so 1 G ports suffice at scale.
* n-fly: ``n = ceil(log_k M)`` stages.  Each intermediate server is
  processing-limited: it can switch at most 3sR, while VLB sends every
  packet across the fabric twice, so each stage needs at least
  ``2NR / 3sR`` servers (the fanout bound M/k is usually looser).  This
  reproduces the paper's "2 intermediate servers per port at N = 1024
  with current servers" data point: 3 stages x 2/3 server/port.
* Torus: a k-ary d-cube; VLB's two phases average ~d*k/4 hops each, every
  hop consuming switching capacity, which is why the torus needs more
  servers than the fly for the same N.
* Switched cluster: N servers for processing plus a strictly non-blocking
  Clos of 48-port switches, converted to server-equivalents at 4 Arista
  ports per server ($500 x 4 = $2000).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from .. import calibration as cal
from ..errors import TopologyError

#: VLB forwards every packet across the interconnect twice (two phases).
_VLB_PHASES = 2
#: Per-server processing budget in port-equivalents (Sec. 3.2: 3R per port).
_PROCESSING_FACTOR = 3


@dataclass(frozen=True)
class FullMesh:
    """Directly cable every pair of servers."""

    num_ports: int
    ports_per_server: int
    fanout: int

    def __post_init__(self):
        if self.num_ports < 2:
            raise TopologyError("mesh needs >= 2 external ports")
        if self.ports_per_server < 1 or self.fanout < 1:
            raise TopologyError("ports_per_server and fanout must be >= 1")

    @property
    def io_servers(self) -> int:
        return math.ceil(self.num_ports / self.ports_per_server)

    def feasible(self) -> bool:
        """Does each server have enough NIC ports to reach all others?"""
        return self.io_servers - 1 <= self.fanout

    def total_servers(self) -> int:
        if not self.feasible():
            raise TopologyError(
                "mesh of %d servers exceeds fanout %d"
                % (self.io_servers, self.fanout))
        return self.io_servers

    def internal_link_rate_bps(self, port_rate_bps: float) -> float:
        """2sR/M per internal link (Sec. 3.3)."""
        return (_VLB_PHASES * self.ports_per_server * port_rate_bps
                / self.io_servers)

    def links(self) -> List[Tuple[int, int]]:
        """All directed internal links (i, j), i != j."""
        m = self.io_servers
        return [(i, j) for i in range(m) for j in range(m) if i != j]


@dataclass(frozen=True)
class KAryNFly:
    """A generalized butterfly of server nodes.

    ``k`` is the per-node fanout used inside the fabric (each fly node
    needs k inputs + k outputs, so k <= fanout // 2).
    """

    num_ports: int
    ports_per_server: int
    fanout: int

    def __post_init__(self):
        if self.num_ports < 2:
            raise TopologyError("fly needs >= 2 external ports")
        if self.fanout < 4:
            raise TopologyError("fly needs fanout >= 4 (k >= 2)")

    @property
    def io_servers(self) -> int:
        return math.ceil(self.num_ports / self.ports_per_server)

    @property
    def k(self) -> int:
        return max(2, self.fanout // 2)

    @property
    def stages(self) -> int:
        m = self.io_servers
        if m <= self.k:
            return 1
        return math.ceil(math.log(m, self.k))

    def servers_per_stage(self) -> int:
        """max(fanout bound, processing bound) intermediate servers."""
        fanout_bound = math.ceil(self.io_servers / self.k)
        processing_bound = math.ceil(
            _VLB_PHASES * self.num_ports
            / (_PROCESSING_FACTOR * self.ports_per_server))
        return max(fanout_bound, processing_bound)

    def intermediate_servers(self) -> int:
        return self.stages * self.servers_per_stage()

    def total_servers(self) -> int:
        return self.io_servers + self.intermediate_servers()


@dataclass(frozen=True)
class Torus:
    """A k-ary d-cube of the I/O servers (no extra nodes, longer paths).

    With VLB, the average route crosses ~d*k/4 hops per phase; every hop
    is switching work, so the processing-feasible server count grows with
    the hop count -- the reason the paper chose the fly.
    """

    num_ports: int
    ports_per_server: int
    dimensions: int = 3

    def __post_init__(self):
        if self.num_ports < 2:
            raise TopologyError("torus needs >= 2 external ports")
        if self.dimensions < 1:
            raise TopologyError("torus needs >= 1 dimension")

    @property
    def io_servers(self) -> int:
        return math.ceil(self.num_ports / self.ports_per_server)

    @property
    def radix(self) -> int:
        return max(2, math.ceil(self.io_servers ** (1.0 / self.dimensions)))

    def average_hops(self) -> float:
        return _VLB_PHASES * self.dimensions * self.radix / 4.0

    def total_servers(self) -> int:
        """Grow the cube until aggregate switching capacity covers the
        through-traffic (every server also switches transit packets)."""
        base = self.io_servers
        hops = self.average_hops()
        # Total switching demand: N*R per phase per hop; per-server budget
        # is 3sR of which 2sR is consumed by its own ingress/egress.
        transit_budget_per_server = (_PROCESSING_FACTOR - 2) * self.ports_per_server
        transit_demand_ports = self.num_ports * hops
        needed = math.ceil(transit_demand_ports / max(transit_budget_per_server, 1e-9))
        return max(base, needed)

    def degree(self) -> int:
        return 2 * self.dimensions


@dataclass(frozen=True)
class ClosReference:
    """The rejected switched cluster: servers + non-blocking switch Clos."""

    num_ports: int
    switch_ports: int = cal.SWITCH_PORTS

    def __post_init__(self):
        if self.num_ports < 1:
            raise TopologyError("need >= 1 port")
        if self.switch_ports < 4:
            raise TopologyError("switches need >= 4 ports")

    def switch_count_ports(self) -> int:
        """Total switch ports in a strictly non-blocking fabric for
        ``num_ports`` endpoints: one switch while it fits, else a 3-stage
        Clos with m = 2n - 1 middle switches, recursing (5-stage, ...)
        when a middle switch would itself exceed the port count."""
        return self._clos_ports(self.num_ports)

    def _clos_ports(self, n_endpoints: int) -> int:
        p = self.switch_ports
        if n_endpoints <= p:
            return p  # one switch
        # Ingress switches expose n endpoint ports and m = 2n - 1 uplinks,
        # n + m <= p  ->  n = (p + 1) // 3.
        n = (p + 1) // 3
        m = 2 * n - 1
        ingress = math.ceil(n_endpoints / n)
        # Ingress + egress stages, plus m middle fabrics of `ingress`
        # ports each (a single switch or a recursive Clos).
        return 2 * ingress * p + m * self._clos_ports(ingress)

    def equivalent_servers(self) -> int:
        """Cluster cost in server units (Fig. 3's '48-port switches' curve)."""
        ports_per_server = cal.SERVER_COST_USD // cal.ARISTA_PORT_COST_USD
        return self.num_ports + math.ceil(
            self.switch_count_ports() / ports_per_server)


def switched_cluster_equivalent_servers(num_ports: int) -> int:
    """Convenience wrapper used by the Fig. 3 bench."""
    return ClosReference(num_ports).equivalent_servers()


def balanced_partitions(num_nodes: int, num_partitions: int) -> List[int]:
    """Assign cluster nodes to simulation partitions, contiguously.

    Returns ``assignment[node_id] -> partition_id`` with partition sizes
    differing by at most one and node ids contiguous per partition (node
    0 in partition 0).  Contiguity keeps the mapping stable and obvious
    in reports; in a full mesh with uniform traffic any balanced split
    yields the same cross-partition load, so nothing fancier is needed.
    """
    if num_nodes < 1:
        raise TopologyError("need >= 1 node to partition")
    if not 1 <= num_partitions <= num_nodes:
        raise TopologyError(
            "partition count must be in [1, %d], got %r"
            % (num_nodes, num_partitions))
    base, extra = divmod(num_nodes, num_partitions)
    assignment: List[int] = []
    for pid in range(num_partitions):
        size = base + (1 if pid < extra else 0)
        assignment.extend([pid] * size)
    return assignment
