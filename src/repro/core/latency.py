"""Per-server and cluster latency model (Sec. 6.2).

A packet's traversal of one server costs two back-and-forth DMA transfers
(packet + descriptor), CPU processing, and up to kn-1 packets of NIC-batch
wait.  The paper's decomposition for a routed 64 B packet:

    4 x 2.56 us (DMA) + 12.8 us (batch wait) + 0.8 us (processing) = 24 us

Subsequent nodes skip IP processing (MAC trick): exit nodes run minimal
forwarding (0.37 us), and intermediate nodes additionally overlap the
descriptor DMAs with the payload DMAs, leaving 2 transfers visible.
End-to-end: 47.6 us for a direct (2-node) path, 66.4 us for an indirect
(3-node) path -- matching the paper's 47.6-66.4 us range.
"""

from __future__ import annotations

from .. import calibration as cal
from ..errors import ConfigurationError

_ROLE_PROCESS_USEC = {
    "input": cal.ROUTE_PROCESS_USEC,
    "output": cal.FORWARD_PROCESS_USEC,
    "intermediate": cal.INTERMEDIATE_PROCESS_USEC,
}

_ROLE_DMA_TRANSFERS = {
    "input": 4,
    "output": 4,
    "intermediate": 2,
}


def server_latency_usec(role: str = "input", kn: int = cal.DEFAULT_KN,
                        packet_rate_pps: float = None) -> float:
    """Latency contributed by one server in the given role (microseconds).

    ``packet_rate_pps`` refines the batch wait: at rate r the expected wait
    for kn-1 successors is (kn-1)/r; the default (None) uses the paper's
    worst-case figure of 16 x 0.8 us.
    """
    if role not in _ROLE_PROCESS_USEC:
        raise ConfigurationError("role must be input|output|intermediate")
    if not 1 <= kn <= cal.MAX_NIC_BATCH:
        raise ConfigurationError("kn must be in [1, %d]" % cal.MAX_NIC_BATCH)
    dma = _ROLE_DMA_TRANSFERS[role] * cal.DMA_TRANSFER_USEC
    if packet_rate_pps is None:
        batch_wait = cal.BATCH_WAIT_USEC * (kn / cal.MAX_NIC_BATCH)
    else:
        if packet_rate_pps <= 0:
            raise ConfigurationError("packet rate must be positive")
        batch_wait = min(cal.BATCH_WAIT_USEC * (kn / cal.MAX_NIC_BATCH),
                         (kn - 1) / packet_rate_pps * 1e6)
    return dma + batch_wait + _ROLE_PROCESS_USEC[role]


def cluster_latency_usec(hops: int, kn: int = cal.DEFAULT_KN) -> float:
    """End-to-end latency through a VLB cluster path of ``hops`` servers.

    ``hops=2`` is a direct path (input + output node), ``hops=3`` adds one
    intermediate.
    """
    if hops < 2:
        raise ConfigurationError("a cluster path visits >= 2 servers")
    total = server_latency_usec("input", kn)
    total += (hops - 2) * server_latency_usec("intermediate", kn)
    total += server_latency_usec("output", kn)
    return total


def latency_range_usec(kn: int = cal.DEFAULT_KN) -> tuple:
    """(direct, indirect) latency -- the paper's 47.6-66.4 us range."""
    return cluster_latency_usec(2, kn), cluster_latency_usec(3, kn)


def server_latency_with_timeout_usec(role: str, kn: int,
                                     packet_rate_pps: float,
                                     timeout_sec: float) -> float:
    """Per-server latency with the batching-timeout driver feature.

    The paper notes that at low packet rates NIC-driven batching inflates
    latency, and proposes "a timeout to limit the amount of time a packet
    can wait to be batched" as future driver work (Sec. 4.2).  With the
    timeout, the batch wait is bounded by ``timeout_sec`` regardless of
    how slowly the remaining kn-1 packets trickle in.
    """
    if role not in _ROLE_PROCESS_USEC:
        raise ConfigurationError("role must be input|output|intermediate")
    if timeout_sec <= 0:
        raise ConfigurationError("timeout must be positive")
    if packet_rate_pps <= 0:
        raise ConfigurationError("packet rate must be positive")
    dma = _ROLE_DMA_TRANSFERS[role] * cal.DMA_TRANSFER_USEC
    natural_wait_usec = (kn - 1) / packet_rate_pps * 1e6
    batch_wait = min(cal.BATCH_WAIT_USEC * (kn / cal.MAX_NIC_BATCH),
                     natural_wait_usec, timeout_sec * 1e6)
    return dma + batch_wait + _ROLE_PROCESS_USEC[role]
