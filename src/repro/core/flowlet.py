"""Flare-style flowlet tracking for reordering avoidance (Sec. 6.1).

Two rules bound reordering: (1) same-flow packets arriving within
``delta`` of each other keep using the flow's current path whenever that
path has capacity; (2) after an inactivity gap longer than ``delta`` the
flow may be re-assigned to any path (no packet can be overtaken across a
100 ms gap by cluster paths that differ by tens of microseconds).  When a
flowlet's current path is saturated the packet spills to per-packet
balancing -- the case that produces RB4's residual 0.15 % reordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable

from .. import calibration as cal
from ..errors import ConfigurationError


@dataclass
class _FlowletEntry:
    path: int
    last_seen: float
    packets: int = 0


class FlowletTable:
    """Per-flow path pinning with an inactivity timeout.

    ``assign`` returns the path for a packet and keeps the per-flow state;
    the caller supplies a ``path_available`` predicate (local link-load
    information -- VLB needs nothing global) and a ``fresh_path`` factory
    used when a new flowlet starts or the pinned path is saturated.
    """

    def __init__(self, delta_sec: float = cal.FLOWLET_DELTA_SEC,
                 max_entries: int = 1 << 20):
        if delta_sec <= 0:
            raise ConfigurationError("delta must be positive")
        if max_entries < 1:
            raise ConfigurationError("max_entries must be >= 1")
        self.delta_sec = delta_sec
        self.max_entries = max_entries
        self._table: Dict[Hashable, _FlowletEntry] = {}
        self.switches = 0       # flowlet boundary re-assignments
        self.spills = 0         # mid-flowlet path changes (reordering risk)
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._table)

    def assign(self, flow: Hashable, now: float,
               path_available: Callable[[int], bool],
               fresh_path: Callable[[], int]) -> int:
        """Path for the next packet of ``flow`` at time ``now``."""
        entry = self._table.get(flow)
        if entry is not None and now < entry.last_seen:
            raise ConfigurationError("time ran backwards for flow %r" % (flow,))
        if entry is None:
            self._maybe_evict(now)
            path = fresh_path()
            self._table[flow] = _FlowletEntry(path=path, last_seen=now,
                                              packets=1)
            return path
        gap = now - entry.last_seen
        entry.last_seen = now
        entry.packets += 1
        if gap > self.delta_sec:
            # Flowlet boundary: safe to re-balance.
            new_path = fresh_path()
            if new_path != entry.path:
                self.switches += 1
                entry.path = new_path
            return entry.path
        if path_available(entry.path):
            return entry.path
        # The pinned path is full mid-flowlet: spill (may reorder).
        new_path = fresh_path()
        if new_path != entry.path:
            self.spills += 1
            entry.path = new_path
        return entry.path

    def _maybe_evict(self, now: float) -> None:
        """Drop idle entries when the table is full (simple full sweep --
        adequate for simulation scales)."""
        if len(self._table) < self.max_entries:
            return
        idle = [flow for flow, entry in self._table.items()
                if now - entry.last_seen > self.delta_sec]
        for flow in idle:
            del self._table[flow]
            self.evictions += 1
        if len(self._table) >= self.max_entries:
            # Everything is active; evict the stalest entry.
            stalest = min(self._table, key=lambda f: self._table[f].last_seen)
            del self._table[stalest]
            self.evictions += 1

    def active_flows(self, now: float) -> int:
        """Flows seen within the last delta."""
        return sum(1 for entry in self._table.values()
                   if now - entry.last_seen <= self.delta_sec)


def cpu_overhead_cycles() -> float:
    """Per-ingress-packet CPU cost of reordering avoidance (calibrated from
    RB4's measured 12 Gbps, Sec. 6.2): per-flow counters, arrival
    timestamps, and link-utilization tracking."""
    return cal.REORDER_AVOIDANCE_CYCLES
