"""A complete RouteBricks node built out of Click elements, and a cluster
of them wired port-to-port.

This is the functional end-to-end router: the configuration mirrors RB4's
(Sec. 6.1, 8) --

* external ingress: PollDevice -> CheckIPHeader -> DecIPTTL -> VLBIngress
  -> ToDevice toward the chosen next hop (or the local external TX);
  routing misses feed an ICMP Destination Unreachable generator, TTL
  expiry an ICMP Time Exceeded generator;
* internal ingress: PollDevice -> VLBTransit -> ToDevice (steering by the
  MAC-encoded output node; no IP processing);
* the cluster moves packets between nodes by draining each internal TX
  ring into the peer's RX ring (the "wire").

Packet movement is driven in rounds (the Click schedulers' rounds), which
is sufficient for functional verification; timing behavior lives in the
DES (`repro.core.router`).
"""

from __future__ import annotations

from typing import Dict, List

from ..click.elements.cluster import VLBIngress, VLBTransit
from ..click.elements.device import PollDevice, ToDevice
from ..click.elements.icmp import IcmpErrorGenerator
from ..click.elements.ip import CheckIPHeader, DecIPTTL
from ..click.graph import RouterGraph
from ..click.scheduler import Scheduler
from ..errors import ConfigurationError
from ..hw.presets import NEHALEM
from ..hw.server import Server
from ..net.addresses import IPv4Address
from ..routing.table import RoutingTable


class ClickClusterNode:
    """One cluster server running the RB4 Click configuration."""

    def __init__(self, node_id: int, num_nodes: int, table: RoutingTable,
                 use_flowlets: bool = True, seed: int = 0):
        if num_nodes < 2:
            raise ConfigurationError("cluster needs >= 2 nodes")
        if num_nodes > NEHALEM.max_ports:
            raise ConfigurationError(
                "a full mesh of %d nodes exceeds the server's %d ports"
                % (num_nodes, NEHALEM.max_ports))
        self.node_id = node_id
        self.num_nodes = num_nodes
        # Port 0 is the external line; port p (1 <= p < num_nodes) leads
        # to node (node_id + p) mod num_nodes.
        self.server = Server(NEHALEM, num_ports=num_nodes, queues_per_port=1)
        for port in self.server.ports[1:]:
            port.mac_steering = True
        self.graph = RouterGraph()
        self.scheduler = Scheduler()
        self._build(table, use_flowlets, seed)
        self._pin_to_cores()

    # -- port arithmetic ----------------------------------------------------

    def port_toward(self, peer: int) -> int:
        """The local port index leading to cluster node ``peer``."""
        if peer == self.node_id:
            return 0
        return (peer - self.node_id) % self.num_nodes

    def peer_of_port(self, port: int) -> int:
        """The cluster node at the far end of local port ``port``."""
        if port == 0:
            raise ConfigurationError("port 0 is the external line")
        return (self.node_id + port) % self.num_nodes

    # -- graph construction ---------------------------------------------------

    def _build(self, table: RoutingTable, use_flowlets: bool,
               seed: int) -> None:
        g = self.graph
        router_address = IPv4Address((192 << 24) | (88 << 16) | self.node_id)

        # One ToDevice per local port.
        self.to_devices: List[ToDevice] = []
        for port_index in range(self.num_nodes):
            device = g.add(ToDevice(self.server.port(port_index),
                                    name="tx-p%d" % port_index))
            self.to_devices.append(device)

        # External ingress chain.
        self.ext_poll = g.add(PollDevice(self.server.port(0),
                                         name="rx-ext"))
        check = g.add(CheckIPHeader(name="check"))
        ttl = g.add(DecIPTTL(name="ttl"))
        self.ingress = g.add(VLBIngress(
            table, self_node=self.node_id, num_nodes=self.num_nodes,
            use_flowlets=use_flowlets, seed=seed, name="vlb-ingress"))
        ttl_icmp = g.add(IcmpErrorGenerator(router_address, "time-exceeded",
                                            name="icmp-ttl"))
        miss_icmp = g.add(IcmpErrorGenerator(router_address, "unreachable",
                                             name="icmp-miss"))
        self.ext_poll.connect_to(check)
        check.connect_to(ttl)
        ttl.connect_to(self.ingress, output=0)
        ttl.connect_to(ttl_icmp, output=1)
        ttl_icmp.connect_to(self.to_devices[0])
        # VLBIngress output i goes toward cluster node i.
        for node in range(self.num_nodes):
            self.ingress.connect_to(self.to_devices[self.port_toward(node)],
                                    output=node)
        self.ingress.connect_to(miss_icmp, output=self.num_nodes)
        miss_icmp.connect_to(self.to_devices[0])

        # Internal ingress chains: one per internal port.
        self.transit_polls: List[PollDevice] = []
        for port_index in range(1, self.num_nodes):
            poll = g.add(PollDevice(self.server.port(port_index),
                                    name="rx-p%d" % port_index))
            transit = g.add(VLBTransit(self_node=self.node_id,
                                       num_nodes=self.num_nodes,
                                       name="transit-p%d" % port_index))
            poll.connect_to(transit)
            for node in range(self.num_nodes):
                transit.connect_to(
                    self.to_devices[self.port_toward(node)]
                    if node != self.node_id else self.to_devices[0],
                    output=node)
            self.transit_polls.append(poll)
        g.validate()

    def _pin_to_cores(self) -> None:
        """Statically assign every poll chain to its own core (rule 1:
        one core per queue; rule 2 holds because each chain is push-only
        from poll to ToDevice on the same thread)."""
        cores = self.server.cores
        polls = [self.ext_poll] + list(self.transit_polls)
        if len(polls) > len(cores):
            raise ConfigurationError("more input queues than cores")
        for index, poll in enumerate(polls):
            thread = self.scheduler.spawn(cores[index])
            thread.add_poll_task(poll)
            # The push chain downstream of a poll runs on the same core;
            # own it so its cycle costs are charged there (rule 2).
            if poll is self.ext_poll:
                for name in ("check", "ttl", "vlb-ingress", "icmp-ttl",
                             "icmp-miss"):
                    thread.own(self.graph[name])
            else:
                thread.own(self.graph["transit-p%d" % index])
        # TX queues: spread ownership over the same threads (each TX queue
        # is touched by every ingress chain in this functional model; the
        # DES-level model charges the contention cost, the functional
        # model only tracks ownership for reporting).
        for index, device in enumerate(self.to_devices):
            self.scheduler.threads[index % len(self.scheduler.threads)].own(
                device)

    # -- execution ------------------------------------------------------------

    def run_round(self, now: float = 0.0) -> int:
        """One scheduling round on every thread; returns packets moved."""
        self.ingress.now = now
        return self.scheduler.run_rounds(1)

    def cycles_used(self) -> float:
        """Total CPU cycles charged across this node's cores."""
        return sum(core.cycles_used for core in self.server.cores)

    def cost_breakdown(self, packet_bytes: float = 64) -> List[dict]:
        """Traversal-weighted per-element resource costs of this node's
        graph (one row per element, from :func:`repro.costs.element_costs`)."""
        from ..costs import element_costs
        return element_costs(self.graph, packet_bytes)

    def drain_external(self) -> List:
        """Packets leaving on the external line."""
        return self.to_devices[0].drain()

    def drain_toward(self, peer: int) -> List:
        """Packets queued on the internal port toward ``peer``."""
        return self.to_devices[self.port_toward(peer)].drain()


class ClickCluster:
    """A full mesh of :class:`ClickClusterNode` with explicit wiring."""

    def __init__(self, num_nodes: int, table: RoutingTable,
                 use_flowlets: bool = True, seed: int = 0):
        self.nodes = [ClickClusterNode(i, num_nodes, table,
                                       use_flowlets=use_flowlets,
                                       seed=seed + i)
                      for i in range(num_nodes)]
        self.num_nodes = num_nodes
        self.delivered: Dict[int, List] = {i: [] for i in range(num_nodes)}

    def inject(self, node_id: int, packet) -> bool:
        """A packet arrives on a node's external line."""
        return self.nodes[node_id].server.port(0).receive(packet)

    def _wire(self) -> int:
        """Move packets across every internal cable (TX ring -> peer RX)."""
        moved = 0
        for node in self.nodes:
            for peer_index in range(self.num_nodes):
                if peer_index == node.node_id:
                    continue
                for packet in node.drain_toward(peer_index):
                    peer = self.nodes[peer_index]
                    peer.server.port(
                        peer.port_toward(node.node_id)).receive(packet)
                    moved += 1
        return moved

    def run(self, rounds: int = 8, now: float = 0.0) -> int:
        """Alternate scheduling rounds and wire transfers until quiescent
        or the round budget is spent.  Returns total packets delivered."""
        if rounds < 1:
            raise ConfigurationError("rounds must be >= 1")
        total = 0
        for _ in range(rounds):
            moved = 0
            for node in self.nodes:
                moved += node.run_round(now)
            moved += self._wire()
            for node in self.nodes:
                out = node.drain_external()
                self.delivered[node.node_id].extend(out)
                total += len(out)
            if moved == 0:
                break
        return total
