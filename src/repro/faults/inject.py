"""DES integration: apply a fault schedule to a running cluster.

The injector turns :class:`~repro.faults.schedule.FaultSchedule` events
into simulator callbacks against the live :class:`~repro.core.node.ClusterNode`
objects, modelling what each failure physically does:

* **node_down** -- the server halts *now*: its transmit queues are
  flushed (those packets are counted as losses), anything scheduled
  inside it drops on arrival.  Peers only notice after
  ``detection_latency_sec`` (timeout-driven local detection -- VLB needs
  no global view), then stop choosing it as a next hop.
* **node_up** -- the server reboots with fresh state; peers re-admit it
  after the same detection latency.
* **link_down / link_up** -- carrier loss on a directed cable is detected
  locally and immediately by the transmitting NIC; queued packets on the
  cut cable are lost.
* **nic_stall** -- the node's transmit rings wedge for a while: packets
  queue (and overflow) but nothing is unplugged and no detour happens.

If a :class:`~repro.core.control.ClusterManager` is attached, node
failures/recoveries also drive the control plane after the detection
latency plus ``fib_push_latency_sec``, and each reaction's
:class:`~repro.core.control.ProvisionUpdate` is recorded with its
convergence timestamp -- making control-plane convergence a measurable
quantity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..errors import ConfigurationError
from ..results import RunResult
from .schedule import (
    FaultEvent,
    FaultSchedule,
    LINK_DOWN,
    LINK_UP,
    NIC_STALL,
    NODE_DOWN,
    NODE_UP,
)

#: Default peer-failure detection latency (timeout-based heartbeating at
#: cluster RTT scales; tens of microseconds in-rack would be aggressive,
#: a millisecond is conservative).
DEFAULT_DETECTION_LATENCY_SEC = 1e-3


@dataclass(frozen=True)
class ConvergenceRecord(RunResult):
    """One control-plane reaction, timestamped."""

    _summary_fields = ("event", "node", "failed_at", "converged_at")

    event: str                 # node_down | node_up
    node: int
    failed_at: float           # when the fault happened
    detected_at: float         # when peers / control plane saw it
    converged_at: float        # when fresh FIBs finished distributing
    live_nodes: int

    @property
    def convergence_sec(self) -> float:
        return self.converged_at - self.failed_at


@dataclass
class FaultLog(RunResult):
    """What the injector actually did to the running simulation."""

    _summary_fields = ("events_applied", "flushed_packets")

    events_applied: int = 0
    flushed_packets: int = 0
    applied: List[FaultEvent] = field(default_factory=list)
    convergence: List[ConvergenceRecord] = field(default_factory=list)


class FaultInjector:
    """Wire a :class:`FaultSchedule` into a simulator + node set."""

    def __init__(self, sim, nodes, schedule: FaultSchedule,
                 manager=None,
                 detection_latency_sec: float = DEFAULT_DETECTION_LATENCY_SEC,
                 fib_push_latency_sec: float = 0.0,
                 num_nodes: int = None):
        if detection_latency_sec < 0 or fib_push_latency_sec < 0:
            raise ConfigurationError("latencies cannot be negative")
        schedule.validate(len(nodes) if num_nodes is None else num_nodes)
        self.sim = sim
        self.nodes = list(nodes)
        self.schedule = schedule
        self.manager = manager
        self.detection_latency_sec = detection_latency_sec
        self.fib_push_latency_sec = fib_push_latency_sec
        self.log = FaultLog()
        #: Directed links currently cut by an explicit link fault --
        #: a node recovery must not resurrect an independently cut cable.
        self._links_down = set()
        self._arm()

    # -- wiring --------------------------------------------------------------

    def _arm(self) -> None:
        for event in self.schedule.events():
            self.sim.schedule_at(event.time,
                                 lambda e=event: self._apply(e))

    def _apply(self, event: FaultEvent) -> None:
        handler = {
            NODE_DOWN: self._node_down,
            NODE_UP: self._node_up,
            LINK_DOWN: self._link_down,
            LINK_UP: self._link_up,
            NIC_STALL: self._nic_stall,
        }[event.kind]
        handler(event)
        self.log.events_applied += 1
        self.log.applied.append(event)

    # -- handlers ------------------------------------------------------------

    def _peers(self, node_id: int):
        return (peer for peer in self.nodes if peer.node_id != node_id)

    def _node(self, node_id: int):
        """The live node object for ``node_id`` (indexable by id here;
        the partition-scoped subclass looks it up in its local shard)."""
        return self.nodes[node_id]

    def _dst_alive(self, node_id: int) -> bool:
        return self.nodes[node_id].alive

    def _node_down(self, event: FaultEvent) -> None:
        node = self._node(event.target)
        failed_at = self.sim.now
        self.log.flushed_packets += node.fail()
        detect = self.detection_latency_sec

        def peers_detect():
            for peer in self._peers(node.node_id):
                peer.failed_hops.add(node.node_id)

        self.sim.schedule(detect, peers_detect)
        if self.manager is not None:
            self.sim.schedule(detect + self.fib_push_latency_sec,
                              lambda: self._converge(NODE_DOWN,
                                                     node.node_id,
                                                     failed_at))

    def _node_up(self, event: FaultEvent) -> None:
        node = self._node(event.target)
        failed_at = self.sim.now
        node.recover()
        detect = self.detection_latency_sec

        def peers_detect():
            for peer in self._peers(node.node_id):
                if (peer.node_id, node.node_id) not in self._links_down:
                    peer.failed_hops.discard(node.node_id)

        self.sim.schedule(detect, peers_detect)
        if self.manager is not None:
            self.sim.schedule(detect + self.fib_push_latency_sec,
                              lambda: self._converge(NODE_UP,
                                                     node.node_id,
                                                     failed_at))

    def _converge(self, kind: str, node_id: int, failed_at: float) -> None:
        react = (self.manager.handle_node_failure if kind == NODE_DOWN
                 else self.manager.handle_node_recovery)
        update = react(node_id)
        self.log.convergence.append(ConvergenceRecord(
            event=kind, node=node_id, failed_at=failed_at,
            detected_at=failed_at + self.detection_latency_sec,
            converged_at=self.sim.now,
            live_nodes=update.live_nodes))

    def _link_down(self, event: FaultEvent) -> None:
        src, dst = event.target
        node = self._node(src)
        self._links_down.add((src, dst))
        node.failed_hops.add(dst)          # carrier loss: local, immediate
        link = node.links.get(dst)
        if link is not None:
            flushed = link.flush()
            node.dropped += flushed
            self.log.flushed_packets += flushed

    def _link_up(self, event: FaultEvent) -> None:
        src, dst = event.target
        self._links_down.discard((src, dst))
        # Only clear the hop if the far-end server is not itself down.
        if self._dst_alive(dst):
            self._node(src).failed_hops.discard(dst)

    def _nic_stall(self, event: FaultEvent) -> None:
        node = self._node(event.target)
        for link in node.links.values():
            link.stall(event.duration_sec)
        if node.egress_link is not None:
            node.egress_link.stall(event.duration_sec)


class PartitionFaultInjector(FaultInjector):
    """Apply the *cluster-wide* fault schedule from one partition's view.

    Each partition of a sharded run holds only some of the nodes, but the
    schedule describes the whole cluster.  The split of responsibilities:

    * The partition that **owns** a faulted node/link applies the physical
      effect (fail/recover/flush/stall) and counts it in its log, so the
      merged ``events_applied`` / ``flushed_packets`` match a single-sim
      run exactly (each event is counted once, by its owner).
    * **Every** partition tracks cluster-wide node aliveness in
      ``_nodes_down`` -- bookkeeping driven purely by the schedule, so all
      partitions agree without communication -- because ``link_up`` must
      know whether the far end is alive even when that node is remote.
    * Peer-detection (``failed_hops`` updates after the detection
      latency) runs on every partition for its *local* peers, which
      together cover exactly the peer set the single-sim injector walks.

    The control-plane :class:`~repro.core.control.ClusterManager` is a
    global observer and is not supported here; partitioned runs with a
    manager must use ``workers=1`` (which keeps the legacy injector).
    """

    def __init__(self, sim, nodes_by_id, schedule: FaultSchedule,
                 num_nodes: int,
                 detection_latency_sec: float = DEFAULT_DETECTION_LATENCY_SEC,
                 fib_push_latency_sec: float = 0.0):
        self._nodes_by_id = dict(nodes_by_id)
        self._nodes_down = set()
        super().__init__(sim, list(self._nodes_by_id.values()), schedule,
                         manager=None,
                         detection_latency_sec=detection_latency_sec,
                         fib_push_latency_sec=fib_push_latency_sec,
                         num_nodes=num_nodes)

    def _arm(self) -> None:
        for event in self.schedule.events():
            if event.kind in (NODE_DOWN, NODE_UP):
                # All partitions observe node events (bookkeeping +
                # local peer detection); only the owner applies them.
                self.sim.schedule_at(event.time,
                                     lambda e=event: self._node_event(e))
            elif event.kind in (LINK_DOWN, LINK_UP):
                if event.target[0] in self._nodes_by_id:
                    self.sim.schedule_at(event.time,
                                         lambda e=event: self._apply(e))
            elif event.target in self._nodes_by_id:   # NIC_STALL
                self.sim.schedule_at(event.time,
                                     lambda e=event: self._apply(e))

    def _node_event(self, event: FaultEvent) -> None:
        target = event.target
        if event.kind == NODE_DOWN:
            self._nodes_down.add(target)
        else:
            self._nodes_down.discard(target)
        if target in self._nodes_by_id:
            self._apply(event)
            return
        # Remote node: our local nodes still detect the change after the
        # detection latency, exactly as the single-sim injector's
        # peers_detect does for them.
        detect = self.detection_latency_sec
        if event.kind == NODE_DOWN:
            def peers_detect():
                for peer in self._peers(target):
                    peer.failed_hops.add(target)
        else:
            def peers_detect():
                for peer in self._peers(target):
                    if (peer.node_id, target) not in self._links_down:
                        peer.failed_hops.discard(target)
        self.sim.schedule(detect, peers_detect)

    # -- local-shard accessors ----------------------------------------------

    def _peers(self, node_id: int):
        return (self._nodes_by_id[i] for i in sorted(self._nodes_by_id)
                if i != node_id)

    def _node(self, node_id: int):
        return self._nodes_by_id[node_id]

    def _dst_alive(self, node_id: int) -> bool:
        return node_id not in self._nodes_down
