"""The fault-schedule DSL: timed failure/recovery events.

RouteBricks' VLB interconnect claims graceful degradation with *no
centralized scheduler* (Sec. 3.2): when servers or internal links die,
the survivors route around them on purely local information.  A
:class:`FaultSchedule` scripts the failures that claim is tested against:

* **server crash / recover** -- the node goes dark (external port
  included) and later reboots with fresh state;
* **internal link down / up** -- one directed cable is cut / respliced;
  :meth:`FaultSchedule.flap_link` scripts a flapping cable;
* **NIC-queue stall / resume** -- a node's transmit queues wedge for a
  while (packets queue and overflow but nothing is unplugged).

Schedules are built programmatically::

    schedule = (FaultSchedule()
                .crash_node(at=0.5e-3, node=2)
                .recover_node(at=2.0e-3, node=2)
                .fail_link(at=1.0e-3, src=0, dst=1))

or loaded from a plain dict/JSON spec (``FaultSchedule.from_dict``), and
consumed by :class:`repro.faults.FaultInjector` /
:meth:`repro.core.RouteBricksRouter.simulate`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..errors import ConfigurationError

#: Event kinds a schedule may contain.
NODE_DOWN = "node_down"
NODE_UP = "node_up"
LINK_DOWN = "link_down"
LINK_UP = "link_up"
NIC_STALL = "nic_stall"

KINDS = (NODE_DOWN, NODE_UP, LINK_DOWN, LINK_UP, NIC_STALL)
_NODE_KINDS = (NODE_DOWN, NODE_UP, NIC_STALL)
_LINK_KINDS = (LINK_DOWN, LINK_UP)


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault event.

    ``target`` is a node id for node events and a directed ``(src, dst)``
    pair for link events.  ``duration_sec`` applies only to ``nic_stall``.
    """

    time: float
    kind: str
    target: Union[int, Tuple[int, int]]
    duration_sec: Optional[float] = None

    def __post_init__(self):
        if self.time < 0:
            raise ConfigurationError("fault time cannot be negative")
        if self.kind not in KINDS:
            raise ConfigurationError("unknown fault kind %r (have %s)"
                                     % (self.kind, list(KINDS)))
        if self.kind in _NODE_KINDS:
            if not isinstance(self.target, int):
                raise ConfigurationError("%s needs a node id target"
                                         % self.kind)
        else:
            if (not isinstance(self.target, tuple) or len(self.target) != 2
                    or not all(isinstance(x, int) for x in self.target)):
                raise ConfigurationError("%s needs a (src, dst) target"
                                         % self.kind)
            if self.target[0] == self.target[1]:
                raise ConfigurationError("a link cannot loop back")
        if self.kind == NIC_STALL:
            if self.duration_sec is None or self.duration_sec <= 0:
                raise ConfigurationError("nic_stall needs a positive "
                                         "duration_sec")
        elif self.duration_sec is not None:
            raise ConfigurationError("duration_sec only applies to "
                                     "nic_stall")

    def to_dict(self) -> dict:
        data = {"time": self.time, "kind": self.kind}
        if self.kind in _NODE_KINDS:
            data["node"] = self.target
        else:
            data["src"], data["dst"] = self.target
        if self.duration_sec is not None:
            data["duration_sec"] = self.duration_sec
        return data

    @classmethod
    def from_dict(cls, spec: dict) -> "FaultEvent":
        try:
            kind = spec["kind"]
            time = float(spec["time"])
        except KeyError as missing:
            raise ConfigurationError("fault event needs %s" % missing)
        if kind in _NODE_KINDS:
            if "node" not in spec:
                raise ConfigurationError("%s event needs 'node'" % kind)
            target: Union[int, Tuple[int, int]] = int(spec["node"])
        elif kind in _LINK_KINDS:
            if "src" not in spec or "dst" not in spec:
                raise ConfigurationError("%s event needs 'src' and 'dst'"
                                         % kind)
            target = (int(spec["src"]), int(spec["dst"]))
        else:
            raise ConfigurationError("unknown fault kind %r" % kind)
        duration = spec.get("duration_sec")
        return cls(time=time, kind=kind, target=target,
                   duration_sec=None if duration is None
                   else float(duration))


class FaultSchedule:
    """An ordered script of :class:`FaultEvent` (builder-style API)."""

    def __init__(self, events: Optional[List[FaultEvent]] = None):
        self._events: List[FaultEvent] = list(events or [])

    # -- builder ------------------------------------------------------------

    def add(self, event: FaultEvent) -> "FaultSchedule":
        self._events.append(event)
        return self

    def crash_node(self, at: float, node: int) -> "FaultSchedule":
        """Server ``node`` dies at time ``at`` (port dark, state lost)."""
        return self.add(FaultEvent(time=at, kind=NODE_DOWN, target=node))

    def recover_node(self, at: float, node: int) -> "FaultSchedule":
        """Server ``node`` finishes rebooting at time ``at``."""
        return self.add(FaultEvent(time=at, kind=NODE_UP, target=node))

    def fail_link(self, at: float, src: int, dst: int) -> "FaultSchedule":
        """The directed internal cable src -> dst is cut at ``at``."""
        return self.add(FaultEvent(time=at, kind=LINK_DOWN,
                                   target=(src, dst)))

    def restore_link(self, at: float, src: int, dst: int) -> "FaultSchedule":
        """The cable comes back at ``at``."""
        return self.add(FaultEvent(time=at, kind=LINK_UP,
                                   target=(src, dst)))

    def stall_nic(self, at: float, node: int,
                  duration_sec: float) -> "FaultSchedule":
        """Node ``node``'s transmit queues wedge for ``duration_sec``."""
        return self.add(FaultEvent(time=at, kind=NIC_STALL, target=node,
                                   duration_sec=duration_sec))

    def flap_link(self, src: int, dst: int, start: float,
                  period_sec: float, count: int,
                  duty: float = 0.5) -> "FaultSchedule":
        """Script a flapping cable: ``count`` down/up cycles from
        ``start``, down for ``duty`` of each ``period_sec``."""
        if period_sec <= 0 or not 0 < duty < 1:
            raise ConfigurationError("need period > 0 and 0 < duty < 1")
        if count < 1:
            raise ConfigurationError("need >= 1 flap")
        for i in range(count):
            t0 = start + i * period_sec
            self.fail_link(t0, src, dst)
            self.restore_link(t0 + duty * period_sec, src, dst)
        return self

    # -- access -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self.events())

    def events(self) -> List[FaultEvent]:
        """Events in time order (ties keep script order)."""
        return sorted(self._events, key=lambda e: e.time)

    def max_node_id(self) -> int:
        """Largest node id the schedule touches (-1 if none)."""
        largest = -1
        for event in self._events:
            ids = (event.target if isinstance(event.target, tuple)
                   else (event.target,))
            largest = max(largest, *ids)
        return largest

    def validate(self, num_nodes: int) -> None:
        """Reject events that reference nodes outside [0, num_nodes)."""
        for event in self._events:
            ids = (event.target if isinstance(event.target, tuple)
                   else (event.target,))
            for node in ids:
                if not 0 <= node < num_nodes:
                    raise ConfigurationError(
                        "fault event %s targets node %d, cluster has %d"
                        % (event.kind, node, num_nodes))

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, list]:
        return {"events": [event.to_dict() for event in self.events()]}

    @classmethod
    def from_dict(cls, spec: Union[dict, list]) -> "FaultSchedule":
        """Build from ``{"events": [...]}`` or a bare event list."""
        if isinstance(spec, dict):
            spec = spec.get("events", [])
        return cls([FaultEvent.from_dict(item) for item in spec])

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return cls.from_dict(json.loads(text))
