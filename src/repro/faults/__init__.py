"""Fault injection and graceful degradation for the cluster router.

Three layers:

* :mod:`repro.faults.schedule` -- the :class:`FaultSchedule` DSL: timed
  server crash/recover, internal-link down/up (and flapping), and
  NIC-queue stall events, scriptable or loadable from dict/JSON;
* :mod:`repro.faults.inject` -- :class:`FaultInjector`, which applies a
  schedule to a running DES (and, optionally, drives the
  :class:`~repro.core.control.ClusterManager` reaction with a
  configurable detection latency so convergence time is measurable);
* :mod:`repro.faults.degradation` -- the analytic capacity-vs-failures
  model the packet-level results are checked against.
"""

from .degradation import (
    DegradationPoint,
    DegradationReport,
    degradation_curve,
    linear_fraction,
    quadratic_fraction,
)
from .inject import (
    DEFAULT_DETECTION_LATENCY_SEC,
    ConvergenceRecord,
    FaultInjector,
    FaultLog,
)
from .schedule import (
    KINDS,
    LINK_DOWN,
    LINK_UP,
    NIC_STALL,
    NODE_DOWN,
    NODE_UP,
    FaultEvent,
    FaultSchedule,
)

__all__ = [
    "DegradationPoint",
    "DegradationReport",
    "degradation_curve",
    "linear_fraction",
    "quadratic_fraction",
    "DEFAULT_DETECTION_LATENCY_SEC",
    "ConvergenceRecord",
    "FaultInjector",
    "FaultLog",
    "KINDS",
    "LINK_DOWN",
    "LINK_UP",
    "NIC_STALL",
    "NODE_DOWN",
    "NODE_UP",
    "FaultEvent",
    "FaultSchedule",
]
