"""Analytic graceful-degradation model: capacity vs. failed servers.

RouteBricks promises that a VLB mesh *degrades* rather than collapses
when servers die (Sec. 3.2): survivors re-balance over the remaining
n' = n - k nodes using only local information.  The catch is that the
internal links were physically provisioned for the *full* membership --
at VLB's 2R/n rule the cables do not get faster when the mesh shrinks.
This module predicts the resulting capacity curve analytically, by
re-running the cluster operating-point model
(:meth:`~repro.core.router.RouteBricksRouter.max_throughput`) at each
survivor count with the link rate pinned at its day-one value:

* **uniform traffic, adaptive Direct VLB** -- per-pair demand
  R'/(n'-1) still fits the 2R/n cables for modest k, so capacity tracks
  the surviving ports: fraction ~ (n - k)/n (*linear*).
* **worst-case matrix, full two-phase VLB** -- every link must carry
  2R'/n' but only has 2R/n, so R' <= R * n'/n and the aggregate falls
  as (n'/n)^2 (*quadratic*).

The packet-level DES (driven through ``RouteBricksRouter.simulate`` with
a :class:`~repro.faults.schedule.FaultSchedule`) must match the uniform
curve in shape -- that comparison is
``benchmarks/bench_faults_degradation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .. import calibration as cal
from ..errors import ConfigurationError
from ..hw.presets import NEHALEM
from ..hw.server import ServerSpec
from ..perfmodel.loads import DEFAULT_CONFIG, ServerConfig
from ..results import RunResult


@dataclass(frozen=True)
class DegradationPoint(RunResult):
    """Predicted operating point with ``failed_nodes`` servers down."""

    _summary_fields = ("failed_nodes", "live_nodes", "capacity_gbps",
                       "capacity_fraction", "binding")

    failed_nodes: int
    live_nodes: int
    capacity_bps: float
    per_port_bps: float
    capacity_fraction: float     # relative to the zero-failure capacity
    binding: str                 # cpu | nic | link | port | dead

    @property
    def capacity_gbps(self) -> float:
        return self.capacity_bps / 1e9

    @property
    def failed_fraction(self) -> float:
        total = self.failed_nodes + self.live_nodes
        return self.failed_nodes / total if total else 0.0


@dataclass(frozen=True)
class DegradationReport(RunResult):
    """A capacity-vs-failed-servers curve for one cluster + workload."""

    _summary_fields = ("num_nodes", "workload", "uniform", "baseline_gbps")

    num_nodes: int
    workload: str
    packet_bytes: float
    uniform: bool
    internal_link_bps: float
    baseline_bps: float
    points: List[DegradationPoint] = field(default_factory=list)

    @property
    def baseline_gbps(self) -> float:
        return self.baseline_bps / 1e9

    def fractions(self) -> List[float]:
        """Capacity fraction at k = 0, 1, 2, ... failed servers."""
        return [point.capacity_fraction for point in self.points]

    def point(self, failed: int) -> DegradationPoint:
        for candidate in self.points:
            if candidate.failed_nodes == failed:
                return candidate
        raise ConfigurationError("no degradation point for %d failed"
                                 % failed)


def linear_fraction(num_nodes: int, failed: int) -> float:
    """The graceful ideal: capacity falls with the surviving ports."""
    return max(num_nodes - failed, 0) / num_nodes


def quadratic_fraction(num_nodes: int, failed: int) -> float:
    """The worst-case two-phase bound with day-one 2R/n cables."""
    return (max(num_nodes - failed, 0) / num_nodes) ** 2


def degradation_curve(num_nodes: int = 8,
                      workload=None,
                      uniform: bool = True,
                      max_failed: Optional[int] = None,
                      port_rate_bps: float = cal.PORT_RATE_BPS,
                      internal_link_bps: Optional[float] = None,
                      spec: ServerSpec = NEHALEM,
                      config: ServerConfig = DEFAULT_CONFIG,
                      use_flowlets: bool = True) -> DegradationReport:
    """Predict cluster capacity at k = 0 .. ``max_failed`` dead servers.

    ``workload`` is a :class:`~repro.workloads.WorkloadSpec` (default:
    fixed 1024 B forwarding-friendly frames, which keeps the CPU out of
    the way so the curve shows the *interconnect* degradation).
    ``internal_link_bps`` defaults to VLB's provisioning rule 2R/n for
    the full membership -- the rate the cables keep as nodes die.  A
    cluster cut below two survivors has no mesh and zero capacity.
    """
    from ..core.router import RouteBricksRouter
    from ..core.vlb import required_internal_link_rate
    from ..workloads.spec import WorkloadSpec

    if workload is None:
        workload = WorkloadSpec.fixed(1024)
    elif not isinstance(workload, WorkloadSpec):
        raise ConfigurationError("workload must be a WorkloadSpec "
                                 "(got %r)" % (workload,))
    if num_nodes < 2:
        raise ConfigurationError("cluster needs >= 2 nodes")
    if max_failed is None:
        max_failed = num_nodes - 2
    if not 0 <= max_failed <= num_nodes:
        raise ConfigurationError("max_failed must be in [0, %d]" % num_nodes)
    if internal_link_bps is None:
        internal_link_bps = required_internal_link_rate(num_nodes,
                                                        port_rate_bps)

    points: List[DegradationPoint] = []
    baseline_bps = 0.0
    for failed in range(max_failed + 1):
        live = num_nodes - failed
        if live < 2:
            points.append(DegradationPoint(
                failed_nodes=failed, live_nodes=live,
                capacity_bps=0.0, per_port_bps=0.0,
                capacity_fraction=0.0, binding="dead"))
            continue
        survivors = RouteBricksRouter(
            num_nodes=live,
            port_rate_bps=port_rate_bps,
            internal_link_bps=internal_link_bps,   # day-one cables
            spec=spec, config=config,
            use_flowlets=use_flowlets)
        result = survivors.max_throughput(workload, uniform=uniform)
        if failed == 0:
            baseline_bps = result.aggregate_bps
        points.append(DegradationPoint(
            failed_nodes=failed, live_nodes=live,
            capacity_bps=result.aggregate_bps,
            per_port_bps=result.per_port_bps,
            capacity_fraction=(result.aggregate_bps / baseline_bps
                               if baseline_bps else 0.0),
            binding=result.binding))
    return DegradationReport(
        num_nodes=num_nodes,
        workload=workload.name,
        packet_bytes=workload.mean_packet_bytes,
        uniform=uniform,
        internal_link_bps=internal_link_bps,
        baseline_bps=baseline_bps,
        points=points)
