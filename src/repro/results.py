"""Unified run/result objects.

Every experiment entry point in the library (the analytic solvers, the
cluster DES, the analysis harnesses, the fault-injection layer) returns a
:class:`RunResult` subclass.  The base class gives every result the same
two affordances:

* :meth:`RunResult.to_dict` -- a plain, JSON-serializable dictionary
  (histograms collapse to their quantile summary, numpy arrays to lists,
  nested results recurse), suitable for logging, tables, or regression
  baselines;
* :meth:`RunResult.summary` -- a one-line human-readable digest, built
  from the fields a subclass names in ``_summary_fields`` (or overridden
  outright).

Subclasses stay ordinary (often frozen) dataclasses with their historical
attribute names -- adopting the base class adds behavior without breaking
any caller that reads ``result.rate_gbps`` or ``report.delivered_packets``
directly.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Sequence, Tuple


def _convert(value: Any) -> Any:
    """Best-effort conversion of a field value to JSON-friendly data."""
    if isinstance(value, RunResult):
        return value.to_dict()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _convert(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): _convert(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_convert(v) for v in value]
    # numpy scalars/arrays without importing numpy here.
    if hasattr(value, "tolist"):
        return value.tolist()
    # Histograms (and anything else exposing a quantile summary).
    if hasattr(value, "percentile") and hasattr(value, "__len__"):
        if len(value) == 0:
            return {"count": 0}
        return {"count": len(value),
                "mean": value.mean(),
                "p50": value.percentile(50),
                "p95": value.percentile(95),
                "p99": value.percentile(99)}
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    # Named objects (AppCost, ServerSpec, policies) reduce to their name.
    name = getattr(value, "name", None)
    if isinstance(name, str):
        return name
    return repr(value)


def _format(value: Any) -> str:
    """Compact scalar rendering for one-line summaries."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return "%.3g" % value
        return ("%.3f" % value).rstrip("0").rstrip(".")
    return str(value)


class RunResult:
    """Base class for every result object the library returns.

    Subclasses are dataclasses; the base class is deliberately stateless
    so frozen dataclasses can inherit it.
    """

    #: Field names (or property names) the default one-line summary shows.
    _summary_fields: Tuple[str, ...] = ()

    @property
    def kind(self) -> str:
        """Stable machine-readable tag for the result type."""
        return type(self).__name__

    def _field_names(self) -> Sequence[str]:
        if dataclasses.is_dataclass(self):
            return [f.name for f in dataclasses.fields(self)]
        return sorted(vars(self))

    def to_dict(self) -> Dict[str, Any]:
        """The result as plain, JSON-serializable data."""
        data: Dict[str, Any] = {"kind": self.kind}
        for name in self._field_names():
            data[name] = _convert(getattr(self, name))
        return data

    def summary(self) -> str:
        """One-line human-readable digest."""
        names = self._summary_fields or tuple(self._field_names())[:4]
        parts = ["%s=%s" % (name, _format(getattr(self, name)))
                 for name in names]
        return "%s(%s)" % (self.kind, ", ".join(parts))

    def __str__(self) -> str:  # repr stays the dataclass default
        return self.summary()
