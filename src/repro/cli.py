"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``experiments``  list experiment ids, or run one/all and print the tables
``plan``         size a cluster for N external ports (Fig. 3 as a tool)
``server``       single-server saturation for an app / packet size
``pipeline``     compile a Click config: predicted rate + cost breakdown
``rb4``          the 4-node cluster's operating points
``faults``       graceful degradation: analytic curve or a scripted DES run
``stateful``     stateful NF dispatch strategies under flow-skewed traffic
``trace``        generate or inspect pcap traces of the synthetic workloads
``obs``          run instrumented benchmarks, report/diff BENCH_*.json,
                 and ``explain`` a pipeline's binding resource
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from . import calibration as cal
from .analysis import EXPERIMENTS, format_table, run_experiment


def _cmd_experiments(args) -> int:
    if args.which == "list":
        for eid in sorted(EXPERIMENTS):
            doc = (EXPERIMENTS[eid].__doc__ or "").strip().splitlines()[0]
            print("%-6s %s" % (eid, doc))
        return 0
    if args.which == "summary":
        from .analysis.summary import summary_text
        print(summary_text())
        return 0
    targets = sorted(EXPERIMENTS) if args.which == "all" else [args.which]
    for eid in targets:
        result = run_experiment(eid)
        print("=== %s ===" % eid)
        _print_result(result)
        print()
    return 0


def _print_result(result: dict) -> None:
    for key, value in result.items():
        if key == "id":
            continue
        if isinstance(value, list) and value and isinstance(value[0], dict):
            print(format_table(value, title=key))
        elif isinstance(value, dict) and value and \
                isinstance(next(iter(value.values())), list):
            for sub, rows in value.items():
                print(format_table(rows, title="%s/%s" % (key, sub)))
        else:
            print("%s: %r" % (key, value))


def _cmd_plan(args) -> int:
    from .core.provision import SERVER_MODELS, cost_usd, provision
    from .core.topology import FullMesh, switched_cluster_equivalent_servers

    if args.ports is None:
        args.ports = args.ports_flag
    if args.ports is None:
        print("error: plan needs a port count (plan 4 or plan --ports 4)",
              file=sys.stderr)
        return 2
    rows = []
    for name in sorted(SERVER_MODELS):
        topo = provision(args.ports, name)
        rows.append({
            "model": name,
            "topology": type(topo).__name__,
            "servers": topo.total_servers(),
            "cost_usd": cost_usd(topo.total_servers()),
            "mesh_link_gbps": ("%.2f" % (topo.internal_link_rate_bps(10e9) / 1e9)
                               if isinstance(topo, FullMesh) else "-"),
        })
    rows.append({"model": "switched (Clos)", "topology": "reference",
                 "servers": switched_cluster_equivalent_servers(args.ports),
                 "cost_usd": cost_usd(
                     switched_cluster_equivalent_servers(args.ports)),
                 "mesh_link_gbps": "-"})
    print(format_table(rows, title="Cluster plan for N=%d ports, 10 Gbps each"
                       % args.ports))
    return 0


def _cmd_server(args) -> int:
    from .hw.presets import NEHALEM, NEHALEM_NEXT_GEN, XEON_SHARED_BUS
    from .perfmodel import max_loss_free_rate

    specs = {"nehalem": NEHALEM, "next-gen": NEHALEM_NEXT_GEN,
             "xeon": XEON_SHARED_BUS}
    from .workloads import WorkloadSpec

    spec = specs[args.spec]
    result = max_loss_free_rate(
        WorkloadSpec.fixed(args.size, app=args.app), spec=spec,
        nic_limited=not args.no_nic_limit)
    print("%s @ %dB on %s:" % (args.app, args.size, spec.name))
    print("  max loss-free rate: %.2f Gbps (%.2f Mpps)"
          % (result.rate_gbps, result.rate_mpps))
    print("  bottleneck: %s" % result.bottleneck)
    print("  per-packet: %.0f cycles, %.0f B memory, %.0f B io"
          % (result.loads.cpu_cycles, result.loads.mem_bytes,
             result.loads.io_bytes))
    return 0


def _cmd_pipeline(args) -> int:
    from .analysis.bottleneck import pipeline_breakdown
    from .click.pipelines import PRESET_PIPELINES, build_pipeline
    from .errors import ReproError
    from .hw.presets import NEHALEM
    from .hw.server import Server

    if args.config in PRESET_PIPELINES:
        text = PRESET_PIPELINES[args.config]
    else:
        try:
            with open(args.config) as handle:
                text = handle.read()
        except OSError as error:
            print("error: cannot read Click config %r: %s"
                  % (args.config, error), file=sys.stderr)
            return 2
    queues = args.queues or NEHALEM.total_cores

    def fresh_server():
        return Server(NEHALEM, num_ports=args.ports, queues_per_port=queues)

    try:
        graph = build_pipeline(text, fresh_server(), kp=args.kp, kn=args.kn)
        report = pipeline_breakdown(graph, packet_bytes=args.size)
    except ReproError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    print("pipeline %s @ %dB on %s:" % (args.config, args.size, NEHALEM.name))
    print("  predicted loss-free rate: %.2f Gbps (%.2f Mpps)"
          % (report["rate_gbps"], report["rate_mpps"]))
    print("  bottleneck: %s" % report["bottleneck"])
    loads = report["loads"]
    print("  per-packet: %.0f cycles, %.0f B memory, %.0f B io"
          % (loads["cpu"], loads["memory"], loads["io"]))
    rows = [{"element": row["element"], "class": row["class"],
             "p": round(row["probability"], 3),
             "cpu_cycles": round(row["cpu_cycles"], 1),
             "mem_B": round(row["mem_bytes"], 1),
             "io_B": round(row["io_bytes"], 1)}
            for row in report["elements"]]
    print(format_table(rows, title="per-element costs (traversal-weighted)"))
    if args.des:
        from .click.simrun import TimedPipelineRun
        run = TimedPipelineRun(fresh_server(), text, packet_bytes=args.size,
                               kp=args.kp, kn=args.kn, batch=args.batch)
        des_gbps = run.find_loss_free_rate() / 1e9
        model_gbps = report["rate_gbps"]
        print("timed simulation%s: %.2f Gbps (model %.2f, %.1f%% apart)"
              % (" (batch)" if args.batch else "", des_gbps, model_gbps,
                 abs(des_gbps - model_gbps) / model_gbps * 100))
    elif args.batch:
        # One short timed run through the batch-native fast path -- a
        # quick smoke of PacketBatch end to end, not a rate search.
        from .click.simrun import TimedPipelineRun
        run = TimedPipelineRun(fresh_server(), text, packet_bytes=args.size,
                               kp=args.kp, kn=args.kn, batch=True)
        rep = run.run(report["rate_gbps"] * 0.5e9, duration_sec=1e-3)
        print("batch timed run @ %.2f Gbps offered: forwarded %d of %d "
              "(%d dropped)"
              % (report["rate_gbps"] * 0.5, rep.forwarded_packets,
                 rep.offered_packets, rep.dropped_packets))
    return 0


def _cmd_rb4(args) -> int:
    from .core import RouteBricksRouter
    from .core.latency import latency_range_usec
    from .workloads import WorkloadSpec

    router = RouteBricksRouter(num_nodes=args.nodes)
    rows = []
    for label, size in (("64B", 64),
                        ("abilene", cal.ABILENE_MEAN_PACKET_BYTES)):
        result = router.max_throughput(WorkloadSpec.fixed(size))
        rows.append({"workload": label,
                     "aggregate_gbps": result.aggregate_gbps,
                     "per_port_gbps": result.per_port_bps / 1e9,
                     "binding": result.binding})
    print(format_table(rows, title="%d-node RouteBricks cluster"
                       % args.nodes))
    direct, indirect = latency_range_usec()
    print("latency: %.1f us direct, %.1f us via an intermediate"
          % (direct, indirect))
    return 0


def _cmd_validate(args) -> int:
    from .analysis.validation import max_relative_error, validate_forwarding

    points = validate_forwarding()
    rows = [{"kp": p.kp, "kn": p.kn, "bytes": p.packet_bytes,
             "analytic_gbps": p.analytic_gbps,
             "simulated_gbps": p.simulated_gbps,
             "rel_error": p.relative_error} for p in points]
    print(format_table(rows, ["kp", "kn", "bytes", "analytic_gbps",
                              "simulated_gbps", "rel_error"],
                       title="Analytic model vs timed simulation"))
    worst = max_relative_error(points)
    print("worst disagreement: %.1f%%" % (worst * 100))
    return 0 if worst < 0.15 else 1


def _cmd_power(args) -> int:
    from .core.power import cluster_power_kw, managed_power

    app = cal.APPLICATIONS[args.app]
    rows = []
    for fraction in (0.25, 0.5, 0.75, 1.0):
        estimate = managed_power(app, offered_fraction=fraction)
        rows.append({"load_fraction": fraction,
                     "per_server_w": estimate.managed_w,
                     "cluster_kw": cluster_power_kw(
                         args.servers, app, offered_fraction=fraction),
                     "savings_pct": estimate.savings_fraction * 100})
    print(format_table(rows, ["load_fraction", "per_server_w",
                              "cluster_kw", "savings_pct"],
                       title="%d-server cluster power (%s, managed modes)"
                       % (args.servers, args.app)))
    print("unmanaged: %.2f kW" % cluster_power_kw(args.servers, app,
                                                  managed=False))
    return 0


def _cmd_faults(args) -> int:
    from .errors import ReproError
    from .faults import (FaultSchedule, degradation_curve, linear_fraction,
                         quadratic_fraction)

    if args.action == "curve":
        report = degradation_curve(
            num_nodes=args.nodes,
            uniform=not args.worst_case,
            max_failed=args.max_failed)
        ideal = quadratic_fraction if args.worst_case else linear_fraction
        rows = [{"failed": p.failed_nodes, "live": p.live_nodes,
                 "capacity_gbps": p.capacity_gbps,
                 "fraction": p.capacity_fraction,
                 "ideal": ideal(args.nodes, p.failed_nodes),
                 "binding": p.binding}
                for p in report.points]
        print(format_table(rows, title="Degradation, %d nodes (%s traffic)"
                           % (args.nodes,
                              "worst-case" if args.worst_case else "uniform")))
        return 0

    # action == "run": scripted fault injection through the DES, with the
    # control plane attached so convergence is visible.
    from .core import RouteBricksRouter
    from .core.control import ClusterManager
    from .workloads import WorkloadSpec
    from .workloads.matrices import uniform_matrix

    duration = args.duration_ms * 1e-3
    if args.schedule:
        try:
            with open(args.schedule) as handle:
                schedule = FaultSchedule.from_json(handle.read())
            schedule.validate(args.nodes)
        except (OSError, ValueError, ReproError) as error:
            print("error: cannot load fault schedule %r: %s"
                  % (args.schedule, error), file=sys.stderr)
            return 2
    else:
        victim = args.nodes - 1
        schedule = (FaultSchedule()
                    .crash_node(at=0.25 * duration, node=victim)
                    .recover_node(at=0.6 * duration, node=victim))
    router = RouteBricksRouter(num_nodes=args.nodes, seed=args.seed)
    manager = ClusterManager(port_rate_bps=router.port_rate_bps)
    for i in range(args.nodes):
        manager.add_node(external_port=i)
        manager.announce("10.%d.0.0/16" % i, i)
    manager.push_fibs()
    workload = WorkloadSpec.fixed(args.size).with_matrix(
        uniform_matrix(args.nodes, router.port_rate_bps * args.load))
    report = router.simulate(
        workload, until=duration, faults=schedule, manager=manager,
        detection_latency_sec=args.detection_usec * 1e-6)
    print("cluster: %d nodes, %g%% uniform load, %d fault events"
          % (args.nodes, args.load * 100, report.fault_events))
    print("offered %d, delivered %d, dropped %d (delivery %.1f%%)"
          % (report.offered_packets, report.delivered_packets,
             report.dropped_packets, report.delivery_ratio * 100))
    print("goodput: %.2f Gbps over %.2f ms"
          % (report.delivered_bps / 1e9, report.duration_sec * 1e3))
    for record in report.convergence:
        print("  %s node %d at %.3f ms -> converged %.3f ms "
              "(%.0f us, %d live)"
              % (record.event, record.node, record.failed_at * 1e3,
                 record.converged_at * 1e3,
                 record.convergence_sec * 1e6, record.live_nodes))
    stale = manager.stale_nodes()
    print("control plane: %d live, %d failed, %s"
          % (len(manager.live_nodes()), len(manager.failed_nodes()),
             ("stale FIBs on %s" % stale) if stale else "all FIBs current"))
    return 0


def _cmd_control(args) -> int:
    import math
    import re

    from .control import ChurnSchedule, run_churn

    match = re.fullmatch(r"rb(\d+)", args.topology.lower())
    if not match:
        print("error: topology must look like rb4/rb8/rb32, got %r"
              % args.topology, file=sys.stderr)
        return 2
    nodes = int(match.group(1))
    duration = args.duration_ms * 1e-3

    if args.action == "churn":
        # Convergence vs update rate sweep.
        try:
            rates = [float(rate) for rate in args.rates.split(",")]
        except ValueError:
            print("error: --rates must be a comma list of numbers, got %r"
                  % args.rates, file=sys.stderr)
            return 2
        rows = []
        for rate in rates:
            report = run_churn(num_nodes=nodes, routes=args.routes,
                               update_rate_per_sec=rate,
                               duration_sec=duration, load=args.load,
                               packet_bytes=args.size, seed=args.seed)
            rows.append({
                "update_rate": rate,
                "applied": report.updates_applied,
                "fib_ops": report.fib_ops,
                "mean_conv_usec": report.mean_convergence_usec,
                "max_conv_usec": report.max_convergence_sec * 1e6,
                "final_conv_usec": report.final_convergence_usec,
                "fwd_gbps": report.forwarding.delivered_bps / 1e9,
                "p99_usec": report.forwarding.latency_usec.percentile(99),
                "consistent": report.consistent,
            })
        print(format_table(rows, title="Convergence vs update rate, "
                                       "%d nodes, %d routes"
                           % (nodes, args.routes)))
        return 0

    # action == "run": one forwarding run, optionally with live churn.
    burst = None
    if args.burst is not None:
        burst = (args.burst, duration / 4, 3)
    report = run_churn(
        num_nodes=nodes, routes=args.routes,
        update_rate_per_sec=args.update_rate,
        duration_sec=duration, burst=burst,
        load=args.load, packet_bytes=args.size, seed=args.seed,
        schedule=None if args.churn else ChurnSchedule([]))
    fwd = report.forwarding
    print("cluster: %d nodes, %d-route RIB, %g%% load, FIB-routed"
          % (nodes, args.routes, args.load * 100))
    print("offered %d, delivered %d, fib-miss %d (delivery %.1f%%)"
          % (fwd.offered_packets, fwd.delivered_packets,
             fwd.fib_miss_packets, fwd.delivery_ratio * 100))
    print("goodput: %.2f Gbps over %.2f ms"
          % (fwd.delivered_bps / 1e9, fwd.duration_sec * 1e3))
    if report.updates_offered:
        print("churn: %d updates applied (%d announce, %d reannounce, "
              "%d withdraw, %d skipped) at %.0f/s"
              % (report.updates_applied, report.announced,
                 report.reannounced, report.withdrawn, report.skipped,
                 report.update_rate_per_sec))
        print("fib sync: %d ops over %d ticks, %d rebuilds"
              % (report.fib_ops, report.sync_ticks, report.rebuilds))
        final = ("%.0f us" % report.final_convergence_usec
                 if not math.isnan(report.final_convergence_sec)
                 else "pending (%d updates undistributed)"
                 % report.unconverged)
        print("convergence: mean %.0f us, max %.0f us, final %s"
              % (report.mean_convergence_usec,
                 report.max_convergence_sec * 1e6, final))
    else:
        print("churn: none (pass --churn to stream RIB updates)")
    print("consistency: %s (%d probes vs trie reference)"
          % ("OK" if report.consistent else "MISMATCH",
             report.verified_probes))
    return 0 if report.consistent else 1


def _cmd_parallel(args) -> int:
    import re

    from .core import RouteBricksRouter
    from .errors import ReproError
    from .parallel import simulate_parallel
    from .workloads import WorkloadSpec
    from .workloads.matrices import uniform_matrix

    match = re.fullmatch(r"rb(\d+)", args.topology.lower())
    if not match:
        print("error: topology must look like rb4/rb8/rb32, got %r"
              % args.topology, file=sys.stderr)
        return 2
    nodes = int(match.group(1))
    duration = args.duration_ms * 1e-3
    router = RouteBricksRouter(num_nodes=nodes, seed=args.seed)
    workload = WorkloadSpec.fixed(args.size).with_matrix(
        uniform_matrix(nodes, router.port_rate_bps * args.load))
    try:
        report = simulate_parallel(
            router, workload, until=duration, workers=args.workers,
            backend=args.backend)
    except ReproError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    print("cluster: %d nodes across %d worker(s) [%s backend], "
          "%g%% uniform load of %d B frames"
          % (nodes, report.workers, args.backend, args.load * 100,
             args.size))
    print("offered %d, delivered %d, dropped %d (delivery %.1f%%)"
          % (report.offered_packets, report.delivered_packets,
             report.dropped_packets, report.delivery_ratio * 100))
    print("goodput: %.2f Gbps over %.2f ms; reordered %.4f%%"
          % (report.delivered_bps / 1e9, report.duration_sec * 1e3,
             report.reordered_fraction * 100))
    busy = max(report.partition_busy_seconds or [0.0])
    if busy > 0:
        print("engine: %d events in %d epochs; critical-path %.0f events/s"
              % (report.events_run, report.epochs,
                 report.events_run / busy))
    else:
        print("engine: %d events (single-heap run)" % report.events_run)
    return 0


def _cmd_trace(args) -> int:
    from .workloads.abilene import AbileneTrace
    from .workloads.pcapio import save_trace

    if args.action == "generate":
        trace = AbileneTrace(seed=args.seed)
        count = save_trace(args.path,
                           trace.timed_packets(args.packets,
                                               rate_bps=args.gbps * 1e9))
        print("wrote %d packets to %s" % (count, args.path))
        return 0
    from .analysis.trace_report import characterize_pcap
    report = characterize_pcap(args.path)
    print("%s: %d packets, mean size %.1f B, duration %.3f s"
          % (args.path, report.packets, report.mean_bytes,
             report.duration_sec))
    if report.duration_sec > 0:
        print("average rate: %.2f Gbps" % (report.rate_bps / 1e9))
    if args.detail:
        print("flows: %d (mean %.1f packets/flow)"
              % (report.flow_count, report.mean_flow_packets))
        if report.packets > 2:
            print("burstiness (gap CV): %.2f" % report.burstiness())
        shares = report.size_shares()
        if len(shares) <= 8:
            for size, share in shares.items():
                print("  %5d B  %5.1f%%" % (size, share * 100))
    return 0


def _cmd_obs(args) -> int:
    from .obs import benchrun, compare

    if args.seed is None:
        args.seed = benchrun.DEFAULT_SEED
    if args.tolerance is None:
        args.tolerance = compare.DEFAULT_TOLERANCE

    if args.action == "run":
        if args.all:
            names = benchrun.discover()
        elif args.quick:
            names = list(benchrun.QUICK_BENCHMARKS)
        else:
            names = args.names
        if not names:
            print("error: name one or more benchmarks, or pass "
                  "--quick/--all; available:\n  %s"
                  % "\n  ".join(benchrun.discover()), file=sys.stderr)
            return 2
        out_dir = pathlib.Path(args.out_dir)
        docs = []
        failed = False
        for name in names:
            try:
                doc = benchrun.run_benchmark(name, seed=args.seed)
            except FileNotFoundError as error:
                print("error: %s" % error, file=sys.stderr)
                return 2
            path = benchrun.write_bench_json(doc, out_dir)
            docs.append(doc)
            failed = failed or doc["status"] != "passed"
            rates = sum(1 for s in doc["scalars"].values()
                        if s["kind"] == "rate")
            print("%-24s %-7s %6.2fs  %2d tests, %2d rate scalars -> %s"
                  % (doc["name"], doc["status"], doc["wall_time_sec"],
                     len(doc["tests"]), rates, path))
        if args.update_baseline:
            baseline = compare.make_baseline(
                docs, created_unix=time.time())
            with open(args.update_baseline, "w") as handle:
                json.dump(baseline, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print("baseline (%d benchmarks) -> %s"
                  % (len(docs), args.update_baseline))
        return 1 if failed else 0

    if args.action == "explain":
        if len(args.names) != 1:
            print("usage: repro obs explain <preset|BENCH_<name>.json> "
                  "[--size N] [--duration-ms MS]", file=sys.stderr)
            return 2
        target = args.names[0]
        if target.endswith(".json"):
            # A finished benchmark document: print its explain section.
            try:
                doc = compare.load_json(target)
            except (OSError, json.JSONDecodeError) as error:
                print("error: %s" % error, file=sys.stderr)
                return 2
            section = doc.get("explain")
            if not section:
                print("error: %s carries no explain section (re-run "
                      "'repro obs run %s')" % (target, doc.get("name", "?")),
                      file=sys.stderr)
                return 2
            print("explain: benchmark %s" % doc.get("name", "?"))
            for row in section.get("top_frames") or []:
                print("  %-28s %12.0f  (%4.1f%%)"
                      % (row["element"], row["self"],
                         row["fraction"] * 100))
            latency = section.get("latency")
            if latency:
                print("  latency (mean %.2f usec over %d traces):"
                      % (latency["mean_end_to_end_usec"],
                         latency["packets"]))
                for stage, usec_value in latency["stages_usec"].items():
                    if usec_value:
                        print("    %-16s %8.3f usec  (%5.1f%%)"
                              % (stage, usec_value,
                                 latency["stage_fractions"][stage] * 100))
            return 0
        from .errors import ConfigurationError
        from .obs.explain import explain_pipeline, format_explain
        try:
            report = explain_pipeline(
                target, packet_bytes=args.size,
                duration_sec=args.duration_ms * 1e-3)
        except ConfigurationError as error:
            print("error: %s" % error, file=sys.stderr)
            return 2
        print(format_explain(report))
        return 0 if report.agreement else 1

    if args.action == "timeline":
        import re

        from .obs.timeline import chrome_trace, write_trace_json

        if len(args.names) != 1:
            print("usage: repro obs timeline <rbN|BENCH_<name>.json> "
                  "[--workers N] [--duration-ms MS] [--out-dir DIR]",
                  file=sys.stderr)
            return 2
        target = args.names[0]
        if target.endswith(".json"):
            # A finished benchmark document: export its metrics section.
            from .obs.schema import validate_bench
            try:
                doc = compare.load_json(target)
            except (OSError, json.JSONDecodeError) as error:
                print("error: %s" % error, file=sys.stderr)
                return 2
            problems = validate_bench(doc)
            if problems:
                print("invalid document: %s" % "; ".join(problems),
                      file=sys.stderr)
                return 2
            name = doc.get("name", "bench")
            snapshot = doc.get("metrics") or {}
        else:
            match = re.fullmatch(r"rb(\d+)", target.lower())
            if not match:
                print("error: name an rbN preset or a BENCH_*.json, got %r"
                      % target, file=sys.stderr)
                return 2
            nodes = int(match.group(1))
            from .core import RouteBricksRouter
            from .errors import ReproError
            from .obs.metrics import MetricsRegistry
            from .parallel import simulate_parallel
            from .workloads import WorkloadSpec
            from .workloads.matrices import uniform_matrix

            router = RouteBricksRouter(num_nodes=nodes, seed=args.seed)
            workload = WorkloadSpec.fixed(args.size).with_matrix(
                uniform_matrix(nodes, router.port_rate_bps * 0.3))
            registry = MetricsRegistry(enabled=True, trace_sample_every=16,
                                       profile=True)
            try:
                report = simulate_parallel(
                    router, workload, until=args.duration_ms * 1e-3,
                    workers=args.workers, backend="inline",
                    metrics=registry)
            except ReproError as error:
                print("error: %s" % error, file=sys.stderr)
                return 2
            print("ran %s: %d epochs across %d partitions, "
                  "lookahead efficiency %.2f, imbalance %.2f"
                  % (target, report.epochs, report.workers,
                     report.lookahead_efficiency, report.load_imbalance))
            name = target.lower()
            snapshot = registry.snapshot()
        trace_doc = chrome_trace(name, snapshot)
        path = write_trace_json(trace_doc, pathlib.Path(args.out_dir))
        meta = trace_doc["metadata"]
        print("timeline %s: %d events (%d spans) on %d track(s) -> %s"
              % (name, meta["events"], meta["spans"], len(meta["tracks"]),
                 path))
        for track in meta["tracks"]:
            print("  %s" % track)
        print("open in https://ui.perfetto.dev or chrome://tracing")
        return 0

    if args.action == "report":
        from .obs.schema import validate_bench

        if len(args.names) != 1:
            print("usage: repro obs report BENCH_<name>.json",
                  file=sys.stderr)
            return 2
        try:
            doc = compare.load_json(args.names[0])
        except (OSError, json.JSONDecodeError) as error:
            print("error: %s" % error, file=sys.stderr)
            return 2
        problems = validate_bench(doc)
        if problems:
            print("invalid document: %s" % "; ".join(problems),
                  file=sys.stderr)
            return 2
        print("benchmark %s: %s in %.2fs (seed %s)"
              % (doc["name"], doc["status"], doc["wall_time_sec"],
                 doc.get("seed", "?")))
        for test in doc["tests"]:
            line = "  %-40s %s" % (test["name"], test["status"])
            if test["status"] not in ("passed",) and test.get("detail"):
                line += "  (%s)" % test["detail"]
            print(line)
        for name in sorted(doc["scalars"]):
            cell = doc["scalars"][name]
            print("  %-44s %12.6g  %s"
                  % (name, cell["value"], cell["kind"]))
        metrics = doc.get("metrics", {})
        for section in ("counters", "gauges", "histograms", "timelines"):
            entries = metrics.get(section) or {}
            if entries:
                print("  %s: %s" % (section, ", ".join(sorted(entries))))
        traces = metrics.get("traces") or {}
        if traces.get("seen"):
            print("  traces: %d sampled of %d packets (1 in %d)"
                  % (traces["sampled"], traces["seen"],
                     traces["sample_every"]))
        return 0

    # action == "diff"
    if len(args.names) != 2:
        print("usage: repro obs diff BASELINE.json BENCH_current.json",
              file=sys.stderr)
        return 2
    try:
        baseline_doc = compare.load_json(args.names[0])
        bench_doc = compare.load_json(args.names[1])
        kinds = ("rate", "time") if args.times else ("rate",)
        deltas = compare.compare_docs(baseline_doc, bench_doc,
                                      tolerance=args.tolerance,
                                      kinds=kinds)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    print(compare.summarize(deltas))
    return 1 if any(d.regressed for d in deltas) else 0


def _cmd_stateful(args) -> int:
    from .stateful import STRATEGIES, make_nf, run_strategy
    from .workloads import SkewedFlowWorkload

    workload = SkewedFlowWorkload(num_flows=args.flows, skew=args.skew,
                                  churn_packets=args.churn, seed=args.seed)
    records = list(workload.records(args.packets))
    strategies = list(STRATEGIES) if args.strategy == "all" \
        else [args.strategy]
    rows = []
    for strategy in strategies:
        report = run_strategy(make_nf(args.nf), records, args.cores, strategy)
        rows.append({
            "strategy": strategy,
            "mpps": "%.3f" % report.throughput_mpps,
            "gbps": "%.3f" % report.throughput_gbps,
            "dropped": report.dropped,
            "lock_contended": report.lock_contended,
            "coherence": report.coherence_transfers,
            "scr_deltas": report.scr_deltas,
            "flows": len(report.end_state),
        })
    print(format_table(
        rows, title="%s on %d cores, %d packets, %d flow slots, skew %.2f"
        % (args.nf, args.cores, args.packets, args.flows, args.skew)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="RouteBricks reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("experiments", help="run paper experiments")
    p.add_argument("which", nargs="?", default="list",
                   help="'list', 'summary', 'all', or an experiment id "
                        "(e.g. T1, F8)")
    p.set_defaults(func=_cmd_experiments)

    p = sub.add_parser("plan", help="size a cluster for N ports")
    p.add_argument("ports", type=int, nargs="?", default=None)
    p.add_argument("--ports", type=int, dest="ports_flag", default=None,
                   help="alternative to the positional port count")
    p.set_defaults(func=_cmd_plan)

    p = sub.add_parser("server", help="single-server saturation")
    p.add_argument("--app", choices=sorted(cal.APPLICATIONS),
                   default="forwarding")
    p.add_argument("--size", type=int, default=64)
    p.add_argument("--spec", choices=["nehalem", "next-gen", "xeon"],
                   default="nehalem")
    p.add_argument("--no-nic-limit", action="store_true")
    p.set_defaults(func=_cmd_server)

    p = sub.add_parser("pipeline",
                       help="compile a Click config to a rate prediction")
    p.add_argument("config",
                   help="path to a .click file, or a preset name "
                        "(forwarding, routing, ipsec)")
    p.add_argument("--size", type=int, default=64, help="packet bytes")
    p.add_argument("--kp", type=int, default=cal.DEFAULT_KP)
    p.add_argument("--kn", type=int, default=cal.DEFAULT_KN)
    p.add_argument("--ports", type=int, default=1,
                   help="NIC ports on the modeled server")
    p.add_argument("--queues", type=int, default=None,
                   help="queues per port (default: one per core)")
    p.add_argument("--des", action="store_true",
                   help="also binary-search the timed simulation's "
                        "loss-free rate and compare")
    p.add_argument("--batch", action="store_true",
                   help="drive the timed simulation through the "
                        "batch-native (PacketBatch) fast path; results "
                        "are identical, only wall-clock time changes")
    p.set_defaults(func=_cmd_pipeline)

    p = sub.add_parser("rb4", help="cluster operating points")
    p.add_argument("--nodes", type=int, default=4)
    p.set_defaults(func=_cmd_rb4)

    p = sub.add_parser("validate", help="analytic model vs timed DES")
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("power", help="power estimates with managed modes")
    p.add_argument("--app", choices=sorted(cal.APPLICATIONS),
                   default="forwarding")
    p.add_argument("--servers", type=int, default=4)
    p.set_defaults(func=_cmd_power)

    p = sub.add_parser("faults",
                       help="fault injection and graceful degradation")
    p.add_argument("action", nargs="?", choices=["curve", "run"],
                   default="curve")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--size", type=float, default=1024,
                   help="frame bytes (default 1024)")
    p.add_argument("--worst-case", action="store_true",
                   help="curve: worst-case matrix instead of uniform")
    p.add_argument("--max-failed", type=int, default=None,
                   help="curve: largest failure count to evaluate")
    p.add_argument("--schedule",
                   help="run: JSON fault schedule (default: crash+recover "
                        "the last node)")
    p.add_argument("--load", type=float, default=0.3,
                   help="run: offered load as a fraction of port rate")
    p.add_argument("--duration-ms", type=float, default=2.0)
    p.add_argument("--detection-usec", type=float, default=100.0,
                   help="run: peer/control failure-detection latency")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_faults)

    p = sub.add_parser("control",
                       help="live control plane: RIB churn streamed into "
                            "the forwarding cluster's FIBs")
    p.add_argument("action", choices=["run", "churn"])
    p.add_argument("topology", nargs="?", default="rb4",
                   help="cluster size as rbN (default rb4)")
    p.add_argument("--churn", action="store_true",
                   help="run: stream RIB updates during forwarding")
    p.add_argument("--routes", type=int, default=20000,
                   help="synthetic RIB size (default 20000)")
    p.add_argument("--update-rate", type=float, default=2e5,
                   help="mean update rate per second (measured-rate "
                        "churn; compressed timescale)")
    p.add_argument("--burst", type=int, default=None,
                   help="run: burst mode, N updates per storm (3 storms)")
    p.add_argument("--rates", default="1e5,4e5",
                   help="churn: comma list of update rates to sweep")
    p.add_argument("--load", type=float, default=0.2,
                   help="offered load as a fraction of port rate")
    p.add_argument("--size", type=int, default=256, help="frame bytes")
    p.add_argument("--duration-ms", type=float, default=2.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_control)

    p = sub.add_parser("parallel",
                       help="partitioned cluster DES across worker "
                            "processes (conservative lookahead)")
    p.add_argument("action", choices=["run"])
    p.add_argument("topology", nargs="?", default="rb4",
                   help="cluster size as rbN (default rb4)")
    p.add_argument("--workers", type=int, default=2,
                   help="partitions / worker processes (1 = single-heap)")
    p.add_argument("--backend", choices=["inline", "process"],
                   default="process",
                   help="inline: all partitions in this process; "
                        "process: one worker process per partition")
    p.add_argument("--size", type=int, default=64, help="frame bytes")
    p.add_argument("--load", type=float, default=0.3,
                   help="offered load as a fraction of port rate")
    p.add_argument("--duration-ms", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_parallel)

    p = sub.add_parser("stateful",
                       help="stateful NF dispatch strategies (locks / "
                            "rss / scr) under flow-skewed traffic")
    p.add_argument("action", choices=["run"])
    p.add_argument("nf", choices=["nat", "firewall", "policer", "lb"])
    p.add_argument("--strategy", choices=["locks", "rss", "scr", "all"],
                   default="all",
                   help="dispatch strategy, or 'all' for a comparison "
                        "table (default)")
    p.add_argument("--cores", type=int, default=4)
    p.add_argument("--skew", type=float, default=1.1,
                   help="Zipf exponent of the flow-popularity law")
    p.add_argument("--flows", type=int, default=512,
                   help="concurrently live flow slots")
    p.add_argument("--packets", type=int, default=20_000)
    p.add_argument("--churn", type=float, default=None,
                   help="mean flow lifetime in packets (default: no churn)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_stateful)

    p = sub.add_parser("trace", help="generate/inspect pcap traces")
    p.add_argument("action", choices=["generate", "info"])
    p.add_argument("path")
    p.add_argument("--packets", type=int, default=10_000)
    p.add_argument("--gbps", type=float, default=10.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--detail", action="store_true",
                   help="flow/burstiness/size breakdown for 'info'")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("obs",
                       help="instrumented benchmark runs and regression "
                            "diffs (BENCH_*.json)")
    p.add_argument("action",
                   choices=["run", "report", "diff", "explain", "timeline"])
    p.add_argument("names", nargs="*",
                   help="run: benchmark names (bench_ prefix optional); "
                        "report: one BENCH json; diff: baseline + current; "
                        "explain: a preset pipeline or a BENCH json; "
                        "timeline: an rbN preset or a BENCH json")
    p.add_argument("--quick", action="store_true",
                   help="run: the fast CI subset")
    p.add_argument("--all", action="store_true",
                   help="run: every benchmarks/bench_*.py")
    p.add_argument("--out-dir", default="benchmarks/results",
                   help="run: where BENCH_<name>.json lands")
    p.add_argument("--seed", type=int, default=None,
                   help="run: RNG seed for every scenario")
    p.add_argument("--update-baseline", metavar="PATH",
                   help="run: also bake the results into a baseline file")
    p.add_argument("--tolerance", type=float, default=None,
                   help="diff: fractional regression threshold "
                        "(default 0.10)")
    p.add_argument("--times", action="store_true",
                   help="diff: also gate wall-time scalars (noisy on "
                        "shared machines)")
    p.add_argument("--size", type=int, default=64,
                   help="explain/timeline: packet size in bytes "
                        "(default 64)")
    p.add_argument("--duration-ms", type=float, default=1.0,
                   help="explain/timeline: DES run length in milliseconds")
    p.add_argument("--workers", type=int, default=2,
                   help="timeline: partitions for an rbN preset run "
                        "(default 2)")
    p.set_defaults(func=_cmd_obs)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
