"""Benchmark-to-baseline comparison: the perf-regression arithmetic.

One code path serves ``python -m repro obs diff`` and CI's
``scripts/check_bench_regression.py``: load two documents (a committed
baseline and a fresh BENCH artifact, or two BENCH artifacts), compare
the scalar metrics they share, and classify each delta.  ``rate``
scalars regress downward, ``time`` scalars regress upward, ``count``
scalars never fail the gate -- they exist so drift is *visible*, not to
make CI flaky.

By default only ``rate`` scalars gate: they derive from the analytic
model and the seeded DES, so they are deterministic on any machine,
while wall-clock timings on shared CI runners are not.  Pass
``kinds=("rate", "time")`` for a local, quiet-machine check.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .schema import (
    BASELINE_SCHEMA,
    BENCH_SCHEMA,
    validate_baseline,
    validate_bench,
)

#: Fractional change beyond which a gated scalar fails (ISSUE: >10%).
DEFAULT_TOLERANCE = 0.10

#: Scalar kinds that gate by default (see module docstring).
DEFAULT_KINDS = ("rate",)


@dataclass(frozen=True)
class Delta:
    """One scalar's baseline-vs-current comparison."""

    benchmark: str
    metric: str
    kind: str
    baseline: Optional[float]
    current: Optional[float]
    change: Optional[float]          # fractional; None when undefined
    status: str                      # ok|regressed|improved|missing|new

    @property
    def regressed(self) -> bool:
        return self.status == "regressed"

    def describe(self) -> str:
        if self.change is None:
            return "%-10s %s/%s: %s (baseline %s, current %s)" % (
                self.status, self.benchmark, self.metric,
                self.kind, self.baseline, self.current)
        return "%-10s %s/%s: %.6g -> %.6g (%+.1f%%, %s)" % (
            self.status, self.benchmark, self.metric,
            self.baseline, self.current, self.change * 100, self.kind)


def classify(kind: str, baseline: float, current: float,
             tolerance: float) -> Tuple[Optional[float], str]:
    """Fractional change and verdict for one scalar pair."""
    if baseline == 0:
        if current == 0:
            return 0.0, "ok"
        return None, "new"
    change = (current - baseline) / abs(baseline)
    if kind == "perf":
        # Wall-clock engine speed: purely informational.  Machines and
        # CI runners differ too much for a portable threshold, so perf
        # deltas are surfaced but can never regress a gate.
        return change, "info"
    if kind == "rate" and change < -tolerance:
        return change, "regressed"
    if kind == "time" and change > tolerance:
        return change, "regressed"
    if kind in ("rate", "time") and abs(change) > tolerance:
        return change, "improved"
    return change, "ok"


def compare_scalars(benchmark: str,
                    baseline: Dict[str, dict],
                    current: Dict[str, dict],
                    tolerance: float = DEFAULT_TOLERANCE,
                    kinds: Sequence[str] = DEFAULT_KINDS) -> List[Delta]:
    """Compare two scalar maps (metric -> {value, kind})."""
    deltas: List[Delta] = []
    for metric in sorted(baseline):
        cell = baseline[metric]
        kind = cell.get("kind", "count")
        if kind not in kinds:
            continue
        base_value = float(cell["value"])
        cur_cell = current.get(metric)
        if cur_cell is None:
            deltas.append(Delta(benchmark, metric, kind, base_value,
                                None, None, "missing"))
            continue
        cur_value = float(cur_cell["value"])
        change, status = classify(kind, base_value, cur_value, tolerance)
        deltas.append(Delta(benchmark, metric, kind, base_value,
                            cur_value, change, status))
    for metric in sorted(set(current) - set(baseline)):
        kind = current[metric].get("kind", "count")
        if kind in kinds:
            deltas.append(Delta(benchmark, metric, kind, None,
                                float(current[metric]["value"]), None,
                                "new"))
    return deltas


def baseline_scalars_for(baseline_doc: dict,
                         bench_name: str) -> Optional[Dict[str, dict]]:
    """Scalars recorded for one benchmark in either document shape."""
    if baseline_doc.get("schema") == BASELINE_SCHEMA:
        entry = baseline_doc.get("benchmarks", {}).get(bench_name)
        return entry["scalars"] if entry else None
    if baseline_doc.get("schema") == BENCH_SCHEMA:
        if baseline_doc.get("name") != bench_name:
            return None
        return baseline_doc.get("scalars", {})
    return None


def compare_docs(baseline_doc: dict, bench_doc: dict,
                 tolerance: float = DEFAULT_TOLERANCE,
                 kinds: Sequence[str] = DEFAULT_KINDS) -> List[Delta]:
    """Compare one BENCH document against a baseline (either shape).

    Raises ``ValueError`` when either document fails schema validation
    or the baseline has no entry for this benchmark.
    """
    problems = validate_bench(bench_doc)
    if problems:
        raise ValueError("current document is invalid: %s"
                         % "; ".join(problems))
    if baseline_doc.get("schema") == BASELINE_SCHEMA:
        problems = validate_baseline(baseline_doc)
    else:
        problems = validate_bench(baseline_doc)
    if problems:
        raise ValueError("baseline document is invalid: %s"
                         % "; ".join(problems))
    name = bench_doc["name"]
    base_scalars = baseline_scalars_for(baseline_doc, name)
    if base_scalars is None:
        raise ValueError("baseline has no entry for benchmark %r" % name)
    return compare_scalars(name, base_scalars, bench_doc["scalars"],
                           tolerance=tolerance, kinds=kinds)


def make_baseline(bench_docs: Iterable[dict],
                  created_unix: float,
                  tolerance: float = DEFAULT_TOLERANCE) -> dict:
    """Fold BENCH documents into a committable baseline file."""
    benchmarks = {}
    for doc in bench_docs:
        problems = validate_bench(doc)
        if problems:
            raise ValueError("refusing to bake invalid document %r: %s"
                             % (doc.get("name"), "; ".join(problems)))
        benchmarks[doc["name"]] = {"scalars": doc["scalars"]}
    return {
        "schema": BASELINE_SCHEMA,
        "created_unix": created_unix,
        "tolerance": tolerance,
        "benchmarks": benchmarks,
    }


def load_json(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def summarize(deltas: Sequence[Delta]) -> str:
    """Human-readable digest, regressions first."""
    order = {"regressed": 0, "missing": 1, "new": 2, "improved": 3,
             "info": 4, "ok": 5}
    lines = [d.describe()
             for d in sorted(deltas, key=lambda d: (order[d.status],
                                                    d.benchmark, d.metric))]
    regressed = sum(1 for d in deltas if d.regressed)
    lines.append("%d scalar(s) compared, %d regressed, %d improved, "
                 "%d missing from current run"
                 % (len(deltas), regressed,
                    sum(1 for d in deltas if d.status == "improved"),
                    sum(1 for d in deltas if d.status == "missing")))
    return "\n".join(lines)
