"""Sampled packet-path tracing.

Aggregate metrics say *how much*; a path trace says *where*.  For 1-in-N
packets the sampler attaches a :class:`PathTrace` that every
instrumented hop appends to -- Click elements record their name as the
packet traverses them, cluster nodes record role and timestamp, the
timed runners record arrival/poll/transmit.  The result is the
per-packet event log the paper's bottleneck arguments reason about
(which queue, which core, which hop added the latency), at a sampling
cost that leaves the hot path alone for the other N-1 packets.

Traces ride in ``packet.annotations["pathtrace"]`` so no dataplane
signature changes; hops inside a single DES event share that event's
timestamp (elements execute instantaneously), so element hops may carry
``time=None`` and inherit the enclosing hop's clock in reports.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

#: Annotation key under which a sampled packet carries its trace.
TRACE_ANNOTATION = "pathtrace"


class TraceHop(NamedTuple):
    """One recorded waypoint: where, when (sim seconds; None = same event
    as the previous timestamped hop), and an optional note."""

    site: str
    time: Optional[float]
    note: Optional[str] = None


class PathTrace:
    """The ordered hop log of one sampled packet."""

    __slots__ = ("packet_id", "started", "hops")

    def __init__(self, packet_id: int, started: float):
        self.packet_id = packet_id
        self.started = started
        self.hops: List[TraceHop] = []

    def hop(self, site: str, time: Optional[float] = None,
            note: Optional[str] = None) -> None:
        self.hops.append(TraceHop(site, time, note))

    def sites(self) -> List[str]:
        return [h.site for h in self.hops]

    def last_time(self) -> float:
        """Latest known timestamp (falls back to the start time)."""
        for hop in reversed(self.hops):
            if hop.time is not None:
                return hop.time
        return self.started

    def duration(self) -> float:
        """Seconds from the first to the last timestamped hop."""
        times = [h.time for h in self.hops if h.time is not None]
        if not times:
            return 0.0
        return max(times) - min(times)

    def to_dict(self) -> dict:
        return {
            "packet_id": self.packet_id,
            "started": self.started,
            "duration_sec": self.duration(),
            "hops": [{"site": h.site, "time": h.time,
                      **({"note": h.note} if h.note else {})}
                     for h in self.hops],
        }

    def __len__(self) -> int:
        return len(self.hops)

    def __repr__(self):
        return "<PathTrace #%d %d hops>" % (self.packet_id, len(self.hops))


class TraceSampler:
    """Deterministic 1-in-N packet selection.

    The first packet offered is sampled, then every ``sample_every``-th
    after it -- deterministic so trace output is reproducible run to run.
    ``max_traces`` bounds memory on long runs; sampling keeps counting
    (``seen``/``sampled`` stay truthful) but new traces are no longer
    retained once full.
    """

    def __init__(self, sample_every: int = 64, max_traces: int = 256):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        self.sample_every = sample_every
        self.max_traces = max_traces
        self.seen = 0
        self.sampled = 0
        #: Per-entry-point seen counters (see ``maybe_start``'s ``key``).
        self._seen_by_key: Dict = {}
        self.traces: List[PathTrace] = []
        #: Traces decoded from transit records (parallel DES): the
        #: downstream partition keeps the continued copy here -- without
        #: counting it as seen/sampled -- so a merge can stitch each
        #: packet's longest hop list back together.
        self.resumed: Dict[int, PathTrace] = {}

    def reset(self) -> None:
        self.seen = 0
        self.sampled = 0
        self._seen_by_key = {}
        self.traces = []
        self.resumed = {}

    def resume(self, trace: PathTrace) -> PathTrace:
        """Adopt a trace that crossed a partition boundary.

        The wire encoding carries the trace (with its hops so far) in the
        packet annotations; the receiving partition re-registers the
        decoded copy here and keeps appending hops to it.  Does not touch
        ``seen``/``sampled`` -- the ingress partition already counted
        this packet.
        """
        self.resumed[trace.packet_id] = trace
        return trace

    def merge(self, other: "TraceSampler") -> None:
        """Fold another sampler's traces in (parallel-run reduction).

        Each packet keeps its longest hop list across copies (a resumed
        downstream copy supersedes the upstream prefix it was forked
        from); the retained list is rebuilt sorted by (start time, packet
        id), which reproduces the single-sampler retention order, and
        re-capped at ``max_traces``.
        """
        self.seen += other.seen
        self.sampled += other.sampled
        for key, count in other._seen_by_key.items():
            self._seen_by_key[key] = self._seen_by_key.get(key, 0) + count
        best = {t.packet_id: t for t in self.traces}
        candidates = list(other.traces)
        candidates.extend(other.resumed[pid] for pid in sorted(other.resumed))
        for trace in candidates:
            kept = best.get(trace.packet_id)
            if kept is None or len(trace.hops) > len(kept.hops):
                best[trace.packet_id] = trace
        ordered = sorted(best.values(),
                         key=lambda t: (t.started, t.packet_id))
        self.traces = ordered[:self.max_traces]

    def maybe_start(self, packet, time: float,
                    site: str = "arrival", key=None) -> Optional[PathTrace]:
        """Offer a packet at an entry point; returns its trace if sampled.

        Idempotent per packet: a packet already carrying a trace just
        gets a hop appended (re-entry at a second ingress point).

        ``key`` selects a per-entry-point seen counter instead of the
        shared one.  Cluster nodes pass their node id: a node's local
        arrival order does not depend on how the cluster is sharded
        across partitions, so keyed sampling picks the *same* packets at
        any worker count (the shared counter's order is global and would
        not).  ``seen`` stays the all-keys total either way.
        """
        annotations: Dict = packet.annotations
        trace = annotations.get(TRACE_ANNOTATION)
        if trace is not None:
            trace.hop(site, time)
            return trace
        if key is None:
            index = self.seen
        else:
            index = self._seen_by_key.get(key, 0)
            self._seen_by_key[key] = index + 1
        self.seen += 1
        if index % self.sample_every:
            return None
        self.sampled += 1
        trace = PathTrace(packet.packet_id, started=time)
        trace.hop(site, time)
        annotations[TRACE_ANNOTATION] = trace
        if len(self.traces) < self.max_traces:
            self.traces.append(trace)
        return trace

    def start_trace(self, packet, time: float,
                    site: str = "arrival") -> PathTrace:
        """Unconditionally start (and retain, capacity permitting) a trace.

        For callers that run the 1-in-``sample_every`` selection
        themselves -- the batch arrival path keeps ``seen`` in a local
        and only materializes a Packet for the slots this method would
        be called on, then writes the final count back to :attr:`seen`.
        The selection rule must match :meth:`maybe_start`'s (sample when
        ``seen % sample_every == 0``) for the two entry points to pick
        the same packet positions.
        """
        self.sampled += 1
        trace = PathTrace(packet.packet_id, started=time)
        trace.hop(site, time)
        packet.annotations[TRACE_ANNOTATION] = trace
        if len(self.traces) < self.max_traces:
            self.traces.append(trace)
        return trace


def trace_of(packet) -> Optional[PathTrace]:
    """The packet's trace, if the sampler picked it."""
    return packet.annotations.get(TRACE_ANNOTATION)
