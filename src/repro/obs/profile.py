"""Deterministic virtual-time profiling and latency decomposition.

Two instruments that turn the raw telemetry of :mod:`repro.obs.metrics`
into the paper's style of *attribution*:

* :class:`SpanProfiler` -- hierarchical span accounting over the DES.
  Instrumented code charges virtual cost (cycles on a server core,
  microseconds on a cluster node) to a stack of frames
  (``run -> core3 -> LookupIPRoute``); the profiler keeps exact per-path
  self values and derives inclusive totals, and can emit the
  collapsed-stack text format flamegraph tooling consumes
  (``run;core3;LookupIPRoute 4821``).  Everything is charged in
  *simulation* units in deterministic event order, so two seeded runs
  produce byte-identical output -- profiling is itself reproducible.
* :func:`decompose_trace` -- splits one traced packet's end-to-end
  latency into named stages (poll wait, RX-ring queueing, element
  service, VLB hop transit, reorder-buffer hold) from the timestamped
  hops its :class:`~repro.obs.trace.PathTrace` recorded.  The stages are
  consecutive intervals of the same clock, so they sum to the measured
  end-to-end latency *by construction*; anything the classifier cannot
  name lands in ``other``, and the conservation check demands that
  bucket stay negligible.
"""

from __future__ import annotations

import bisect
import contextlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

#: Stage names a packet's latency decomposes into, in pipeline order.
STAGES = ("poll_wait", "rx_ring_wait", "element_service",
          "vlb_hop_transit", "egress_transit", "reorder_hold", "other")


class SpanProfiler:
    """Hierarchical virtual-cost accounting with collapsed-stack output.

    Frames form paths rooted at ``root``; :meth:`charge` books a value
    against the current span stack plus any extra frames.  Values are
    unit-agnostic -- the single-server runners charge cycles under
    ``core<N>`` frames, the cluster charges microseconds under
    ``node<N>`` frames -- so read units off the first frame below the
    root.  :meth:`begin_event` is the :class:`~repro.simnet.engine
    .Simulator` hook: each DES event starts with a fresh span stack, so
    a callback that exits abnormally cannot leak frames into the next
    event.
    """

    def __init__(self, root: str = "run"):
        self.root = root
        self._self: Dict[Tuple[str, ...], float] = {}
        self._stack: List[str] = []

    # -- span lifecycle ----------------------------------------------------

    def begin_event(self) -> None:
        """Reset the span stack (called by the DES engine per event)."""
        if self._stack:
            self._stack.clear()

    def push(self, frame: str) -> None:
        self._stack.append(frame)

    def pop(self) -> None:
        self._stack.pop()

    @contextlib.contextmanager
    def span(self, frame: str):
        """Scope a frame: charges inside run under ``frame``."""
        self.push(frame)
        try:
            yield self
        finally:
            self.pop()

    # -- charging ----------------------------------------------------------

    def charge(self, value: float, *frames: str) -> None:
        """Book ``value`` at the current stack extended by ``frames``."""
        if value == 0:
            return
        if value < 0:
            raise ValueError("span charges cannot be negative")
        path = (self.root, *self._stack, *frames)
        self._self[path] = self._self.get(path, 0.0) + value

    def bind(self, *frames: str):
        """A pre-resolved charger for one fixed path.

        The path is captured at bind time (current stack plus
        ``frames``), so hot loops that always charge the same frames --
        the timed runners' per-poll core/element charges -- skip the
        tuple build and stack walk per call.  Only bind where the span
        stack is known to be empty at charge time.
        """
        path = (self.root, *self._stack, *frames)
        store = self._self
        get = store.get

        def charge(value: float) -> None:
            if value:
                store[path] = get(path, 0.0) + value

        return charge

    def merge(self, other: "SpanProfiler") -> None:
        """Sum another profiler's per-path self values into this one.

        Cluster frames are keyed by node (``node<N>;...``), so partitions
        contribute disjoint paths and the merge is exact; where paths do
        collide the charges simply add, same as if both had been booked
        here.  Paths are visited in sorted order for determinism.
        """
        for path in sorted(other._self):
            self._self[path] = self._self.get(path, 0.0) + other._self[path]

    # -- queries -----------------------------------------------------------

    def self_value(self, *path: str) -> float:
        """Exact value charged at ``path`` itself (root implied)."""
        return self._self.get((self.root, *path), 0.0)

    def total_value(self, *prefix: str) -> float:
        """Inclusive value: everything charged at or below ``prefix``."""
        full = (self.root, *prefix)
        depth = len(full)
        return sum(value for path, value in self._self.items()
                   if path[:depth] == full)

    def table(self) -> List[dict]:
        """Self/total rows for every observed path prefix, sorted."""
        totals: Dict[Tuple[str, ...], float] = {}
        for path, value in self._self.items():
            for depth in range(1, len(path) + 1):
                prefix = path[:depth]
                totals[prefix] = totals.get(prefix, 0.0) + value
        return [{
            "frames": ";".join(prefix),
            "depth": len(prefix) - 1,
            "self": self._self.get(prefix, 0.0),
            "total": total,
        } for prefix, total in sorted(totals.items())]

    def leaf_totals(self, skip: Tuple[str, ...] = ()) -> Dict[str, float]:
        """Charged value aggregated by leaf frame across all paths."""
        out: Dict[str, float] = {}
        for path, value in self._self.items():
            leaf = path[-1]
            if leaf in skip:
                continue
            out[leaf] = out.get(leaf, 0.0) + value
        return out

    def collapsed(self, scale: float = 1.0) -> str:
        """Flamegraph-compatible text: one ``a;b;c value`` line per path.

        Values are rounded to integers as the format expects; pass
        ``scale`` (e.g. 1e3 for microsecond charges) to keep resolution.
        """
        lines = ["%s %.0f" % (";".join(path), value * scale)
                 for path, value in sorted(self._self.items())]
        return "\n".join(lines)

    def to_dict(self, max_rows: int = 200) -> dict:
        """JSON-able dump: top self-value rows plus the collapsed text."""
        rows = sorted(
            ({"frames": ";".join(path), "self": value}
             for path, value in self._self.items()),
            key=lambda row: (-row["self"], row["frames"]))
        return {
            "root": self.root,
            "paths": len(self._self),
            "self_total": sum(self._self.values()),
            "frames": rows[:max_rows],
            "collapsed": self.collapsed().splitlines()[:max_rows],
        }

    def reset(self) -> None:
        self._self.clear()
        self._stack.clear()

    def __len__(self) -> int:
        return len(self._self)


def first_poll_after(poll_times: List[float], arrival: float,
                     pickup: float) -> float:
    """First poll on a queue strictly after ``arrival``, clamped to the
    actual pickup time (the runners' poll-wait / ring-wait split)."""
    index = bisect.bisect_right(poll_times, arrival)
    if index < len(poll_times):
        return min(poll_times[index], pickup)
    return pickup


@dataclass
class LatencyBreakdown:
    """One packet's end-to-end latency, split into named stages.

    Stages are consecutive intervals between the trace's timestamped
    hops, so ``sum(stages.values()) == end_to_end_sec`` exactly; the
    conservation *check* is that the unclassified ``other`` share stays
    under a tolerance.
    """

    packet_id: int
    end_to_end_sec: float
    stages: Dict[str, float]

    def stage_sum(self) -> float:
        return sum(self.stages.values())

    def residual_fraction(self) -> float:
        """Unclassified share of the end-to-end latency."""
        if self.end_to_end_sec <= 0:
            return 0.0
        return self.stages.get("other", 0.0) / self.end_to_end_sec

    def conserved(self, rel_tol: float = 0.01) -> bool:
        """Do the named stages account for the measured latency?"""
        if self.end_to_end_sec <= 0:
            return True
        gap = abs(self.stage_sum() - self.end_to_end_sec)
        return (gap <= rel_tol * self.end_to_end_sec
                and self.residual_fraction() <= rel_tol)

    def fractions(self) -> Dict[str, float]:
        total = self.end_to_end_sec
        if total <= 0:
            return {stage: 0.0 for stage in self.stages}
        return {stage: value / total
                for stage, value in self.stages.items()}

    def to_dict(self) -> dict:
        return {
            "packet_id": self.packet_id,
            "end_to_end_usec": self.end_to_end_sec * 1e6,
            "stages_usec": {stage: value * 1e6
                            for stage, value in self.stages.items()},
            "residual_fraction": self.residual_fraction(),
        }


def _classify(prev_site: str, site: str) -> str:
    """Name the stage the interval ``prev_site -> site`` belongs to."""
    if site == "poll":
        return "poll_wait"
    if site == "pickup":
        return "rx_ring_wait"
    if site == "service_done":
        return "element_service"
    if site == "reorder.release":
        return "reorder_hold"
    if site.endswith(".tx") or site.endswith(".egress_q"):
        # Time spent *inside* a node before it transmits (input or
        # intermediate role) or before the external line (output role).
        return "element_service"
    if site.endswith(".intermediate") or site.endswith(".output"):
        return "vlb_hop_transit"
    if site.endswith(".egress"):
        # With a rate-limited external line the egress_q hop precedes
        # this one and the gap is wire serialization; without one the
        # gap is the output role's service time.
        if prev_site.endswith(".egress_q"):
            return "egress_transit"
        return "element_service"
    return "other"


def _timestamped_hops(trace) -> List[Tuple[str, float]]:
    """(site, time) pairs of a PathTrace or its ``to_dict()`` form."""
    hops = trace["hops"] if isinstance(trace, dict) else trace.hops
    out = []
    for hop in hops:
        site = hop["site"] if isinstance(hop, dict) else hop.site
        time = hop["time"] if isinstance(hop, dict) else hop.time
        if time is not None:
            out.append((site, time))
    return out


#: Terminal sites that mark a trace as *delivered* (vs dropped mid-way).
_DELIVERED_SUFFIXES = (".egress",)
_DELIVERED_SITES = ("service_done", "reorder.release")


def trace_delivered(trace) -> bool:
    """Did this traced packet make it all the way out?"""
    hops = _timestamped_hops(trace)
    if not hops:
        return False
    last = hops[-1][0]
    return (last in _DELIVERED_SITES
            or any(last.endswith(suffix) for suffix in _DELIVERED_SUFFIXES))


def decompose_trace(trace) -> LatencyBreakdown:
    """Split one trace's latency into stages (accepts a
    :class:`~repro.obs.trace.PathTrace` or its ``to_dict()`` form)."""
    hops = _timestamped_hops(trace)
    stages = {stage: 0.0 for stage in STAGES}
    if len(hops) < 2:
        packet_id = (trace["packet_id"] if isinstance(trace, dict)
                     else trace.packet_id)
        return LatencyBreakdown(packet_id=packet_id, end_to_end_sec=0.0,
                                stages=stages)
    for (prev_site, prev_time), (site, time) in zip(hops, hops[1:]):
        delta = time - prev_time
        if delta < 0:  # defensively: out-of-order hops are unclassifiable
            stages["other"] += abs(delta)
            continue
        stages[_classify(prev_site, site)] += delta
    packet_id = (trace["packet_id"] if isinstance(trace, dict)
                 else trace.packet_id)
    return LatencyBreakdown(packet_id=packet_id,
                            end_to_end_sec=hops[-1][1] - hops[0][1],
                            stages=stages)


def aggregate_breakdowns(traces: Iterable,
                         delivered_only: bool = True) -> Optional[dict]:
    """Mean stage decomposition over many traces (JSON-able), or None
    when no trace is usable."""
    breakdowns = []
    for trace in traces:
        if delivered_only and not trace_delivered(trace):
            continue
        breakdown = decompose_trace(trace)
        if breakdown.end_to_end_sec > 0:
            breakdowns.append(breakdown)
    if not breakdowns:
        return None
    count = len(breakdowns)
    total = sum(b.end_to_end_sec for b in breakdowns)
    stage_sums = {stage: sum(b.stages[stage] for b in breakdowns)
                  for stage in STAGES}
    return {
        "packets": count,
        "mean_end_to_end_usec": total / count * 1e6,
        "stages_usec": {stage: value / count * 1e6
                        for stage, value in stage_sums.items()},
        "stage_fractions": {stage: (value / total if total else 0.0)
                            for stage, value in stage_sums.items()},
        "max_residual_fraction": max(b.residual_fraction()
                                     for b in breakdowns),
    }
