"""Run ``benchmarks/bench_*.py`` scenarios outside pytest, with metrics on.

pytest-benchmark produces interactive output for humans; CI and the
``repro obs`` CLI need a machine-readable artifact instead.  This module
imports one benchmark file, resolves its fixtures against lightweight
stand-ins (a timing proxy for ``benchmark``, capture shims for
``save_result``/``results_dir``/``tmp_path``, and the module's own
``@pytest.fixture`` functions), runs every ``test_*`` under a fresh
*enabled* :class:`~repro.obs.metrics.MetricsRegistry`, and emits a
schema-versioned ``BENCH_<name>.json`` document
(:data:`repro.obs.schema.BENCH_SCHEMA`).

Scalars are harvested two ways:

* rows/dicts returned through the ``benchmark`` proxy are walked for
  throughput-looking numeric keys (``*gbps``, ``*mpps``, ``rate*``...),
  exported as ``kind="rate"`` with ``.mean``/``.min`` aggregates;
* per-test and whole-run wall time become ``kind="time"`` scalars;
* selected registry totals (events run, packets dropped) become
  ``kind="count"``.

Rates come from the seeded analytic/DES models, so they are bitwise
reproducible; only the ``time`` scalars vary run to run.
"""

from __future__ import annotations

import importlib.util
import inspect
import json
import math
import pathlib
import random
import statistics
import sys
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .explain import explain_from_registry
from .metrics import MetricsRegistry, use_registry
from .schema import BENCH_SCHEMA, validate_bench

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is baked into the image
    _np = None

#: Default RNG seed applied before every test (satellite: reproducible
#: bench JSON run-to-run).
DEFAULT_SEED = 20090917  # RouteBricks' SOSP camera-ready era

#: Quick subset used by CI's bench job -- the scenarios that finish in
#: seconds and still cover the analytic model, the DES, and the cluster.
#: ``timed_server`` is the one that exercises the DES hot paths, so its
#: run also yields a ``PROFILE_*.collapsed`` span-profile sidecar.
QUICK_BENCHMARKS = (
    "table1_batching",
    "fig6_queues",
    "table2_bounds",
    "fig7_aggregate",
    "fig3_topology",
    "timed_server",
    "parallel_scaling",
    "stateful_scr",
    "fib_churn",
)

#: Numeric dict keys harvested as rate scalars.
_RATE_KEY_HINTS = ("gbps", "mpps", "mbps", "pps", "rate")
#: Numeric dict keys harvested as kind="perf" scalars: engine-speed
#: figures (events/s, parallel speedup, worker counts, barrier/epoch
#: telemetry) that the regression checker surfaces but never gates on --
#: they track the machine as much as the code.
_PERF_KEY_HINTS = ("events_per_sec", "speedup", "workers",
                   "barrier_wait", "lookahead", "imbalance",
                   "convergence")
#: String dict keys recorded verbatim (e.g. which resource binds).
_LABEL_KEY_HINTS = ("binding", "bottleneck")


def bench_root() -> pathlib.Path:
    """The repo's ``benchmarks/`` directory (repo root is three levels
    above this file: src/repro/obs)."""
    return pathlib.Path(__file__).resolve().parents[3] / "benchmarks"


def normalize(name: str) -> str:
    """Accept ``bench_fig6_queues``, ``fig6_queues``, or a filename."""
    short = name[:-3] if name.endswith(".py") else name
    if short.startswith("bench_"):
        short = short[len("bench_"):]
    return short


def discover(root: Optional[pathlib.Path] = None) -> List[str]:
    """Short names of every benchmark scenario on disk, sorted."""
    root = root or bench_root()
    return sorted(normalize(p.name) for p in root.glob("bench_*.py"))


class BenchmarkProxy:
    """Stands in for pytest-benchmark's ``benchmark`` fixture.

    Supports the two call styles the suite uses -- ``benchmark(fn,
    *args)`` and ``benchmark.pedantic(fn, args=..., rounds=...,
    iterations=...)`` -- timing with ``perf_counter`` and returning the
    target's result so assertions downstream still run.
    """

    def __init__(self) -> None:
        self.timings: List[float] = []
        self.last_result: Any = None

    def _run(self, target: Callable, args: tuple, kwargs: dict) -> Any:
        start = time.perf_counter()
        result = target(*args, **kwargs)
        self.timings.append(time.perf_counter() - start)
        self.last_result = result
        return result

    def __call__(self, target: Callable, *args, **kwargs) -> Any:
        return self._run(target, args, kwargs)

    def pedantic(self, target: Callable, args: tuple = (),
                 kwargs: Optional[dict] = None, rounds: int = 1,
                 iterations: int = 1, warmup_rounds: int = 0) -> Any:
        result = None
        for _ in range(max(1, rounds) * max(1, iterations)):
            result = self._run(target, args, kwargs or {})
        return result

    def stats(self) -> Dict[str, float]:
        if not self.timings:
            return {}
        return {
            "mean": statistics.fmean(self.timings),
            "min": min(self.timings),
            "max": max(self.timings),
            "rounds": float(len(self.timings)),
        }


class _Skipped(Exception):
    """Internal: a test could not run (unknown fixture, pytest.skip)."""


def _load_module(short: str, root: pathlib.Path):
    path = root / ("bench_%s.py" % short)
    if not path.exists():
        raise FileNotFoundError(
            "no such benchmark %r (looked for %s); known: %s"
            % (short, path, ", ".join(discover(root))))
    # benchmarks/ is not a package: load by file location under a
    # private alias so repeated runs do not collide in sys.modules.
    spec = importlib.util.spec_from_file_location(
        "repro_bench._%s" % short, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


def _unwrap_fixture(obj) -> Optional[Callable]:
    """The plain function behind a ``@pytest.fixture`` definition, or
    None when ``obj`` is not one."""
    wrapped = getattr(obj, "__wrapped__", None)
    if wrapped is not None and (
            "fixture" in type(obj).__name__.lower()
            or getattr(obj, "_pytestfixturefunction", None) is not None):
        return wrapped
    return None


class FixtureResolver:
    """Resolves fixture-style parameters for one test invocation."""

    def __init__(self, module, builtins: Dict[str, Any],
                 cache: Dict[str, Any]):
        self.module = module
        self.builtins = builtins
        # Module-scope fixtures (rib, destinations) are expensive;
        # ``cache`` is shared across the tests of one benchmark file.
        self.cache = cache

    def resolve(self, name: str) -> Any:
        if name in self.builtins:
            return self.builtins[name]
        if name in self.cache:
            return self.cache[name]
        fn = _unwrap_fixture(getattr(self.module, name, None))
        if fn is None:
            raise _Skipped("fixture %r is not supported by the runner"
                           % name)
        args = [self.resolve(dep)
                for dep in inspect.signature(fn).parameters]
        value = fn(*args)
        if inspect.isgenerator(value):  # yield-fixture: take the value
            value = next(value)
        self.cache[name] = value
        return value


def _harvest(value: Any, sink: Dict[str, Any], depth: int = 0) -> None:
    """Walk a benchmark return value for throughput-like observations."""
    if depth > 6 or value is None:
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if isinstance(key, str):
                lowered = key.lower()
                numeric = (isinstance(item, (int, float))
                           and not isinstance(item, bool)
                           and math.isfinite(item))
                if numeric and any(h in lowered for h in _PERF_KEY_HINTS):
                    sink.setdefault("perf:" + key, []).append(float(item))
                    continue
                if numeric and any(h in lowered for h in _RATE_KEY_HINTS):
                    sink.setdefault(key, []).append(float(item))
                    continue
                if isinstance(item, str) \
                        and any(h in lowered for h in _LABEL_KEY_HINTS):
                    sink.setdefault("label:" + key, []).append(item)
                    continue
            _harvest(item, sink, depth + 1)
    elif isinstance(value, (list, tuple)):
        for item in value:
            _harvest(item, sink, depth + 1)


def _seed_everything(seed: int) -> None:
    random.seed(seed)
    if _np is not None:
        _np.random.seed(seed)


def _registry_counts(registry: MetricsRegistry) -> Dict[str, float]:
    """Totals worth tracking for drift (kind="count")."""
    out: Dict[str, float] = {}
    events = registry.get("sim_events")
    if events is not None:
        out["sim_events"] = float(events.totals()["count"])
    drops = registry.get("node_drops")
    if drops is not None:
        out["node_drops"] = drops.total()
    return out


def _parallel_perf_scalars(registry: MetricsRegistry) -> Dict[str, float]:
    """Epoch/barrier telemetry the parallel runner charged, as ``perf``
    scalars keyed by worker count (``run.imbalance{workers=4}``, ...).
    Barrier wait is summed over partitions -- the aggregate stall the
    sweep paid at that worker count."""
    from .timeline import _parse_labels

    out: Dict[str, float] = {}
    for metric, key in (("parallel_lookahead_efficiency",
                         "lookahead_efficiency"),
                        ("parallel_imbalance", "imbalance")):
        gauge = registry.get(metric)
        if gauge is not None:
            for label_str, value in gauge.series().items():
                out["run.%s%s" % (key, label_str)] = value
    wait = registry.get("parallel_barrier_wait_seconds")
    if wait is not None:
        per_workers: Dict[str, float] = {}
        for label_str, value in wait.series().items():
            workers = _parse_labels(label_str).get("workers", "?")
            key = "run.barrier_wait_seconds{workers=%s}" % workers
            per_workers[key] = per_workers.get(key, 0.0) + value
        out.update(per_workers)
    return out


def run_benchmark(name: str, seed: int = DEFAULT_SEED,
                  root: Optional[pathlib.Path] = None,
                  trace_sample_every: int = 64) -> dict:
    """Execute one benchmark scenario; returns a BENCH document."""
    import pytest

    root = root or bench_root()
    short = normalize(name)
    started = time.time()
    wall_start = time.perf_counter()
    module = _load_module(short, root)

    tests = [(n, fn) for n, fn in sorted(vars(module).items())
             if n.startswith("test_") and inspect.isfunction(fn)]
    registry = MetricsRegistry(enabled=True,
                               trace_sample_every=trace_sample_every,
                               profile=True)
    artifacts: Dict[str, str] = {}
    observations: Dict[str, Any] = {}
    test_entries: List[dict] = []
    scalars: Dict[str, dict] = {}
    module_cache: Dict[str, Any] = {}
    tmp_dir = pathlib.Path(root) / "results"

    def save_result(artifact: str, text: str) -> None:
        artifacts[artifact] = text

    with use_registry(registry):
        for test_name, fn in tests:
            proxy = BenchmarkProxy()
            builtins = {
                "benchmark": proxy,
                "save_result": save_result,
                "results_dir": tmp_dir,
                "tmp_path": tmp_dir,
            }
            resolver = FixtureResolver(module, builtins, module_cache)
            _seed_everything(seed)
            entry = {"name": test_name, "status": "passed"}
            test_start = time.perf_counter()
            try:
                args = [resolver.resolve(p) for p
                        in inspect.signature(fn).parameters]
                fn(*args)
            except _Skipped as exc:
                entry["status"] = "skipped"
                entry["detail"] = str(exc)
            except pytest.skip.Exception as exc:
                entry["status"] = "skipped"
                entry["detail"] = str(exc)
            except AssertionError as exc:
                entry["status"] = "failed"
                entry["detail"] = str(exc) or "assertion failed"
            except Exception as exc:
                entry["status"] = "error"
                entry["detail"] = "".join(traceback.format_exception_only(
                    type(exc), exc)).strip()
            entry["wall_time_sec"] = time.perf_counter() - test_start
            test_entries.append(entry)
            if entry["status"] in ("passed", "failed"):
                scalars["%s.wall_time_sec" % test_name] = {
                    "value": entry["wall_time_sec"], "kind": "time"}
            if entry["status"] != "passed":
                continue
            per_test: Dict[str, Any] = {}
            _harvest(proxy.last_result, per_test)
            for key, values in per_test.items():
                if key.startswith("label:"):
                    observations.setdefault(key, []).extend(values)
                    continue
                if key.startswith("perf:"):
                    scalars["%s.%s" % (test_name, key[len("perf:"):])] = {
                        "value": statistics.fmean(values), "kind": "perf"}
                    continue
                scalars["%s.%s.mean" % (test_name, key)] = {
                    "value": statistics.fmean(values), "kind": "rate"}
                scalars["%s.%s.min" % (test_name, key)] = {
                    "value": min(values), "kind": "rate"}

    counts = _registry_counts(registry)
    for key, value in counts.items():
        scalars["run.%s" % key] = {"value": value, "kind": "count"}
    # Parallel runs record their partition count in the run_workers gauge
    # (see repro.parallel.simulate_parallel); surface it so BENCH
    # artifacts say what sharding produced them.
    workers_gauge = registry.get("run_workers")
    if workers_gauge is not None:
        scalars["run.workers"] = {"value": workers_gauge.value(),
                                  "kind": "perf"}
    for key, value in _parallel_perf_scalars(registry).items():
        scalars[key] = {"value": value, "kind": "perf"}

    wall = time.perf_counter() - wall_start
    scalars["run.wall_time_sec"] = {"value": wall, "kind": "time"}
    # Engine speed: real seconds inside Simulator.run (charged by the
    # engine to this counter) against events executed.  kind="perf" so
    # the regression checker reports drift without ever gating on it.
    wall_counter = registry.get("engine_wall_seconds")
    wall_clock_s = wall_counter.total() if wall_counter is not None else 0.0
    events_per_sec = (counts.get("sim_events", 0.0) / wall_clock_s
                      if wall_clock_s > 0 else 0.0)
    scalars["run.wall_clock_s"] = {"value": wall_clock_s, "kind": "perf"}
    scalars["run.events_per_sec"] = {"value": events_per_sec, "kind": "perf"}
    status = "passed" if all(t["status"] in ("passed", "skipped")
                             for t in test_entries) else "failed"
    doc = {
        "schema": BENCH_SCHEMA,
        "name": short,
        "created_unix": started,
        "seed": seed,
        "wall_time_sec": wall,
        "wall_clock_s": wall_clock_s,
        "events_per_sec": events_per_sec,
        "status": status,
        "tests": test_entries,
        "scalars": scalars,
        "labels": {key[len("label:"):]: sorted(set(values))
                   for key, values in observations.items()
                   if key.startswith("label:")},
        "metrics": registry.snapshot(),
        "explain": explain_from_registry(registry),
        "artifacts": sorted(artifacts),
    }
    problems = validate_bench(doc)
    if problems:  # pragma: no cover - guards future schema drift
        raise RuntimeError("runner produced an invalid document: %s"
                           % "; ".join(problems))
    return doc


def _json_default(value):
    """Coerce stray numpy scalars at the serialization boundary."""
    if hasattr(value, "item"):
        return value.item()
    raise TypeError("not JSON serializable: %r" % type(value))


def write_bench_json(doc: dict, out_dir: pathlib.Path) -> pathlib.Path:
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / ("BENCH_%s.json" % doc["name"])
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True,
                  default=_json_default)
        handle.write("\n")
    # Sidecar: the run's collapsed-stack profile, ready for flamegraph
    # tooling (and CI artifact upload).  Skipped when nothing was charged.
    collapsed = (doc.get("metrics", {}).get("profile") or {}).get("collapsed")
    if collapsed:
        profile_path = out_dir / ("PROFILE_%s.collapsed" % doc["name"])
        profile_path.write_text("\n".join(collapsed) + "\n")
    # Sidecar: the Perfetto-loadable timeline of the same run (epochs,
    # barriers, profiler frames, sampled packet journeys).  Skipped when
    # the snapshot yields no events at all.
    from .timeline import chrome_trace, write_trace_json
    trace_doc = chrome_trace(doc["name"], doc.get("metrics") or {})
    if trace_doc["traceEvents"]:
        write_trace_json(trace_doc, out_dir)
    return path


def run_many(names: Sequence[str], seed: int = DEFAULT_SEED,
             out_dir: Optional[pathlib.Path] = None,
             root: Optional[pathlib.Path] = None
             ) -> List[Tuple[dict, Optional[pathlib.Path]]]:
    """Run several scenarios, optionally writing each BENCH file."""
    results = []
    for name in names:
        doc = run_benchmark(name, seed=seed, root=root)
        path = write_bench_json(doc, out_dir) if out_dir else None
        results.append((doc, path))
    return results
