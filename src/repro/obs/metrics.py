"""Labeled metrics: counters, gauges, histograms, time-binned timelines.

The paper's methodology is *bottleneck deconstruction*: attribute every
cycle and byte to the resource that spent it (Sec. 4.2 uses CPU
performance counters for exactly this).  :class:`MetricsRegistry` is the
in-simulation equivalent -- a named collection of metric series that the
DES hot paths charge while they run, cheap enough to leave compiled in
and disabled by default.

Every metric supports *labels* (``counter.inc(5, core=3)``), so one
metric name holds a family of series -- per-core cycle attribution,
per-queue occupancy, per-bus bytes.  :class:`Timeline` adds time-binned
aggregation: values recorded at simulation timestamps land in fixed-width
bins, giving occupancy/drop trajectories rather than end-of-run totals.

A module-global *active registry* (disabled unless something enables it)
lets instrumented subsystems pick up observability without threading a
registry argument through every constructor: the benchmark runner
installs an enabled registry, runs a scenario, and snapshots whatever the
simulation charged.
"""

from __future__ import annotations

import contextlib
import math
from typing import Dict, Iterator, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    """Canonical, hashable form of a label set."""
    if not labels:
        return ()
    if len(labels) == 1:
        ((k, v),) = labels.items()
        return ((k, str(v)),)
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_str(key: LabelKey) -> str:
    """Render a label key the Prometheus way: ``{core=3,kind=busy}``."""
    if not key:
        return ""
    return "{%s}" % ",".join("%s=%s" % kv for kv in key)


class Metric:
    """Base: a named family of labeled series."""

    kind = "metric"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._series: Dict[LabelKey, object] = {}

    def labelsets(self) -> List[LabelKey]:
        return sorted(self._series)

    def __len__(self) -> int:
        return len(self._series)


class Counter(Metric):
    """A monotonically increasing labeled count."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def bind(self, **labels):
        """A pre-resolved incrementer for one label set.

        Hot paths call the returned closure instead of :meth:`inc`, so
        the label canonicalization (dict build + sort + str) happens
        once at bind time rather than per charge.  The series itself is
        still created lazily on first increment, so binding alone does
        not change snapshots.
        """
        key = _label_key(labels)
        series = self._series
        get = series.get

        def inc(amount: float = 1.0) -> None:
            series[key] = get(key, 0.0) + amount

        return inc

    def value(self, **labels) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        return sum(self._series.values())

    def series(self) -> Dict[str, float]:
        return {_label_str(k): float(v)
                for k, v in sorted(self._series.items())}


class Gauge(Metric):
    """A labeled value that can move both ways (occupancy, utilization)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self._series[_label_key(labels)] = float(value)

    def add(self, delta: float, **labels) -> None:
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + delta

    def bind(self, **labels):
        """A pre-resolved setter for one label set (see
        :meth:`Counter.bind`).

        Last-writer-wins, like :meth:`set`; the parallel epoch loop
        binds one setter per partition and updates it every barrier.
        """
        key = _label_key(labels)
        series = self._series

        def set(value: float) -> None:
            series[key] = float(value)

        return set

    def value(self, **labels) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def series(self) -> Dict[str, float]:
        return {_label_str(k): float(v)
                for k, v in sorted(self._series.items())}


class _Reservoir:
    """Value store behind one histogram series (exact quantiles)."""

    __slots__ = ("values", "sorted")

    def __init__(self):
        self.values: List[float] = []
        self.sorted = True

    def observe(self, value: float) -> None:
        if self.values and value < self.values[-1]:
            self.sorted = False
        self.values.append(value)

    def _ensure(self) -> None:
        if not self.sorted:
            self.values.sort()
            self.sorted = True

    def quantile(self, q: float) -> float:
        if not self.values:
            raise ValueError("empty histogram series")
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        self._ensure()
        if q == 0.0:
            return self.values[0]
        rank = max(1, math.ceil(q * len(self.values)))
        return self.values[rank - 1]

    def summary(self) -> Dict[str, float]:
        self._ensure()
        n = len(self.values)
        # float() strips numpy scalars so snapshots stay JSON-able.
        return {
            "count": n,
            "mean": float(sum(self.values) / n),
            "min": float(self.values[0]),
            "p50": float(self.quantile(0.50)),
            "p90": float(self.quantile(0.90)),
            "p99": float(self.quantile(0.99)),
            "max": float(self.values[-1]),
        }


class Histogram(Metric):
    """Labeled value distributions with exact quantiles."""

    kind = "histogram"

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _Reservoir()
        series.observe(value)

    def bind(self, **labels):
        """A pre-resolved observer for one label set (see
        :meth:`Counter.bind`)."""
        key = _label_key(labels)
        store = self._series

        def observe(value: float) -> None:
            series = store.get(key)
            if series is None:
                series = store[key] = _Reservoir()
            series.observe(value)

        return observe

    def count(self, **labels) -> int:
        series = self._series.get(_label_key(labels))
        return len(series.values) if series is not None else 0

    def quantile(self, q: float, **labels) -> float:
        series = self._series.get(_label_key(labels))
        if series is None:
            raise ValueError("no series %r for labels %r"
                             % (self.name, labels))
        return series.quantile(q)

    def summary(self, **labels) -> Dict[str, float]:
        series = self._series.get(_label_key(labels))
        if series is None:
            raise ValueError("no series %r for labels %r"
                             % (self.name, labels))
        return series.summary()

    def series(self) -> Dict[str, Dict[str, float]]:
        return {_label_str(k): r.summary()
                for k, r in sorted(self._series.items())}


class _TimelineSeries:
    """Per-bin (sum, count, max) aggregates for one label set."""

    __slots__ = ("bins",)

    def __init__(self):
        # bin index -> [sum, count, max]
        self.bins: Dict[int, List[float]] = {}

    def record(self, index: int, value: float) -> None:
        cell = self.bins.get(index)
        if cell is None:
            self.bins[index] = [value, 1, value]
        else:
            cell[0] += value
            cell[1] += 1
            if value > cell[2]:
                cell[2] = value


class Timeline(Metric):
    """Values binned into fixed-width windows of simulation time.

    ``record(t, v)`` adds ``v`` to the bin containing ``t``; each bin
    keeps sum, sample count, and max, so the same timeline serves both
    *accumulating* signals (drops per window: read the sums) and
    *sampled* signals (queue occupancy: read mean or max per window).
    """

    kind = "timeline"

    def __init__(self, name: str, bin_sec: float, help: str = ""):
        if bin_sec <= 0:
            raise ValueError("timeline bin width must be positive")
        super().__init__(name, help)
        self.bin_sec = bin_sec

    def record(self, time: float, value: float = 1.0, **labels) -> None:
        if time < 0:
            raise ValueError("timeline times are simulation seconds >= 0")
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _TimelineSeries()
        series.record(int(time / self.bin_sec), value)

    def bind(self, **labels):
        """A pre-resolved recorder for one label set.

        The returned closure inlines the bin update (no label
        canonicalization, no method dispatch per sample) -- the form the
        DES engine uses for its per-event ``sim_events`` timeline.
        Negative timestamps are rejected at :meth:`record` only; bound
        recorders trust their callers (simulation clocks never run
        backwards).
        """
        key = _label_key(labels)
        store = self._series
        bin_sec = self.bin_sec

        def record(time: float, value: float = 1.0) -> None:
            series = store.get(key)
            if series is None:
                series = store[key] = _TimelineSeries()
            bins = series.bins
            index = int(time / bin_sec)
            cell = bins.get(index)
            if cell is None:
                bins[index] = [value, 1, value]
            else:
                cell[0] += value
                cell[1] += 1
                if value > cell[2]:
                    cell[2] = value

        return record

    def bins(self, **labels) -> List[Tuple[float, float, int, float]]:
        """Sorted ``(bin_start_sec, sum, count, max)`` rows for one series."""
        series = self._series.get(_label_key(labels))
        if series is None:
            return []
        return [(index * self.bin_sec, cell[0], int(cell[1]), cell[2])
                for index, cell in sorted(series.bins.items())]

    def totals(self, **labels) -> Dict[str, float]:
        rows = self.bins(**labels)
        if not rows:
            return {"sum": 0.0, "count": 0, "peak": 0.0, "bins": 0}
        return {"sum": sum(r[1] for r in rows),
                "count": sum(r[2] for r in rows),
                "peak": max(r[3] for r in rows),
                "bins": len(rows)}

    def series(self, max_bins: int = 100) -> Dict[str, dict]:
        """JSON-able view; long series are coarsened to ``max_bins``."""
        out = {}
        for key in sorted(self._series):
            labels = dict(key)
            rows = self.bins(**labels)
            merged = _coarsen(rows, max_bins)
            out[_label_str(key)] = {
                "bin_sec": self.bin_sec,
                "totals": self.totals(**labels),
                "bins": [[round(t, 9), float(s), c, float(m)]
                         for t, s, c, m in merged],
            }
        return out


def _coarsen(rows: List[Tuple[float, float, int, float]],
             max_bins: int) -> List[Tuple[float, float, int, float]]:
    """Merge adjacent bins so at most ``max_bins`` rows survive."""
    if len(rows) <= max_bins:
        return rows
    group = math.ceil(len(rows) / max_bins)
    merged = []
    for start in range(0, len(rows), group):
        chunk = rows[start:start + group]
        merged.append((chunk[0][0],
                       sum(r[1] for r in chunk),
                       sum(r[2] for r in chunk),
                       max(r[3] for r in chunk)))
    return merged


class MetricsRegistry:
    """A named collection of metrics plus sampling configuration.

    ``enabled`` is the master switch instrumented code checks before
    doing any work; a disabled registry costs one attribute read per
    charge site.  ``timeline_bin_sec`` sets the default bin width for
    timelines created through the registry, and ``trace_sample_every``
    configures the registry's packet-path :class:`~repro.obs.trace
    .TraceSampler` (1-in-N sampling; see :mod:`repro.obs.trace`).
    ``profile=True`` additionally attaches a :class:`~repro.obs.profile
    .SpanProfiler` the DES hot paths charge hierarchical cycle/latency
    spans to (``registry.profiler`` is None otherwise, so profiling has
    its own on/off switch on top of ``enabled``).
    """

    def __init__(self, enabled: bool = True,
                 timeline_bin_sec: float = 1e-4,
                 trace_sample_every: int = 64,
                 profile: bool = False):
        from .profile import SpanProfiler
        from .trace import TraceSampler
        self.enabled = enabled
        self.timeline_bin_sec = timeline_bin_sec
        self._metrics: Dict[str, Metric] = {}
        self.tracer = TraceSampler(sample_every=trace_sample_every)
        self.profiler = SpanProfiler() if profile else None

    # -- metric construction (get-or-create, type-checked) ----------------

    def _get(self, cls, name: str, help: str, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help=help, **kwargs) if kwargs else \
                cls(name, help=help)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError("metric %r is a %s, not a %s"
                            % (name, metric.kind, cls.kind))
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get(Histogram, name, help)

    def timeline(self, name: str, bin_sec: Optional[float] = None,
                 help: str = "") -> Timeline:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Timeline(name, bin_sec or self.timeline_bin_sec,
                              help=help)
            self._metrics[name] = metric
        elif not isinstance(metric, Timeline):
            raise TypeError("metric %r is a %s, not a timeline"
                            % (name, metric.kind))
        return metric

    # -- introspection -----------------------------------------------------

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def reset(self) -> None:
        """Drop every recorded series (configuration survives)."""
        self._metrics.clear()
        self.tracer.reset()
        if self.profiler is not None:
            self.profiler.reset()

    # -- cross-worker aggregation ------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's recordings into this one.

        This is the reduction step of the parallel DES runner: each
        worker records into a private registry and the parent merges them
        in partition-id order.  Merge semantics per metric kind:

        * counters -- per-series sums;
        * gauges -- per-series last-writer-wins (series are expected to
          be disjoint across workers; partition-id order makes a
          conflict deterministic anyway);
        * histograms -- reservoir concatenation (summaries sort first,
          so results depend only on the observed multiset);
        * timelines -- per-bin cell merge (sum += sum, count += count,
          max = max), requiring equal bin widths;
        * traces -- union by packet id, keeping the longest hop list
          (a resumed downstream copy supersedes its upstream prefix);
        * profiler frames -- per-path self-time sums.

        Snapshots render every section in sorted order, so a merged
        snapshot is insensitive to dict insertion order.
        """
        for name in sorted(other._metrics):
            theirs = other._metrics[name]
            if isinstance(theirs, Counter):
                mine = self.counter(name, help=theirs.help)
                for key, value in theirs._series.items():
                    mine._series[key] = mine._series.get(key, 0.0) + value
            elif isinstance(theirs, Gauge):
                mine = self.gauge(name, help=theirs.help)
                mine._series.update(theirs._series)
            elif isinstance(theirs, Timeline):
                mine = self.timeline(name, bin_sec=theirs.bin_sec,
                                     help=theirs.help)
                if mine.bin_sec != theirs.bin_sec:
                    raise ValueError(
                        "cannot merge timeline %r: bin_sec %g != %g"
                        % (name, mine.bin_sec, theirs.bin_sec))
                for key, series in theirs._series.items():
                    dest = mine._series.get(key)
                    if dest is None:
                        dest = mine._series[key] = _TimelineSeries()
                    for index, cell in series.bins.items():
                        mcell = dest.bins.get(index)
                        if mcell is None:
                            dest.bins[index] = list(cell)
                        else:
                            mcell[0] += cell[0]
                            mcell[1] += cell[1]
                            if cell[2] > mcell[2]:
                                mcell[2] = cell[2]
            elif isinstance(theirs, Histogram):
                mine = self.histogram(name, help=theirs.help)
                for key, reservoir in theirs._series.items():
                    dest = mine._series.get(key)
                    if dest is None:
                        dest = mine._series[key] = _Reservoir()
                    if reservoir.values:
                        dest.values.extend(reservoir.values)
                        dest.sorted = False
        self.tracer.merge(other.tracer)
        if self.profiler is not None and other.profiler is not None:
            self.profiler.merge(other.profiler)

    def snapshot(self, max_bins: int = 100,
                 max_traces: int = 32) -> dict:
        """A JSON-able dump of everything recorded so far."""
        counters, gauges, histograms, timelines = {}, {}, {}, {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.series()
            elif isinstance(metric, Gauge):
                gauges[name] = metric.series()
            elif isinstance(metric, Histogram):
                histograms[name] = metric.series()
            elif isinstance(metric, Timeline):
                timelines[name] = metric.series(max_bins=max_bins)
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "timelines": timelines,
            "traces": {
                "sampled": self.tracer.sampled,
                "seen": self.tracer.seen,
                "sample_every": self.tracer.sample_every,
                "paths": [t.to_dict()
                          for t in self.tracer.traces[:max_traces]],
            },
            "profile": (self.profiler.to_dict()
                        if self.profiler is not None else None),
        }


#: The default registry instrumented code falls back to.  Disabled, so a
#: plain test run pays only the ``enabled`` check per charge site.
_ACTIVE = MetricsRegistry(enabled=False)


def active_registry() -> MetricsRegistry:
    """The registry instrumentation charges when none is passed in."""
    return _ACTIVE


def set_active_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the global fallback; returns the old one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


@contextlib.contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope an active registry (the benchmark runner's idiom)."""
    previous = set_active_registry(registry)
    try:
        yield registry
    finally:
        set_active_registry(previous)
