"""Observability: metrics, packet-path tracing, and the benchmark harness.

Three layers:

* :mod:`repro.obs.metrics` -- :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` / :class:`Timeline` behind a
  :class:`MetricsRegistry`.  The DES hot paths (``simnet.engine``,
  ``click.simrun``, the cluster nodes) charge the *active* registry,
  which is disabled by default; enable one to get per-core cycle
  attribution, per-queue occupancy/drop timelines, per-bus bytes, and
  per-hop VLB latency out of any run.
* :mod:`repro.obs.trace` -- 1-in-N sampled :class:`PathTrace` logs of
  individual packets' element/hop journeys.
* :mod:`repro.obs.profile` / :mod:`repro.obs.explain` -- the attribution
  layer: a deterministic :class:`SpanProfiler` (hierarchical cycle/
  latency spans with collapsed-stack output), per-packet latency
  decomposition with a conservation check (:func:`decompose_trace`),
  and :func:`explain_pipeline`, which joins the profile with the
  analytic solver to name the binding resource and cross-check the
  DES-observed bottleneck against the model's prediction
  (``python -m repro obs explain``).
* :mod:`repro.obs.benchrun` -- runs ``benchmarks/bench_*.py`` scenarios
  outside pytest and emits schema-versioned ``BENCH_<name>.json``
  artifacts (:mod:`repro.obs.schema`), which
  :mod:`repro.obs.compare` diffs against a committed baseline -- the
  CI perf-regression gate and ``python -m repro obs {run,report,diff}``
  both consume exactly these.
* :mod:`repro.obs.timeline` -- :func:`chrome_trace` renders any metrics
  snapshot (live or from a BENCH document) as a Perfetto-loadable
  Chrome-trace-event ``TRACE_<name>.json``: parallel epoch/barrier
  spans, profiler flame charts, and stitched packet journeys
  (``python -m repro obs timeline``).

Metric names charged by the built-in instrumentation:

=============================  ==========================================
``sim_events``                 timeline of DES events executed
``core_cycles{core,kind}``     cycles per core, ``kind=busy|empty``
``core_polls{core,kind}``      poll counts per core, same split
``bus_bytes{bus}``             bytes over memory/io/pcie/qpi
``rxq_occupancy{queue}``       RX-ring occupancy timeline (sampled)
``rxq_drops{queue}``           RX-ring drops per bin (delta)
``vlb_hop_latency_usec{role}`` per-hop latency, ``role`` = the hop's
                               receiving role (intermediate/output)
``vlb_path_hops``              nodes touched per delivered packet
``link_*{link}``               cluster cable occupancy/drops/bytes
``ext_occupancy{node}``        rate-limited external line backlog
=============================  ==========================================
"""

from .benchrun import (
    QUICK_BENCHMARKS,
    discover,
    run_benchmark,
    write_bench_json,
)
from .compare import Delta, compare_docs, make_baseline
from .explain import (
    ExplainReport,
    explain_from_registry,
    explain_pipeline,
    format_explain,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timeline,
    active_registry,
    set_active_registry,
    use_registry,
)
from .profile import (
    STAGES,
    LatencyBreakdown,
    SpanProfiler,
    aggregate_breakdowns,
    decompose_trace,
    trace_delivered,
)
from .timeline import chrome_trace, write_trace_json
from .trace import PathTrace, TraceSampler, trace_of

from .schema import (
    BASELINE_SCHEMA,
    BENCH_SCHEMA,
    TRACE_SCHEMA,
    validate_bench,
    validate_trace,
)

__all__ = [
    "BASELINE_SCHEMA",
    "BENCH_SCHEMA",
    "TRACE_SCHEMA",
    "Counter",
    "Delta",
    "ExplainReport",
    "Gauge",
    "Histogram",
    "LatencyBreakdown",
    "MetricsRegistry",
    "PathTrace",
    "QUICK_BENCHMARKS",
    "STAGES",
    "SpanProfiler",
    "Timeline",
    "TraceSampler",
    "active_registry",
    "aggregate_breakdowns",
    "chrome_trace",
    "compare_docs",
    "decompose_trace",
    "discover",
    "explain_from_registry",
    "explain_pipeline",
    "format_explain",
    "make_baseline",
    "run_benchmark",
    "set_active_registry",
    "trace_delivered",
    "trace_of",
    "use_registry",
    "validate_bench",
    "validate_trace",
    "write_bench_json",
    "write_trace_json",
]
