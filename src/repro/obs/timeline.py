"""Chrome-trace-event export: the parallel runtime as a Perfetto timeline.

:func:`chrome_trace` renders one :meth:`MetricsRegistry.snapshot()
<repro.obs.metrics.MetricsRegistry.snapshot>` -- live from a run or
loaded back out of a ``BENCH_*.json`` document's ``metrics`` section --
as a Chrome trace event document that Perfetto (https://ui.perfetto.dev)
and ``chrome://tracing`` open unmodified.  Four process tracks:

========================  =============================================
pid 1 ``simulation``      epoch spans on the *simulation* clock (one
                          thread per partition, built from the
                          ``parallel_epoch_busy_seconds`` timeline's
                          bins) plus cross-partition transit
                          record/byte counter tracks
pid 2 ``wall clock``      per-partition compute/barrier spans
                          reconstructed on a wall-clock axis: each
                          partition's ``compute`` durations sum to its
                          ``busy_seconds``, each ``barrier`` span is
                          the stall waiting for the slowest sibling
pid 3 ``profile``         the run's :class:`~repro.obs.profile
                          .SpanProfiler` frames laid out as a static
                          flame chart (virtual units as microseconds;
                          self time precedes children within a frame)
pid 4 ``packets``         sampled, cross-partition-stitched
                          :class:`~repro.obs.trace.PathTrace` journeys
                          as per-packet threads, intervals named by the
                          latency-decomposition stage classifier
========================  =============================================

Determinism: the exporter is a pure function of the snapshot, so
re-exporting the same snapshot is byte-identical.  Everything on the
simulation clock (pids 1, 3, 4) is deterministic across reruns of a
seeded scenario -- packet ids are rebased to the run's smallest sampled
id for exactly this reason -- while pid 2 carries genuine wall-clock
measurements that vary run to run (span *counts* stay fixed; only
``ts``/``dur`` move).  ``tests/test_obs_timeline.py`` pins both halves
of that contract.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Tuple

from .profile import _classify
from .schema import TRACE_SCHEMA, validate_trace

__all__ = ["PID_SIM", "PID_WALL", "PID_PROFILE", "PID_PACKETS",
           "chrome_trace", "write_trace_json", "validate_trace"]

PID_SIM = 1
PID_WALL = 2
PID_PROFILE = 3
PID_PACKETS = 4

_PROCESS_NAMES = {
    PID_SIM: "simulation (sim time)",
    PID_WALL: "parallel runtime (wall clock)",
    PID_PROFILE: "span profiler (virtual units)",
    PID_PACKETS: "sampled packets (sim time)",
}


def _parse_labels(label_str: str) -> Dict[str, str]:
    """Invert :func:`repro.obs.metrics._label_str`:
    ``"{partition=0,workers=2}"`` -> ``{"partition": "0", "workers":
    "2"}``.  Label values charged by the runner are plain integers, so
    splitting on ``,``/``=`` is safe."""
    if not label_str or label_str == "{}":
        return {}
    out = {}
    for part in label_str.strip("{}").split(","):
        key, _, value = part.partition("=")
        out[key] = value
    return out


def _partition_tid(labels: Dict[str, str]) -> int:
    """Stable thread id for a (workers, partition) label pair.  256
    partitions per worker-count band keeps ids unique well past the
    RB128 ambitions."""
    return int(labels.get("workers", 0)) * 256 + int(
        labels.get("partition", 0))


def _meta(pid: int, name: str, tid: Optional[int] = None) -> dict:
    event = {"ph": "M", "pid": pid,
             "name": "process_name" if tid is None else "thread_name",
             "args": {"name": name}}
    if tid is not None:
        event["tid"] = tid
    return event


def _timeline_bins(snapshot: dict, name: str) -> Dict[str, dict]:
    """``label_str -> series dict`` for one snapshot timeline, or {}."""
    return snapshot.get("timelines", {}).get(name) or {}


def _sim_events(snapshot: dict, events: List[dict]) -> None:
    """pid 1: epoch spans per partition on the simulation clock, plus
    transit record/byte counters at the barriers that carried them."""
    busy = _timeline_bins(snapshot, "parallel_epoch_busy_seconds")
    threads = set()
    for label_str in sorted(busy):
        labels = _parse_labels(label_str)
        tid = _partition_tid(labels)
        threads.add((tid, labels.get("workers", "?"),
                     labels.get("partition", "?")))
        series = busy[label_str]
        bin_usec = series["bin_sec"] * 1e6
        for start, _total, count, _peak in series["bins"]:
            events.append({"ph": "X", "pid": PID_SIM, "tid": tid,
                           "name": "epochs", "ts": start * 1e6,
                           "dur": bin_usec, "args": {"epochs": count}})
    for tid, workers, partition in sorted(threads):
        events.append(_meta(PID_SIM, "w%s partition %s" % (workers,
                                                           partition), tid))
    for metric, arg in (("parallel_transit_records", "records"),
                        ("parallel_transit_bytes", "bytes")):
        for label_str, series in sorted(
                _timeline_bins(snapshot, metric).items()):
            labels = _parse_labels(label_str)
            counter = "%s into w%s p%s" % (arg, labels.get("workers", "?"),
                                           labels.get("partition", "?"))
            for start, total, _count, _peak in series["bins"]:
                events.append({"ph": "C", "pid": PID_SIM, "name": counter,
                               "ts": start * 1e6, "args": {arg: total}})


def _wall_events(snapshot: dict, events: List[dict]) -> None:
    """pid 2: alternating compute/barrier spans per partition.

    The runner bins per-epoch busy and barrier-wait wall seconds at each
    epoch's *simulation* end time; here those bins are replayed onto a
    wall-clock axis per partition (cursor += span), so the ``compute``
    durations of one thread sum exactly to the values the runner
    charged -- i.e. to the partition's ``busy_seconds`` -- and gaps
    between partitions' final timestamps visualize the imbalance.
    """
    busy = _timeline_bins(snapshot, "parallel_epoch_busy_seconds")
    wait = _timeline_bins(snapshot, "parallel_epoch_barrier_seconds")
    for label_str in sorted(busy):
        labels = _parse_labels(label_str)
        tid = _partition_tid(labels)
        events.append(_meta(
            PID_WALL, "w%s partition %s" % (labels.get("workers", "?"),
                                            labels.get("partition", "?")),
            tid))
        busy_rows = {row[0]: row for row in busy[label_str]["bins"]}
        wait_rows = {row[0]: row
                     for row in wait.get(label_str, {}).get("bins", [])}
        cursor = 0.0
        for start in sorted(set(busy_rows) | set(wait_rows)):
            for name, row in (("compute", busy_rows.get(start)),
                              ("barrier", wait_rows.get(start))):
                if row is None:
                    continue
                dur = row[1] * 1e6
                events.append({"ph": "X", "pid": PID_WALL, "tid": tid,
                               "name": name, "ts": cursor, "dur": dur,
                               "args": {"epochs": row[2],
                                        "sim_end_sec": start}})
                cursor += dur


def _profile_events(snapshot: dict, events: List[dict]) -> None:
    """pid 3: the collapsed-stack profile as a static flame chart.

    Each depth-1 frame under the profiler root becomes a thread laid
    out from ts 0; within a frame, self value is placed before the
    children (sorted by name).  Values are unit-agnostic (cycles or
    microseconds depending on the runner) and are rendered as
    microseconds verbatim.
    """
    profile = snapshot.get("profile") or {}
    selfs: Dict[Tuple[str, ...], float] = {}
    for line in profile.get("collapsed") or []:
        path_str, _, value = line.rpartition(" ")
        if not path_str:
            continue
        path = tuple(path_str.split(";"))
        selfs[path] = selfs.get(path, 0.0) + float(value)
    if not selfs:
        return
    totals: Dict[Tuple[str, ...], float] = {}
    children: Dict[Tuple[str, ...], set] = {}
    for path, value in selfs.items():
        for depth in range(1, len(path) + 1):
            prefix = path[:depth]
            totals[prefix] = totals.get(prefix, 0.0) + value
            if depth > 1:
                children.setdefault(path[:depth - 1], set()).add(prefix)

    def place(prefix: Tuple[str, ...], start: float, tid: int) -> None:
        events.append({"ph": "X", "pid": PID_PROFILE, "tid": tid,
                       "name": prefix[-1], "ts": start,
                       "dur": totals[prefix],
                       "args": {"self": selfs.get(prefix, 0.0)}})
        cursor = start + selfs.get(prefix, 0.0)
        for child in sorted(children.get(prefix, ())):
            place(child, cursor, tid)
            cursor += totals[child]

    roots = sorted({path[:1] for path in totals})
    tid = 0
    for root in roots:
        for top in sorted(children.get(root, ())):
            events.append(_meta(PID_PROFILE, ";".join(top), tid))
            place(top, 0.0, tid)
            tid += 1


def _packet_events(snapshot: dict, events: List[dict]) -> None:
    """pid 4: one thread per sampled packet; spans between consecutive
    timestamped hops, named by the latency-decomposition stage
    classifier.  Packet ids are rebased to the run's smallest sampled id
    so seeded reruns export identical ids regardless of the process's
    global packet counter."""
    paths = snapshot.get("traces", {}).get("paths") or []
    ids = [p.get("packet_id", 0) for p in paths]
    base = min(ids) if ids else 0
    for tid, trace in enumerate(paths):
        packet = trace.get("packet_id", 0) - base
        events.append(_meta(PID_PACKETS, "packet %d" % packet, tid))
        hops = [(h["site"], h["time"]) for h in trace.get("hops", [])
                if h.get("time") is not None]
        for (prev_site, prev_time), (site, hop_time) in zip(hops, hops[1:]):
            if hop_time < prev_time:
                continue
            events.append({"ph": "X", "pid": PID_PACKETS, "tid": tid,
                           "name": _classify(prev_site, site),
                           "ts": prev_time * 1e6,
                           "dur": (hop_time - prev_time) * 1e6,
                           "args": {"from": prev_site, "to": site,
                                    "packet": packet}})
        if hops:
            events.append({"ph": "i", "pid": PID_PACKETS, "tid": tid,
                           "name": "sampled", "ts": hops[0][1] * 1e6,
                           "s": "t"})


def chrome_trace(name: str, snapshot: dict) -> dict:
    """A Chrome trace event document for one metrics snapshot.

    Always loadable -- tracks with nothing to show (no parallel run, no
    profiler, no sampled traces) are simply absent.  The result
    round-trips ``json.dumps(..., sort_keys=True)`` byte-identically
    for one snapshot.
    """
    events: List[dict] = []
    _sim_events(snapshot, events)
    _wall_events(snapshot, events)
    _profile_events(snapshot, events)
    _packet_events(snapshot, events)
    used = sorted({event["pid"] for event in events})
    events.extend(_meta(pid, _PROCESS_NAMES[pid]) for pid in used)
    spans = sum(1 for e in events if e["ph"] == "X")
    doc = {
        "displayTimeUnit": "ms",
        "traceEvents": events,
        "metadata": {
            "schema": TRACE_SCHEMA,
            "name": name,
            "tracks": [_PROCESS_NAMES[pid] for pid in used],
            "events": len(events),
            "spans": spans,
        },
    }
    problems = validate_trace(doc)
    if problems:  # pragma: no cover - guards future format drift
        raise RuntimeError("exporter produced an invalid trace: %s"
                           % "; ".join(problems))
    return doc


def wall_compute_seconds(doc: dict) -> Dict[int, float]:
    """Per-thread-id sum of the wall track's ``compute`` spans, in
    seconds -- the quantity the acceptance contract checks against each
    partition's ``busy_seconds``."""
    out: Dict[int, float] = {}
    for event in doc.get("traceEvents", []):
        if event.get("pid") == PID_WALL and event.get("ph") == "X" \
                and event.get("name") == "compute":
            tid = event["tid"]
            out[tid] = out.get(tid, 0.0) + event["dur"] / 1e6
    return out


def write_trace_json(doc: dict, out_dir) -> pathlib.Path:
    """Write ``TRACE_<name>.json`` (name from the doc's metadata)."""
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / ("TRACE_%s.json" % doc["metadata"]["name"])
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
