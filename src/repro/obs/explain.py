"""Name the binding resource and prove it: profile + model, joined.

The paper's signature move (Sec. 5.3, Figs. 9-10) is *bottleneck
deconstruction*: measure per-packet load on every shared component,
compare each against its empirical capacity bound, and name the one that
binds.  :func:`explain_pipeline` does that twice for the same pipeline --
once analytically (:func:`repro.costs.compile_loads` through the
loss-free-rate solver) and once from an instrumented DES run (cycle and
bus-byte counters, corrected for empty polls per Sec. 5.3) -- and
cross-checks that both name the same bottleneck.  The attached span
profile says *which elements* put the load there, and the latency
decomposition says where a traced packet's time went.

Everything heavy is imported lazily so ``repro.obs`` stays importable
without dragging in the click/perfmodel stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..results import RunResult
from .profile import aggregate_breakdowns

#: Components the analytic solver and the observed join both price.
#: (The NIC input cap is deliberately excluded: ``analysis.bottleneck``
#: deconstructs the *server internals*, and the DES offers load below
#: the cap anyway.)
COMPONENTS = ("cpu", "memory", "io", "pcie", "qpi")


@dataclass
class ExplainReport(RunResult):
    """Analytic prediction vs DES observation for one pipeline point."""

    _summary_fields = ("pipeline", "packet_bytes", "predicted_bottleneck",
                       "observed_bottleneck", "agreement")

    pipeline: str
    packet_bytes: int
    predicted_bottleneck: str
    observed_bottleneck: str
    predicted_rate_gbps: float
    #: Per-packet loads (cycles for cpu, bytes for buses).
    predicted_loads: Dict[str, float]
    observed_loads: Dict[str, float]
    #: rate limit of each component over the predicted rate (>= 1.0;
    #: exactly 1.0 for the binding component).
    predicted_headroom: Dict[str, float]
    #: Component utilization at the observed forwarding rate, and its
    #: inverse (how much faster the run could go per component).
    observed_utilization: Dict[str, float]
    observed_headroom: Dict[str, float]
    offered_gbps: float
    achieved_gbps: float
    forwarded_packets: int
    duration_sec: float
    #: Hottest elements by profiled self cycles (desc).
    top_elements: List[dict] = field(default_factory=list)
    #: Aggregate latency decomposition of the run's sampled traces.
    latency: Optional[dict] = None

    @property
    def agreement(self) -> bool:
        """Do the model and the instrumented run name the same resource?"""
        return self.predicted_bottleneck == self.observed_bottleneck


def _observed_loads(registry, forwarded: int, empty_polls: int,
                    empty_poll_cycles: float) -> Dict[str, float]:
    """Per-packet component loads from a run's counters (Sec. 5.3)."""
    from ..analysis.bottleneck import cpu_load_from_polling

    loads = {}
    core_cycles = registry.get("core_cycles")
    if core_cycles is not None and forwarded > 0:
        loads["cpu"] = cpu_load_from_polling(
            core_cycles.total(), forwarded, empty_polls, empty_poll_cycles)
    bus_bytes = registry.get("bus_bytes")
    if bus_bytes is not None and forwarded > 0:
        for bus in ("memory", "io", "pcie", "qpi"):
            value = bus_bytes.value(bus=bus)
            if value:
                loads[bus] = value / forwarded
    return loads


def _capacity_per_sec(component: str, spec, bounds) -> float:
    """Empirical capacity in load units per second (cycles/s or bytes/s)."""
    if component == "cpu":
        return spec.cycles_per_second
    return bounds[component].empirical / 8.0


def _top_elements(profiler, limit: int = 8) -> List[dict]:
    """Hottest leaf frames of the span profile, empty polls excluded."""
    if profiler is None or not len(profiler):
        return []
    totals = profiler.leaf_totals(skip=("empty_poll",))
    grand = sum(totals.values())
    rows = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))[:limit]
    return [{"element": name, "self": value,
             "fraction": value / grand if grand else 0.0}
            for name, value in rows]


def explain_pipeline(pipeline: str, packet_bytes: int = 64,
                     spec=None, config=None,
                     duration_sec: float = 1e-3,
                     load_fraction: float = 0.6,
                     seed: int = 0, server=None,
                     metrics=None) -> ExplainReport:
    """Predict a pipeline's bottleneck analytically, observe it in the
    DES, and return the joined report.

    ``pipeline`` is a :data:`~repro.click.pipelines.PRESET_PIPELINES`
    name or raw Click text.  The DES is offered ``load_fraction`` of the
    predicted loss-free rate (below saturation, so the run is steady and
    the per-packet loads are clean).  ``metrics`` may supply an enabled
    registry; by default the run gets its own with profiling and dense
    trace sampling switched on.
    """
    from ..click.pipelines import build_pipeline
    from ..click.simrun import TimedPipelineRun
    from ..costs import compile_loads
    from ..errors import ConfigurationError
    from ..hw.presets import NEHALEM, nehalem_server
    from ..perfmodel.bounds import bounds_for
    from ..perfmodel.loads import DEFAULT_CONFIG
    from ..perfmodel.throughput import rate_from_loads
    from .metrics import MetricsRegistry

    spec = spec if spec is not None else NEHALEM
    config = config if config is not None else DEFAULT_CONFIG
    if not 0 < load_fraction < 1:
        raise ConfigurationError("load_fraction must be in (0, 1)")
    server = server if server is not None else nehalem_server()

    # Analytic half: compile the graph, solve on the same basis as
    # analysis.bottleneck.deconstruct (empirical bounds, no NIC cap).
    graph = build_pipeline(pipeline, server)
    loads = compile_loads(graph, packet_bytes, config=config, spec=spec)
    predicted = rate_from_loads(loads, packet_bytes, spec=spec,
                                empirical_bounds=True, nic_limited=False)
    predicted_loads = {"cpu": loads.cpu_cycles, "memory": loads.mem_bytes,
                       "io": loads.io_bytes, "pcie": loads.pcie_bytes,
                       "qpi": loads.qpi_bytes}
    predicted_loads = {name: value
                       for name, value in predicted_loads.items() if value}
    predicted_headroom = {
        name: limit / predicted.rate_pps
        for name, limit in predicted.component_rates_pps.items()}

    # Observed half: an instrumented DES run below saturation.
    registry = metrics if metrics is not None else MetricsRegistry(
        enabled=True, profile=True, trace_sample_every=16)
    run = TimedPipelineRun(server, pipeline, packet_bytes=packet_bytes,
                           metrics=registry)
    offered_bps = load_fraction * predicted.rate_bps
    report = run.run(offered_bps, duration_sec=duration_sec, seed=seed)
    if report.forwarded_packets <= 0:
        raise ConfigurationError(
            "DES run forwarded no packets; raise duration_sec")

    observed = _observed_loads(registry, report.forwarded_packets,
                               report.empty_polls,
                               run.cost_model.empty_poll_cycles)
    bounds = bounds_for(spec)
    observed_rate_pps = report.forwarded_packets / report.duration_sec
    observed_utilization = {
        name: observed_rate_pps * load / _capacity_per_sec(name, spec,
                                                           bounds)
        for name, load in observed.items()}
    observed_headroom = {
        name: (1.0 / utilization if utilization else float("inf"))
        for name, utilization in observed_utilization.items()}
    # The binding resource is the one closest to its empirical bound --
    # same argmax the analytic solver takes, on measured loads.
    observed_bottleneck = max(sorted(observed_utilization),
                              key=observed_utilization.get)

    return ExplainReport(
        pipeline=pipeline if len(pipeline) < 40 else "<click text>",
        packet_bytes=packet_bytes,
        predicted_bottleneck=predicted.bottleneck,
        observed_bottleneck=observed_bottleneck,
        predicted_rate_gbps=predicted.rate_gbps,
        predicted_loads=predicted_loads,
        observed_loads=observed,
        predicted_headroom=predicted_headroom,
        observed_utilization=observed_utilization,
        observed_headroom=observed_headroom,
        offered_gbps=offered_bps / 1e9,
        achieved_gbps=report.achieved_gbps,
        forwarded_packets=report.forwarded_packets,
        duration_sec=report.duration_sec,
        top_elements=_top_elements(registry.profiler),
        latency=aggregate_breakdowns(registry.tracer.traces),
    )


def explain_from_registry(registry, max_frames: int = 20) -> dict:
    """The explain section attached to ``BENCH_*.json`` documents.

    A benchmark scenario interleaves many runs in one registry, so no
    single per-packet load is well defined; what *is* well defined is
    where the profiled cycles/microseconds went and how traced packets'
    latency decomposes.  Both are derived here, JSON-ably.
    """
    profiler = registry.profiler
    section = {
        "latency": aggregate_breakdowns(registry.tracer.traces),
        "top_frames": _top_elements(profiler, limit=max_frames),
        "span_paths": len(profiler) if profiler is not None else 0,
    }
    return section


def _format_loads(loads: Dict[str, float]) -> str:
    parts = []
    for name in COMPONENTS:
        if name not in loads:
            continue
        unit = "cyc" if name == "cpu" else "B"
        parts.append("%s=%.0f%s" % (name, loads[name], unit))
    return " ".join(parts)


def _format_ratios(ratios: Dict[str, float], percent: bool = False) -> str:
    parts = []
    for name in COMPONENTS:
        if name not in ratios:
            continue
        value = ratios[name]
        if percent:
            parts.append("%s=%.0f%%" % (name, value * 100))
        elif value == float("inf"):
            parts.append("%s=inf" % name)
        else:
            parts.append("%s=%.1fx" % (name, value))
    return " ".join(parts)


def format_explain(report: ExplainReport) -> str:
    """The human transcript ``repro obs explain`` prints."""
    lines = [
        "explain: %s @ %dB" % (report.pipeline, report.packet_bytes),
        "  predicted (analytic): bottleneck=%s at %.2f Gbps"
        % (report.predicted_bottleneck, report.predicted_rate_gbps),
        "    per-packet loads: " + _format_loads(report.predicted_loads),
        "    headroom:         " + _format_ratios(report.predicted_headroom),
        "  observed (DES at %.2f Gbps offered, %.1f ms):"
        % (report.offered_gbps, report.duration_sec * 1e3),
        "    achieved %.2f Gbps over %d packets"
        % (report.achieved_gbps, report.forwarded_packets),
        "    per-packet loads: " + _format_loads(report.observed_loads),
        "    utilization:      " + _format_ratios(report.observed_utilization,
                                                  percent=True),
        "    bottleneck=%s -- %s" % (
            report.observed_bottleneck,
            "agrees with the analytic model" if report.agreement
            else "DISAGREES with the analytic model (predicted %s)"
            % report.predicted_bottleneck),
    ]
    if report.top_elements:
        lines.append("  hottest elements (profiled self cycles):")
        for row in report.top_elements:
            lines.append("    %-20s %12.0f  (%4.1f%%)"
                         % (row["element"], row["self"],
                            row["fraction"] * 100))
    if report.latency:
        latency = report.latency
        lines.append(
            "  latency decomposition (%d traced packets, mean %.2f usec):"
            % (latency["packets"], latency["mean_end_to_end_usec"]))
        for stage, usec_value in latency["stages_usec"].items():
            fraction = latency["stage_fractions"][stage]
            if usec_value or stage == "other":
                lines.append("    %-16s %8.3f usec  (%5.1f%%)"
                             % (stage, usec_value, fraction * 100))
        lines.append("    conservation residual: %.3f%% (max over traces)"
                     % (latency["max_residual_fraction"] * 100))
    return "\n".join(lines)
