"""The versioned on-disk contract for benchmark artifacts.

``BENCH_<name>.json`` is the interchange format between the benchmark
runner (:mod:`repro.obs.benchrun`), the CLI (``repro obs report/diff``),
and CI's regression gate (``scripts/check_bench_regression.py``) -- all
three validate against this module rather than trusting each other.
Version the schema string on any incompatible change; consumers refuse
documents whose major name does not match.
"""

from __future__ import annotations

from typing import List

#: Schema tag for a single benchmark result document.  /2 added the
#: mandatory ``wall_clock_s`` / ``events_per_sec`` engine-speed fields
#: and the ``perf`` scalar kind.
BENCH_SCHEMA = "repro.bench/2"
#: Schema tag for the committed multi-benchmark baseline.
BASELINE_SCHEMA = "repro.bench-baseline/1"
#: Schema tag for ``TRACE_<name>.json`` Chrome-trace-event timelines
#: (:mod:`repro.obs.timeline`).  The tag rides in the document's
#: ``metadata`` object; the ``traceEvents`` payload itself follows the
#: (external) Chrome trace event format so Perfetto and
#: ``chrome://tracing`` load it unmodified.
TRACE_SCHEMA = "repro.trace-timeline/1"

#: Scalar kinds the regression checker knows how to compare.
#: ``rate``  -- higher is better (Gbps, Mpps, ...)
#: ``time``  -- lower is better (wall-clock seconds)
#: ``count`` -- informational; compared for drift, never failed on
#: ``perf``  -- wall-clock engine speed; reported, never gated (CI
#:              machines vary too much for a hard threshold)
SCALAR_KINDS = ("rate", "time", "count", "perf")

_REQUIRED_TOP = {
    "schema": str,
    "name": str,
    "created_unix": (int, float),
    "wall_time_sec": (int, float),
    "wall_clock_s": (int, float),
    "events_per_sec": (int, float),
    "status": str,
    "tests": list,
    "scalars": dict,
    "metrics": dict,
}

_REQUIRED_TEST = {"name": str, "status": str}

_STATUSES = ("passed", "failed", "error", "skipped")


def validate_bench(doc) -> List[str]:
    """Structural check of one BENCH document; returns problems found."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    for key, types in _REQUIRED_TOP.items():
        if key not in doc:
            errors.append("missing required key %r" % key)
        elif not isinstance(doc[key], types):
            errors.append("key %r has type %s, wanted %s"
                          % (key, type(doc[key]).__name__, types))
    if errors:
        return errors
    if doc["schema"] != BENCH_SCHEMA:
        errors.append("schema is %r, this tool reads %r"
                      % (doc["schema"], BENCH_SCHEMA))
    if doc["status"] not in ("passed", "failed"):
        errors.append("status must be passed|failed, got %r" % doc["status"])
    for index, test in enumerate(doc["tests"]):
        if not isinstance(test, dict):
            errors.append("tests[%d] is not an object" % index)
            continue
        for key, types in _REQUIRED_TEST.items():
            if not isinstance(test.get(key), types):
                errors.append("tests[%d].%s missing or mistyped"
                              % (index, key))
        if test.get("status") not in _STATUSES:
            errors.append("tests[%d].status %r not in %s"
                          % (index, test.get("status"), _STATUSES))
    for name, entry in doc["scalars"].items():
        if not isinstance(entry, dict):
            errors.append("scalars[%r] is not an object" % name)
            continue
        if not isinstance(entry.get("value"), (int, float)) \
                or isinstance(entry.get("value"), bool):
            errors.append("scalars[%r].value is not numeric" % name)
        if entry.get("kind") not in SCALAR_KINDS:
            errors.append("scalars[%r].kind %r not in %s"
                          % (name, entry.get("kind"), SCALAR_KINDS))
    metrics = doc["metrics"]
    for section in ("counters", "histograms", "timelines"):
        if section in metrics and not isinstance(metrics[section], dict):
            errors.append("metrics.%s is not an object" % section)
    # Optional explain section (profiler + latency decomposition join).
    if "explain" in doc:
        explain = doc["explain"]
        if not isinstance(explain, dict):
            errors.append("explain is not an object")
        else:
            if not isinstance(explain.get("latency"), (dict, type(None))):
                errors.append("explain.latency is not an object or null")
            if not isinstance(explain.get("top_frames", []), list):
                errors.append("explain.top_frames is not a list")
    return errors


#: Chrome trace event phases the exporter emits: complete spans,
#: process/thread metadata, counter samples, and instants.
_TRACE_PHASES = ("X", "M", "C", "i")


def validate_trace(doc) -> List[str]:
    """Structural check of one TRACE (Chrome trace event) document.

    Validates the subset of the Chrome trace event format the exporter
    emits -- enough for Perfetto to load the file: a ``traceEvents``
    list of "X"/"M"/"C"/"i" events with numeric microsecond timestamps,
    integer pid/tid, and per-phase required fields.
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    meta = doc.get("metadata")
    if not isinstance(meta, dict):
        errors.append("missing 'metadata' object")
    elif meta.get("schema") != TRACE_SCHEMA:
        errors.append("metadata.schema is %r, this tool reads %r"
                      % (meta.get("schema"), TRACE_SCHEMA))
    if doc.get("displayTimeUnit") not in ("ms", "ns"):
        errors.append("displayTimeUnit must be 'ms' or 'ns'")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return errors + ["missing 'traceEvents' list"]
    for index, event in enumerate(events):
        where = "traceEvents[%d]" % index
        if not isinstance(event, dict):
            errors.append("%s is not an object" % where)
            continue
        phase = event.get("ph")
        if phase not in _TRACE_PHASES:
            errors.append("%s.ph %r not in %s" % (where, phase,
                                                  _TRACE_PHASES))
            continue
        if not isinstance(event.get("pid"), int):
            errors.append("%s.pid is not an integer" % where)
        name = event.get("name")
        if not isinstance(name, str) or not name:
            errors.append("%s.name is not a non-empty string" % where)
        if phase != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or isinstance(ts, bool) \
                    or ts < 0:
                errors.append("%s.ts is not a microsecond timestamp >= 0"
                              % where)
        if phase == "X":
            if not isinstance(event.get("tid"), int):
                errors.append("%s.tid is not an integer" % where)
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) \
                    or dur < 0:
                errors.append("%s.dur is not a duration >= 0" % where)
        elif phase == "M":
            args = event.get("args")
            if not isinstance(args, dict) \
                    or not isinstance(args.get("name"), str):
                errors.append("%s metadata needs args.name" % where)
        elif phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args or not all(
                    isinstance(v, (int, float)) and not isinstance(v, bool)
                    for v in args.values()):
                errors.append("%s counter needs numeric args" % where)
    return errors


def validate_baseline(doc) -> List[str]:
    """Structural check of the committed baseline file."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["baseline is not a JSON object"]
    if doc.get("schema") != BASELINE_SCHEMA:
        errors.append("baseline schema is %r, this tool reads %r"
                      % (doc.get("schema"), BASELINE_SCHEMA))
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, dict):
        return errors + ["baseline has no 'benchmarks' object"]
    for name, entry in benchmarks.items():
        if not isinstance(entry, dict) \
                or not isinstance(entry.get("scalars"), dict):
            errors.append("baseline benchmark %r has no scalars" % name)
            continue
        for metric, cell in entry["scalars"].items():
            if not isinstance(cell, dict) \
                    or not isinstance(cell.get("value"), (int, float)) \
                    or cell.get("kind") not in SCALAR_KINDS:
                errors.append("baseline %s.%s is malformed"
                              % (name, metric))
    return errors
