"""DES instrumentation hooks shared by the cluster simulation.

The timed single-server runners charge metrics inline (they own their
poll loops), but the cluster DES is event-driven with no natural
sampling point -- so :class:`ClusterObserver` rides the simulator's
periodic-task machinery: every ``interval_sec`` it walks the mesh and
records each internal link's queue occupancy, drop deltas, and byte
deltas into timelines.  Per-hop latency histograms are charged by the
nodes themselves (see :class:`repro.core.node.ClusterNode`); this
observer covers the *shared* resources a single node cannot see whole.

Metric names written here:

``link_occupancy{link=i-j}``   packets queued on the i->j cable (sampled)
``link_drops{link=i-j}``       drops on that cable per bin (delta)
``link_bytes{link=i-j}``       bytes serialized per bin (delta)
``ext_occupancy{node=i}``      node i's rate-limited external line, if any
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .metrics import MetricsRegistry

#: Sampling windows per run when the caller gives only a horizon.
DEFAULT_SAMPLES_PER_RUN = 50


class ClusterObserver:
    """Periodic sampler of the cluster's internal links.

    Construct it after :meth:`~repro.core.router.RouteBricksRouter
    .build_simulation` and call :meth:`start` with the run horizon; it
    cancels itself when the simulation drains.
    """

    def __init__(self, sim, nodes, metrics: MetricsRegistry,
                 interval_sec: float, keep_alive=None):
        if interval_sec <= 0:
            raise ValueError("observer interval must be positive")
        self.sim = sim
        self.nodes = nodes
        self.metrics = metrics
        self.interval_sec = interval_sec
        #: Optional zero-arg callable consulted when the local queue has
        #: drained: a partitioned run passes one returning True while
        #: *other* partitions still have pending work, so the sampling
        #: cadence matches the single-sim observer's (which sees every
        #: pending event in its one global queue).  None preserves the
        #: legacy single-sim behavior exactly.
        self.keep_alive = keep_alive
        self.samples = 0
        self._occupancy = metrics.timeline("link_occupancy",
                                           bin_sec=interval_sec)
        self._drops = metrics.timeline("link_drops", bin_sec=interval_sec)
        self._bytes = metrics.timeline("link_bytes", bin_sec=interval_sec)
        self._ext = metrics.timeline("ext_occupancy", bin_sec=interval_sec)
        # last-seen cumulative (dropped, bytes_sent) per directed link,
        # so each sample records the delta for its bin.
        self._last: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._stopped = False

    def _links(self) -> List[Tuple[str, Tuple[int, int], object]]:
        out = []
        for node in self.nodes:
            for dst, link in node.links.items():
                out.append(("%d-%d" % (node.node_id, dst),
                            (node.node_id, dst), link))
        return out

    def sample(self) -> None:
        """Record one observation of every internal link and external line."""
        now = self.sim.now
        self.samples += 1
        for name, key, link in self._links():
            prev_drops, prev_bytes = self._last.get(key, (0, 0))
            self._occupancy.record(now, len(link.queue), link=name)
            dropped = link.queue.dropped
            if dropped > prev_drops:
                self._drops.record(now, dropped - prev_drops, link=name)
            sent = link.bytes_sent
            if sent > prev_bytes:
                self._bytes.record(now, sent - prev_bytes, link=name)
            self._last[key] = (dropped, sent)
        for node in self.nodes:
            if node.egress_link is not None:
                self._ext.record(now, len(node.egress_link.queue),
                                 node=node.node_id)

    def _tick(self) -> None:
        if self._stopped:
            return
        self.sample()
        # Re-arm only while the simulation has other work: a periodic
        # task that unconditionally re-schedules would keep an
        # open-ended run (``until=None``) alive forever.
        if self.sim.peek_time() is not None or (
                self.keep_alive is not None and self.keep_alive()):
            self.sim.schedule(self.interval_sec, self._tick)

    def start(self) -> None:
        """Begin periodic sampling (plus one sample at t=0)."""
        self.sample()
        self.sim.schedule(self.interval_sec, self._tick)

    def stop(self) -> None:
        self._stopped = True


def observer_interval(until, default: float = 1e-4) -> float:
    """A sampling interval giving ~:data:`DEFAULT_SAMPLES_PER_RUN` windows
    over a known horizon, or ``default`` for open-ended runs."""
    if until is None or until <= 0:
        return default
    return until / DEFAULT_SAMPLES_PER_RUN
