"""Bottleneck deconstruction (Sec. 5.3).

For each component: estimate the per-packet upper bound (capacity divided
by packet rate, both nominal and empirical), measure the per-packet load,
and flag the component whose measured load approaches its bound.  Since
the calibrated loads are constant in the input rate (the paper's item 4),
the load "lines" in Figs. 9-10 are flat and the intersection with a bound
line is exactly the saturation rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .. import calibration as cal
from ..hw.presets import NEHALEM
from ..hw.server import ServerSpec
from ..perfmodel.bounds import bounds_for
from ..perfmodel.loads import DEFAULT_CONFIG, ServerConfig, per_packet_loads
from ..results import RunResult


@dataclass(frozen=True)
class BottleneckReport(RunResult):
    """Loads-vs-bounds for one (app, packet size, server) point."""

    _summary_fields = ("app", "packet_bytes", "bottleneck",
                       "saturation_pps")

    app: str
    packet_bytes: float
    loads: Dict[str, float]            # per-packet load per component
    nominal_bounds: Dict[str, float]   # at saturation packet rate
    empirical_bounds: Dict[str, float]
    saturation_pps: float
    bottleneck: str

    def headroom(self, component: str, empirical: bool = True) -> float:
        """bound/load at saturation (1.0 = the binding component)."""
        bounds = self.empirical_bounds if empirical else self.nominal_bounds
        load = self.loads[component]
        if load == 0:
            return float("inf")
        return bounds[component] / load


_COMPONENT_LOADS = {
    "cpu": lambda lv: lv.cpu_cycles,
    "memory": lambda lv: lv.mem_bytes,
    "io": lambda lv: lv.io_bytes,
    "pcie": lambda lv: lv.pcie_bytes,
    "qpi": lambda lv: lv.qpi_bytes,
}


def deconstruct(app: cal.AppCost, packet_bytes: float = 64,
                spec: ServerSpec = NEHALEM,
                config: ServerConfig = DEFAULT_CONFIG) -> BottleneckReport:
    """Build the Figs. 9-10 comparison for one application."""
    from ..perfmodel.throughput import max_loss_free_rate
    from ..workloads.spec import WorkloadSpec

    loads_vec = per_packet_loads(app, packet_bytes, config, spec)
    result = max_loss_free_rate(WorkloadSpec.fixed(packet_bytes, app=app),
                                spec=spec, config=config,
                                empirical_bounds=True, nic_limited=False)
    rate = result.rate_pps
    bounds = bounds_for(spec)
    loads = {name: get(loads_vec) for name, get in _COMPONENT_LOADS.items()}
    nominal = {}
    empirical = {}
    for name in _COMPONENT_LOADS:
        bound = bounds[name]
        nominal[name] = bound.per_packet_bound(rate, empirical=False)
        empirical[name] = bound.per_packet_bound(rate, empirical=True)
    return BottleneckReport(app=app.name, packet_bytes=packet_bytes,
                            loads=loads, nominal_bounds=nominal,
                            empirical_bounds=empirical,
                            saturation_pps=rate,
                            bottleneck=result.bottleneck)


def load_series(app: cal.AppCost, packet_bytes: float = 64,
                spec: ServerSpec = NEHALEM,
                config: ServerConfig = DEFAULT_CONFIG,
                rates_mpps: List[float] = None) -> List[dict]:
    """Per-packet load at increasing input rates (the Figs. 9-10 x-axis).

    The loads themselves are rate-independent (constant lines); the bound
    columns fall as capacity/rate.  One row per rate.
    """
    if rates_mpps is None:
        rates_mpps = [2, 4, 6, 8, 10, 12, 14, 16, 18, 20]
    loads_vec = per_packet_loads(app, packet_bytes, config, spec)
    bounds = bounds_for(spec)
    rows = []
    for mpps in rates_mpps:
        if mpps <= 0:
            raise ValueError("rates must be positive")
        rate = mpps * 1e6
        row = {"rate_mpps": mpps}
        for name, get in _COMPONENT_LOADS.items():
            row[name + "_load"] = get(loads_vec)
            row[name + "_nominal_bound"] = bounds[name].per_packet_bound(rate)
            row[name + "_empirical_bound"] = bounds[name].per_packet_bound(
                rate, empirical=True)
        rows.append(row)
    return rows


def pipeline_breakdown(graph, packet_bytes: float = 64,
                       spec: ServerSpec = NEHALEM,
                       config: ServerConfig = DEFAULT_CONFIG) -> dict:
    """Rate, binding component, and per-element costs for a Click graph.

    The pipeline-level analogue of :func:`deconstruct`: compile the graph
    to a load vector, solve for the loss-free rate, and attach the
    traversal-weighted per-element cost rows so the report says not just
    *which component* binds but *which elements* put the load there.
    """
    from ..costs import compile_loads, element_costs
    from ..perfmodel.throughput import rate_from_loads

    loads = compile_loads(graph, packet_bytes, config=config, spec=spec)
    result = rate_from_loads(loads, packet_bytes, spec=spec)
    return {
        "packet_bytes": packet_bytes,
        "rate_gbps": result.rate_gbps,
        "rate_mpps": result.rate_mpps,
        "bottleneck": result.bottleneck,
        "loads": {name: get(loads)
                  for name, get in _COMPONENT_LOADS.items()},
        "component_rates_pps": result.component_rates_pps,
        "elements": element_costs(graph, packet_bytes),
    }


def cpu_load_from_polling(total_cycles: float, total_packets: int,
                          empty_polls: int,
                          cycles_per_empty_poll: float =
                          cal.EMPTY_POLL_CYCLES) -> float:
    """The Sec. 5.3 empty-poll correction.

    Click polls continuously, so raw CPU utilization is always 100 %;
    the true per-packet load deducts ``empty_polls x ce`` from the cycle
    total before dividing by packets.
    """
    if total_packets <= 0:
        raise ValueError("need >= 1 packet")
    if empty_polls < 0 or total_cycles < 0:
        raise ValueError("counts cannot be negative")
    useful = total_cycles - empty_polls * cycles_per_empty_poll
    if useful < 0:
        raise ValueError("empty-poll cycles exceed total cycles")
    return useful / total_packets
