"""One-shot reproduction summary: paper vs measured for every headline.

Collects the key number from each experiment runner into a single table
(the programmatic version of EXPERIMENTS.md's summary), used by the CLI's
``experiments summary`` and by the narrative integration test.
"""

from __future__ import annotations

from typing import List

from .experiments import (
    run_fig8,
    run_projections,
    run_rb4_latency,
    run_rb4_throughput,
    run_table1,
)
from .report import format_table


def headline_rows(include_simulation: bool = False) -> List[dict]:
    """All headline paper-vs-measured pairs.

    ``include_simulation`` adds the DES-based reordering experiment
    (seconds of runtime rather than milliseconds).
    """
    rows = []
    for row in run_table1()["rows"]:
        rows.append({
            "experiment": "T1 batching (kp=%d,kn=%d)" % (row["kp"], row["kn"]),
            "paper": row["paper_gbps"],
            "measured": row["rate_gbps"],
            "unit": "Gbps",
        })
    fig8 = run_fig8()
    for row in fig8["app_rows"]:
        rows.append({"experiment": "F8 %s 64B" % row["application"],
                     "paper": row["paper_64b_gbps"],
                     "measured": row["rate_64b_gbps"], "unit": "Gbps"})
        rows.append({"experiment": "F8 %s abilene" % row["application"],
                     "paper": row["paper_abilene_gbps"],
                     "measured": row["rate_abilene_gbps"], "unit": "Gbps"})
    for row in run_rb4_throughput()["rows"]:
        rows.append({"experiment": "RB4 throughput %s" % row["workload"],
                     "paper": row["paper_gbps"],
                     "measured": row["aggregate_gbps"], "unit": "Gbps"})
    for row in run_rb4_latency()["rows"]:
        rows.append({"experiment": "RB4 latency: %s" % row["metric"],
                     "paper": row["paper_usec"],
                     "measured": row["measured_usec"], "unit": "usec"})
    for row in run_projections()["rows"]:
        rows.append({"experiment": "P1 %s" % row["application"],
                     "paper": row["paper_gbps"],
                     "measured": row["projected_gbps"], "unit": "Gbps"})
    if include_simulation:
        from .experiments import run_rb4_reordering
        for row in run_rb4_reordering()["rows"]:
            rows.append({"experiment": "RB4 reordering (%s)" % row["mode"],
                         "paper": row["paper_pct"],
                         "measured": row["reordered_pct"], "unit": "%"})
    for row in rows:
        if row["paper"]:
            row["ratio"] = row["measured"] / row["paper"]
    return rows


def worst_ratio_deviation(rows: List[dict]) -> float:
    """Largest |measured/paper - 1| over rows that have a ratio."""
    deviations = [abs(row["ratio"] - 1.0) for row in rows if "ratio" in row]
    if not deviations:
        raise ValueError("no comparable rows")
    return max(deviations)


def summary_text(include_simulation: bool = False) -> str:
    """The rendered summary table."""
    rows = headline_rows(include_simulation)
    return format_table(rows, ["experiment", "paper", "measured", "unit",
                               "ratio"],
                        title="RouteBricks reproduction: paper vs measured")
