"""Sensitivity of the reproduction's conclusions to calibration error.

The model's constants are derived from the paper's published numbers; any
of them could be off by some percentage without changing the paper's
*conclusions* (who bottlenecks, who wins, where crossovers fall).  This
module perturbs the per-packet cost vectors and checks which conclusions
survive -- quantifying how much calibration slack the qualitative results
tolerate, which is the honest way to present a calibrated reproduction.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from .. import calibration as cal
from ..errors import ConfigurationError
from ..hw.presets import NEHALEM, NEHALEM_NEXT_GEN
from ..perfmodel.throughput import max_loss_free_rate
from ..workloads.spec import WorkloadSpec


def perturbed_app(app: cal.AppCost, cpu_factor: float = 1.0,
                  mem_factor: float = 1.0,
                  io_factor: float = 1.0) -> cal.AppCost:
    """A copy of ``app`` with scaled per-packet costs."""
    for factor in (cpu_factor, mem_factor, io_factor):
        if factor <= 0:
            raise ConfigurationError("perturbation factors must be positive")
    return replace(
        app,
        cpu_base_cycles=app.cpu_base_cycles * cpu_factor,
        cpu_per_byte_cycles=app.cpu_per_byte_cycles * cpu_factor,
        mem_base_bytes=app.mem_base_bytes * mem_factor,
        mem_per_byte=app.mem_per_byte * mem_factor,
        io_base_bytes=app.io_base_bytes * io_factor,
        io_per_byte=app.io_per_byte * io_factor,
    )


def conclusions_at(cpu_factor: float = 1.0, mem_factor: float = 1.0,
                   io_factor: float = 1.0) -> Dict[str, bool]:
    """Evaluate the paper's key qualitative conclusions under perturbation.

    Returns a dict of conclusion -> still-holds booleans:

    * ``cpu_bottleneck_64b``: all three applications CPU-bound at 64 B;
    * ``nic_limited_abilene``: forwarding/routing NIC-limited on Abilene;
    * ``app_ordering``: forwarding > routing > IPsec at 64 B;
    * ``routing_memory_bound_next_gen``: the Sec. 5.3 crossover.
    """
    apps = {name: perturbed_app(app, cpu_factor, mem_factor, io_factor)
            for name, app in cal.APPLICATIONS.items()}
    results_64 = {name: max_loss_free_rate(WorkloadSpec.fixed(64, app=app),
                                           spec=NEHALEM)
                  for name, app in apps.items()}
    abilene = {name: max_loss_free_rate(
                   WorkloadSpec.fixed(cal.ABILENE_MEAN_PACKET_BYTES,
                                      app=app),
                   spec=NEHALEM)
               for name, app in apps.items()}
    next_gen_routing = max_loss_free_rate(
        WorkloadSpec.fixed(64, app=apps["routing"]),
        spec=NEHALEM_NEXT_GEN, nic_limited=False)
    return {
        "cpu_bottleneck_64b": all(
            result.bottleneck == "cpu" for result in results_64.values()),
        "nic_limited_abilene": all(
            abilene[name].bottleneck == "nic"
            for name in ("forwarding", "routing")),
        "app_ordering": (results_64["forwarding"].rate_bps
                         > results_64["routing"].rate_bps
                         > results_64["ipsec"].rate_bps),
        "routing_memory_bound_next_gen":
            next_gen_routing.bottleneck == "memory",
    }


def robustness_sweep(factors: List[float] = (0.8, 0.9, 1.0, 1.1, 1.2)) \
        -> List[dict]:
    """Perturb each cost axis independently; one row per (axis, factor)."""
    rows = []
    for axis in ("cpu", "mem", "io"):
        for factor in factors:
            kwargs = {axis + "_factor": factor}
            conclusions = conclusions_at(**kwargs)
            row = {"axis": axis, "factor": factor}
            row.update(conclusions)
            rows.append(row)
    return rows


def all_conclusions_hold(rows: List[dict]) -> bool:
    """True if every conclusion survives every perturbation in ``rows``."""
    keys = ("cpu_bottleneck_64b", "nic_limited_abilene", "app_ordering",
            "routing_memory_bound_next_gen")
    return all(all(row[key] for key in keys) for row in rows)
