"""Trace characterization: the statistics that drive router performance.

Given a packet stream (from the generators or a pcap file), compute the
quantities the evaluation cares about: packet-size distribution (which
sets the bps/pps ratio and hence every NIC-limited rate), flow counts and
lengths (which set flowlet behavior), and burstiness (which sets queueing
delay).  Used by the CLI's ``trace info`` and by workload sanity tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

from ..errors import ConfigurationError
from ..net.flows import FiveTuple
from ..net.packet import Packet
from ..simnet.stats import Histogram


@dataclass
class TraceReport:
    """Summary statistics of a packet stream."""

    packets: int = 0
    total_bytes: int = 0
    duration_sec: float = 0.0
    sizes: Histogram = field(default_factory=Histogram)
    gaps: Histogram = field(default_factory=Histogram)
    flows: Dict[FiveTuple, int] = field(default_factory=dict)

    @property
    def mean_bytes(self) -> float:
        return self.total_bytes / self.packets if self.packets else 0.0

    @property
    def rate_bps(self) -> float:
        if self.duration_sec <= 0:
            return 0.0
        return self.total_bytes * 8 / self.duration_sec

    @property
    def flow_count(self) -> int:
        return len(self.flows)

    @property
    def mean_flow_packets(self) -> float:
        if not self.flows:
            return 0.0
        return self.packets / len(self.flows)

    def burstiness(self) -> float:
        """Coefficient of variation of inter-arrival gaps (1.0 = Poisson,
        higher = burstier)."""
        if len(self.gaps) < 2:
            raise ConfigurationError("need >= 2 gaps for burstiness")
        mean = self.gaps.mean()
        if mean == 0:
            return float("inf")
        return self.gaps.stddev() / mean

    def size_shares(self) -> Dict[int, float]:
        """Fraction of packets per distinct size (for small mixtures)."""
        counts: Dict[int, int] = {}
        for value in self.sizes._values:
            counts[int(value)] = counts.get(int(value), 0) + 1
        return {size: count / self.packets
                for size, count in sorted(counts.items())}


def characterize(timed_packets: Iterable[Tuple[float, Packet]]) -> TraceReport:
    """Build a :class:`TraceReport` from (time, packet) pairs."""
    report = TraceReport()
    last_time = None
    for time, packet in timed_packets:
        report.packets += 1
        report.total_bytes += packet.length
        report.sizes.observe(packet.length)
        if last_time is not None:
            if time < last_time:
                raise ConfigurationError("timestamps must be non-decreasing")
            report.gaps.observe(time - last_time)
        last_time = time
        report.duration_sec = time
        if packet.ip is not None:
            key = packet.five_tuple()
            report.flows[key] = report.flows.get(key, 0) + 1
    return report


def characterize_pcap(path: str) -> TraceReport:
    """Characterize a pcap file on disk."""
    from ..workloads.pcapio import load_trace
    return characterize(load_trace(path))
