"""Experiment runners: one per paper table/figure.

Each runner regenerates the rows/series of its artifact and pairs them
with the paper's reported values, so the benchmark harness (and
EXPERIMENTS.md) can print paper-vs-measured side by side.  Keys match the
DESIGN.md experiment index (T1-T3, F3, F6-F10, RB4-*, P1).
"""

from __future__ import annotations

from typing import Callable, Dict

from .. import calibration as cal
from ..core.latency import latency_range_usec
from ..core.provision import SERVER_MODELS, provision
from ..core.router import RouteBricksRouter
from ..core.topology import switched_cluster_equivalent_servers
from ..perfmodel.batching import batching_sweep
from ..perfmodel.loads import table3_row
from ..perfmodel.projection import (
    project_rates,
    projected_abilene_forwarding_bps,
)
from ..perfmodel.scenarios import SCENARIOS, fig7_configurations
from ..perfmodel.throughput import max_loss_free_rate
from ..workloads.spec import WorkloadSpec
from ..workloads.flowgen import FlowGenerator
from .bottleneck import deconstruct, load_series


def run_table1() -> dict:
    """Table 1: forwarding rate vs polling configuration."""
    rows = batching_sweep()
    paper = {(1, 1): 1.46, (32, 1): 4.97, (32, 16): 9.77}
    for row in rows:
        row["paper_gbps"] = paper[(row["kp"], row["kn"])]
    return {"id": "T1", "rows": rows}


def run_table2() -> dict:
    """Table 2: nominal and empirical component capacities."""
    from ..hw.presets import NEHALEM
    from ..perfmodel.bounds import bounds_for
    rows = []
    for name, bound in bounds_for(NEHALEM).items():
        rows.append({
            "component": name,
            "nominal": (bound.nominal / 1e9),
            "empirical": (bound.empirical / 1e9),
            "unit": "Gcycles/s" if bound.unit != "bps" else "Gbps",
        })
    return {"id": "T2", "rows": rows}


def run_table3() -> dict:
    """Table 3: instructions/packet and CPI per application."""
    rows = [table3_row(app) for app in cal.APPLICATIONS.values()]
    return {"id": "T3", "rows": rows}


def run_fig3() -> dict:
    """Fig. 3: cluster servers vs external ports, four configurations."""
    port_counts = [4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048]
    rows = []
    for n in port_counts:
        row = {"ports": n,
               "switched_equiv": switched_cluster_equivalent_servers(n)}
        for key in ("current", "more-nics", "faster"):
            topo = provision(n, key)
            row[key] = topo.total_servers()
            row[key + "_kind"] = type(topo).__name__
        rows.append(row)
    return {"id": "F3", "rows": rows, "models": sorted(SERVER_MODELS)}


def run_fig6() -> dict:
    """Fig. 6: forwarding rates with and without multiple queues."""
    paper = {"parallel": 1.7, "pipeline": 1.2, "pipeline_cross_cache": 0.6,
             "overlap": 0.7, "overlap_multi_queue": 1.7}
    rows = []
    for key, scenario in SCENARIOS.items():
        rows.append({"scenario": key,
                     "rate_gbps": scenario.rate_gbps,
                     "paper_gbps": paper.get(key, float("nan")),
                     "cores": scenario.cores_per_fp})
    return {"id": "F6", "rows": rows}


def run_fig7() -> dict:
    """Fig. 7: aggregate impact of architecture, queues, batching."""
    rows = fig7_configurations()
    final = rows[-1]["rate_mpps"]
    for row in rows:
        row["speedup_to_final"] = final / row["rate_mpps"]
    return {"id": "F7", "rows": rows,
            "paper": {"vs_xeon": 11.0, "vs_unmodified_nehalem": 6.7}}


def run_fig8() -> dict:
    """Fig. 8: rate vs packet size (top) and vs application (bottom)."""
    top = []
    for size in (64, 128, 256, 512, 1024):
        result = max_loss_free_rate(
            WorkloadSpec.fixed(size, app="forwarding"))
        top.append({"packet_bytes": size, "rate_gbps": result.rate_gbps,
                    "rate_mpps": result.rate_mpps,
                    "bottleneck": result.bottleneck})
    abilene = cal.ABILENE_MEAN_PACKET_BYTES
    result = max_loss_free_rate(
        WorkloadSpec.fixed(abilene, app="forwarding"))
    top.append({"packet_bytes": abilene, "rate_gbps": result.rate_gbps,
                "rate_mpps": result.rate_mpps,
                "bottleneck": result.bottleneck})
    bottom = []
    paper_64 = {"forwarding": 9.7, "routing": 6.35, "ipsec": 1.4}
    paper_ab = {"forwarding": 24.6, "routing": 24.6, "ipsec": 4.45}
    for name, app in cal.APPLICATIONS.items():
        r64 = max_loss_free_rate(WorkloadSpec.fixed(64, app=app))
        rab = max_loss_free_rate(WorkloadSpec.fixed(abilene, app=app))
        bottom.append({"application": name,
                       "rate_64b_gbps": r64.rate_gbps,
                       "paper_64b_gbps": paper_64[name],
                       "rate_abilene_gbps": rab.rate_gbps,
                       "paper_abilene_gbps": paper_ab[name]})
    return {"id": "F8", "size_rows": top, "app_rows": bottom}


def run_fig9() -> dict:
    """Fig. 9: CPU cycles/packet vs input rate, with the capacity bound."""
    rows = {}
    for name, app in cal.APPLICATIONS.items():
        rows[name] = load_series(app, packet_bytes=64)
    return {"id": "F9", "series": rows}


def run_fig10() -> dict:
    """Fig. 10: bus loads (bytes/packet) vs input rate, with bounds."""
    reports = {name: deconstruct(app, 64)
               for name, app in cal.APPLICATIONS.items()}
    rows = []
    for name, report in reports.items():
        for component in ("memory", "io", "pcie", "qpi"):
            rows.append({"application": name, "component": component,
                         "load_bytes_per_packet": report.loads[component],
                         "empirical_bound_at_saturation":
                             report.empirical_bounds[component],
                         "headroom": report.headroom(component)})
    return {"id": "F10", "rows": rows,
            "bottlenecks": {n: r.bottleneck for n, r in reports.items()}}


def run_rb4_throughput() -> dict:
    """Sec. 6.2: RB4 routing performance, 64 B and Abilene."""
    rb4 = RouteBricksRouter()
    r64 = rb4.max_throughput(WorkloadSpec.fixed(64))
    rab = rb4.max_throughput(
        WorkloadSpec.fixed(cal.ABILENE_MEAN_PACKET_BYTES))
    rows = [
        {"workload": "64B", "aggregate_gbps": r64.aggregate_gbps,
         "paper_gbps": 12.0, "binding": r64.binding},
        {"workload": "abilene", "aggregate_gbps": rab.aggregate_gbps,
         "paper_gbps": 35.0, "binding": rab.binding},
    ]
    return {"id": "RB4-T", "rows": rows}


def run_rb4_reordering(packets_per_flow: int = 300, num_flows: int = 60,
                       seed: int = 3) -> dict:
    """Sec. 6.2: reordering with and without the flowlet extension."""
    rows = []
    for use_flowlets, paper in ((True, 0.15), (False, 5.5)):
        gen = FlowGenerator(num_flows=num_flows,
                            packets_per_flow=packets_per_flow,
                            packet_bytes=740, burst_size=8,
                            burst_gap_sec=1e-4, intra_burst_gap_sec=4e-7,
                            seed=1)
        router = RouteBricksRouter(use_flowlets=use_flowlets, seed=seed)
        report = router.replay_pair(gen.timed_packets())
        rows.append({"mode": "flowlets" if use_flowlets else "per-packet",
                     "reordered_pct": report.reordered_fraction * 100,
                     "paper_pct": paper,
                     "indirect_pct": report.indirect_fraction * 100,
                     "delivered": report.delivered_packets})
    return {"id": "RB4-R", "rows": rows}


def run_rb4_latency() -> dict:
    """Sec. 6.2: per-server and cluster latency."""
    direct, indirect = latency_range_usec()
    rows = [
        {"metric": "per-server (input role)",
         "measured_usec": cal.INPUT_NODE_LATENCY_USEC, "paper_usec": 24.0},
        {"metric": "cluster direct path", "measured_usec": direct,
         "paper_usec": 47.6},
        {"metric": "cluster indirect path", "measured_usec": indirect,
         "paper_usec": 66.4},
    ]
    return {"id": "RB4-L", "rows": rows}


def run_projections() -> dict:
    """Sec. 5.3: next-generation server projections."""
    paper = {"forwarding": 38.8, "routing": 19.9, "ipsec": 5.8}
    rows = []
    for name, result in project_rates().items():
        rows.append({"application": name,
                     "projected_gbps": result.rate_gbps,
                     "paper_gbps": paper[name],
                     "bottleneck": result.bottleneck})
    rows.append({"application": "forwarding (abilene, no NIC limit)",
                 "projected_gbps": projected_abilene_forwarding_bps() / 1e9,
                 "paper_gbps": 70.0, "bottleneck": "io"})
    return {"id": "P1", "rows": rows}


EXPERIMENTS: Dict[str, Callable[[], dict]] = {
    "T1": run_table1,
    "T2": run_table2,
    "T3": run_table3,
    "F3": run_fig3,
    "F6": run_fig6,
    "F7": run_fig7,
    "F8": run_fig8,
    "F9": run_fig9,
    "F10": run_fig10,
    "RB4-T": run_rb4_throughput,
    "RB4-R": run_rb4_reordering,
    "RB4-L": run_rb4_latency,
    "P1": run_projections,
}


def run_experiment(experiment_id: str) -> dict:
    """Run one experiment by its DESIGN.md id."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError("unknown experiment %r (have %s)"
                       % (experiment_id, sorted(EXPERIMENTS)))
    return EXPERIMENTS[experiment_id]()
