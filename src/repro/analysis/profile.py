"""VTune-style measurement of the simulated server (Sec. 5.3 methodology).

The paper measures "true" per-packet CPU load by running Click at several
input rates, counting total cycles and empty polls, and deducting the
empty-poll cycles (Click polls at 100 % CPU, so raw utilization is
meaningless).  This module applies exactly that procedure to the *timed
simulation*: run `repro.click.simrun` at increasing offered rates, read
the core cycle ledgers and poll counters, apply the empty-poll correction,
and recover the cycles/packet line of Fig. 9 -- from measurement rather
than from the calibration constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .. import calibration as cal
from ..click.simrun import EMPTY_POLL_CYCLES, TimedForwardingRun
from ..errors import ConfigurationError
from ..hw.presets import NEHALEM
from ..hw.server import Server
from .bottleneck import cpu_load_from_polling


@dataclass(frozen=True)
class ProfilePoint:
    """One measured operating point."""

    offered_mpps: float
    measured_cycles_per_packet: float
    raw_cpu_utilization: float
    empty_poll_fraction: float


def profile_cpu_load(packet_bytes: int = 64,
                     offered_gbps: List[float] = (2, 4, 6, 8),
                     kp: int = cal.DEFAULT_KP, kn: int = cal.DEFAULT_KN,
                     duration_sec: float = 1e-3) -> List[ProfilePoint]:
    """Measure cycles/packet at several offered rates on a fresh server.

    Returns one point per rate.  The measured line should be flat (loads
    are rate-independent, the paper's conclusion 4) and should match the
    calibrated model within the simulation's quantization.
    """
    if not offered_gbps:
        raise ConfigurationError("need at least one offered rate")
    points = []
    for gbps in offered_gbps:
        if gbps <= 0:
            raise ConfigurationError("offered rates must be positive")
        server = Server(NEHALEM, num_ports=4, queues_per_port=2)
        run = TimedForwardingRun(server, packet_bytes=packet_bytes,
                                 kp=kp, kn=kn)
        report = run.run(offered_bps=gbps * 1e9, duration_sec=duration_sec)
        total_cycles = sum(core.cycles_used for core in server.cores)
        if report.forwarded_packets == 0:
            raise ConfigurationError(
                "no packets forwarded at %.1f Gbps" % gbps)
        measured = cpu_load_from_polling(
            total_cycles, report.forwarded_packets, report.empty_polls,
            cycles_per_empty_poll=EMPTY_POLL_CYCLES)
        # Raw utilization over the run: busy cycles / available cycles.
        available = NEHALEM.cycles_per_second * duration_sec
        points.append(ProfilePoint(
            offered_mpps=report.forwarded_packets / duration_sec / 1e6,
            measured_cycles_per_packet=measured,
            raw_cpu_utilization=total_cycles / available,
            empty_poll_fraction=(report.empty_polls / report.total_polls
                                 if report.total_polls else 0.0),
        ))
    return points


def measured_load_is_flat(points: List[ProfilePoint],
                          tolerance: float = 0.05) -> bool:
    """Check the paper's conclusion 4: cycles/packet constant in rate."""
    if len(points) < 2:
        raise ConfigurationError("need >= 2 points")
    values = [p.measured_cycles_per_packet for p in points]
    mean = sum(values) / len(values)
    return all(abs(v - mean) / mean <= tolerance for v in values)
