"""Cross-validation: the analytic model against the timed simulation.

The library carries two independent implementations of the single-server
forwarding story: the closed-form bottleneck solver (`repro.perfmodel`)
and the event-driven run (`repro.click.simrun`).  This harness sweeps both
over a grid of operating points and reports the disagreement -- the
reproduction's internal consistency check, run as part of the benchmark
suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .. import calibration as cal
from ..click.simrun import TimedForwardingRun
from ..errors import ConfigurationError
from ..hw.presets import NEHALEM
from ..hw.server import Server
from ..perfmodel.loads import ServerConfig
from ..perfmodel.throughput import max_loss_free_rate
from ..results import RunResult
from ..workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class ValidationPoint(RunResult):
    """One grid point: analytic prediction vs simulated measurement."""

    _summary_fields = ("kp", "kn", "packet_bytes", "relative_error")

    kp: int
    kn: int
    packet_bytes: int
    analytic_gbps: float
    simulated_gbps: float

    @property
    def relative_error(self) -> float:
        if self.analytic_gbps == 0:
            raise ConfigurationError("degenerate analytic prediction")
        return abs(self.simulated_gbps - self.analytic_gbps) \
            / self.analytic_gbps


def validate_forwarding(grid: List[Tuple[int, int, int]] = None,
                        tolerance_bps: float = 0.25e9) -> List[ValidationPoint]:
    """Run the analytic/DES comparison over a (kp, kn, size) grid."""
    if grid is None:
        grid = [(1, 1, 64), (32, 1, 64), (32, 16, 64), (32, 16, 256)]
    points = []
    for kp, kn, size in grid:
        config = ServerConfig(kp=kp, kn=kn)
        result = max_loss_free_rate(
            WorkloadSpec.fixed(size, app="forwarding"),
            config=config, nic_limited=False)
        # The timed simulation models the CPU path (cores, polls, rings);
        # compare against the analytic CPU limit specifically -- at sizes
        # where another component binds first, the full solver would
        # predict less than the DES can observe.
        cpu_pps = result.component_rates_pps["cpu"]
        analytic_bps = cpu_pps * size * 8
        server = Server(NEHALEM, num_ports=4, queues_per_port=2)
        run = TimedForwardingRun(server, packet_bytes=size, kp=kp, kn=kn)
        high = min(analytic_bps * 1.6, 60e9)
        simulated = run.find_loss_free_rate(
            low_bps=analytic_bps * 0.3, high_bps=high,
            tolerance_bps=tolerance_bps)
        points.append(ValidationPoint(kp=kp, kn=kn, packet_bytes=size,
                                      analytic_gbps=analytic_bps / 1e9,
                                      simulated_gbps=simulated / 1e9))
    return points


def max_relative_error(points: List[ValidationPoint]) -> float:
    """Worst disagreement across the grid."""
    if not points:
        raise ConfigurationError("no validation points")
    return max(point.relative_error for point in points)
