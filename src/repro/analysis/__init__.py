"""Evaluation methodology: bottleneck deconstruction and experiment runners.

Reproduces Sec. 5.3's approach: measure per-packet loads on every system
component under increasing input rates, compare them against nominal and
empirical upper bounds, and identify the bottleneck.  Includes the
empty-poll correction for CPU load (Click polls at 100 % utilization;
"true" load subtracts cycles burned on empty polls) and plain-text
table/series formatting for the benchmark harness.
"""

from .bottleneck import (
    BottleneckReport,
    cpu_load_from_polling,
    deconstruct,
    load_series,
)
from .report import ascii_bars, format_series, format_table
from .experiments import EXPERIMENTS, run_experiment
from .profile import measured_load_is_flat, profile_cpu_load
from .sensitivity import conclusions_at, robustness_sweep
from .summary import headline_rows, summary_text
from .trace_report import characterize, characterize_pcap
from .validation import max_relative_error, validate_forwarding

__all__ = [
    "BottleneckReport",
    "cpu_load_from_polling",
    "deconstruct",
    "load_series",
    "ascii_bars",
    "format_series",
    "format_table",
    "EXPERIMENTS",
    "run_experiment",
    "measured_load_is_flat",
    "profile_cpu_load",
    "conclusions_at",
    "robustness_sweep",
    "headline_rows",
    "summary_text",
    "characterize",
    "characterize_pcap",
    "max_relative_error",
    "validate_forwarding",
]
