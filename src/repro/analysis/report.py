"""Plain-text tables and series for the benchmark harness output."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_table(rows: Sequence[Dict], columns: Sequence[str] = None,
                 title: str = "", float_format: str = "%.2f") -> str:
    """Render dict rows as an aligned ASCII table."""
    rows = list(rows)
    if not rows:
        return title + "\n(empty)" if title else "(empty)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value) -> str:
        if isinstance(value, float):
            return float_format % value
        return str(value)

    cells = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(row[i]) for row in cells))
              for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, xs: Iterable, ys: Iterable,
                  x_label: str = "x", y_label: str = "y",
                  float_format: str = "%.3f") -> str:
    """Render an (x, y) series as two aligned columns."""
    rows = [{x_label: x, y_label: y} for x, y in zip(xs, ys)]
    return format_table(rows, [x_label, y_label], title=name,
                        float_format=float_format)


def ascii_bars(labels: Sequence[str], values: Sequence[float],
               width: int = 50, title: str = "",
               unit: str = "") -> str:
    """Render a horizontal bar chart in plain text (for bench artifacts)."""
    labels = list(labels)
    values = list(values)
    if len(labels) != len(values) or not labels:
        raise ValueError("labels and values must be non-empty and equal length")
    if any(v < 0 for v in values):
        raise ValueError("bar values must be >= 0")
    peak = max(values) or 1.0
    label_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(1 if value > 0 else 0, round(value / peak * width))
        lines.append("%s  %s %.2f%s"
                     % (label.ljust(label_width), bar.ljust(width), value,
                        unit))
    return "\n".join(lines)


def paper_vs_measured(rows: List[dict]) -> str:
    """Render {metric, paper, measured} comparison rows with a ratio column."""
    enriched = []
    for row in rows:
        entry = dict(row)
        paper = row.get("paper")
        measured = row.get("measured")
        if isinstance(paper, (int, float)) and isinstance(measured, (int, float)) \
                and paper:
            entry["ratio"] = measured / paper
        enriched.append(entry)
    columns = ["metric", "paper", "measured", "ratio"]
    return format_table(enriched, columns, float_format="%.3f")
