"""Unified cost layer: one model for analytic loads, element costs, DES.

``repro.costs`` owns the calibrated per-packet accounting that the rest of
the reproduction consumes:

* :class:`ResourceVector` -- per-packet cycles + bus bytes with add/scale
  algebra (``repro.perfmodel.loads.LoadVector`` is an alias of it).
* :class:`CostModel` -- the calibrated constants and batching amortization,
  exposed as base/per-byte vector terms for applications and for the
  RX/TX device elements.
* :func:`compile_loads` -- walk a parsed Click graph, weight each
  element's :meth:`resource_cost` by traversal probability, and produce
  the LoadVector the throughput solver consumes.
"""

from .compile import compile_loads, element_costs, traversal_probabilities
from .model import (CACHE_LINE_BYTES, DEFAULT_CONFIG, DEFAULT_COST_MODEL,
                    CostModel, ServerConfig)
from .vector import ZERO_VECTOR, ResourceVector

__all__ = [
    "CACHE_LINE_BYTES",
    "CostModel",
    "DEFAULT_CONFIG",
    "DEFAULT_COST_MODEL",
    "ResourceVector",
    "ServerConfig",
    "ZERO_VECTOR",
    "compile_loads",
    "element_costs",
    "traversal_probabilities",
]
