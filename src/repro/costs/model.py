"""The cost model: one owner for every calibrated per-packet cost.

Historically the repo encoded the paper's resource accounting three times:
preset-app constants in :mod:`repro.calibration` consumed by the analytic
model, ad-hoc ``cycle_cost`` hooks on Click elements charged by the
scheduler, and hard-wired cycle math in the timed simulation.  A
:class:`CostModel` owns the calibrated constants and the batching
amortization once; the analytic solver, the Click scheduler, and the DES
all derive their numbers from it, so a change to the calibration (or a
user-supplied recalibration) propagates everywhere consistently.

The model speaks :class:`~repro.costs.vector.ResourceVector`: per-packet
CPU cycles plus bytes on each bus, affine in the packet size.  Three views
matter:

* ``app_vector`` / ``per_packet_vector`` -- whole-application costs (the
  Fig. 8 / Figs. 9-10 quantities), the latter with batching bookkeeping
  and scheduling penalties applied;
* ``rx_terms`` / ``tx_terms`` / ``increment_terms`` -- the same costs
  decomposed onto Click elements, so a pipeline's element-wise sum
  reproduces the application totals exactly;
* ``derive_application`` -- the Sec. 8 programmability story: build a new
  calibrated application from profiler-style figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from .. import calibration as cal
from ..errors import ConfigurationError
from .vector import ResourceVector

#: Cache-line granularity for memory-touch accounting (derive_application).
CACHE_LINE_BYTES = 64


@dataclass(frozen=True)
class ServerConfig:
    """Software configuration knobs of the evaluation (Sec. 4.2).

    ``multi_queue``
        One RX/TX queue per core per port (both scheduling rules hold).
        When False, ports expose a single queue and packet handoffs between
        a polling core and a worker core are unavoidable.
    ``kp, kn``
        Poll-driven and NIC-driven batch sizes (Table 1).
    """

    multi_queue: bool = True
    kp: int = cal.DEFAULT_KP
    kn: int = cal.DEFAULT_KN

    def __post_init__(self):
        if self.kp < 1:
            raise ConfigurationError("kp must be >= 1, got %r" % self.kp)
        if not 1 <= self.kn <= cal.MAX_NIC_BATCH:
            raise ConfigurationError(
                "kn must be in [1, %d] (PCIe payload limit), got %r"
                % (cal.MAX_NIC_BATCH, self.kn))


#: The evaluation's default configuration: multi-queue, kp=32, kn=16.
DEFAULT_CONFIG = ServerConfig()


def _app_base_vector(app: cal.AppCost) -> ResourceVector:
    """The size-independent part of an application's cost."""
    return ResourceVector(cpu_cycles=app.cpu_base_cycles,
                          mem_bytes=app.mem_base_bytes,
                          io_bytes=app.io_base_bytes,
                          pcie_bytes=app.pcie_base_bytes,
                          qpi_bytes=app.qpi_base_bytes)


def _app_per_byte_vector(app: cal.AppCost) -> ResourceVector:
    """The per-packet-byte slope of an application's cost."""
    return ResourceVector(cpu_cycles=app.cpu_per_byte_cycles,
                          mem_bytes=app.mem_per_byte,
                          io_bytes=app.io_per_byte,
                          pcie_bytes=app.pcie_per_byte,
                          qpi_bytes=app.qpi_per_byte)


class CostModel:
    """Calibrated per-packet costs, batching amortization, penalties.

    The default instance (:data:`DEFAULT_COST_MODEL`) is built from
    :mod:`repro.calibration`; alternative instances can carry a different
    application catalog or recalibrated batching constants (e.g. for a
    hypothetical server generation) and drop into every consumer.
    """

    def __init__(self,
                 applications: Optional[Dict[str, cal.AppCost]] = None,
                 baseline: str = "forwarding",
                 book_base_cycles: float = cal.BOOK_BASE_CYCLES,
                 book_poll_cycles: float = cal.BOOK_POLL_CYCLES,
                 book_nic_cycles: float = cal.BOOK_NIC_CYCLES,
                 empty_poll_cycles: float = cal.EMPTY_POLL_CYCLES,
                 pipeline_sync_cycles: float = cal.PIPELINE_SYNC_CYCLES):
        self.applications = dict(applications if applications is not None
                                 else cal.APPLICATIONS)
        if baseline not in self.applications:
            raise ConfigurationError("baseline app %r not in catalog"
                                     % baseline)
        self.baseline_name = baseline
        self.book_base_cycles = book_base_cycles
        self.book_poll_cycles = book_poll_cycles
        self.book_nic_cycles = book_nic_cycles
        self.empty_poll_cycles = empty_poll_cycles
        self.pipeline_sync_cycles = pipeline_sync_cycles

    # -- application resolution --------------------------------------------

    @property
    def baseline(self) -> cal.AppCost:
        """The packet-movement baseline every application includes."""
        return self.applications[self.baseline_name]

    def app(self, app: Union[str, cal.AppCost, None]) -> cal.AppCost:
        """Accept an :class:`~repro.calibration.AppCost` or a catalog name."""
        if app is None:
            return self.applications["routing"]
        if isinstance(app, cal.AppCost):
            return app
        if app in self.applications:
            return self.applications[app]
        raise ConfigurationError("unknown application %r (have %s)"
                                 % (app, sorted(self.applications)))

    # -- batching ----------------------------------------------------------

    def bookkeeping_cycles(self, kp: int = cal.DEFAULT_KP,
                           kn: int = cal.DEFAULT_KN) -> float:
        """Amortized per-packet book-keeping cost (excluding the base).

        The irreducible per-packet term (``book_base_cycles``) remains at
        infinite batch sizes and is part of the application processing
        cost, not of this amortized remainder.
        """
        if kp < 1 or kn < 1:
            raise ConfigurationError(
                "batch sizes must be >= 1 (got kp=%r, kn=%r)" % (kp, kn))
        return self.book_poll_cycles / kp + self.book_nic_cycles / kn

    # -- whole-application vectors -----------------------------------------

    def app_terms(self, app) -> Tuple[ResourceVector, ResourceVector]:
        """``(base, per_byte)`` affine terms of an application's cost."""
        app = self.app(app)
        return _app_base_vector(app), _app_per_byte_vector(app)

    def app_vector(self, app, packet_bytes: float) -> ResourceVector:
        """Pure application cost at ``packet_bytes`` (no bookkeeping)."""
        if packet_bytes <= 0:
            raise ConfigurationError("packet size must be positive")
        base, per_byte = self.app_terms(app)
        return base + per_byte.scaled(packet_bytes)

    def apply_cpu_penalties(self, vector: ResourceVector,
                            config: ServerConfig = DEFAULT_CONFIG,
                            spec=None) -> ResourceVector:
        """Scheduling penalties on top of a per-packet vector.

        Without multi-queue NICs the one-core-per-packet rule breaks: a
        polling core hands each packet to a worker, adding the Fig. 6
        pipeline synchronization cost.  On shared-bus servers, FSB
        contention inflates every cycle count by the spec's
        ``cpi_factor``.
        """
        cycles = vector.cpu_cycles
        if not config.multi_queue:
            cycles += self.pipeline_sync_cycles
        if spec is not None and getattr(spec, "cpi_factor", 1.0) != 1.0:
            cycles *= spec.cpi_factor
        return vector.with_cpu(cycles)

    def cpu_cycles_per_packet(self, app, packet_bytes: float,
                              config: ServerConfig = DEFAULT_CONFIG,
                              spec=None) -> float:
        """Total CPU cycles/packet: application + book-keeping + penalties."""
        return self.per_packet_vector(app, packet_bytes, config,
                                      spec).cpu_cycles

    def per_packet_vector(self, app, packet_bytes: float,
                          config: ServerConfig = DEFAULT_CONFIG,
                          spec=None) -> ResourceVector:
        """The full per-packet load vector (the Figs. 9-10 quantity)."""
        vector = self.app_vector(app, packet_bytes)
        vector = vector.with_cpu(vector.cpu_cycles
                                 + self.bookkeeping_cycles(config.kp,
                                                           config.kn))
        return self.apply_cpu_penalties(vector, config, spec)

    # -- element-level decomposition ---------------------------------------

    # The per-element split is chosen so that summing a pipeline's elements
    # reproduces the application totals exactly: the RX device carries the
    # packet-movement baseline's CPU cost (whose 64 B value is the Table 1
    # irreducible term) plus half of each bus term; the TX device carries
    # the other bus half; application elements carry their increment over
    # the baseline.

    def rx_terms(self, kp: int = cal.DEFAULT_KP) \
            -> Tuple[ResourceVector, ResourceVector]:
        """Cost terms of a polling device: poll amortization + baseline."""
        if kp < 1:
            raise ConfigurationError("kp must be >= 1")
        base, per_byte = self.app_terms(self.baseline)
        rx_base = ResourceVector(
            cpu_cycles=self.book_poll_cycles / kp + base.cpu_cycles,
            mem_bytes=base.mem_bytes / 2,
            io_bytes=base.io_bytes / 2,
            pcie_bytes=base.pcie_bytes / 2,
            qpi_bytes=base.qpi_bytes / 2)
        rx_per_byte = ResourceVector(
            cpu_cycles=per_byte.cpu_cycles,
            mem_bytes=per_byte.mem_bytes / 2,
            io_bytes=per_byte.io_bytes / 2,
            pcie_bytes=per_byte.pcie_bytes / 2,
            qpi_bytes=per_byte.qpi_bytes / 2)
        return rx_base, rx_per_byte

    def tx_terms(self, kn: int = cal.DEFAULT_KN) \
            -> Tuple[ResourceVector, ResourceVector]:
        """Cost terms of a sending device: NIC-batch amortization + TX DMA."""
        if not 1 <= kn <= cal.MAX_NIC_BATCH:
            raise ConfigurationError("kn must be in [1, %d]"
                                     % cal.MAX_NIC_BATCH)
        base, per_byte = self.app_terms(self.baseline)
        tx_base = ResourceVector(
            cpu_cycles=self.book_nic_cycles / kn,
            mem_bytes=base.mem_bytes / 2,
            io_bytes=base.io_bytes / 2,
            pcie_bytes=base.pcie_bytes / 2,
            qpi_bytes=base.qpi_bytes / 2)
        tx_per_byte = ResourceVector(
            mem_bytes=per_byte.mem_bytes / 2,
            io_bytes=per_byte.io_bytes / 2,
            pcie_bytes=per_byte.pcie_bytes / 2,
            qpi_bytes=per_byte.qpi_bytes / 2)
        return tx_base, tx_per_byte

    def increment_terms(self, app) \
            -> Tuple[ResourceVector, ResourceVector]:
        """An application element's cost over the forwarding baseline.

        This is what :class:`~repro.click.elements.ip.LookupIPRoute` or
        :class:`~repro.click.elements.ipsec.IPsecESPEncap` add on top of
        the packet movement the device elements already account for.
        """
        app_base, app_per_byte = self.app_terms(app)
        base, per_byte = self.app_terms(self.baseline)
        return app_base - base, app_per_byte - per_byte

    # -- stateful NF dispatch (State-Compute Replication) -------------------

    # The stateful suite charges four kinds of work beyond an NF's own
    # update: shared-state locking, cache-line coherence transfers, and
    # SCR's delta encode/replay.  Expressing them as ResourceVectors keeps
    # the dispatch strategies on the same accounting basis as every other
    # consumer: cycles bind cores, delta bytes ride the memory/QPI buses.

    def state_access_vector(self, nf: str = "nat") -> ResourceVector:
        """Per-packet cost of one flow-state lookup + update + NF verdict."""
        compute = cal.NF_COMPUTE_CYCLES.get(nf)
        if compute is None:
            raise ConfigurationError(
                "unknown stateful NF %r (have %s)"
                % (nf, sorted(cal.NF_COMPUTE_CYCLES)))
        return ResourceVector(
            cpu_cycles=(cal.STATEFUL_BASE_CYCLES + cal.STATE_LOOKUP_CYCLES
                        + cal.STATE_UPDATE_CYCLES + compute),
            mem_bytes=cal.STATE_ENTRY_BYTES)

    def lock_vector(self, contended: bool = False) -> ResourceVector:
        """One lock acquire/release; contended acquires convoy-wait."""
        cycles = cal.LOCK_BASE_CYCLES
        if contended:
            cycles += cal.LOCK_CONTENDED_CYCLES
        return ResourceVector(cpu_cycles=cycles)

    def coherence_vector(self,
                         lines: float = cal.STATE_SHARED_LINES
                         ) -> ResourceVector:
        """Cache lines migrating from a remote core (shared-state access).

        The transferred bytes are charged to the inter-socket link: on the
        two-socket reference server half of all remote transfers cross
        QPI, and the on-die half is free, so one full accounting of every
        line at the 0.5 crossing probability is the expected QPI load.
        """
        return ResourceVector(
            cpu_cycles=lines * cal.CACHE_COHERENCE_CYCLES,
            qpi_bytes=lines * CACHE_LINE_BYTES * 0.5)

    def scr_encode_vector(self) -> ResourceVector:
        """Appending one compact delta to the shared history log."""
        return ResourceVector(cpu_cycles=cal.SCR_DELTA_ENCODE_CYCLES,
                              mem_bytes=cal.SCR_DELTA_BYTES)

    def scr_replay_vector(self) -> ResourceVector:
        """One replica applying one delta from the history log.

        Reading the log is a sequential stream (prefetched), so the cost
        is the apply cycles plus the delta's bytes on the memory bus; the
        state line itself is core-local by construction.
        """
        return ResourceVector(cpu_cycles=cal.SCR_DELTA_APPLY_CYCLES,
                              mem_bytes=cal.SCR_DELTA_BYTES)

    # -- user-defined applications (Sec. 8) --------------------------------

    def derive_application(self, name: str,
                           instructions_per_packet: float = None,
                           cycles_per_instruction: float = 1.0,
                           cycles_per_packet: float = None,
                           cycles_per_byte: float = 0.0,
                           extra_memory_lines: float = 0.0,
                           touches_payload: bool = True) -> cal.AppCost:
        """Build an :class:`AppCost` for a new packet-processing app.

        Give the profiler view (instructions and CPI, Table 3 style) or
        ``cycles_per_packet`` directly; the cost is *in addition to* the
        packet-movement baseline.  ``cycles_per_byte`` covers compute that
        scales with packet size (encryption, DPI); ``extra_memory_lines``
        charges cache lines of additional random memory per packet;
        ``touches_payload`` adds per-byte memory traffic beyond the
        forwarding path's.
        """
        if (instructions_per_packet is None) == (cycles_per_packet is None):
            raise ConfigurationError("give exactly one of "
                                     "instructions_per_packet or "
                                     "cycles_per_packet")
        if instructions_per_packet is not None:
            if instructions_per_packet < 0 or cycles_per_instruction <= 0:
                raise ConfigurationError("bad instruction/CPI figures")
            app_cycles = instructions_per_packet * cycles_per_instruction
        else:
            if cycles_per_packet < 0:
                raise ConfigurationError(
                    "cycles_per_packet cannot be negative")
            app_cycles = cycles_per_packet
            instructions_per_packet = cycles_per_packet \
                / cycles_per_instruction
        if cycles_per_byte < 0 or extra_memory_lines < 0:
            raise ConfigurationError(
                "per-byte/memory figures cannot be negative")

        base = self.baseline
        mem_base = base.mem_base_bytes + extra_memory_lines * CACHE_LINE_BYTES
        mem_per_byte = base.mem_per_byte + (1.0 if touches_payload else 0.0)
        return cal.AppCost(
            name=name,
            cpu_base_cycles=base.cpu_base_cycles + app_cycles,
            cpu_per_byte_cycles=base.cpu_per_byte_cycles + cycles_per_byte,
            mem_base_bytes=mem_base,
            mem_per_byte=mem_per_byte,
            io_base_bytes=base.io_base_bytes,
            io_per_byte=base.io_per_byte,
            pcie_base_bytes=base.pcie_base_bytes,
            pcie_per_byte=base.pcie_per_byte,
            qpi_base_bytes=mem_base * 0.25,
            qpi_per_byte=mem_per_byte * 0.25,
            instructions_per_packet=base.instructions_per_packet
            + instructions_per_packet,
            cycles_per_instruction=cycles_per_instruction,
        )


#: The calibration-backed model every consumer uses unless told otherwise.
DEFAULT_COST_MODEL = CostModel()
