"""Per-packet resource vectors.

A :class:`ResourceVector` is what one packet (or one element's share of a
packet) costs on each system component: CPU cycles and bytes moved on the
memory buses, socket-I/O links, PCIe buses, and the inter-socket link --
the quantities plotted in Figs. 9-10 and charged by both the analytic
bottleneck solver and the discrete-event simulation.

The vector forms a small algebra (add, scale, zero) so per-element costs
compose into per-pipeline loads: an element contributes ``base +
per_byte * packet_bytes``, a pipeline contributes the traversal-probability-
weighted sum of its elements, and the solver divides component capacities
by the resulting totals.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ResourceVector:
    """Per-packet load on each system component.

    ``cpu_cycles`` is CPU work; the four remaining entries are bytes moved
    on the corresponding bus per packet (Table 2's components).
    """

    cpu_cycles: float = 0.0
    mem_bytes: float = 0.0
    io_bytes: float = 0.0
    pcie_bytes: float = 0.0
    qpi_bytes: float = 0.0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            cpu_cycles=self.cpu_cycles + other.cpu_cycles,
            mem_bytes=self.mem_bytes + other.mem_bytes,
            io_bytes=self.io_bytes + other.io_bytes,
            pcie_bytes=self.pcie_bytes + other.pcie_bytes,
            qpi_bytes=self.qpi_bytes + other.qpi_bytes,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return self + other.scaled(-1.0)

    def scaled(self, factor: float) -> "ResourceVector":
        """A copy with every entry multiplied by ``factor``."""
        return ResourceVector(cpu_cycles=self.cpu_cycles * factor,
                              mem_bytes=self.mem_bytes * factor,
                              io_bytes=self.io_bytes * factor,
                              pcie_bytes=self.pcie_bytes * factor,
                              qpi_bytes=self.qpi_bytes * factor)

    def with_cpu(self, cpu_cycles: float) -> "ResourceVector":
        """A copy with the CPU entry replaced (bus entries unchanged)."""
        return ResourceVector(cpu_cycles=cpu_cycles,
                              mem_bytes=self.mem_bytes,
                              io_bytes=self.io_bytes,
                              pcie_bytes=self.pcie_bytes,
                              qpi_bytes=self.qpi_bytes)

    def is_zero(self) -> bool:
        return not (self.cpu_cycles or self.mem_bytes or self.io_bytes
                    or self.pcie_bytes or self.qpi_bytes)


#: The additive identity, shared by every element with no declared cost.
ZERO_VECTOR = ResourceVector()
