"""Compile a Click pipeline into a per-packet load vector.

The paper evaluates three hand-calibrated applications; the compiler makes
the same analytic treatment available to *any* pipeline: walk a parsed
:class:`~repro.click.graph.RouterGraph`, weight each element's
:meth:`~repro.click.element.Element.resource_cost` by the probability a
packet traverses it, sum the vectors, and hand the result to the
bottleneck solver.  This is the graph-to-cost compilation that automatic
NF-parallelization systems perform for real network functions, applied to
the reproduction's element library.

Traversal probabilities come from each element's
:meth:`~repro.click.element.Element.output_probabilities` (a static
forwarding distribution over its outputs: 1.0 down the main path by
default, uniform for switches and lookups, duplicated for tees).  Entry
elements -- those with no connected inputs, normally ``PollDevice`` --
split arriving traffic uniformly unless ``entry_weights`` says otherwise.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ConfigurationError
from .model import DEFAULT_CONFIG, DEFAULT_COST_MODEL, CostModel, ServerConfig
from .vector import ResourceVector


class _Probe:
    """A minimal stand-in packet for evaluating size-affine costs."""

    __slots__ = ("length",)

    def __init__(self, length: float):
        self.length = length


def traversal_probabilities(graph,
                            entry_weights: Optional[Dict[str, float]] = None
                            ) -> Dict[str, float]:
    """Probability that a packet entering the pipeline visits each element.

    ``graph`` must be acyclic (Click's push graphs are).  ``entry_weights``
    maps entry-element names to the fraction of traffic arriving there;
    omitted entries share the remaining weight uniformly, and by default
    all entry elements split traffic evenly.
    """
    elements = graph.elements()
    if not elements:
        raise ConfigurationError("cannot compile an empty graph")
    indegree = {id(element): 0 for element in elements}
    known = set(indegree)
    for element in elements:
        for index in range(element.n_outputs):
            peer = element.output(index).peer
            if peer is not None:
                if id(peer) not in known:
                    raise ConfigurationError(
                        "%s connects to %s, which is not in the graph"
                        % (element.name, peer.name))
                indegree[id(peer)] += 1

    entries = [element for element in elements
               if indegree[id(element)] == 0]
    if not entries:
        raise ConfigurationError(
            "graph has no entry elements (every element has an input); "
            "a pipeline needs at least one source such as PollDevice")

    probability = {id(element): 0.0 for element in elements}
    entry_weights = dict(entry_weights or {})
    named = sum(entry_weights.get(element.name, 0.0) for element in entries)
    unnamed = [element for element in entries
               if element.name not in entry_weights]
    if named > 1.0 + 1e-9 or any(w < 0 for w in entry_weights.values()):
        raise ConfigurationError("entry weights must be >= 0 and sum <= 1")
    residual = (1.0 - named) / len(unnamed) if unnamed else 0.0
    for element in entries:
        probability[id(element)] = entry_weights.get(element.name, residual)

    # Kahn's algorithm: propagate probabilities in topological order.
    remaining = dict(indegree)
    ready = list(entries)
    processed = 0
    while ready:
        element = ready.pop()
        processed += 1
        prob = probability[id(element)]
        outputs = element.output_probabilities()
        if len(outputs) != element.n_outputs:
            raise ConfigurationError(
                "%s declares %d output probabilities for %d outputs"
                % (element.name, len(outputs), element.n_outputs))
        for index in range(element.n_outputs):
            peer = element.output(index).peer
            if peer is None:
                continue
            probability[id(peer)] += prob * outputs[index]
            remaining[id(peer)] -= 1
            if remaining[id(peer)] == 0:
                ready.append(peer)
    if processed < len(elements):
        stuck = sorted(element.name for element in elements
                       if remaining[id(element)] > 0)
        raise ConfigurationError(
            "pipeline graph has a cycle involving %s" % ", ".join(stuck))
    return {element.name: probability[id(element)] for element in elements}


def element_costs(graph, packet_bytes: float = 64,
                  entry_weights: Optional[Dict[str, float]] = None
                  ) -> List[dict]:
    """Per-element cost breakdown: one row per element, traversal-weighted.

    Each row carries the element's name and class, its traversal
    probability, and its *weighted* per-packet contribution on every
    component -- the table the CLI and the bottleneck analysis print.
    """
    if packet_bytes <= 0:
        raise ConfigurationError("packet size must be positive")
    probabilities = traversal_probabilities(graph, entry_weights)
    probe = _Probe(packet_bytes)
    rows = []
    for element in graph.elements():
        probability = probabilities[element.name]
        vector = element.resource_cost(probe).scaled(probability)
        rows.append({
            "element": element.name,
            "class": type(element).__name__,
            "probability": probability,
            "cpu_cycles": vector.cpu_cycles,
            "mem_bytes": vector.mem_bytes,
            "io_bytes": vector.io_bytes,
            "pcie_bytes": vector.pcie_bytes,
            "qpi_bytes": vector.qpi_bytes,
        })
    return rows


def compile_loads(graph, packet_bytes: float = 64,
                  config: ServerConfig = DEFAULT_CONFIG,
                  spec=None,
                  entry_weights: Optional[Dict[str, float]] = None,
                  cost_model: CostModel = DEFAULT_COST_MODEL
                  ) -> ResourceVector:
    """The per-packet load vector of an arbitrary pipeline.

    Sums every element's :meth:`resource_cost` weighted by its traversal
    probability, then applies the scheduling penalties the analytic model
    charges (``config.multi_queue``, the spec's CPI inflation).  Batching
    amortization is *not* added here -- the device elements already carry
    their ``kp``/``kn`` shares -- so for the preset applications the
    result equals :func:`repro.perfmodel.loads.per_packet_loads` at the
    same batching configuration.

    The returned vector plugs straight into
    :func:`repro.perfmodel.throughput.rate_from_loads` (and hence
    ``max_loss_free_rate``), which is what ``python -m repro pipeline``
    does.
    """
    if packet_bytes <= 0:
        raise ConfigurationError("packet size must be positive")
    probabilities = traversal_probabilities(graph, entry_weights)
    probe = _Probe(packet_bytes)
    total = ResourceVector()
    for element in graph.elements():
        probability = probabilities[element.name]
        if probability <= 0.0:
            continue
        total = total + element.resource_cost(probe).scaled(probability)
    return cost_model.apply_cpu_penalties(total, config, spec)
