"""Conservative-lookahead epoch loop driving partitioned cluster runs.

:func:`simulate_parallel` shards a
:class:`~repro.core.router.RouteBricksRouter` cluster across
``workers`` partitions and runs them in lock-stepped epochs:

1. ``m`` = earliest pending event time across every partition (counting
   transit records not yet injected);
2. the epoch ends at ``min(m + W, next observer tick, horizon)`` where
   ``W`` is the minimum cross-link propagation delay -- any cross-partition
   send committed during the epoch delivers strictly after it (its
   delivery time is its send time plus serialization plus at least
   ``W``), so no partition can receive a message from its past;
3. every partition advances to the epoch end, producing transit records;
4. the parent routes the records to their destination partitions, where
   they are sorted by the full ``(deliver_time, send_time, src_node,
   seq)`` key and injected as future events before the next epoch.

Epoch boundaries are forced onto the observer's tick grid (computed by
the same cumulative float addition the in-queue tick chain performs), so
barrier-sampled partitions observe their links at exactly the timestamps
the single-sim observer would have used.

Two backends share this loop: ``"inline"`` runs every partition in the
parent process (records still make a pickle round-trip, so inline and
process runs execute identically), ``"process"`` gives each partition a
dedicated worker process that keeps its simulation state alive between
epochs.  Results merge in partition-id order either way, which makes the
outcome independent of worker scheduling.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from time import perf_counter, process_time
from typing import List, Optional, Tuple

from ..core.partition import (
    OBSERVER_BARRIER,
    OBSERVER_EVENT,
    ClusterPartition,
    PartitionFragment,
    PartitionSpec,
    merge_fragments,
    registry_config_of,
)
from ..core.router import RouteBricksRouter, SimulationReport
from ..core.topology import balanced_partitions
from ..errors import ConfigurationError
from ..obs.hooks import observer_interval
from ..obs.metrics import active_registry

BACKENDS = ("inline", "process")


def _realize_arrivals(router: RouteBricksRouter, events, until,
                      assignment: List[int]) \
        -> Tuple[int, List[List[Tuple[float, int, int, tuple]]]]:
    """Roll the arrival process once, in the parent.

    Returns (offered count, per-partition arrival lists).  Realizing
    centrally -- instead of per worker -- keeps the offered traffic, the
    packet ids, and the flow sequence numbers identical to a single-sim
    run at any worker count.
    """
    from ..workloads.spec import WorkloadSpec

    if isinstance(events, WorkloadSpec):
        workload = events
        if workload.matrix is None:
            raise ConfigurationError(
                "workload %r has no traffic matrix; use with_matrix()"
                % workload.name)
        if workload.matrix.n != router.num_nodes:
            raise ConfigurationError(
                "workload matrix is %dx%d but the cluster has %d nodes"
                % (workload.matrix.n, workload.matrix.n, router.num_nodes))
        events = workload.events(until)
    offered = 0
    partitions = max(assignment) + 1
    arrivals: List[List[Tuple[float, int, int, tuple]]] = [
        [] for _ in range(partitions)]
    for time, ingress, egress, packet in events:
        if not 0 <= ingress < router.num_nodes:
            raise ConfigurationError("bad ingress node %r" % ingress)
        if not 0 <= egress < router.num_nodes:
            raise ConfigurationError("bad egress node %r" % egress)
        offered += 1
        arrivals[assignment[ingress]].append(
            (time, ingress, egress, packet.to_wire()))
    return offered, arrivals


def _tick_grid(interval: float, horizon: float) -> List[float]:
    """Observer tick times by cumulative addition -- the exact floats the
    in-queue tick chain hits (each tick schedules the next at ``now +
    interval``), not ``k * interval``, which can differ in the last ulp."""
    ticks = []
    t = interval
    while t <= horizon:
        ticks.append(t)
        t += interval
    return ticks


# -- worker-process protocol --------------------------------------------------
#
# Each partition gets its own single-process pool; the partition object
# lives in that process's module global between epoch calls.  Everything
# crossing the boundary (spec, transit records, fragments) is picklable.

_WORKER: Optional[ClusterPartition] = None


def _worker_init(spec: PartitionSpec):
    global _WORKER
    _WORKER = ClusterPartition(spec)
    return _WORKER.peek_time(), _WORKER.lookahead_sec


def _worker_advance(until: float, records, keep_alive: bool, sample: bool):
    part = _WORKER
    part.set_keep_alive(keep_alive)
    if records:
        part.inject(records)
    start = process_time()
    outbox = part.advance(until)
    busy = process_time() - start
    if sample:
        part.sample_barrier()
    return outbox, part.peek_time(), busy


def _worker_finish() -> PartitionFragment:
    return _WORKER.finish()


class _InlineBackend:
    """All partitions in the parent process (debugging, determinism
    tests, and ``workers`` > cores).  Transit records still make a
    pickle round-trip so execution is bit-identical to the process
    backend."""

    def __init__(self, specs: List[PartitionSpec]):
        self.partitions = [ClusterPartition(spec) for spec in specs]
        self.busy = [0.0] * len(specs)

    def init_state(self):
        return [(p.peek_time(), p.lookahead_sec) for p in self.partitions]

    def advance_all(self, until, inboxes, keep_alive, sample):
        out = []
        for pid, part in enumerate(self.partitions):
            part.set_keep_alive(keep_alive[pid])
            records = inboxes[pid]
            if records:
                part.inject(pickle.loads(pickle.dumps(records)))
            start = process_time()
            outbox = part.advance(until)
            busy = process_time() - start
            self.busy[pid] += busy
            if sample:
                part.sample_barrier()
            out.append((outbox, part.peek_time(), busy))
        return out

    def finish(self) -> List[PartitionFragment]:
        fragments = []
        for pid, part in enumerate(self.partitions):
            frag = part.finish()
            frag.busy_seconds = self.busy[pid]
            fragments.append(frag)
        return fragments

    def close(self):
        pass


class _ProcessBackend:
    """One dedicated worker process per partition.

    A single-worker pool per partition pins the partition's simulation
    state to one process across epochs; submissions to different pools
    run concurrently, which is where the wall-clock speedup comes from
    on a multi-core host.
    """

    def __init__(self, specs: List[PartitionSpec]):
        self.pools = [ProcessPoolExecutor(max_workers=1) for _ in specs]
        self.specs = specs
        self.busy = [0.0] * len(specs)

    def init_state(self):
        futures = [pool.submit(_worker_init, spec)
                   for pool, spec in zip(self.pools, self.specs)]
        return [future.result() for future in futures]

    def advance_all(self, until, inboxes, keep_alive, sample):
        futures = [pool.submit(_worker_advance, until, inboxes[pid],
                               keep_alive[pid], sample)
                   for pid, pool in enumerate(self.pools)]
        out = []
        for pid, future in enumerate(futures):
            outbox, peek, busy = future.result()
            self.busy[pid] += busy
            out.append((outbox, peek, busy))
        return out

    def finish(self) -> List[PartitionFragment]:
        futures = [pool.submit(_worker_finish) for pool in self.pools]
        fragments = []
        for pid, future in enumerate(futures):
            frag = future.result()
            frag.busy_seconds = self.busy[pid]
            fragments.append(frag)
        return fragments

    def close(self):
        for pool in self.pools:
            pool.shutdown()


def simulate_parallel(router: RouteBricksRouter,
                      events,
                      until: float,
                      workers: int = 1,
                      backend: str = "process",
                      rate_limited_egress: bool = False,
                      failed_links=(),
                      faults=None,
                      manager=None,
                      detection_latency_sec: Optional[float] = None,
                      fib_push_latency_sec: float = 0.0,
                      metrics=None) -> SimulationReport:
    """Run :meth:`RouteBricksRouter.simulate`'s workload sharded across
    ``workers`` partitions under conservative lookahead.

    ``workers=1`` delegates to the single-heap engine unchanged (and so
    still supports a cluster manager and resequencing).  For ``workers >
    1`` the cluster is split into contiguous balanced node ranges; a
    fault schedule is applied partition-locally with owner-side
    accounting, but a control-plane ``manager`` (a global observer) and
    ``router.resequence`` (whose expiry chain rides the global queue)
    are not supported -- use ``workers=1`` for those.

    Fault-free runs merge to bit-identical reports and metric snapshots
    at any worker count (modulo the wall-clock ``engine_wall_seconds``
    counter); see ``tests/test_parallel.py`` for the enforced guarantee.
    """
    if until is None or until <= 0:
        raise ConfigurationError(
            "parallel simulation needs a positive horizon (until=...)")
    if workers < 1:
        raise ConfigurationError("workers must be >= 1")
    if backend not in BACKENDS:
        raise ConfigurationError(
            "unknown backend %r (choose from %s)" % (backend,
                                                     ", ".join(BACKENDS)))
    if workers == 1:
        report = router.simulate(
            events, until=until,
            rate_limited_egress=rate_limited_egress,
            failed_links=failed_links, faults=faults, manager=manager,
            detection_latency_sec=detection_latency_sec,
            fib_push_latency_sec=fib_push_latency_sec, metrics=metrics)
        report.workers = 1
        return report
    if manager is not None:
        raise ConfigurationError(
            "a cluster manager needs the global view; run workers=1")
    if router.resequence:
        raise ConfigurationError(
            "resequencing timers ride the global event queue; run workers=1")

    registry = metrics if metrics is not None else active_registry()
    assignment = balanced_partitions(router.num_nodes, workers)
    for src, dst in failed_links:
        if not (0 <= src < router.num_nodes and 0 <= dst < router.num_nodes):
            raise ConfigurationError("bad failed link (%r, %r)" % (src, dst))
    if faults is not None:
        from ..faults.schedule import FaultSchedule
        if not isinstance(faults, FaultSchedule):
            faults = FaultSchedule.from_dict(faults)
        faults.validate(router.num_nodes)
    offered, arrivals = _realize_arrivals(router, events, until, assignment)

    interval = observer_interval(until)
    observe = registry.enabled
    config = registry_config_of(registry)
    specs = [PartitionSpec(
        router=router,
        assignment=tuple(assignment),
        partition_id=pid,
        rate_limited_egress=rate_limited_egress,
        failed_links=tuple(tuple(pair) for pair in failed_links),
        faults=faults,
        detection_latency_sec=detection_latency_sec,
        fib_push_latency_sec=fib_push_latency_sec,
        arrivals=tuple(arrivals[pid]),
        observer_mode=((OBSERVER_EVENT if pid == 0 else OBSERVER_BARRIER)
                       if observe else None),
        observer_interval_sec=interval,
        registry_config=config,
    ) for pid in range(workers)]

    driver = (_InlineBackend(specs) if backend == "inline"
              else _ProcessBackend(specs))

    # -- epoch/barrier telemetry ------------------------------------------
    # Totals feed the report unconditionally (they cost one float add per
    # partition per epoch); the per-epoch timelines and cumulative gauges
    # are charged only when a registry is observing.  Barrier wait is
    # reconstructed from the epoch's wall clock: under the process
    # backend a partition stalls for ``epoch_wall - its busy``; under the
    # inline backend the same formula charges each partition the time its
    # siblings ran, i.e. the stall an actual parallel run would have hit.
    busy_totals = [0.0] * workers
    wait_totals = [0.0] * workers
    sim_covered = 0.0
    if observe:
        epoch_busy_rec = [registry.timeline(
            "parallel_epoch_busy_seconds",
            help="per-epoch CPU seconds per partition, binned at the "
                 "epoch's end time").bind(workers=workers, partition=pid)
            for pid in range(workers)]
        epoch_wait_rec = [registry.timeline(
            "parallel_epoch_barrier_seconds",
            help="per-epoch barrier-stall wall seconds per partition")
            .bind(workers=workers, partition=pid)
            for pid in range(workers)]
        transit_rec = [registry.timeline(
            "parallel_transit_records",
            help="cross-partition transit records delivered into each "
                 "partition, binned at the carrying barrier")
            .bind(workers=workers, partition=pid)
            for pid in range(workers)]
        transit_bytes_rec = [registry.timeline(
            "parallel_transit_bytes",
            help="frame bytes riding cross-partition transit records")
            .bind(workers=workers, partition=pid)
            for pid in range(workers)]
        busy_gauge = [registry.gauge(
            "parallel_busy_seconds",
            help="cumulative CPU seconds per partition")
            .bind(workers=workers, partition=pid) for pid in range(workers)]
        wait_gauge = [registry.gauge(
            "parallel_barrier_wait_seconds",
            help="cumulative barrier-stall wall seconds per partition")
            .bind(workers=workers, partition=pid) for pid in range(workers)]
        epoch_len_obs = registry.histogram(
            "parallel_epoch_sim_seconds",
            help="simulated seconds covered per epoch (<= the lookahead "
                 "window W)").bind(workers=workers)

    def charge_epoch(results, epoch_wall, epoch_end):
        for pid, (_, _, busy) in enumerate(results):
            wait = max(0.0, epoch_wall - busy)
            busy_totals[pid] += busy
            wait_totals[pid] += wait
            if observe:
                epoch_busy_rec[pid](epoch_end, busy)
                epoch_wait_rec[pid](epoch_end, wait)
                busy_gauge[pid](busy_totals[pid])
                wait_gauge[pid](wait_totals[pid])

    try:
        state = driver.init_state()
        peeks: List[Optional[float]] = [peek for peek, _ in state]
        lookaheads = [la for _, la in state if la is not None]
        if not lookaheads:
            raise ConfigurationError(
                "no cross-partition links: nothing to parallelize")
        window = min(lookaheads)
        ticks = _tick_grid(interval, until) if observe else []
        next_tick = 0
        inboxes: List[List] = [[] for _ in range(workers)]
        epochs = 0
        while True:
            candidates = [peek for peek in peeks if peek is not None]
            candidates.extend(record.deliver_time
                              for inbox in inboxes for record in inbox)
            if not candidates:
                break
            earliest = min(candidates)
            if earliest > until:
                break
            epoch_end = min(earliest + window, until)
            sample = False
            if next_tick < len(ticks) and ticks[next_tick] <= epoch_end:
                epoch_end = ticks[next_tick]
                sample = True
                next_tick += 1
            keep_alive = [
                any(peeks[q] is not None for q in range(workers) if q != pid)
                or any(inboxes[q] for q in range(workers) if q != pid)
                for pid in range(workers)]
            wall_start = perf_counter()
            results = driver.advance_all(epoch_end, inboxes, keep_alive,
                                         sample)
            epoch_wall = perf_counter() - wall_start
            epochs += 1
            sim_covered += max(0.0, epoch_end - earliest)
            charge_epoch(results, epoch_wall, epoch_end)
            if observe:
                epoch_len_obs(max(0.0, epoch_end - earliest))
            inboxes = [[] for _ in range(workers)]
            for pid, (outbox, peek, _) in enumerate(results):
                peeks[pid] = peek
                for record in outbox:
                    inboxes[assignment[record.dst_node]].append(record)
            if observe:
                for pid, inbox in enumerate(inboxes):
                    if inbox:
                        transit_rec[pid](epoch_end, len(inbox))
                        transit_bytes_rec[pid](
                            epoch_end,
                            sum(r.frame_bytes() for r in inbox))
        # Tail barrier: no executable events remain at or before the
        # horizon, so advancing everyone to it runs nothing -- it only
        # pins each clock to ``until`` (undelivered records, if any, are
        # injected as future events exactly as the single sim would
        # leave them pending).  Charged as a final (non-epoch) barrier so
        # the telemetry sums match each fragment's ``busy_seconds``.
        wall_start = perf_counter()
        results = driver.advance_all(until, inboxes, [False] * workers,
                                     False)
        charge_epoch(results, perf_counter() - wall_start, until)
        fragments = driver.finish()
    finally:
        driver.close()

    report = merge_fragments(
        fragments, offered_packets=offered, duration_sec=until,
        workers=workers, epochs=epochs,
        registry=registry if observe else None)
    report.barrier_wait_seconds = wait_totals
    report.lookahead_efficiency = (
        sim_covered / (epochs * window) if epochs else 0.0)
    mean_busy = sum(busy_totals) / workers
    report.load_imbalance = (max(busy_totals) / mean_busy
                             if mean_busy > 0 else 0.0)
    if observe:
        run_info = registry.gauge(
            "run_workers", help="partitions driving this run")
        run_info.set(workers)
        registry.gauge(
            "run_epochs",
            help="conservative-lookahead epochs executed").set(epochs)
        registry.gauge(
            "parallel_lookahead_efficiency",
            help="mean epoch length over the lookahead window W").set(
                report.lookahead_efficiency, workers=workers)
        registry.gauge(
            "parallel_imbalance",
            help="busiest partition busy seconds over the mean").set(
                report.load_imbalance, workers=workers)
    return report
