"""Partitioned parallel execution of the cluster DES.

The single-heap engine in :mod:`repro.simnet.engine` executes one event
at a time; this package shards the cluster across partitions -- each
with its own heap, timer wheel, and RNG streams -- and drives them in
conservative-lookahead epochs bounded by the internal links' propagation
delay, exchanging packets as timestamped transit records at epoch
barriers.  RouteBricks scales a router by adding servers; the
reproduction's simulator scales the same way by adding worker processes.

Entry point: :func:`simulate_parallel` -- a drop-in sibling of
:meth:`repro.core.router.RouteBricksRouter.simulate` with ``workers``
and ``backend`` knobs.  Fault-free runs produce bit-identical reports
and metric snapshots at any worker count.
"""

from .runner import BACKENDS, simulate_parallel

__all__ = ["BACKENDS", "simulate_parallel"]
