"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything from this package with a single except clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was configured with invalid or inconsistent parameters."""


class TopologyError(ReproError):
    """A cluster topology cannot be built under the given constraints."""


class CapacityError(ReproError):
    """An operation exceeded the modeled capacity of a hardware component."""


class PacketError(ReproError):
    """A packet could not be parsed, built, or processed."""


class RoutingError(ReproError):
    """A routing-table operation failed (bad prefix, missing route, ...)."""


class SchedulingError(ReproError):
    """A Click task/thread could not be scheduled as requested."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class CryptoError(ReproError):
    """A cryptographic operation failed (bad key/block size, ...)."""
