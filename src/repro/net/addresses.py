"""IPv4 and MAC address types, and IPv4 prefixes.

Lightweight value types (plain ints under the hood) tuned for the hot paths
of the simulator: the routing table performs millions of lookups, so
addresses avoid the overhead of :mod:`ipaddress` objects while keeping
explicit, validated constructors.
"""

from __future__ import annotations

from ..errors import PacketError, RoutingError

_MAX_IPV4 = 0xFFFFFFFF
_MAX_MAC = 0xFFFFFFFFFFFF


class IPv4Address:
    """An IPv4 address backed by a 32-bit integer.

    Instances are immutable, hashable, and totally ordered by numeric value.
    """

    __slots__ = ("value",)

    def __init__(self, value):
        if isinstance(value, IPv4Address):
            numeric = value.value
        elif isinstance(value, int):
            numeric = value
        elif isinstance(value, str):
            numeric = _parse_dotted_quad(value)
        else:
            raise PacketError("cannot build IPv4Address from %r" % (value,))
        if not 0 <= numeric <= _MAX_IPV4:
            raise PacketError("IPv4 address out of range: %r" % (value,))
        object.__setattr__(self, "value", numeric)

    def __setattr__(self, name, value):
        raise AttributeError("IPv4Address is immutable")

    def __reduce__(self):
        # The immutability guard breaks pickle's default slot-state
        # restore (it calls the overridden __setattr__); rebuild through
        # the constructor instead.
        return (IPv4Address, (self.value,))

    def __int__(self):
        return self.value

    def __index__(self):
        return self.value

    def __eq__(self, other):
        if isinstance(other, IPv4Address):
            return self.value == other.value
        if isinstance(other, int):
            return self.value == other
        return NotImplemented

    def __lt__(self, other):
        return self.value < int(other)

    def __le__(self, other):
        return self.value <= int(other)

    def __hash__(self):
        return hash(self.value)

    def __str__(self):
        v = self.value
        return "%d.%d.%d.%d" % ((v >> 24) & 0xFF, (v >> 16) & 0xFF,
                                (v >> 8) & 0xFF, v & 0xFF)

    def __repr__(self):
        return "IPv4Address('%s')" % self

    def to_bytes(self) -> bytes:
        """Serialize to 4 network-order bytes."""
        return self.value.to_bytes(4, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPv4Address":
        """Parse 4 network-order bytes."""
        if len(data) != 4:
            raise PacketError("IPv4 address needs 4 bytes, got %d" % len(data))
        return cls(int.from_bytes(data, "big"))


def _parse_dotted_quad(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise PacketError("malformed IPv4 address %r" % text)
    value = 0
    for part in parts:
        if not part.isdigit():
            raise PacketError("malformed IPv4 address %r" % text)
        octet = int(part)
        if octet > 255:
            raise PacketError("IPv4 octet out of range in %r" % text)
        value = (value << 8) | octet
    return value


class MACAddress:
    """A 48-bit Ethernet MAC address.

    RouteBricks encodes the identity of a packet's *output node* in the
    destination MAC address so intermediate cluster nodes can switch packets
    queue-to-queue without touching IP headers (Sec. 6.1);
    :meth:`with_node_id` / :meth:`node_id` implement that trick.
    """

    __slots__ = ("value",)

    #: Low byte of the MAC carries the encoded cluster node id.
    NODE_ID_MASK = 0xFF

    def __init__(self, value):
        if isinstance(value, MACAddress):
            numeric = value.value
        elif isinstance(value, int):
            numeric = value
        elif isinstance(value, str):
            numeric = _parse_mac(value)
        else:
            raise PacketError("cannot build MACAddress from %r" % (value,))
        if not 0 <= numeric <= _MAX_MAC:
            raise PacketError("MAC address out of range: %r" % (value,))
        object.__setattr__(self, "value", numeric)

    def __setattr__(self, name, value):
        raise AttributeError("MACAddress is immutable")

    def __reduce__(self):
        return (MACAddress, (self.value,))

    def __int__(self):
        return self.value

    def __eq__(self, other):
        if isinstance(other, MACAddress):
            return self.value == other.value
        if isinstance(other, int):
            return self.value == other
        return NotImplemented

    def __hash__(self):
        return hash(("mac", self.value))

    def __str__(self):
        octets = self.value.to_bytes(6, "big")
        return ":".join("%02x" % b for b in octets)

    def __repr__(self):
        return "MACAddress('%s')" % self

    def to_bytes(self) -> bytes:
        """Serialize to 6 network-order bytes."""
        return self.value.to_bytes(6, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "MACAddress":
        """Parse 6 network-order bytes."""
        if len(data) != 6:
            raise PacketError("MAC address needs 6 bytes, got %d" % len(data))
        return cls(int.from_bytes(data, "big"))

    def with_node_id(self, node_id: int) -> "MACAddress":
        """Return a copy with the cluster node id encoded in the low byte."""
        if not 0 <= node_id <= self.NODE_ID_MASK:
            raise PacketError("node id %r does not fit in a MAC byte" % node_id)
        return MACAddress((self.value & ~self.NODE_ID_MASK) | node_id)

    def node_id(self) -> int:
        """Extract the cluster node id encoded by :meth:`with_node_id`."""
        return self.value & self.NODE_ID_MASK


def _parse_mac(text: str) -> int:
    parts = text.split(":")
    if len(parts) != 6:
        raise PacketError("malformed MAC address %r" % text)
    value = 0
    for part in parts:
        if len(part) not in (1, 2):
            raise PacketError("malformed MAC address %r" % text)
        try:
            octet = int(part, 16)
        except ValueError:
            raise PacketError("malformed MAC address %r" % text) from None
        value = (value << 8) | octet
    return value


class Prefix:
    """An IPv4 prefix (network address + mask length) for LPM routing."""

    __slots__ = ("network", "length")

    def __init__(self, network, length: int):
        if not 0 <= length <= 32:
            raise RoutingError("prefix length must be in [0, 32], got %r" % length)
        addr = IPv4Address(network)
        mask = _mask(length)
        if addr.value & ~mask & _MAX_IPV4:
            raise RoutingError(
                "network %s has host bits set for /%d" % (addr, length))
        object.__setattr__(self, "network", addr)
        object.__setattr__(self, "length", length)

    def __setattr__(self, name, value):
        raise AttributeError("Prefix is immutable")

    def __reduce__(self):
        return (Prefix, (self.network.value, self.length))

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` notation."""
        if "/" not in text:
            raise RoutingError("prefix %r missing '/len'" % text)
        net, _, length = text.partition("/")
        if not length.isdigit():
            raise RoutingError("bad prefix length in %r" % text)
        return cls(net, int(length))

    @classmethod
    def from_address(cls, address, length: int) -> "Prefix":
        """Build the /length prefix containing ``address`` (truncates host bits)."""
        value = int(IPv4Address(address)) & _mask(length)
        return cls(value, length)

    def contains(self, address) -> bool:
        """True if ``address`` falls inside this prefix."""
        return (int(IPv4Address(address)) & _mask(self.length)) == self.network.value

    def __eq__(self, other):
        if isinstance(other, Prefix):
            return (self.network.value, self.length) == (other.network.value, other.length)
        return NotImplemented

    def __hash__(self):
        return hash((self.network.value, self.length))

    def __str__(self):
        return "%s/%d" % (self.network, self.length)

    def __repr__(self):
        return "Prefix.parse('%s')" % self


def _mask(length: int) -> int:
    if length == 0:
        return 0
    return (_MAX_IPV4 << (32 - length)) & _MAX_IPV4
