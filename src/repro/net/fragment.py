"""IPv4 fragmentation and reassembly (RFC 791).

A router whose egress MTU is smaller than a packet must fragment it (or
drop it when DF is set); end hosts reassemble.  Fragmentation operates on
the packet's serialized bytes so offsets/lengths are exact; reassembly
validates contiguity and enforces a timeout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import PacketError
from .headers import ETHERNET_HEADER_BYTES, IPv4Header
from .packet import Packet

FLAG_DF = 0x2  # don't fragment
FLAG_MF = 0x1  # more fragments


def fragment_packet(packet: Packet, mtu: int) -> List[Packet]:
    """Split an IP packet into fragments fitting ``mtu`` (IP bytes).

    Returns [packet] unchanged when it already fits.  Raises
    :class:`PacketError` for DF-marked packets that need fragmenting
    (callers turn that into ICMP Fragmentation Needed).
    """
    if packet.ip is None:
        raise PacketError("cannot fragment a non-IP packet")
    if mtu < 68:
        raise PacketError("IPv4 requires an MTU of at least 68")
    ip_length = packet.ip.total_length
    if ip_length <= mtu:
        return [packet]
    if packet.ip.flags & FLAG_DF:
        raise PacketError("packet needs fragmenting but DF is set")
    header_bytes = packet.ip.header_length()
    payload = packet.pack()[ETHERNET_HEADER_BYTES + header_bytes:
                            ETHERNET_HEADER_BYTES + ip_length]
    # Fragment payload sizes must be multiples of 8 (offset units).
    chunk = (mtu - header_bytes) & ~7
    if chunk <= 0:
        raise PacketError("MTU too small for any payload")
    fragments = []
    offset_units = packet.ip.fragment_offset  # already-fragmented input
    position = 0
    while position < len(payload):
        piece = payload[position:position + chunk]
        last = position + chunk >= len(payload)
        header = IPv4Header(
            src=packet.ip.src, dst=packet.ip.dst, ttl=packet.ip.ttl,
            proto=packet.ip.proto,
            total_length=header_bytes + len(piece),
            identification=packet.ip.identification,
            dscp=packet.ip.dscp,
            flags=(packet.ip.flags & FLAG_DF)
            | (0 if last and not (packet.ip.flags & FLAG_MF) else FLAG_MF),
            fragment_offset=offset_units + position // 8,
        )
        fragment = Packet(
            length=ETHERNET_HEADER_BYTES + header.total_length,
            ip=header, payload=piece)
        fragment.flow_seq = packet.flow_seq
        fragments.append(fragment)
        position += chunk
    return fragments


@dataclass
class _ReassemblyState:
    pieces: Dict[int, bytes] = field(default_factory=dict)  # offset -> bytes
    total_payload: Optional[int] = None
    first_seen: float = 0.0


class Reassembler:
    """Reassemble fragmented IPv4 packets, with a timeout."""

    def __init__(self, timeout_sec: float = 30.0):
        if timeout_sec <= 0:
            raise PacketError("timeout must be positive")
        self.timeout_sec = timeout_sec
        self._flows: Dict[Tuple, _ReassemblyState] = {}
        self.completed = 0
        self.timed_out = 0

    @staticmethod
    def _key(packet: Packet) -> Tuple:
        ip = packet.ip
        return (int(ip.src), int(ip.dst), ip.proto, ip.identification)

    def offer(self, packet: Packet, now: float = 0.0) -> Optional[Packet]:
        """Feed a fragment; returns the reassembled packet when complete.

        Unfragmented packets pass straight through.
        """
        ip = packet.ip
        if ip is None:
            raise PacketError("not an IP packet")
        if ip.fragment_offset == 0 and not (ip.flags & FLAG_MF):
            return packet
        key = self._key(packet)
        state = self._flows.setdefault(
            key, _ReassemblyState(first_seen=now))
        data = packet.pack()[ETHERNET_HEADER_BYTES + ip.header_length():
                             ETHERNET_HEADER_BYTES + ip.total_length]
        state.pieces[ip.fragment_offset * 8] = data
        if not (ip.flags & FLAG_MF):
            state.total_payload = ip.fragment_offset * 8 + len(data)
        if state.total_payload is None:
            return None
        # Contiguity check.
        assembled = bytearray()
        expected = 0
        while expected < state.total_payload:
            piece = state.pieces.get(expected)
            if piece is None:
                return None
            assembled.extend(piece)
            expected += len(piece)
        del self._flows[key]
        self.completed += 1
        header = IPv4Header(src=ip.src, dst=ip.dst, ttl=ip.ttl,
                            proto=ip.proto,
                            total_length=ip.header_length() + len(assembled),
                            identification=ip.identification,
                            dscp=ip.dscp)
        whole = Packet(length=ETHERNET_HEADER_BYTES + header.total_length,
                       ip=header, payload=bytes(assembled))
        whole.flow_seq = packet.flow_seq
        return whole

    def expire(self, now: float) -> int:
        """Discard incomplete reassemblies older than the timeout."""
        stale = [key for key, state in self._flows.items()
                 if now - state.first_seen > self.timeout_sec]
        for key in stale:
            del self._flows[key]
        self.timed_out += len(stale)
        return len(stale)

    def pending(self) -> int:
        return len(self._flows)
