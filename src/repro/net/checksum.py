"""Internet checksum (RFC 1071) and incremental updates (RFC 1624).

The IP-routing application recomputes/updates the IPv4 header checksum on
every packet (Sec. 5.1); decrementing the TTL uses the incremental form, as
a real fast path would.
"""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit one's-complement Internet checksum of ``data``.

    Returns the checksum value ready to be stored in a header field (i.e.,
    already complemented).  An odd trailing byte is padded with zero, per
    RFC 1071.
    """
    total = 0
    length = len(data)
    # Sum 16-bit big-endian words.
    for i in range(0, length - 1, 2):
        total += (data[i] << 8) | data[i + 1]
    if length % 2:
        total += data[-1] << 8
    # Fold carries.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True if ``data`` (including its embedded checksum field) sums to zero."""
    total = 0
    length = len(data)
    for i in range(0, length - 1, 2):
        total += (data[i] << 8) | data[i + 1]
    if length % 2:
        total += data[-1] << 8
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total == 0xFFFF


def incremental_checksum_update(checksum: int, old_word: int, new_word: int) -> int:
    """Update ``checksum`` for a 16-bit field change (RFC 1624, eqn. 3).

    ``checksum`` is the stored (complemented) header checksum; ``old_word``
    and ``new_word`` are the 16-bit field value before and after the change.
    Returns the new stored checksum.
    """
    if not 0 <= checksum <= 0xFFFF:
        raise ValueError("checksum out of range: %r" % checksum)
    if not 0 <= old_word <= 0xFFFF or not 0 <= new_word <= 0xFFFF:
        raise ValueError("checksum words must be 16-bit")
    # HC' = ~(~HC + ~m + m')  (one's complement arithmetic)
    total = (~checksum & 0xFFFF) + (~old_word & 0xFFFF) + new_word
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def ttl_decrement_checksum_array(checksums, old_ttls, protos):
    """Vectorized :func:`ttl_decrement_checksum` over numpy int arrays.

    Integer-exact against the scalar form: the one's-complement sum of
    three 16-bit terms is below ``0x30000``, so two folds always reduce
    it to 16 bits.  Inputs may be any integer dtype; the result is int64.
    """
    import numpy as np

    checksums = np.asarray(checksums, dtype=np.int64)
    old_ttls = np.asarray(old_ttls, dtype=np.int64)
    protos = np.asarray(protos, dtype=np.int64)
    old_word = ((old_ttls & 0xFF) << 8) | (protos & 0xFF)
    new_word = (((old_ttls - 1) & 0xFF) << 8) | (protos & 0xFF)
    total = (~checksums & 0xFFFF) + (~old_word & 0xFFFF) + new_word
    total = (total & 0xFFFF) + (total >> 16)
    total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def ttl_decrement_checksum(checksum: int, old_ttl: int, proto: int) -> int:
    """Incrementally update an IPv4 checksum for a TTL decrement.

    TTL shares its 16-bit word with the protocol field (TTL is the high
    byte); decrementing TTL by one changes that word from
    ``old_ttl << 8 | proto`` to ``(old_ttl - 1) << 8 | proto``.
    """
    if old_ttl <= 0:
        raise ValueError("cannot decrement TTL %r" % old_ttl)
    old_word = ((old_ttl & 0xFF) << 8) | (proto & 0xFF)
    new_word = (((old_ttl - 1) & 0xFF) << 8) | (proto & 0xFF)
    return incremental_checksum_update(checksum, old_word, new_word)
