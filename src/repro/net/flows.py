"""Flow identification and RSS-style hashing.

Multi-queue NICs spread incoming packets across receive queues by hashing
the five-tuple (receive-side scaling, Sec. 4.2 [12]); the flowlet switcher
(Sec. 6.1) tracks per-flow state keyed by the same tuple.
"""

from __future__ import annotations

from dataclasses import dataclass

from .addresses import IPv4Address

#: Default 40-byte Toeplitz-like key, fixed so queue assignment is
#: deterministic across runs.
_DEFAULT_HASH_SEED = 0x9E3779B97F4A7C15


@dataclass(frozen=True)
class FiveTuple:
    """The classic (src IP, dst IP, proto, src port, dst port) flow key."""

    src: IPv4Address
    dst: IPv4Address
    proto: int
    src_port: int
    dst_port: int

    def reversed(self) -> "FiveTuple":
        """The key of the reverse direction of this flow."""
        return FiveTuple(src=self.dst, dst=self.src, proto=self.proto,
                         src_port=self.dst_port, dst_port=self.src_port)

    def as_ints(self):
        """Tuple of plain ints (handy for hashing and dict keys)."""
        return (int(self.src), int(self.dst), self.proto,
                self.src_port, self.dst_port)


def rss_hash(flow: FiveTuple, seed: int = _DEFAULT_HASH_SEED) -> int:
    """Deterministic 32-bit hash of a five-tuple.

    A splitmix-style integer mix rather than a literal Toeplitz hash: what
    matters for the simulation is that same-flow packets always land in the
    same queue and that distinct flows spread uniformly, both of which this
    provides.
    """
    x = seed
    for word in flow.as_ints():
        x ^= word + 0x9E3779B97F4A7C15 + ((x << 6) & 0xFFFFFFFFFFFFFFFF) + (x >> 2)
        x &= 0xFFFFFFFFFFFFFFFF
        x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
        x = (x ^ (x >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 31
    return x & 0xFFFFFFFF


def queue_for_flow(flow: FiveTuple, num_queues: int,
                   seed: int = _DEFAULT_HASH_SEED) -> int:
    """Map a flow to a receive-queue index in ``[0, num_queues)``."""
    if num_queues < 1:
        raise ValueError("num_queues must be >= 1, got %r" % num_queues)
    return rss_hash(flow, seed) % num_queues
